"""Tests for polynomial arithmetic over GF(p)."""

import pytest
from hypothesis import given, strategies as st

from repro.galois.polynomials import (
    find_irreducible,
    is_irreducible,
    poly_add,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_trim,
)

PRIMES = [2, 3, 5, 7]


def coeffs(p, max_deg=6):
    return st.lists(st.integers(0, p - 1), min_size=0, max_size=max_deg)


class TestBasics:
    def test_trim(self):
        assert poly_trim([0, 0, 0]) == []
        assert poly_trim([1, 0, 2, 0]) == [1, 0, 2]

    def test_add_mod2(self):
        assert poly_add([1, 1], [1, 0, 1], 2) == [0, 1, 1]

    def test_mul_known(self):
        # (x+1)(x+1) = x^2 + 2x + 1 over GF(3)
        assert poly_mul([1, 1], [1, 1], 3) == [1, 2, 1]
        # over GF(2): x^2 + 1
        assert poly_mul([1, 1], [1, 1], 2) == [1, 0, 1]

    def test_mul_zero(self):
        assert poly_mul([], [1, 2], 5) == []


class TestDivMod:
    def test_known_division(self):
        # x^2 - 1 = (x-1)(x+1) over GF(5)
        q, r = poly_divmod([4, 0, 1], [1, 1], 5)
        assert r == []
        assert q == [4, 1]

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod([1], [], 3)

    @given(st.sampled_from(PRIMES), st.data())
    def test_divmod_identity(self, p, data):
        a = data.draw(coeffs(p))
        b = poly_trim(data.draw(coeffs(p)))
        if not b:
            b = [1]
        q, r = poly_divmod(a, b, p)
        recon = poly_add(poly_mul(q, b, p), r, p)
        assert recon == poly_trim([c % p for c in a])
        assert len(r) < len(b) or not r


class TestIrreducible:
    def test_known_irreducible_gf2(self):
        assert is_irreducible([1, 1, 1], 2)  # x^2+x+1
        assert not is_irreducible([1, 0, 1], 2)  # x^2+1 = (x+1)^2

    def test_known_irreducible_gf3(self):
        assert is_irreducible([1, 0, 1], 3)  # x^2+1 has no root mod 3
        assert not is_irreducible([2, 0, 1], 3)  # x^2+2 = (x+1)(x+2)

    @pytest.mark.parametrize("p,m", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (5, 2), (7, 2)])
    def test_find_irreducible_has_no_roots(self, p, m):
        f = find_irreducible(p, m)
        assert len(f) == m + 1
        assert f[-1] == 1  # monic
        for x in range(p):
            val = sum(c * pow(x, i, p) for i, c in enumerate(f)) % p
            if m >= 2:
                assert val != 0, f"root {x} found in supposedly irreducible {f}"

    def test_degree_one(self):
        assert find_irreducible(5, 1) == [0, 1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            find_irreducible(4, 2)
        with pytest.raises(ValueError):
            find_irreducible(3, 0)


class TestGcd:
    def test_shared_factor(self):
        # gcd((x+1)(x+2), (x+1)) = x+1 over GF(3), monic
        prod = poly_mul([1, 1], [2, 1], 3)
        assert poly_gcd(prod, [1, 1], 3) == [1, 1]

    def test_coprime(self):
        assert poly_gcd([1, 1], [2, 1], 5) == [1]

    @given(st.sampled_from(PRIMES), st.data())
    def test_gcd_divides_both(self, p, data):
        a = poly_trim(data.draw(coeffs(p)))
        b = poly_trim(data.draw(coeffs(p)))
        g = poly_gcd(a, b, p)
        if g:
            if a:
                assert poly_mod(a, g, p) == []
            if b:
                assert poly_mod(b, g, p) == []
