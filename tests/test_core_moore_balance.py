"""Tests for Moore bounds, balance analysis, BDF/Delorme, and the catalog."""

import pytest
from hypothesis import given, strategies as st

from repro.core.balance import (
    balanced_concentration,
    channel_load,
    is_balanced,
    oversubscription_factor,
    saturation_load_estimate,
)
from repro.core.bdf import (
    bdf_graph,
    bdf_network_radix,
    bdf_num_routers,
    bdf_params,
    bdf_u_values,
    has_property_pstar,
    polarity_graph,
    star_product,
)
from repro.core.catalog import (
    SlimFlyConfig,
    find_slimfly_for_endpoints,
    find_slimfly_for_radix,
    slimfly_catalog,
)
from repro.core.delorme import (
    delorme_configs,
    delorme_moore_fraction,
    delorme_network_radix,
    delorme_num_routers,
)
from repro.core.moore import (
    moore_bound,
    moore_bound_diameter2,
    moore_bound_diameter3,
    moore_fraction,
)


class TestMooreBound:
    def test_diameter2_closed_form(self):
        for k in (3, 7, 16, 57, 96):
            assert moore_bound(k, 2) == 1 + k * k
            assert moore_bound_diameter2(k) == 1 + k * k

    def test_diameter3(self):
        k = 10
        assert moore_bound_diameter3(k) == 1 + k + k * 9 + k * 81

    def test_petersen_and_hoffman_singleton_attain(self):
        assert moore_bound(3, 2) == 10  # Petersen graph
        assert moore_bound(7, 2) == 50  # Hoffman-Singleton

    def test_paper_numbers_fig5a(self):
        """k'=96 -> bound 9217; MMS q=64 has 8192 routers (~89%)."""
        assert moore_bound_diameter2(96) == 9217
        assert moore_fraction(8192, 96, 2) == pytest.approx(0.888, abs=0.01)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            moore_bound(0, 2)
        with pytest.raises(ValueError):
            moore_bound(3, 0)

    @given(st.integers(2, 64), st.integers(1, 4))
    def test_monotone(self, k, d):
        assert moore_bound(k + 1, d) > moore_bound(k, d)
        assert moore_bound(k, d + 1) > moore_bound(k, d)


class TestBalance:
    def test_paper_q19(self):
        """§II-B2/§V: q=19 -> p = 15 = ⌈29/2⌉."""
        assert balanced_concentration(722, 29) == 15

    def test_approx_half_radix(self):
        for q, nr, k in ((5, 50, 7), (7, 98, 11), (13, 338, 19)):
            p = balanced_concentration(nr, k)
            assert p == -(-k // 2)  # ceil(k'/2)

    def test_channel_load_formula(self):
        # l = (2Nr - k' - 2) p^2 / k'
        assert channel_load(50, 7, 4) == pytest.approx((100 - 9) * 16 / 7)

    def test_is_balanced(self):
        assert is_balanced(722, 29, 15)
        assert not is_balanced(722, 29, 16)

    def test_oversubscription_factor(self):
        assert oversubscription_factor(722, 29, 15) == pytest.approx(1.0)
        assert oversubscription_factor(722, 29, 18) > 1.0

    def test_saturation_estimate_decreases(self):
        base = saturation_load_estimate(722, 29, 15)
        over16 = saturation_load_estimate(722, 29, 16)
        over18 = saturation_load_estimate(722, 29, 18)
        assert base >= over16 >= over18
        # Paper §V-E: 87.5% -> ~80% -> ~75%: ratios should be near.
        assert over16 / base == pytest.approx(15 / 16, abs=0.02)
        assert over18 / base == pytest.approx(15 / 18, abs=0.02)


class TestBDF:
    def test_radix_formula(self):
        assert bdf_network_radix(3) == 6
        assert bdf_network_radix(7) == 12
        with pytest.raises(ValueError):
            bdf_network_radix(4)

    def test_closed_form_matches_factored_form(self):
        for u in bdf_u_values(60):
            nr, k = bdf_params(u)
            assert nr == (u + 1) * (u * u + u + 1)
            assert bdf_num_routers(k) == pytest.approx(nr)

    def test_polarity_graph_structure(self):
        for u in (2, 3, 5):
            adj = polarity_graph(u)
            assert len(adj) == u * u + u + 1
            degrees = sorted(set(len(n) for n in adj))
            assert degrees in ([u, u + 1], [u + 1])
            # u+1 absolute (self-orthogonal) points of degree u.
            assert sum(1 for n in adj if len(n) == u) == u + 1
            from repro.analysis.distance import diameter_and_average_distance

            d, _ = diameter_and_average_distance(adj)
            assert d == 2

    def test_star_product_counts(self):
        tri = [[1, 2], [0, 2], [0, 1]]  # K3
        edge = [[1], [0]]  # K2
        prod = star_product(tri, edge)
        assert len(prod) == 6
        # Each vertex: 1 edge within its K2 copy + 2 cross arcs = 3.
        assert all(len(n) == 3 for n in prod)

    def test_property_pstar_complete_graph(self):
        k4 = [[j for j in range(4) if j != i] for i in range(4)]
        assert has_property_pstar(k4, [0, 1, 2, 3])  # identity involution

    def test_bdf_graph_u3(self):
        adj = bdf_graph(3)
        nr, k = bdf_params(3)
        assert len(adj) == nr == 52
        # P_u's u+1 absolute (self-orthogonal) points have degree u, not
        # u+1, so the product's degrees are {k-1, k} (BDF handle those
        # points with extra structure the closed forms do not need).
        assert all(len(n) in (k - 1, k) for n in adj)
        from repro.analysis.distance import diameter_and_average_distance

        d, _ = diameter_and_average_distance(adj)
        assert d <= 4  # identity arc maps: 3 by design, tolerate 4


class TestDelorme:
    def test_formulas(self):
        assert delorme_network_radix(3) == 16
        assert delorme_num_routers(3) == 16 * 100

    def test_moore_fraction_band(self):
        # Approaches ~68% from below as v grows.
        fracs = [delorme_moore_fraction(v) for v, _, _ in delorme_configs(150)]
        assert fracs == sorted(fracs)
        assert 0.3 < fracs[0] < 0.75
        assert fracs[-1] > 0.55

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            delorme_num_routers(6)


class TestCatalog:
    def test_catalog_covers_paper_variants(self):
        """§VII-A: 11 balanced variants with N <= 20,000."""
        cfgs = [c for c in slimfly_catalog(20000)]
        assert len(cfgs) >= 11

    def test_config_consistency(self):
        for cfg in slimfly_catalog(5000):
            assert cfg.num_endpoints == cfg.concentration * cfg.num_routers
            assert cfg.router_radix == cfg.network_radix + cfg.concentration

    def test_find_for_endpoints(self):
        cfg = find_slimfly_for_endpoints(10000)
        assert cfg.q == 19  # the paper's pick for ~10K
        assert cfg.num_endpoints == 10830

    def test_find_for_radix(self):
        cfg = find_slimfly_for_radix(44)
        assert cfg.router_radix <= 44
        with pytest.raises(ValueError):
            find_slimfly_for_radix(5)

    def test_explicit_concentration(self):
        cfg = SlimFlyConfig.from_q(19, concentration=18)
        assert cfg.num_endpoints == 18 * 722
