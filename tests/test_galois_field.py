"""Field-axiom tests for GF(p^m), unit + hypothesis property based."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.galois.field import GaloisField
from repro.galois.primitive import (
    is_primitive,
    multiplicative_order,
    primitive_element,
    primitive_elements,
)

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


@pytest.fixture(scope="module", params=FIELD_ORDERS)
def field(request):
    return GaloisField.get(request.param)


class TestConstruction:
    def test_rejects_non_prime_powers(self):
        for q in (0, 1, 6, 10, 12, 15, 100):
            with pytest.raises(ValueError):
                GaloisField(q)

    def test_cached_instances(self):
        assert GaloisField.get(7) is GaloisField.get(7)

    def test_table_shapes(self, field):
        q = field.q
        assert field.add_table.shape == (q, q)
        assert field.mul_table.shape == (q, q)
        assert field.neg_table.shape == (q,)
        assert field.inv_table.shape == (q,)

    def test_prime_field_is_modular(self):
        f = GaloisField.get(7)
        for a in range(7):
            for b in range(7):
                assert f.add(a, b) == (a + b) % 7
                assert f.mul(a, b) == (a * b) % 7


class TestAxioms:
    def test_additive_group(self, field):
        q = field.q
        for a in range(q):
            assert field.add(a, 0) == a
            assert field.add(a, field.neg(a)) == 0
        # Commutativity via table symmetry.
        assert (field.add_table == field.add_table.T).all()

    def test_multiplicative_group(self, field):
        q = field.q
        for a in range(1, q):
            assert field.mul(a, 1) == a
            assert field.mul(a, field.inv(a)) == 1
        assert (field.mul_table == field.mul_table.T).all()

    def test_add_is_latin_square(self, field):
        q = field.q
        expect = np.arange(q)
        for a in range(q):
            assert (np.sort(field.add_table[a]) == expect).all()

    def test_mul_nonzero_is_latin_square(self, field):
        q = field.q
        expect = np.arange(1, q)
        for a in range(1, q):
            row = field.mul_table[a]
            assert (np.sort(row[1:]) == expect).all() or (
                np.sort(row[row > 0]) == expect
            ).all()

    def test_zero_annihilates(self, field):
        assert (field.mul_table[0] == 0).all()
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, data):
        q = data.draw(st.sampled_from(FIELD_ORDERS))
        f = GaloisField.get(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        c = data.draw(st.integers(0, q - 1))
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))

    def test_characteristic(self, field):
        # Adding 1 to itself p times yields 0.
        acc = 0
        for _ in range(field.p):
            acc = field.add(acc, 1)
        assert acc == 0

    def test_power(self, field):
        q = field.q
        for a in range(1, q):
            assert field.power(a, 0) == 1
            assert field.power(a, 1) == a
            assert field.power(a, q - 1) == 1  # Fermat/Lagrange

    def test_div_roundtrip(self, field):
        q = field.q
        for a in range(q):
            for b in range(1, q):
                assert field.mul(field.div(a, b), b) == a


class TestPrimitive:
    def test_generates_group(self, field):
        xi = primitive_element(field)
        seen = set()
        v = 1
        for _ in range(field.q - 1):
            seen.add(v)
            v = field.mul(v, xi)
        assert seen == set(range(1, field.q))

    def test_order_of_primitive(self, field):
        xi = primitive_element(field)
        assert multiplicative_order(field, xi) == field.q - 1

    def test_order_divides_group_order(self, field):
        for a in range(1, field.q):
            assert (field.q - 1) % multiplicative_order(field, a) == 0

    def test_primitive_count_is_totient(self, field):
        # There are φ(q−1) primitive elements.
        n = field.q - 1
        phi = sum(1 for k in range(1, n + 1) if np.gcd(k, n) == 1)
        assert len(primitive_elements(field)) == phi

    def test_zero_not_primitive(self, field):
        assert not is_primitive(field, 0)
        with pytest.raises(ValueError):
            multiplicative_order(field, 0)
