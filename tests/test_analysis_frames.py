"""JSONL ingestion (RowTable) and aggregation helpers."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.frames import (
    Curve,
    RowTable,
    mean_ci,
    provenance,
    saturation_point,
    summarize,
)
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    run_campaign,
)
from repro.sim.config import SimConfig

CFG = SimConfig(warmup_cycles=20, measure_cycles=60, drain_cycles=300)
HC = TopologySpec("HC", target_endpoints=16, params={"concentration": 2})


def tiny_scenario(label="open", seed=0, loads=(0.1, 0.3)):
    return Scenario(
        topology=HC,
        routing=RoutingSpec("min"),
        sim=CFG,
        traffic=TrafficSpec("uniform", seed=seed),
        loads=list(loads),
        label=label,
    )


def make_row(label="a", campaign="c", index=0, rows=1, **extra):
    row = {
        "campaign": campaign,
        "scenario": "feedface00000000",
        "label": label,
        "engine": "open",
        "row": index,
        "rows": rows,
        "load": 0.1 * (index + 1),
        "latency": 10.0 + index,
        "accepted": 0.1 * (index + 1),
        "saturated": False,
        "spec": {"sim": {"seed": 0}},
    }
    row.update(extra)
    return row


def write_jsonl(path, rows):
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    return path


class TestIngestion:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        table = RowTable.from_jsonl(path)
        assert len(table) == 0 and not table
        assert table.campaigns() == [] and table.curves() == []

    def test_round_trip_from_campaign_runner(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        report = run_campaign(Campaign("one", [tiny_scenario()]), out=out)
        table = RowTable.from_jsonl(out)
        assert table.rows == report.rows
        assert table.torn_lines == 0 and table.invalid == []

    def test_meta_sidecar_loaded(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("one", [tiny_scenario()]), out=out, workers=1)
        table = RowTable.from_jsonl(out)
        assert table.meta is not None
        assert table.meta["campaign"] == "one"
        assert table.meta["workers"] == 1
        assert table.meta["scenarios"][0]["rows"] == 2

    def test_non_dict_meta_sidecar_ignored(self, tmp_path):
        path = write_jsonl(tmp_path / "rows.jsonl", [make_row()])
        (tmp_path / "rows.jsonl.meta.json").write_text("[1]")
        assert RowTable.from_jsonl(path).meta is None

    def test_resume_tolerates_corrupt_meta_sidecar(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = Campaign("one", [tiny_scenario()])
        run_campaign(campaign, out=out)
        (tmp_path / "rows.jsonl.meta.json").write_text("null")
        report = run_campaign(campaign, out=out, resume=True, workers=1)
        assert report.simulated == 0
        table = RowTable.from_jsonl(out)
        assert table.meta["workers"] == 1  # rewritten, not trusted

    def test_mixed_campaigns_in_one_file(self, tmp_path):
        rows = [make_row(campaign="alpha"), make_row(campaign="beta")]
        table = RowTable.from_jsonl(write_jsonl(tmp_path / "m.jsonl", rows))
        assert table.campaigns() == ["alpha", "beta"]
        assert len(table.filter(campaign="alpha")) == 1
        only = RowTable.from_jsonl(tmp_path / "m.jsonl", campaign="beta")
        assert only.campaigns() == ["beta"] and len(only) == 1

    def test_interrupted_final_row_is_skipped(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl", [make_row(), make_row(index=0)])
        torn = path.read_text()
        path.write_text(torn + json.dumps(make_row())[: 25])
        table = RowTable.from_jsonl(path)
        assert len(table) == 2
        assert table.torn_lines == 1
        with pytest.raises(ValueError, match="torn"):
            RowTable.from_jsonl(path, strict=True)

    def test_unknown_extra_fields_are_preserved(self, tmp_path):
        rows = [make_row(future_field={"nested": [1, 2]})]
        table = RowTable.from_jsonl(write_jsonl(tmp_path / "x.jsonl", rows))
        assert table.rows[0]["future_field"] == {"nested": [1, 2]}
        assert table.invalid == []

    def test_schema_violations_are_quarantined(self, tmp_path):
        bad_engine = make_row(engine="quantum")
        missing = {k: v for k, v in make_row().items() if k != "latency"}
        path = write_jsonl(tmp_path / "bad.jsonl", [make_row(), bad_engine, missing])
        table = RowTable.from_jsonl(path)
        assert len(table) == 1
        assert len(table.invalid) == 2
        assert "engine" in table.invalid[0][1]
        with pytest.raises(ValueError, match="engine"):
            RowTable.from_jsonl(path, strict=True)

    def test_type_violations_are_quarantined(self, tmp_path):
        bad_spec = make_row(spec="not-a-dict")
        bad_load = make_row(load="0.5")
        bad_latency = make_row(latency="slow")
        path = write_jsonl(
            tmp_path / "types.jsonl", [make_row(), bad_spec, bad_load,
                                       bad_latency]
        )
        table = RowTable.from_jsonl(path)
        assert len(table) == 1 and len(table.invalid) == 3
        assert "spec" in table.invalid[0][1]

    def test_nonfinite_numbers_are_quarantined(self, tmp_path):
        path = tmp_path / "inf.jsonl"
        path.write_text(
            json.dumps(make_row()).replace('"latency": 10.0',
                                           '"latency": Infinity')
            + "\n"
        )
        table = RowTable.from_jsonl(path)
        assert len(table) == 0 and len(table.invalid) == 1

    def test_provenance_tolerates_partial_specs(self):
        rows = [make_row(spec={"sim": None, "routing": {"params": None}})]
        (record,) = provenance(RowTable.from_rows(rows))
        assert record["seeds"] == {}

    def test_from_rows_validates(self):
        with pytest.raises(ValueError, match="missing fields"):
            RowTable.from_rows([{"nope": 1}])
        table = RowTable.from_rows([make_row()])
        assert len(table) == 1

    def test_concat(self, tmp_path):
        a = RowTable.from_jsonl(write_jsonl(tmp_path / "a.jsonl", [make_row()]))
        b = RowTable.from_jsonl(write_jsonl(tmp_path / "b.jsonl", [make_row()]))
        both = RowTable.concat([a, b])
        assert len(both) == 2 and "a.jsonl" in both.source


class TestSelection:
    def test_views_carry_data_quality_counters(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl", [make_row()])
        path.write_text(path.read_text() + '{"torn...')
        table = RowTable.from_jsonl(path)
        assert table.torn_lines == 1
        assert table.filter(campaign="c").torn_lines == 1
        assert table.where(lambda r: True).torn_lines == 1
        (group,) = table.group_by("label").values()
        assert group.torn_lines == 1

    def test_group_by_and_columns(self):
        rows = [make_row(label="x"), make_row(label="y"), make_row(label="x")]
        table = RowTable.from_rows(rows)
        groups = table.group_by("label")
        assert list(groups) == ["x", "y"]
        assert len(groups["x"]) == 2
        assert table.column("label") == ["x", "y", "x"]

    def test_curves_sorted_by_row_index(self):
        rows = [make_row(index=1, rows=2), make_row(index=0, rows=2)]
        (curve,) = RowTable.from_rows(rows).curves()
        assert curve.loads == [0.1, 0.2]
        assert curve.latency == [10.0, 11.0]

    def test_partial_curve_tolerated(self):
        rows = [make_row(index=2, rows=5), make_row(index=0, rows=5)]
        (curve,) = RowTable.from_rows(rows).curves()
        assert len(curve) == 2


class TestAggregation:
    def test_mean_ci_matches_t_distribution(self):
        mean, ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert mean == 2.5
        # t(0.975, df=3) = 3.1824; sem = sqrt(5/3)/2
        assert ci == pytest.approx(3.1824 * math.sqrt(5.0 / 3.0) / 2.0, rel=1e-3)

    def test_mean_ci_degenerate(self):
        assert mean_ci([5.0]) == (5.0, 0.0)
        with pytest.raises(ValueError):
            mean_ci([])

    def test_summarize_drops_none_and_groups(self):
        rows = [
            make_row(label="x", latency=10.0),
            make_row(label="x", latency=20.0),
            make_row(label="x", latency=None),
            make_row(label="y", latency=None),
        ]
        out = summarize(RowTable.from_rows(rows), by=("label",), value="latency")
        assert len(out) == 1
        assert out[0]["label"] == "x" and out[0]["n"] == 2
        assert out[0]["mean"] == 15.0

    def test_saturation_point_prefers_flag(self):
        c = Curve("l", "h", [0.1, 0.5, 0.9], [10, 20, 30],
                  [0.1, 0.5, 0.6], [False, True, True], {})
        assert saturation_point(c) == 0.5

    def test_saturation_point_knee_fallback(self):
        c = Curve("l", "h", [0.1, 0.5, 0.9], [10.0, 12.0, 100.0],
                  [0.1, 0.5, 0.6], [False, False, False], {})
        assert saturation_point(c) == 0.9

    def test_saturation_point_none(self):
        c = Curve("l", "h", [0.1, 0.5], [10.0, 12.0],
                  [0.1, 0.5], [False, False], {})
        assert saturation_point(c) is None


class TestProvenance:
    def test_seeds_extracted_per_layer(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(
            Campaign("one", [tiny_scenario(label="v", seed=3)]), out=out
        )
        (record,) = provenance(RowTable.from_jsonl(out))
        assert record["label"] == "v"
        assert record["engine"] == "open"
        assert record["rows"] == 2
        # uniform traffic normalises its seed away; sim seed remains.
        assert "traffic" not in record["seeds"]
        assert record["seeds"]["sim"] == 1  # SimConfig default seed
        assert len(record["scenario"]) == 16
