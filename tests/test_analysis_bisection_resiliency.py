"""Tests for the bisection partitioner and resiliency Monte-Carlo sweeps."""

import numpy as np
import pytest

from repro.analysis.bisection import bisection_bandwidth, spectral_bisection
from repro.analysis.connectivity import (
    is_connected,
    largest_component_fraction,
)
from repro.analysis.resiliency import (
    default_fractions,
    diameter_resiliency,
    disconnection_resiliency,
    pathlength_resiliency,
    samples_for_ci,
)
from repro.topologies import Hypercube, SlimFly


class TestConnectivity:
    def test_connected_ring(self):
        edges = np.array([[i, (i + 1) % 6] for i in range(6)])
        assert is_connected(6, edges)

    def test_disconnected(self):
        edges = np.array([[0, 1], [2, 3]])
        assert not is_connected(4, edges)
        assert largest_component_fraction(4, edges) == 0.5

    def test_no_edges(self):
        assert not is_connected(3, np.empty((0, 2), dtype=int))
        assert is_connected(1, np.empty((0, 2), dtype=int))


class TestBisection:
    def test_balanced_split(self):
        hc = Hypercube(5)
        side, cut = spectral_bisection(hc.adjacency, seed=0)
        assert abs(side.sum() - len(side) / 2) <= 1

    def test_hypercube_optimal_cut(self):
        """HC bisection is exactly N/2 links; heuristic must find it."""
        hc = Hypercube(5)
        bb = bisection_bandwidth(hc.adjacency, link_bandwidth_gbps=1.0, seed=0)
        assert bb == pytest.approx(hc.num_routers / 2)

    def test_complete_bipartite_like(self):
        # Two cliques joined by one edge: minimum bisection = 1.
        k = 6
        adj = [[] for _ in range(2 * k)]
        for side in (0, k):
            for i in range(k):
                for j in range(i + 1, k):
                    adj[side + i].append(side + j)
                    adj[side + j].append(side + i)
        adj[0].append(k)
        adj[k].append(0)
        bb = bisection_bandwidth(adj, link_bandwidth_gbps=1.0, tries=3, seed=0)
        assert bb == pytest.approx(1.0)

    def test_slimfly_bisection_band(self, sf5):
        """SF q=5 cut should be high (expander-like), well above N/4 links."""
        bb = bisection_bandwidth(sf5.adjacency, link_bandwidth_gbps=1.0, seed=0)
        assert bb >= sf5.num_endpoints / 4


class TestResiliency:
    def test_fractions_default(self):
        fr = default_fractions()
        assert fr[0] == pytest.approx(0.05)
        assert fr[-1] == pytest.approx(0.95)
        assert len(fr) == 19

    def test_samples_for_ci_paper(self):
        assert samples_for_ci(width=2) >= 9000  # ≈ 9604

    def test_disconnection_monotone_trend(self, sf5):
        res = disconnection_resiliency(
            sf5.adjacency, fractions=[0.1, 0.5, 0.9], samples=10, seed=0
        )
        assert res.survival_probability[0] >= res.survival_probability[-1]
        assert res.metric == "disconnection"

    def test_disconnection_extremes(self, sf5):
        res = disconnection_resiliency(
            sf5.adjacency, fractions=[0.05, 0.95], samples=8, seed=1
        )
        assert res.survival_probability[0] == 1.0  # k'=7-regular survives 5%
        assert res.survival_probability[1] == 0.0  # 95% removal kills it

    def test_diameter_resiliency(self, sf5):
        res = diameter_resiliency(
            sf5.adjacency, max_increase=2, fractions=[0.05, 0.8], samples=5, seed=0
        )
        assert res.survival_probability[0] >= res.survival_probability[1]

    def test_pathlength_resiliency(self, sf5):
        res = pathlength_resiliency(
            sf5.adjacency, max_increase=1.0, fractions=[0.05, 0.8], samples=5, seed=0
        )
        assert res.survival_probability[0] == 1.0

    def test_summary_threshold(self):
        from repro.analysis.resiliency import ResiliencyResult

        r = ResiliencyResult("x", [0.1, 0.2, 0.3], [1.0, 0.6, 0.2], 10)
        assert r.summarise(threshold=0.5) == pytest.approx(0.2)
        assert r.summarise(threshold=0.9) == pytest.approx(0.1)

    def test_deterministic_with_seed(self, sf5):
        a = disconnection_resiliency(sf5.adjacency, fractions=[0.5], samples=6, seed=3)
        b = disconnection_resiliency(sf5.adjacency, fractions=[0.5], samples=6, seed=3)
        assert a.survival_probability == b.survival_probability
