"""Tests for traffic patterns, permutations, and adversarial generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import RoutingTables
from repro.topologies import Dragonfly, FatTree3, SlimFly
from repro.traffic import (
    BitComplementPattern,
    BitReversalPattern,
    DragonflyWorstCase,
    FatTreeWorstCase,
    FixedPermutation,
    ShiftPattern,
    ShufflePattern,
    SlimFlyWorstCase,
    UniformRandom,
    active_power_of_two,
    worst_case_for,
)

RNG = np.random.default_rng(0)


class TestUniform:
    def test_never_self(self):
        tr = UniformRandom(50)
        for src in range(50):
            for _ in range(20):
                assert tr.destination(src, RNG) != src

    def test_covers_space(self):
        tr = UniformRandom(10)
        seen = {tr.destination(3, RNG) for _ in range(500)}
        assert seen == set(range(10)) - {3}

    def test_requires_two(self):
        with pytest.raises(ValueError):
            UniformRandom(1)


class TestBitPatterns:
    def test_active_power_of_two(self):
        assert active_power_of_two(200) == 128
        assert active_power_of_two(1024) == 1024
        with pytest.raises(ValueError):
            active_power_of_two(1)

    def test_shuffle(self):
        tr = ShufflePattern(8)
        # b=3: d = rotate-left(s).
        assert tr._map(0b001) == 0b010
        assert tr._map(0b100) == 0b001
        assert tr._map(0b101) == 0b011

    def test_bit_reversal(self):
        tr = BitReversalPattern(8)
        assert tr._map(0b001) == 0b100
        assert tr._map(0b011) == 0b110

    def test_bit_complement(self):
        tr = BitComplementPattern(8)
        assert tr._map(0b000) == 0b111
        assert tr._map(0b101) == 0b010

    def test_inactive_endpoints_silent(self):
        tr = BitReversalPattern(200)  # active = 128
        assert tr.destination(150, RNG) is None
        assert tr.destination(5, RNG) is not None

    def test_shift_destinations(self):
        tr = ShiftPattern(16)
        # src 3: base 3 -> {3, 11}; 3 == src becomes an idle slot (None).
        seen = {tr.destination(3, RNG) for _ in range(100)}
        assert seen == {None, 11}
        # src 10: base 2 -> {2, 10}; 10 == src becomes None.
        seen10 = {tr.destination(10, RNG) for _ in range(200)}
        assert seen10 == {None, 2}

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from([ShufflePattern, BitReversalPattern, BitComplementPattern]))
    def test_patterns_are_permutations(self, cls):
        tr = cls(64)
        images = [tr._map(s) for s in range(64)]
        assert sorted(images) == list(range(64))


class TestFixedPermutation:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            FixedPermutation({3: 3})

    def test_active_endpoints(self, sf5):
        fp = FixedPermutation({0: 1, 1: 0, 10: 11, 11: 10})
        assert fp.active_endpoints(sf5) == [0, 1, 10, 11]


class TestSlimFlyWorstCase:
    def test_pattern_is_permutation_like(self, sf5, sf5_tables):
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)
        # Bidirectional pairing: applying the map twice is the identity.
        for s, d in wc.mapping.items():
            assert wc.mapping[d] == s
            assert s != d

    def test_flows_share_a_hot_link(self, sf5, sf5_tables):
        """Some directed channel carries many of the pattern's min paths."""
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)
        load = {}
        for s, d in wc.mapping.items():
            path = sf5_tables.min_path(
                sf5.endpoint_map[s], sf5.endpoint_map[d]
            )
            for u, v in zip(path, path[1:]):
                load[(u, v)] = load.get((u, v), 0) + 1
        assert max(load.values()) >= sf5.concentration

    def test_deterministic(self, sf5, sf5_tables):
        a = SlimFlyWorstCase(sf5, sf5_tables, seed=4)
        b = SlimFlyWorstCase(sf5, sf5_tables, seed=4)
        assert a.mapping == b.mapping


class TestDragonflyWorstCase:
    def test_next_group_targeting(self, df3):
        wc = DragonflyWorstCase(df3)
        per_group = df3.a * df3.p_conc
        for s, d in wc.mapping.items():
            assert d // per_group == (s // per_group + 1) % df3.g

    def test_all_endpoints_active(self, df3):
        wc = DragonflyWorstCase(df3)
        assert len(wc.mapping) == df3.num_endpoints


class TestFatTreeWorstCase:
    def test_cross_pod(self, ft4):
        wc = FatTreeWorstCase(ft4)
        pod_size = ft4.p * ft4.p
        for s, d in wc.mapping.items():
            pod_s = ft4.pod(ft4.endpoint_map[s])
            pod_d = ft4.pod(ft4.endpoint_map[d])
            assert pod_s != pod_d
        assert len(wc.mapping) == ft4.num_endpoints


class TestDispatch:
    def test_worst_case_for(self, sf5, df3, ft4, sf5_tables):
        assert isinstance(worst_case_for(sf5, sf5_tables, seed=0), SlimFlyWorstCase)
        assert isinstance(worst_case_for(df3), DragonflyWorstCase)
        assert isinstance(worst_case_for(ft4), FatTreeWorstCase)


class TestBatchedDestinations:
    """Fixed patterns vectorise ``destinations`` so batched injection
    stays on the fast path; the batch must agree with the scalar
    per-source draws (idle slots surface as ``dst == src`` instead of
    ``None`` — the injector's self-filter equates the two)."""

    def _check(self, pattern, srcs, consumes_rng=False):
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        batch = pattern.destinations(np.asarray(srcs), rng_a)
        assert isinstance(batch, np.ndarray), "fixed patterns must vectorise"
        scalar = [pattern.destination(int(s), rng_b) for s in srcs]
        for s, b, sc in zip(srcs, batch, scalar):
            if sc is None:
                assert b == s  # idle slot encoding
            else:
                assert b == sc
        if consumes_rng:  # both paths must leave the stream aligned
            assert rng_a.random() == rng_b.random()

    def test_fixed_permutation(self, sf5):
        fp = FixedPermutation({0: 1, 1: 0, 10: 11, 11: 10})
        self._check(fp, [0, 1, 10, 11])
        assert fp.excludes_self

    def test_bit_patterns(self):
        for cls in (ShufflePattern, BitReversalPattern, BitComplementPattern):
            pat = cls(64)
            self._check(pat, list(range(64)))

    def test_shift_consumes_stream_identically(self):
        self._check(ShiftPattern(64), list(range(64)), consumes_rng=True)

    def test_worst_case_patterns_vectorise(self, sf5, sf5_tables, df3, ft4):
        for pat in (
            SlimFlyWorstCase(sf5, sf5_tables, seed=0),
            DragonflyWorstCase(df3),
            FatTreeWorstCase(ft4),
        ):
            self._check(pat, sorted(pat.mapping))
