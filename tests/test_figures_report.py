"""Figure renderers (determinism, styling) and the report builder/CLI."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import (
    BarFigure,
    GroupedBarFigure,
    HAVE_MATPLOTLIB,
    LineFigure,
    LineSeries,
    PALETTE,
    SERIES_COLORS,
    assign_colors,
    nice_ticks,
    save_figure,
)
from repro.analysis.report import build_report
from repro.experiments.runner import main as cli_main
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    run_campaign,
)
from repro.sim.config import SimConfig

CFG = SimConfig(warmup_cycles=20, measure_cycles=60, drain_cycles=300)
HC = TopologySpec("HC", target_endpoints=16, params={"concentration": 2})


def tiny_campaign() -> Campaign:
    return Campaign(
        "tiny",
        [
            Scenario(topology=HC, routing=RoutingSpec("min"), sim=CFG,
                     traffic=TrafficSpec("uniform"), loads=[0.1, 0.5, 0.9],
                     label="HC-MIN"),
            Scenario(topology=HC, routing=RoutingSpec("val", {"seed": 0}),
                     sim=CFG, traffic=TrafficSpec("uniform"),
                     loads=[0.1, 0.5, 0.9], label="HC-VAL"),
            Scenario(topology=HC, routing=RoutingSpec("min"),
                     sim=SimConfig(seed=0),
                     workload=WorkloadSpec("ring-allreduce", ranks=8,
                                           size_flits=2),
                     max_cycles=50_000, label="HC-MIN/ring-allreduce"),
        ],
    )


def make_mixed_rows_file(path, campaign="c"):
    rows = [
        {
            "campaign": campaign, "scenario": "feedface00000000",
            "label": "HC-MIN", "engine": "open", "row": i, "rows": 2,
            "load": 0.1 * (i + 1), "latency": 10.0 + i,
            "accepted": 0.1 * (i + 1), "saturated": False,
            "spec": {"sim": {"seed": 0}},
        }
        for i in range(2)
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    return path


@pytest.fixture(scope="module")
def tiny_rows(tmp_path_factory):
    out = tmp_path_factory.mktemp("rows") / "tiny.jsonl"
    run_campaign(tiny_campaign(), out=out, workers=1)
    return out


def line_figure() -> LineFigure:
    return LineFigure(
        title="t", xlabel="x", ylabel="y",
        series=[
            LineSeries("SF-MIN", [0.1, 0.5, 0.9], [10.0, 12.0, 40.0],
                       [False, False, True]),
            LineSeries("SF-VAL", [0.1, 0.5, 0.9], [15.0, None, 50.0]),
        ],
    )


class TestSVGBackend:
    def test_byte_deterministic(self):
        assert line_figure().render_svg() == line_figure().render_svg()
        bars = BarFigure(title="b", xlabel="x", ylabel="y",
                         categories=["SF", "DF"], values=[1.0, 2.0])
        assert bars.render_svg() == bars.render_svg()

    def test_data_changes_change_bytes(self):
        a = line_figure()
        b = line_figure()
        b.series[0].y[0] = 11.0
        assert a.render_svg() != b.render_svg()

    @pytest.mark.parametrize(
        "figure",
        [
            line_figure(),
            BarFigure(title="b", xlabel="x", ylabel="y",
                      categories=["SF", "DF"], values=[3.0, 2.0]),
            GroupedBarFigure(title="g", xlabel="x", ylabel="y",
                             groups=["a2a", "ring"],
                             series=["SF-MIN", "FT-ANCA"],
                             values=[[1.0, 2.0], [3.0, None]]),
        ],
        ids=["line", "bar", "grouped"],
    )
    def test_well_formed_svg(self, figure):
        root = ET.fromstring(figure.render_svg())
        assert root.tag.endswith("svg")
        width, height = float(root.get("width")), float(root.get("height"))
        for el in root.iter():
            for attr in ("x", "y", "cx", "cy", "x1", "x2", "y1", "y2"):
                value = el.get(attr)
                if value is not None:
                    assert -20 <= float(value) <= max(width, height) + 20

    def test_known_entities_keep_their_color(self):
        svg = line_figure().render_svg()
        assert SERIES_COLORS["SF-MIN"] in svg
        assert SERIES_COLORS["SF-VAL"] in svg
        # Color follows the entity regardless of position in the figure.
        assert assign_colors(["SF-VAL"]) == [SERIES_COLORS["SF-VAL"]]

    def test_unknown_series_take_free_palette_slots_in_order(self):
        names = [f"s{i}" for i in range(9)]
        colors = assign_colors(names)
        assert colors[:8] == list(PALETTE)
        assert colors[8] not in PALETTE  # overflow gray past 8 series

    def test_assign_colors_avoids_pinned_slots(self):
        colors = assign_colors(["my-custom", "SF-MIN"])
        assert colors[1] == SERIES_COLORS["SF-MIN"]
        assert colors[0] != colors[1]
        # All-distinct for a full mixed figure too.
        mixed = assign_colors(["a", "SF-MIN", "b", "FT-ANCA"])
        assert len(set(mixed)) == 4
        # Pinned entities sharing a slot (aliases) must not collide
        # when they co-appear in one figure.
        aliased = assign_colors(["DF-UGAL-L", "DF-UGAL-G"])
        assert aliased[0] == SERIES_COLORS["DF-UGAL-L"]
        assert aliased[0] != aliased[1]

    def test_diagonal_clamped_to_visible_window(self):
        fig = LineFigure(
            title="t", xlabel="x", ylabel="y", diagonal=True,
            series=[LineSeries("s", [0.1, 0.5, 0.9], [0.01, 0.03, 0.05])],
        )
        root = ET.fromstring(fig.render_svg())
        w, h = float(root.get("width")), float(root.get("height"))
        for el in root.iter():
            if el.tag.rsplit("}", 1)[-1] == "line":
                for attr in ("x1", "x2", "y1", "y2"):
                    assert -20 <= float(el.get(attr)) <= max(w, h) + 20

    def test_saturated_points_render_open_markers(self):
        svg = line_figure().render_svg()
        color = SERIES_COLORS["SF-MIN"]
        assert f'fill="#fcfcfb" stroke="{color}"' in svg

    def test_none_values_skipped_not_drawn(self):
        fig = LineFigure(title="t", xlabel="x", ylabel="y",
                         series=[LineSeries("s", [0.1, 0.5], [None, None])])
        root = ET.fromstring(fig.render_svg())
        assert not [el for el in root.iter() if el.tag.endswith("circle")]

    def test_constant_nonpositive_series_renders(self):
        fig = LineFigure(title="t", xlabel="x", ylabel="y",
                         series=[LineSeries("a", [0, 1, 2],
                                            [-5.0, -5.0, -5.0])])
        assert fig.render_svg().startswith("<svg")

    def test_grouped_bars_tolerate_ragged_matrix(self):
        fig = GroupedBarFigure(title="t", xlabel="x", ylabel="y",
                               groups=["a", "b"], series=["s1", "s2"],
                               values=[[1.0]])
        assert fig.render_svg().startswith("<svg")

    def test_nice_ticks(self):
        ticks = nice_ticks(0.0, 1.0)
        assert ticks[0] == 0.0 and ticks[-1] == 1.0
        assert nice_ticks(0.0, 0.0)  # degenerate range still ticks

    def test_save_figure_svg_and_unknown_format(self, tmp_path):
        (path,) = save_figure(line_figure(), tmp_path, "fig")
        assert path.read_text().startswith("<svg")
        with pytest.raises(ValueError, match="format"):
            save_figure(line_figure(), tmp_path, "fig", formats=("pdf",))

    @pytest.mark.skipif(HAVE_MATPLOTLIB, reason="matplotlib installed")
    def test_png_gated_without_matplotlib(self, tmp_path):
        with pytest.raises(RuntimeError, match="matplotlib"):
            save_figure(line_figure(), tmp_path, "fig", formats=("png",))

    @pytest.mark.skipif(not HAVE_MATPLOTLIB, reason="needs matplotlib")
    def test_png_renders_with_matplotlib(self, tmp_path):
        (path,) = save_figure(line_figure(), tmp_path, "fig", formats=("png",))
        assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


class TestBuildReport:
    def test_figures_and_report_from_jsonl(self, tiny_rows, tmp_path):
        result = build_report([tiny_rows], tmp_path, analytics=False)
        assert result.report_path.exists()
        names = sorted(f.name for f in result.figures)
        assert names == ["tiny-completion", "tiny-latency", "tiny-throughput"]
        for artifact in result.figures:
            assert artifact.paths[0].exists()
            assert artifact.provenance
            assert artifact.workers == 1
        text = result.report_path.read_text()
        assert "![tiny-latency](figures/tiny-latency.svg)" in text
        assert "Paper expectation" in text and "Provenance" in text
        # Every scenario hash from the rows is pinned in the report.
        for line in tiny_rows.read_text().splitlines():
            assert json.loads(line)["scenario"] in text

    def test_stale_figures_removed_on_rebuild(self, tiny_rows, tmp_path):
        result = build_report([tiny_rows], tmp_path, analytics=False)
        stray = result.out_dir / "figures" / "old-run-figure.svg"
        stray.write_text("<svg/>")
        build_report([tiny_rows], tmp_path, analytics=False)
        assert not stray.exists()
        for artifact in result.figures:
            assert artifact.paths[0].exists()

    def test_rebuild_is_byte_identical(self, tiny_rows, tmp_path):
        first = build_report([tiny_rows], tmp_path, analytics=False)
        snapshot = {
            p: p.read_bytes()
            for a in first.figures for p in a.paths
        }
        snapshot[first.report_path] = first.report_path.read_bytes()
        build_report([tiny_rows], tmp_path, analytics=False)
        for path, content in snapshot.items():
            assert path.read_bytes() == content

    def test_analytic_cost_power_figures(self, tmp_path, tiny_rows):
        result = build_report([tiny_rows], tmp_path, analytics=True,
                              scale="quick")
        families = {a.family for a in result.figures}
        assert {"cost", "power"} <= families
        text = result.report_path.read_text()
        assert "cheapest" in text or "power" in text

    def test_analytics_cable_model_passthrough(self, tmp_path, tiny_rows):
        result = build_report([tiny_rows], tmp_path, analytics=True,
                              scale="quick", cable_model="mellanox-qdr56")
        cost = next(a for a in result.figures if a.family == "cost")
        assert "mellanox-qdr56" in cost.title

    def test_experiment_json_input(self, tmp_path):
        data = [
            {
                "experiment": "fig1",
                "title": "t",
                "tables": [],
                "bundles": [
                    {"title": "b", "xlabel": "x", "ylabel": "y",
                     "series": [{"name": "SF", "x": [1, 2], "y": [3, 4]}]}
                ],
                "notes": ["a note"],
            }
        ]
        path = tmp_path / "results.json"
        path.write_text(json.dumps(data))
        result = build_report([path], tmp_path / "out", analytics=False)
        assert [a.name for a in result.figures] == ["fig1-bundle0"]
        assert "a note" in result.report_path.read_text()

    def test_duplicate_experiment_json_inputs_keep_distinct_figures(
        self, tmp_path
    ):
        data = [
            {
                "experiment": "fig1",
                "title": "t",
                "tables": [],
                "bundles": [
                    {"title": "b", "xlabel": "x", "ylabel": "y",
                     "series": [{"name": "SF", "x": [1], "y": [2]}]}
                ],
                "notes": [],
            }
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(data))
        b.write_text(json.dumps(data))
        result = build_report([a, b], tmp_path / "out", analytics=False)
        names = [f.name for f in result.figures]
        assert names == ["fig1-bundle0", "fig1-bundle0-2"]
        assert len({f.paths[0] for f in result.figures}) == 2
        # Titles (and hence REPORT.md anchors) deduped too.
        assert len({f.title for f in result.figures}) == 2

    def test_campaign_spec_json_rejected_with_message(self, tmp_path):
        spec = tiny_campaign().save(tmp_path / "grid.json")
        with pytest.raises(ValueError, match="experiment-results"):
            build_report([spec], tmp_path / "out", analytics=False)

    def test_duplicate_closed_labels_average_not_last_wins(self, tmp_path):
        def row(makespan, scenario):
            return {
                "campaign": "c", "scenario": scenario,
                "label": "SF-MIN/alltoall", "engine": "closed", "row": 0,
                "rows": 1, "workload": "alltoall", "num_messages": 2,
                "completed_messages": 2, "finished": True,
                "makespan": makespan, "cycles": makespan,
                "delivered_flits": 4, "avg_message_latency": 5.0,
                "p99_message_latency": 6.0, "avg_packet_latency": 4.0,
                "flits_per_cycle": 0.1, "spec": {"sim": {"seed": 0}},
            }

        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps(row(100, "a" * 16)) + "\n"
                        + json.dumps(row(300, "b" * 16)) + "\n")
        result = build_report([path], tmp_path / "out", analytics=False)
        (artifact,) = result.figures
        assert any("mean over 2 finished" in c for c in artifact.commentary)
        # The mean (200), not the last row (300), is what renders.
        assert any("200 cycles" in c for c in artifact.commentary)

    def test_colliding_campaign_slugs_keep_distinct_figures(self, tmp_path):
        a = make_mixed_rows_file(tmp_path / "a.jsonl", campaign="my.run")
        b = make_mixed_rows_file(tmp_path / "b.jsonl", campaign="my-run")
        result = build_report([a, b], tmp_path / "out", analytics=False)
        paths = [f.paths[0] for f in result.figures]
        assert len(set(paths)) == len(paths)
        assert any(p.name == "my-run-latency.svg" for p in paths)
        assert any(p.name == "my-run-latency-2.svg" for p in paths)

    def test_tables_only_json_surfaces_warning(self, tmp_path):
        data = [{"experiment": "table2", "title": "t", "tables":
                 [{"headers": ["a"], "rows": [[1]]}], "bundles": [],
                 "notes": []}]
        path = tmp_path / "results.json"
        path.write_text(json.dumps(data))
        result = build_report([path], tmp_path / "out", analytics=False)
        assert result.figures == []
        assert any("tables-only" in w for w in result.warnings)

    def test_empty_experiment_json_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="no experiment results"):
            build_report([path], tmp_path / "out", analytics=False)

    def test_truncated_experiment_json_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('[{"experiment": "fig1"}]')
        with pytest.raises(ValueError, match="malformed experiment"):
            build_report([path], tmp_path / "out", analytics=False)

    def test_bad_json_input_fails_before_any_figure_writes(self, tiny_rows,
                                                           tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a results list"}')
        out = tmp_path / "out"
        with pytest.raises(ValueError):
            build_report([tiny_rows, bad], out, analytics=False)
        # Validation runs before rendering: nothing half-written.
        assert not list((out / "figures").iterdir())

    def test_jsonl_with_no_valid_rows_rejected(self, tmp_path):
        bogus = tmp_path / "rows.jsonl"
        bogus.write_text('{"not": "a campaign row"}\n')
        with pytest.raises(ValueError, match="no valid campaign rows"):
            build_report([bogus], tmp_path / "out", analytics=False)

    def test_torn_lines_surface_as_warnings(self, tiny_rows, tmp_path):
        degraded = tmp_path / "degraded.jsonl"
        degraded.write_text(tiny_rows.read_text() + '{"torn...')
        result = build_report([degraded], tmp_path / "out", analytics=False)
        assert result.warnings and "unparseable" in result.warnings[0]
        assert "Data-quality warnings" in result.report_path.read_text()

    def test_resume_preserves_sidecar_worker_count(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(tiny_campaign(), out=out, workers=1)
        # Full resume at another worker count simulates nothing, so the
        # sidecar must keep recording how the rows were produced.
        report = run_campaign(tiny_campaign(), out=out, workers=2, resume=True)
        assert report.simulated == 0
        meta = json.loads((tmp_path / "rows.jsonl.meta.json").read_text())
        assert meta["workers"] == 1

    def test_rejects_unknown_input_suffix(self, tmp_path):
        bad = tmp_path / "rows.csv"
        bad.write_text("")
        with pytest.raises(ValueError, match="inputs"):
            build_report([bad], tmp_path / "out", analytics=False)

    def test_campaign_sharded_across_files_renders_once(self, tiny_rows,
                                                        tmp_path):
        lines = tiny_rows.read_text().splitlines(keepends=True)
        shard1 = tmp_path / "shard1.jsonl"
        shard2 = tmp_path / "shard2.jsonl"
        shard1.write_text("".join(lines[:3]))
        shard2.write_text("".join(lines[3:]))
        result = build_report([shard1, shard2], tmp_path / "out",
                              analytics=False)
        # One figure set for the campaign, with every curve present.
        assert sorted(f.name for f in result.figures) == [
            "tiny-completion", "tiny-latency", "tiny-throughput"
        ]
        latency = next(a for a in result.figures if a.name == "tiny-latency")
        svg = latency.paths[0].read_text()
        assert ">HC-MIN</text>" in svg and ">HC-VAL</text>" in svg
        assert "shard1.jsonl" in latency.source
        assert "shard2.jsonl" in latency.source

    def test_closed_labels_with_extra_slashes_render_bars(self, tmp_path):
        row = {
            "campaign": "c", "scenario": "feedface00000000",
            "label": "SF/MIN/alltoall", "engine": "closed", "row": 0,
            "rows": 1, "workload": "alltoall", "num_messages": 2,
            "completed_messages": 2, "finished": True, "makespan": 42,
            "cycles": 42, "delivered_flits": 4, "avg_message_latency": 5.0,
            "p99_message_latency": 6.0, "avg_packet_latency": 4.0,
            "flits_per_cycle": 0.1, "spec": {"sim": {"seed": 0}},
        }
        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps(row) + "\n")
        result = build_report([path], tmp_path / "out", analytics=False)
        (artifact,) = result.figures
        # The bar must actually render (one <path> per drawn bar).
        assert "<path" in artifact.paths[0].read_text()

    def test_contents_anchors_are_github_style(self, tiny_rows, tmp_path):
        result = build_report([tiny_rows], tmp_path, analytics=False)
        text = result.report_path.read_text()
        # "## tiny: latency vs offered load" -> GitHub drops the colon
        # and turns each space into a dash.
        assert "(#tiny-latency-vs-offered-load)" in text


class TestReportCLI:
    def test_report_from_file(self, tiny_rows, tmp_path, capsys):
        out = tmp_path / "rep"
        rc = cli_main(["report", str(tiny_rows), "--out", str(out),
                       "--no-analytics"])
        assert rc == 0
        assert (out / "REPORT.md").exists()
        assert sorted(p.name for p in (out / "figures").iterdir()) == [
            "tiny-completion.svg", "tiny-latency.svg", "tiny-throughput.svg",
        ]
        assert "3 figures" in capsys.readouterr().out

    def test_report_requires_out(self, capsys):
        assert cli_main(["report"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_report_out_must_be_a_directory(self, tiny_rows, tmp_path,
                                            capsys):
        stray = tmp_path / "outfile"
        stray.write_text("")
        assert cli_main(["report", str(tiny_rows), "--out", str(stray)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_report_rejects_cross_mode_flags(self, tiny_rows, tmp_path, capsys):
        out = str(tmp_path / "rep")
        assert cli_main(["report", str(tiny_rows), "--out", out,
                         "--resume"]) == 2
        assert "--resume" in capsys.readouterr().err
        assert cli_main(["report", str(tiny_rows), "--out", out,
                         "--replicas", "4"]) == 2

    def test_report_missing_input_errors(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "nope.jsonl"),
                         "--out", str(tmp_path / "rep")]) == 2
        assert "no such input" in capsys.readouterr().err

    def test_report_rejects_unknown_suffix_cleanly(self, tmp_path, capsys):
        stray = tmp_path / "notes.txt"
        stray.write_text("hello")
        assert cli_main(["report", str(stray),
                         "--out", str(tmp_path / "rep")]) == 2
        assert ".jsonl" in capsys.readouterr().err

    def test_report_rejects_campaign_spec_json_cleanly(self, tmp_path, capsys):
        spec = tiny_campaign().save(tmp_path / "grid.json")
        assert cli_main(["report", str(spec),
                         "--out", str(tmp_path / "rep")]) == 2
        assert "experiment-results" in capsys.readouterr().err

    def test_report_rejects_inert_scale_seed(self, tiny_rows, tmp_path,
                                             capsys):
        assert cli_main(["report", str(tiny_rows), "--out",
                         str(tmp_path / "rep"), "--no-analytics",
                         "--scale", "paper"]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_report_rejects_workers_with_input_files(self, tiny_rows,
                                                     tmp_path, capsys):
        assert cli_main(["report", str(tiny_rows), "--out",
                         str(tmp_path / "rep"), "--workers", "8"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_campaign_cli_rejects_multiple_files(self, tmp_path, capsys):
        spec = tiny_campaign().save(tmp_path / "grid.json")
        assert cli_main(["campaign", str(spec), str(spec)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_experiments_reject_report_flags(self, capsys):
        assert cli_main(["table2", "--scale", "quick", "--png"]) == 2
        assert "report" in capsys.readouterr().err
