"""Tests for the §VII extensions, path diversity, faults, and the
analytical model."""

import pytest

from repro.analysis.distance import diameter_and_average_distance
from repro.analysis.faults import (
    DegradedTopology,
    degraded_routing_report,
    fail_random_links,
    fail_router_links,
)
from repro.analysis.paths import (
    edge_disjoint_paths,
    min_edge_connectivity,
    shortest_path_diversity,
    spectral_gap,
    two_hop_diversity,
)
from repro.core.analytical import (
    estimate,
    slimfly_channel_load_at,
    uniform_saturation_load,
    valiant_saturation_load,
    zero_load_latency,
)
from repro.topologies import Dragonfly, SlimFly
from repro.topologies.augmented import AugmentedSlimFly
from repro.topologies.sf_dragonfly import SlimFlyGroupedDragonfly


class TestAugmentedSlimFly:
    def test_radix_grows(self):
        aug = AugmentedSlimFly(5, extra_ports=2, seed=0)
        base = SlimFly.from_q(5)
        assert aug.network_radix == base.network_radix + 2
        assert aug.num_endpoints == base.num_endpoints

    def test_latency_improves_or_holds(self):
        """§VII-A: random channels should improve average distance."""
        aug = AugmentedSlimFly(5, extra_ports=2, seed=0)
        base = SlimFly.from_q(5)
        assert aug.average_distance() <= base.average_distance()

    def test_intra_rack_only(self):
        from repro.layout.racks import slimfly_racks

        aug = AugmentedSlimFly(5, extra_ports=1, intra_rack_only=True, seed=0)
        base = SlimFly.from_q(5)
        racks = slimfly_racks(base)
        base_edges = set(base.edges())
        for u, v in set(aug.edges()) - base_edges:
            assert racks.rack_of[u] == racks.rack_of[v]

    def test_deterministic(self):
        a = AugmentedSlimFly(5, extra_ports=2, seed=7)
        b = AugmentedSlimFly(5, extra_ports=2, seed=7)
        assert a.adjacency == b.adjacency


class TestSFGroupedDragonfly:
    def test_structure(self):
        net = SlimFlyGroupedDragonfly(3, num_groups=4, global_width=2)
        assert net.num_routers == 4 * 18
        d, _ = diameter_and_average_distance(net.adjacency)
        assert d <= net.analytic_diameter_bound()

    def test_group_of(self):
        net = SlimFlyGroupedDragonfly(3, num_groups=3)
        assert net.group_of(0) == 0
        assert net.group_of(net.group_size) == 1

    def test_cable_saving_vs_clique_groups(self):
        """§VII-B: MMS groups use ≈50% fewer local cables than cliques."""
        net = SlimFlyGroupedDragonfly(5, num_groups=3)
        assert net.intra_group_cables() < 0.2 * net.dragonfly_equivalent_local_cables()

    def test_rejects_single_group(self):
        with pytest.raises(ValueError):
            SlimFlyGroupedDragonfly(3, num_groups=1)


class TestPathDiversity:
    def test_moore_graph_unique_min_paths(self, sf5, sf5_tables):
        assert shortest_path_diversity(sf5_tables, pairs=100, seed=0) == pytest.approx(
            1.0
        )

    def test_edge_disjoint_paths_regular(self, sf5):
        """k'-regular expander: k' edge-disjoint paths between any pair."""
        assert edge_disjoint_paths(sf5.adjacency, 0, 27) == sf5.network_radix

    def test_edge_disjoint_rejects_same(self, sf5):
        with pytest.raises(ValueError):
            edge_disjoint_paths(sf5.adjacency, 3, 3)

    def test_min_edge_connectivity(self, sf5):
        assert min_edge_connectivity(sf5.adjacency, samples=10, seed=0) == 7

    def test_edge_connectivity_attains_degree(self, sf5, df3):
        """Both SF and DF attain their minimum degree — the resiliency
        difference in §III-D is about *relative* redundancy (SF keeps
        full connectivity with far fewer cables), not raw connectivity."""
        assert min_edge_connectivity(sf5.adjacency, samples=10, seed=0) == 7
        df_conn = min_edge_connectivity(df3.adjacency, samples=10, seed=0)
        df_min_degree = min(len(n) for n in df3.adjacency)
        assert df_conn <= df_min_degree
        assert two_hop_diversity(sf5.adjacency) >= 0.0

    def test_spectral_gap_positive(self, sf5):
        gap = spectral_gap(sf5.adjacency)
        # Hoffman–Singleton: eigenvalues 7, 2, −3 -> gap 5.
        assert gap == pytest.approx(5.0, abs=1e-6)


class TestFaults:
    def test_fail_random_links(self, sf5):
        deg = fail_random_links(sf5, 0.1, seed=0)
        assert deg.base is sf5
        assert len(deg.failed_links) == round(0.1 * sf5.num_links)
        assert deg.num_links == sf5.num_links - len(deg.failed_links)
        assert deg.failure_fraction == pytest.approx(0.1, abs=0.01)

    def test_fail_router_links(self, sf5):
        deg = fail_router_links(sf5, 0)
        assert deg.adjacency[0] == []
        assert len(deg.failed_links) == 7

    def test_rejects_nonexistent_link(self, sf5):
        not_edge = None
        adj0 = set(sf5.adjacency[0])
        for v in range(1, sf5.num_routers):
            if v not in adj0:
                not_edge = (0, v)
                break
        with pytest.raises(ValueError):
            DegradedTopology(sf5, {not_edge})

    def test_degraded_report(self, sf5):
        report = degraded_routing_report(sf5, 0.1, seed=0)
        assert report["connected"]
        assert report["diameter"] >= 2
        assert report["dfsssp_vcs"] >= 1

    def test_rejects_total_failure(self, sf5):
        with pytest.raises(ValueError):
            fail_random_links(sf5, 1.0, seed=0)


class TestAnalyticalModel:
    def test_zero_load_latency(self):
        # 2 hops × 4 cycles + inject + eject = 10.
        assert zero_load_latency(2.0) == pytest.approx(10.0)

    def test_estimate_matches_simulation_zero_load(self, sf5, sf5_tables):
        from repro.routing import MinimalRouting
        from repro.sim import SimConfig, simulate
        from repro.traffic import UniformRandom

        est = estimate(sf5, "min")
        cfg = SimConfig(warmup_cycles=150, measure_cycles=300, drain_cycles=1200)
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.05, cfg)
        assert res.avg_latency == pytest.approx(est.zero_load_latency_cycles, rel=0.25)

    def test_saturation_ordering(self, sf5):
        assert valiant_saturation_load(sf5) < uniform_saturation_load(sf5)

    def test_sf_balanced_saturation_near_90pct(self):
        sf = SlimFly.from_q(19)
        # avoid the expensive exact average distance: analytic ~1.96
        sat = uniform_saturation_load(sf, average_hops=1.96)
        assert 0.8 <= sat <= 1.0  # paper: accepted ~87.5%

    def test_channel_load_wrapper(self):
        assert slimfly_channel_load_at(19, 15) == pytest.approx(
            (2 * 722 - 29 - 2) * 225 / 29
        )

    def test_estimate_rejects_unknown(self, sf5):
        with pytest.raises(ValueError):
            estimate(sf5, "teleport")
