"""Integration tests: every experiment runs at quick scale and its
paper-shape notes hold (no SHAPE VIOLATION markers)."""

import pytest

from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.runner import ALL_ORDER, EXPERIMENTS, build_parser, run_experiment

FAST_EXPERIMENTS = [
    "fig1", "fig5a", "fig5b", "fig5c", "table2", "table3",
    "table4", "costmodel", "fig11-cost", "fig11-power",
]


class TestRegistry:
    def test_all_order_registered(self):
        for name in ALL_ORDER:
            assert name in EXPERIMENTS

    def test_parser(self):
        args = build_parser().parse_args(["fig1", "--scale", "quick"])
        assert args.experiment == "fig1"
        assert args.scale == "quick"

    def test_scale_coercion(self):
        assert Scale.coerce("paper") is Scale.PAPER
        assert Scale.coerce(Scale.QUICK) is Scale.QUICK
        with pytest.raises(ValueError):
            Scale.coerce("huge")


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_experiment_runs_and_shapes_hold(name):
    result = run_experiment(name, Scale.QUICK, seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.tables or result.bundles
    rendered = result.render()
    assert "SHAPE VIOLATION" not in rendered
    assert len(rendered) > 100


class TestResultRendering:
    def test_render_contains_tables_and_series(self):
        result = run_experiment("fig5a", Scale.QUICK, seed=0)
        text = result.render()
        assert "Moore Bound 2" in text
        assert "Slim Fly MMS" in text

    def test_notes_survive(self):
        result = run_experiment("table2", Scale.QUICK, seed=0)
        assert any("shape holds" in n for n in result.notes)


class TestVCCountsExperiment:
    def test_runs(self):
        result = run_experiment("vc-counts", Scale.QUICK, seed=0)
        assert "SHAPE VIOLATION" not in result.render()
        # Gopal columns must all verify.
        headers, rows = result.tables[0]
        for row in rows[:-1]:  # SF rows
            assert row[2] is True
            assert row[3] is True


class TestResiliencyExperiments:
    def test_diameter_variant(self):
        result = run_experiment("res-diameter", Scale.QUICK, seed=0)
        assert result.tables[0][1]  # non-empty rows

    def test_pathlen_variant(self):
        result = run_experiment("res-pathlen", Scale.QUICK, seed=0)
        assert result.tables[0][1]


class TestAblations:
    def test_val_cap_ablation(self):
        result = run_experiment("ablate-val", Scale.QUICK, seed=0)
        assert "SHAPE VIOLATION" not in result.render()
        headers, rows = result.tables[0]
        assert len(rows) == 2

    def test_primitive_element_ablation(self):
        result = run_experiment("ablate-xi", Scale.QUICK, seed=0)
        assert any("shape holds" in n for n in result.notes)
