"""Shared fixtures: small canonical instances reused across test modules."""

from __future__ import annotations

import pytest

from repro.galois.field import GaloisField
from repro.routing.tables import RoutingTables
from repro.topologies import Dragonfly, FatTree3, SlimFly


@pytest.fixture(scope="session")
def gf5() -> GaloisField:
    return GaloisField.get(5)


@pytest.fixture(scope="session")
def gf9() -> GaloisField:
    """A non-prime field — exercises polynomial arithmetic."""
    return GaloisField.get(9)


@pytest.fixture(scope="session")
def sf5() -> SlimFly:
    """The Hoffman–Singleton Slim Fly: 50 routers, k'=7, p=4, N=200."""
    return SlimFly.from_q(5)


@pytest.fixture(scope="session")
def sf7() -> SlimFly:
    return SlimFly.from_q(7)


@pytest.fixture(scope="session")
def sf5_tables(sf5) -> RoutingTables:
    return RoutingTables(sf5.adjacency)


@pytest.fixture(scope="session")
def df3() -> Dragonfly:
    """Balanced Dragonfly h=3: 114 routers, N=342."""
    return Dragonfly.balanced(3)


@pytest.fixture(scope="session")
def ft4() -> FatTree3:
    """FT-3 with p=4: 48 switches, N=64."""
    return FatTree3(4)
