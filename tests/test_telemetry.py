"""Telemetry plane unit tests: spec/result round-trips, the histogram
helper, merging, the in-engine probes' zero-perturbation contract, and
the read side (metrics sidecar loader + channel-load figures)."""

import json

import pytest

from repro.analysis.figures import HeatmapFigure, heat_color
from repro.analysis.frames import MetricsTable, metrics_sidecar
from repro.routing import MinimalRouting, UGALRouting
from repro.sim import (
    LATENCY_BIN_EDGES,
    SimConfig,
    TelemetryResult,
    TelemetrySpec,
    latency_histogram,
    merge_telemetry,
    simulate,
)
from repro.sim.flowlevel import flow_simulate
from repro.traffic import SlimFlyWorstCase, UniformRandom

CFG = SimConfig(warmup_cycles=80, measure_cycles=200, drain_cycles=1000, seed=7)


class TestHistogram:
    def test_edges_are_monotone(self):
        assert all(
            a < b for a, b in zip(LATENCY_BIN_EDGES, LATENCY_BIN_EDGES[1:])
        )
        assert LATENCY_BIN_EDGES[0] == 1

    def test_counts_cover_every_sample(self):
        samples = [1, 2, 3, 500, 10**7, 0]
        counts = latency_histogram(samples)
        assert len(counts) == len(LATENCY_BIN_EDGES) + 1
        assert sum(counts) == len(samples)
        assert counts[0] == 1  # the 0 lands below the first edge
        assert counts[-1] == 1  # 10**7 overflows the last edge

    def test_empty_input(self):
        counts = latency_histogram([])
        assert sum(counts) == 0
        assert len(counts) == len(LATENCY_BIN_EDGES) + 1


class TestSpec:
    def test_all_off_is_disabled(self):
        assert not TelemetrySpec().enabled
        assert TelemetrySpec(latency_hist=True).enabled
        assert TelemetrySpec.full().enabled

    def test_dict_round_trip(self):
        spec = TelemetrySpec(channel_flits=True, routing_decisions=True)
        again = TelemetrySpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert again == spec

    def test_to_dict_writes_only_armed_probes(self):
        assert TelemetrySpec(latency_hist=True).to_dict() == {
            "latency_hist": True
        }

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            TelemetrySpec.from_dict({"latency_hist": True, "bogus": True})


class TestResultMerge:
    def test_round_trip(self):
        r = TelemetryResult(
            cycles=100,
            latency_hist=(1, 2, 3),
            channel_flits=(10, 0),
            channel_load=(0.1, 0.0),
            route_packets=4,
            route_diverted=1,
            route_diverted_frac=0.25,
        )
        again = TelemetryResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert again.cycles == r.cycles
        assert tuple(again.latency_hist) == r.latency_hist
        assert tuple(again.channel_flits) == r.channel_flits

    def test_merge_sums_counters_and_maxes_queues(self):
        a = TelemetryResult(
            cycles=100, latency_hist=(1, 0), channel_flits=(10, 20),
            channel_load=(0.1, 0.2), max_queue=(3, 5),
            route_packets=10, route_diverted=2, route_diverted_frac=0.2,
        )
        b = TelemetryResult(
            cycles=100, latency_hist=(0, 4), channel_flits=(30, 0),
            channel_load=(0.3, 0.0), max_queue=(4, 1),
            route_packets=10, route_diverted=8, route_diverted_frac=0.8,
        )
        m = merge_telemetry([a, b])
        assert tuple(m.latency_hist) == (1, 4)
        assert tuple(m.channel_flits) == (40, 20)
        assert tuple(m.max_queue) == (4, 5)
        assert m.route_packets == 20 and m.route_diverted == 10
        assert m.route_diverted_frac == pytest.approx(0.5)

    def test_merge_of_nothing(self):
        assert merge_telemetry([]) is None
        assert merge_telemetry([None, None]) is None


class TestEngineProbes:
    def test_off_mode_is_bit_exact_and_probe_free(self, sf5, sf5_tables):
        traffic = UniformRandom(sf5.num_endpoints)
        plain = simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG)
        off = simulate(
            sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG,
            telemetry=TelemetrySpec(),
        )
        assert plain.telemetry is None and off.telemetry is None
        assert plain == off

    def test_probes_do_not_perturb_the_simulation(self, sf5, sf5_tables):
        """The zero-perturbation contract: arming every probe changes
        no simulation output — only the telemetry attachment."""
        traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)

        def run(tele):
            return simulate(
                sf5, UGALRouting(sf5_tables, "local", seed=3), traffic,
                0.3, CFG, telemetry=tele,
            )

        off, on = run(None), run(TelemetrySpec.full())
        assert off.telemetry is None
        tele = on.telemetry
        assert tele is not None
        for field in (
            "avg_latency", "p99_latency", "delivered", "injected",
            "accepted_load", "saturated",
        ):
            assert getattr(on, field) == getattr(off, field)
        # Probe payloads are self-consistent with the scalar results.
        assert sum(tele.latency_hist) == off.delivered
        assert sum(tele.channel_flits) > 0
        assert len(tele.channel_load) == len(tele.channel_flits)
        assert max(tele.max_queue) >= 1
        assert tele.route_packets > 0
        assert 0.0 < tele.route_diverted_frac < 1.0

    def test_flow_backend_emits_link_rates(self, sf5, sf5_tables):
        traffic = UniformRandom(sf5.num_endpoints)
        res = flow_simulate(
            sf5, MinimalRouting(sf5_tables), traffic, 0.4,
            telemetry=TelemetrySpec(channel_flits=True,
                                    routing_decisions=True),
        )
        tele = res.telemetry
        assert tele is not None
        assert len(tele.channel_load) > 0
        assert max(tele.channel_load) > 0.0
        assert tele.route_diverted_frac == 0.0  # MIN never diverts


class TestMetricsTable:
    def test_missing_sidecar_is_empty(self, tmp_path):
        t = MetricsTable.from_jsonl(tmp_path / "nope.metrics.jsonl")
        assert not t and len(t) == 0

    def test_sidecar_path_convention(self):
        p = metrics_sidecar("/x/rows.jsonl")
        assert p.name == "rows.jsonl.metrics.jsonl"

    def test_channel_loads_picks_highest_load_row(self, tmp_path):
        rows = [
            {"campaign": "c", "scenario": "h1", "label": "A", "row": 0,
             "rows": 2, "load": 0.2, "channel_load": [0.1]},
            {"campaign": "c", "scenario": "h1", "label": "A", "row": 1,
             "rows": 2, "load": 0.4, "channel_load": [0.9]},
            {"campaign": "c", "scenario": "h2", "label": "B", "row": 0,
             "rows": 1, "load": 0.3},  # no channel probe -> omitted
        ]
        path = tmp_path / "r.jsonl.metrics.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in rows) + "{torn",
            encoding="utf-8",
        )
        t = MetricsTable.from_jsonl(path)
        assert t.torn_lines == 1
        assert t.channel_loads() == {"A": [0.9]}
        assert t.labels() == ["A", "B"]

    def test_invalid_rows_quarantined(self, tmp_path):
        path = tmp_path / "r.jsonl.metrics.jsonl"
        path.write_text(
            json.dumps({"campaign": "c", "label": "A"}) + "\n",
            encoding="utf-8",
        )
        t = MetricsTable.from_jsonl(path)
        assert not t.rows and len(t.invalid) == 1


class TestHeatmapFigure:
    def test_heat_ramp_endpoints(self):
        assert heat_color(0.0) == "#f3f2ee"
        assert heat_color(1.0) == "#a01813"
        assert heat_color(-5) == heat_color(0.0)

    def test_svg_is_byte_deterministic(self):
        def make():
            return HeatmapFigure(
                title="t", xlabel="x", ylabel="y",
                rows=["a", "b"],
                values=[[0.0, 0.5, 1.0], [1.0, None, 0.25]],
                scale_label="flits/cycle",
            ).render_svg()

        svg = make()
        assert svg == make()
        assert svg.startswith("<svg") and "flits/cycle" in svg
