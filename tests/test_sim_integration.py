"""Cross-module integration: full simulations on DF and FT, pattern ×
protocol sweeps, and the paper's §V headline comparisons at small scale."""

import pytest

from repro.routing import (
    ANCARouting,
    DragonflyUGAL,
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
)
from repro.sim import SimConfig, simulate
from repro.traffic import (
    BitReversalPattern,
    DragonflyWorstCase,
    FatTreeWorstCase,
    ShufflePattern,
    SlimFlyWorstCase,
    UniformRandom,
)

CFG = SimConfig(warmup_cycles=120, measure_cycles=350, drain_cycles=1800, seed=9)


class TestDragonflySim:
    def test_df_ugal_delivers(self, df3):
        tables = RoutingTables(df3.adjacency)
        res = simulate(
            df3, DragonflyUGAL(df3, tables, seed=1), UniformRandom(342), 0.2, CFG
        )
        assert res.delivered == res.injected
        assert not res.saturated

    def test_df_worstcase_minimal_collapses(self, df3):
        tables = RoutingTables(df3.adjacency)
        wc = DragonflyWorstCase(df3)
        from repro.routing import DragonflyMinimal

        res = simulate(df3, DragonflyMinimal(df3, tables), wc, 0.3, CFG)
        # All group-i traffic shares one global cable: heavy saturation.
        assert res.saturated
        assert res.accepted_load < 0.2

    def test_df_worstcase_ugal_recovers(self, df3):
        tables = RoutingTables(df3.adjacency)
        wc = DragonflyWorstCase(df3)
        ugal = simulate(df3, DragonflyUGAL(df3, tables, seed=1), wc, 0.15, CFG)
        assert ugal.accepted_load >= 0.10


class TestFatTreeSim:
    def test_anca_uniform(self, ft4):
        res = simulate(ft4, ANCARouting(ft4, seed=0), UniformRandom(64), 0.3, CFG)
        assert res.delivered == res.injected
        assert not res.saturated

    def test_anca_worstcase_sustains_high_load(self, ft4):
        """Full-bisection FT keeps high worst-case bandwidth (§V-C)."""
        wc = FatTreeWorstCase(ft4)
        res = simulate(ft4, ANCARouting(ft4, seed=0), wc, 0.55, CFG)
        assert res.accepted_load >= 0.45


class TestHeadlineComparisons:
    """The §V claims, at reduced scale."""

    def test_sf_lower_latency_than_df_and_ft(self, sf5, sf5_tables, df3, ft4):
        load = 0.2
        sf_lat = simulate(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), load, CFG
        ).avg_latency
        df_tables = RoutingTables(df3.adjacency)
        df_lat = simulate(
            df3, DragonflyUGAL(df3, df_tables, seed=1), UniformRandom(342), load, CFG
        ).avg_latency
        ft_lat = simulate(
            ft4, ANCARouting(ft4, seed=1), UniformRandom(64), load, CFG
        ).avg_latency
        assert sf_lat < df_lat
        assert sf_lat < ft_lat

    def test_val_saturates_below_half(self, sf5, sf5_tables):
        res = simulate(
            sf5, ValiantRouting(sf5_tables, seed=2), UniformRandom(200), 0.55, CFG
        )
        assert res.saturated

    def test_min_nearly_full_uniform_bandwidth(self, sf5, sf5_tables):
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.7, CFG)
        assert not res.saturated

    def test_worstcase_min_collapse_and_ugal_recovery(self, sf5, sf5_tables):
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
        p = sf5.concentration
        min_res = simulate(sf5, MinimalRouting(sf5_tables), wc, 0.4, CFG)
        assert min_res.saturated
        assert min_res.accepted_load <= 1.5 / p  # ≈ 1/(2p) bound, slack 3x
        ugal_res = simulate(
            sf5, UGALRouting(sf5_tables, "local", seed=2), wc, 0.4, CFG
        )
        assert ugal_res.accepted_load >= 2 * min_res.accepted_load

    def test_ugal_g_latency_beats_ugal_l(self, sf5, sf5_tables):
        load = 0.5
        lat_l = simulate(
            sf5, UGALRouting(sf5_tables, "local", seed=3), UniformRandom(200), load, CFG
        ).avg_latency
        lat_g = simulate(
            sf5, UGALRouting(sf5_tables, "global", seed=3), UniformRandom(200), load, CFG
        ).avg_latency
        assert lat_g <= lat_l * 1.1  # G sees everything: no worse


class TestPermutationPatternsThroughSim:
    @pytest.mark.parametrize("pattern_cls", [ShufflePattern, BitReversalPattern])
    def test_bit_patterns_deliver(self, sf5, sf5_tables, pattern_cls):
        tr = pattern_cls(sf5.num_endpoints)  # 128 active of 200
        res = simulate(sf5, UGALRouting(sf5_tables, "local", seed=4), tr, 0.25, CFG)
        assert res.delivered == res.injected
        assert res.delivered > 0
