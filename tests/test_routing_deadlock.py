"""Tests for the deadlock-freedom machinery (§IV-D)."""

import pytest

from repro.routing import (
    MinimalRouting,
    RoutingTables,
    ValiantRouting,
    channel_dependency_graph,
    dfsssp_vc_count,
    gopal_vc_assignment_is_deadlock_free,
    is_acyclic,
)
from repro.routing.deadlock import paths_to_dependencies
from repro.topologies import RandomDLN


class TestCDG:
    def test_dependencies_from_path(self):
        deps = paths_to_dependencies([[0, 1, 2, 3]])
        assert ((0, 1), (1, 2)) in deps
        assert ((1, 2), (2, 3)) in deps
        assert len(deps) == 2

    def test_single_hop_no_dependency(self):
        assert paths_to_dependencies([[0, 1]]) == set()

    def test_cdg_structure(self):
        g = channel_dependency_graph([[0, 1, 2], [2, 1, 0]])
        assert g[(0, 1)] == {(1, 2)}
        assert g[(2, 1)] == {(1, 0)}

    def test_acyclic_detection(self):
        acyclic = {(0, 1): {(1, 2)}, (1, 2): {(2, 3)}}
        assert is_acyclic(acyclic)
        cyclic = {
            (0, 1): {(1, 2)},
            (1, 2): {(2, 0)},
            (2, 0): {(0, 1)},
        }
        assert not is_acyclic(cyclic)

    def test_ring_minimal_routing_has_cycle(self):
        """A unidirectional ring CDG is the canonical deadlock example."""
        n = 6
        paths = [[(i + j) % n for j in range(3)] for i in range(n)]
        g = channel_dependency_graph(paths)
        assert not is_acyclic(g)


class TestGopal:
    def test_sf_minimal_two_vcs(self, sf5_tables):
        paths = [
            sf5_tables.min_path(s, d)
            for s in range(50)
            for d in range(50)
            if s != d
        ]
        assert gopal_vc_assignment_is_deadlock_free(paths, num_vcs=2)

    def test_sf_adaptive_four_vcs(self, sf5_tables):
        val = ValiantRouting(sf5_tables, seed=0)
        paths = [val.plan(s, (s * 7 + 13) % 50, None) for s in range(50)]
        paths = [p for p in paths if len(p) > 1]
        assert gopal_vc_assignment_is_deadlock_free(paths, num_vcs=4)

    def test_one_vc_ring_deadlocks(self):
        n = 6
        paths = [[(i + j) % n for j in range(4)] for i in range(n)]
        assert not gopal_vc_assignment_is_deadlock_free(paths, num_vcs=1)
        # Enough VCs for the 3-hop paths: deadlock-free.
        assert gopal_vc_assignment_is_deadlock_free(paths, num_vcs=3)


class TestDFSSSP:
    def test_sf_needs_few_layers(self, sf5_tables):
        layers = dfsssp_vc_count(sf5_tables)
        assert layers <= 3  # paper: OFED DFSSSP used 3 on every SF

    def test_dln_needs_more_than_sf(self, sf5_tables):
        dln = RandomDLN.balanced(11, 60, seed=0)
        dln_tables = RoutingTables(dln.adjacency)
        sf_layers = dfsssp_vc_count(sf5_tables)
        dln_layers = dfsssp_vc_count(dln_tables)
        assert dln_layers >= sf_layers  # §IV-D shape: SF ≤ DLN

    def test_sources_subset(self, sf5_tables):
        layers = dfsssp_vc_count(sf5_tables, sources=list(range(10)))
        assert layers >= 1

    def test_max_vcs_guard(self, sf5_tables):
        with pytest.raises(RuntimeError):
            dfsssp_vc_count(sf5_tables, max_vcs=0)
