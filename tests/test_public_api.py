"""Tests for the top-level public API surface."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_slimfly_export(self):
        sf = repro.SlimFly.from_q(5)
        assert sf.num_routers == 50

    def test_mmsgraph_export(self):
        g = repro.MMSGraph(5)
        assert g.network_radix == 7

    def test_topology_export(self):
        assert repro.Topology.__name__ == "Topology"

    def test_moore_bound_export(self):
        assert repro.moore_bound(7, 2) == 50

    def test_galois_field_export(self):
        assert repro.GaloisField.get(5).q == 5

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestDocstringExample:
    def test_module_docstring_claims(self):
        """The numbers quoted in the package docstring must stay true."""
        sf = repro.SlimFly.from_q(5)
        assert (sf.num_routers, sf.network_radix, sf.concentration) == (50, 7, 4)
        assert sf.diameter() == 2


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "modname",
        [
            "repro.galois",
            "repro.core",
            "repro.topologies",
            "repro.analysis",
            "repro.routing",
            "repro.scenarios",
            "repro.sim",
            "repro.traffic",
            "repro.layout",
            "repro.costmodel",
            "repro.util",
            "repro.workloads",
        ],
    )
    def test_all_exports_resolve(self, modname):
        import importlib

        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"
