"""Scenario/campaign spec layer: round-trip, hashing, grids, validation."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    canonical_json,
    scenario_hash,
)
from repro.sim.config import SimConfig

CFG = SimConfig(warmup_cycles=20, measure_cycles=60, drain_cycles=200)


def open_scenario(**overrides) -> Scenario:
    kw = dict(
        topology=TopologySpec("SF", params={"q": 5}),
        routing=RoutingSpec("ugal-l", {"seed": 3}),
        sim=CFG,
        traffic=TrafficSpec("worstcase", seed=7),
        loads=[0.1, 0.3, 0.5],
        replicas=2,
        label="SF-UGAL-L",
    )
    kw.update(overrides)
    return Scenario(**kw)


def closed_scenario(**overrides) -> Scenario:
    kw = dict(
        topology=TopologySpec("DF", target_endpoints=300),
        routing=RoutingSpec("df-ugal-l", {"seed": 1}),
        sim=CFG,
        workload=WorkloadSpec("halo2d", ranks=16, size_flits=4, iterations=3),
        max_cycles=10_000,
        label="DF/halo2d",
    )
    kw.update(overrides)
    return Scenario(**kw)


class TestRoundTrip:
    @pytest.mark.parametrize("make", [open_scenario, closed_scenario])
    def test_dict_round_trip_is_lossless(self, make):
        s = make()
        assert Scenario.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("make", [open_scenario, closed_scenario])
    def test_json_round_trip_is_lossless(self, make):
        s = make()
        via_json = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert via_json == s
        assert scenario_hash(via_json) == scenario_hash(s)

    def test_sim_config_survives_round_trip(self):
        s = open_scenario(sim=SimConfig(buffer_per_port=32, num_vcs=4, seed=9))
        assert Scenario.from_dict(s.to_dict()).sim == s.sim

    def test_campaign_file_round_trip(self, tmp_path):
        campaign = Campaign("rt", [open_scenario(), closed_scenario()])
        path = campaign.save(tmp_path / "c.json")
        loaded = Campaign.load(path)
        assert loaded.name == "rt"
        assert loaded.scenarios == campaign.scenarios


class TestHashing:
    def test_hash_is_stable_across_processes(self):
        # Pinned literal: the serialized form (and therefore resume
        # identity of existing result files) must not drift silently.
        s = Scenario(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=SimConfig(),
            traffic=TrafficSpec("uniform"),
            loads=[0.5],
        )
        assert scenario_hash(s) == scenario_hash(Scenario.from_dict(s.to_dict()))
        assert scenario_hash(s) == "80269c90cd7f1773"

    def test_hash_depends_on_every_axis(self):
        base = open_scenario()
        variants = [
            open_scenario(loads=[0.1, 0.3]),
            open_scenario(replicas=1),
            open_scenario(label="renamed"),
            open_scenario(routing=RoutingSpec("min")),
            open_scenario(sim=SimConfig(buffer_per_port=32)),
            open_scenario(topology=TopologySpec("SF", params={"q": 7})),
        ]
        hashes = {scenario_hash(v) for v in variants}
        assert scenario_hash(base) not in hashes
        assert len(hashes) == len(variants)

    def test_equal_specs_hash_equal(self):
        assert scenario_hash(open_scenario()) == scenario_hash(open_scenario())

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestValidation:
    def test_needs_exactly_one_engine(self):
        with pytest.raises(ValueError, match="exactly one"):
            Scenario(
                topology=TopologySpec("SF", params={"q": 5}),
                routing=RoutingSpec("min"),
                sim=CFG,
            )
        with pytest.raises(ValueError, match="exactly one"):
            open_scenario(workload=WorkloadSpec("alltoall", ranks=4))

    def test_open_loop_needs_loads(self):
        with pytest.raises(ValueError, match="loads"):
            open_scenario(loads=[])

    def test_closed_loop_rejects_loads(self):
        with pytest.raises(ValueError, match="no loads"):
            closed_scenario(loads=[0.5])

    def test_unknown_registry_names_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            TopologySpec("MYSTERY", target_endpoints=100)
        with pytest.raises(ValueError, match="unknown routing"):
            RoutingSpec("teleport")
        with pytest.raises(ValueError, match="unknown pattern"):
            TrafficSpec("bursty")
        with pytest.raises(ValueError, match="unknown workload"):
            WorkloadSpec("mapreduce", ranks=8)
        with pytest.raises(ValueError, match="unknown placement"):
            WorkloadSpec("alltoall", ranks=8, placement="random")

    def test_topology_needs_target_or_shape_params(self):
        with pytest.raises(ValueError, match="needs target_endpoints"):
            TopologySpec("SF")
        # Non-shape params alone do not pin an instance either.
        with pytest.raises(ValueError, match="do not pin the shape"):
            TopologySpec("HC", params={"concentration": 2})
        TopologySpec("SF", params={"q": 5})  # shape param suffices
        # Unbuildable combinations fail at construction, not mid-campaign.
        with pytest.raises(ValueError, match="explicit q"):
            TopologySpec("SF", target_endpoints=722, params={"concentration": 3})

    def test_spec_params_dicts_are_not_aliased(self):
        shared: dict = {}
        RoutingSpec("val", shared)
        assert shared == {}, "seed fill must not leak into caller dicts"
        tp = {"q": 5}
        spec = TopologySpec("SF", params=tp)
        spec.params["concentration"] = 4
        assert tp == {"q": 5}

    def test_replicas_bounds(self):
        with pytest.raises(ValueError, match="replicas"):
            open_scenario(replicas=0)

    def test_engine_foreign_axes_rejected(self):
        with pytest.raises(ValueError, match="open-loop axis"):
            closed_scenario(replicas=3)
        with pytest.raises(ValueError, match="open-loop axis"):
            closed_scenario(stop_after_saturation=2)
        with pytest.raises(ValueError, match="closed-loop axis"):
            open_scenario(max_cycles=1000)

    def test_randomised_components_get_pinned_seeds(self):
        # An omitted seed on anything randomised would break the
        # resume byte-identity guarantee, so specs default-fill 0.
        assert RoutingSpec("val").params["seed"] == 0
        assert RoutingSpec("ugal-l").params["seed"] == 0
        assert "seed" not in RoutingSpec("min").params
        assert TrafficSpec("worstcase").seed == 0
        assert TrafficSpec("uniform").seed is None
        assert TopologySpec("DLN", target_endpoints=100).seed == 0
        assert RoutingSpec("val") == RoutingSpec("val", {"seed": 0})

    def test_deterministic_pattern_seed_normalised_away(self):
        # A seed on a pattern that never consumes one must not split
        # the hash space (it would defeat dedup/resume).
        assert TrafficSpec("uniform", seed=7) == TrafficSpec("uniform")
        a = open_scenario(traffic=TrafficSpec("shift", seed=3))
        b = open_scenario(traffic=TrafficSpec("shift"))
        assert scenario_hash(a) == scenario_hash(b)


class TestBackendAxis:
    """The engine-fidelity axis: back-compat serialization, validation."""

    def base(self, **overrides) -> Scenario:
        kw = dict(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=SimConfig(),
            traffic=TrafficSpec("uniform"),
            loads=[0.5],
        )
        kw.update(overrides)
        return Scenario(**kw)

    def test_default_backend_is_cycle_and_not_serialized(self):
        s = self.base()
        assert s.backend == "cycle"
        assert "backend" not in s.to_dict()

    def test_pre_backend_json_loads_and_hashes_identically(self):
        # A spec dict written before the backend axis existed (no
        # "backend" key) must load as a cycle scenario and keep its
        # pinned hash — the resume identity of existing result files.
        legacy = self.base().to_dict()
        assert "backend" not in legacy
        s = Scenario.from_dict(legacy)
        assert s.backend == "cycle"
        assert s == self.base()
        assert scenario_hash(s) == "80269c90cd7f1773"

    def test_flow_backend_round_trips_and_changes_hash(self):
        flow = self.base(backend="flow")
        assert flow.to_dict()["backend"] == "flow"
        assert Scenario.from_dict(flow.to_dict()) == flow
        assert scenario_hash(flow) != scenario_hash(self.base())
        # Pinned literal: the flow-spec serialized form must not
        # drift either, or flow result files would stop resuming.
        assert scenario_hash(flow) == "2a6a978c4eaae106"

    def test_cycle_vec_backend_round_trips_and_changes_hash(self):
        vec = self.base(backend="cycle-vec")
        assert vec.to_dict()["backend"] == "cycle-vec"
        assert Scenario.from_dict(vec.to_dict()) == vec
        assert scenario_hash(vec) != scenario_hash(self.base())
        assert scenario_hash(vec) != scenario_hash(self.base(backend="flow"))
        # Pinned literal: cycle-vec result files must keep resuming.
        assert scenario_hash(vec) == "54668d495c521c1a"

    def test_explicit_cycle_equals_default(self):
        assert scenario_hash(self.base(backend="cycle")) == scenario_hash(
            self.base()
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            self.base(backend="warp")

    def test_flow_backend_is_open_loop_only(self):
        with pytest.raises(
            ValueError,
            match=(
                r"backend 'flow' cannot run closed-loop workload scenarios; "
                r"closed-loop capable backends: \['cycle', 'cycle-vec'\]"
            ),
        ):
            closed_scenario(backend="flow")

    def test_backend_grid_axis(self):
        campaign = Campaign.from_grid(
            "fidelity",
            self.base(),
            {"backend": ["cycle", "flow"]},
            label=lambda s: s.backend,
        )
        assert [s.backend for s in campaign] == ["cycle", "flow"]
        assert len({scenario_hash(s) for s in campaign}) == 2

    def test_backend_grid_revalidates(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            Campaign.from_grid("bad", self.base(), {"backend": ["warp"]})


class TestTelemetryAxis:
    """The telemetry axis: omit-by-default serialization (pinned
    hashes must survive), round-trips, and validation."""

    def base(self, **overrides) -> Scenario:
        from repro.sim.telemetry import TelemetrySpec  # noqa: F401

        kw = dict(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=SimConfig(),
            traffic=TrafficSpec("uniform"),
            loads=[0.5],
        )
        kw.update(overrides)
        return Scenario(**kw)

    def test_default_is_off_and_not_serialized(self):
        s = self.base()
        assert s.telemetry is None
        assert "telemetry" not in s.to_dict()
        assert scenario_hash(s) == "80269c90cd7f1773"

    def test_all_off_spec_normalizes_to_none(self):
        from repro.sim.telemetry import TelemetrySpec

        s = self.base(telemetry=TelemetrySpec())
        assert s.telemetry is None
        assert s == self.base()
        assert scenario_hash(s) == scenario_hash(self.base())

    def test_armed_spec_round_trips_and_changes_hash(self):
        from repro.sim.telemetry import TelemetrySpec

        s = self.base(
            telemetry=TelemetrySpec(channel_flits=True,
                                    routing_decisions=True)
        )
        data = s.to_dict()
        assert data["telemetry"] == {
            "channel_flits": True, "routing_decisions": True
        }
        again = Scenario.from_dict(json.loads(json.dumps(data)))
        assert again == s
        assert scenario_hash(again) == scenario_hash(s)
        assert scenario_hash(s) != scenario_hash(self.base())

    def test_pre_telemetry_json_loads_and_hashes_identically(self):
        legacy = self.base().to_dict()
        assert "telemetry" not in legacy
        s = Scenario.from_dict(legacy)
        assert s.telemetry is None
        assert scenario_hash(s) == "80269c90cd7f1773"

    def test_backend_hashes_unchanged_by_telemetry_plane(self):
        # The other pinned identities must not drift either.
        assert scenario_hash(self.base(backend="flow")) == "2a6a978c4eaae106"
        assert scenario_hash(
            self.base(backend="cycle-vec")
        ) == "54668d495c521c1a"

    def test_closed_loop_rejects_telemetry(self):
        from repro.sim.telemetry import TelemetrySpec

        with pytest.raises(ValueError, match="open-loop axis"):
            closed_scenario(telemetry=TelemetrySpec.full())

    def test_telemetry_grid_axis(self):
        from repro.sim.telemetry import TelemetrySpec

        campaign = Campaign.from_grid(
            "probes",
            self.base(),
            {"telemetry": [None, TelemetrySpec(channel_flits=True)]},
            label=lambda s: "on" if s.telemetry else "off",
        )
        assert [s.label for s in campaign] == ["off", "on"]
        assert len({scenario_hash(s) for s in campaign}) == 2


class TestGrid:
    def test_product_expansion(self):
        campaign = Campaign.from_grid(
            "grid",
            open_scenario(),
            {
                "routing": [RoutingSpec("min"), RoutingSpec("val", {"seed": 0})],
                "sim.buffer_per_port": [16, 64, 256],
            },
        )
        assert len(campaign) == 6
        assert {s.routing.name for s in campaign} == {"min", "val"}
        assert {s.sim.buffer_per_port for s in campaign} == {16, 64, 256}

    def test_later_axes_vary_fastest(self):
        campaign = Campaign.from_grid(
            "order",
            open_scenario(),
            {"replicas": [1, 2], "sim.num_vcs": [3, 4]},
        )
        combos = [(s.replicas, s.sim.num_vcs) for s in campaign]
        assert combos == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_nested_dict_axis(self):
        campaign = Campaign.from_grid(
            "qsweep",
            open_scenario(),
            {"topology.params.q": [5, 7]},
            label=lambda s: f"q={s.topology.params['q']}",
        )
        assert [s.label for s in campaign] == ["q=5", "q=7"]

    def test_grid_deduplicates(self):
        campaign = Campaign.from_grid(
            "dupes", open_scenario(), {"sim.buffer_per_port": [64, 64, 16]}
        )
        assert len(campaign) == 2

    def test_unknown_axis_rejected(self):
        with pytest.raises(AttributeError, match="voltage"):
            Campaign.from_grid("bad", open_scenario(), {"sim.voltage": [1]})

    def test_sub_spec_overrides_revalidate_and_fill_seeds(self):
        base = open_scenario(routing=RoutingSpec("min"))
        campaign = Campaign.from_grid("names", base, {"routing.name": ["val"]})
        assert campaign.scenarios[0].routing.params["seed"] == 0
        with pytest.raises(ValueError, match="unknown routing"):
            Campaign.from_grid("bad", base, {"routing.name": ["bogus"]})

    def test_overrides_revalidate(self):
        with pytest.raises(ValueError, match="replicas"):
            Campaign.from_grid("bad", open_scenario(), {"replicas": [0]})

    def test_base_scenario_not_mutated(self):
        base = open_scenario()
        before = base.to_dict()
        Campaign.from_grid("pure", base, {"sim.buffer_per_port": [16, 256]})
        assert base.to_dict() == before

    def test_dedup_preserves_order(self):
        a, b = open_scenario(), open_scenario(label="other")
        campaign = Campaign("d", [a, b, a]).dedup()
        assert campaign.scenarios == [a, b]

    def test_num_rows(self):
        campaign = Campaign("n", [open_scenario(), closed_scenario()])
        assert campaign.num_rows == 3 + 1
