"""Tests for the multi-flit (virtual cut-through) simulator extension.

The paper restricts itself to single-flit packets (§V) "to prevent the
influence of flow control issues on the routing schemes"; this
extension adds the flow-control dimension back: L-flit packets need L
credits, hold channels for L cycles, and are timed at the tail flit.
"""

import pytest

from repro.routing import MinimalRouting, RoutingTables
from repro.sim import SimConfig, SimEngine, simulate
from repro.traffic import UniformRandom


def cfg(length, **kw):
    base = dict(
        packet_length=length,
        warmup_cycles=120,
        measure_cycles=300,
        drain_cycles=2500,
        seed=4,
    )
    base.update(kw)
    return SimConfig(**base)


class TestMultiFlit:
    def test_conservation(self, sf5, sf5_tables):
        res = simulate(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.3, cfg(4)
        )
        assert res.injected > 0
        assert res.delivered == res.injected

    def test_credits_restored(self, sf5, sf5_tables):
        engine = SimEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.2, cfg(4)
        )
        engine.run()
        for _ in range(8):
            engine._phase_arrivals()
            engine.now += 1
        cap = engine.config.buffer_per_vc
        assert (engine.net.credits == cap).all()

    def test_serialization_raises_latency(self, sf5, sf5_tables):
        """Tail-flit latency grows with packet length at fixed flit load."""
        lat = {}
        for length in (1, 4):
            res = simulate(
                sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.2,
                cfg(length),
            )
            lat[length] = res.avg_latency
        # Each hop serialises L−1 extra cycles over ≥2 hops on average.
        assert lat[4] >= lat[1] + 3

    def test_flit_throughput_tracks_offered(self, sf5, sf5_tables):
        """Accepted load is measured in flits and stays ≈ offered."""
        res = simulate(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.3, cfg(4)
        )
        assert res.accepted_load == pytest.approx(0.3, abs=0.06)
        assert not res.saturated

    def test_packet_needs_whole_buffer_share(self, sf5, sf5_tables):
        """Packets longer than a VC's buffer share can never advance;
        the config must be rejected by construction instead of hanging.
        (buffer 64 / 3 VCs = 21 flits/VC > 8-flit packets: fine; a
        4-flit/VC split with 8-flit packets would stall.)"""
        c = cfg(8)
        assert c.buffer_per_vc >= c.packet_length

    def test_saturation_earlier_with_long_packets(self, sf5, sf5_tables):
        """Same flit load, longer packets: more burstiness and coarser
        credit granularity saturate the network no later than L=1."""
        sat = {}
        for length in (1, 8):
            res = simulate(
                sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.85,
                cfg(length),
            )
            sat[length] = res.accepted_load
        assert sat[8] <= sat[1] + 0.03
