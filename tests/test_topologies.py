"""Structural tests for every topology class and the registry."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.topologies import (
    Dragonfly,
    FatTree3,
    FlattenedButterfly,
    Hypercube,
    LongHopHypercube,
    RandomDLN,
    SlimFly,
    Topology,
    Torus,
    balanced_instance,
)
from repro.topologies.registry import TOPOLOGY_BUILDERS, TOPOLOGY_ORDER


class TestBaseInterface:
    def test_structure_validation_rejects_asymmetry(self):
        with pytest.raises(ValueError):
            Topology("bad", [[1], []], [0])

    def test_structure_validation_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology("bad", [[0]], [0])

    def test_structure_validation_rejects_bad_endpoint(self):
        with pytest.raises(ValueError):
            Topology("bad", [[1], [0]], [5])

    def test_uniform_endpoint_map(self):
        m = Topology.uniform_endpoint_map(3, 2)
        assert m == [0, 0, 1, 1, 2, 2]

    def test_derived_quantities(self, sf5):
        assert sf5.num_routers == 50
        assert sf5.network_radix == 7
        assert sf5.concentration == 4
        assert sf5.router_radix == 11
        assert sf5.num_endpoints == 200
        assert sf5.num_links == 175

    def test_endpoints_of_router(self, sf5):
        inv = sf5.endpoints_of_router
        assert all(len(eps) == 4 for eps in inv)
        for r, eps in enumerate(inv):
            for e in eps:
                assert sf5.endpoint_map[e] == r

    def test_port_of_neighbor(self, sf5):
        v = sf5.adjacency[0][3]
        assert sf5.port_of_neighbor(0, v) == 3


class TestSlimFly:
    def test_paper_config(self):
        sf = SlimFly.from_q(19)
        assert (sf.num_routers, sf.network_radix, sf.concentration) == (722, 29, 15)
        assert sf.num_endpoints == 10830
        assert sf.router_radix == 44

    def test_oversubscription_flag(self):
        assert not SlimFly.from_q(5).is_oversubscribed()
        assert SlimFly.from_q(5, concentration=5).is_oversubscribed()

    def test_for_endpoints(self):
        sf = SlimFly.for_endpoints(200)
        assert sf.q == 5

    def test_router_group(self, sf5):
        s, col = sf5.router_group(0)
        assert (s, col) == (0, 0)
        s, col = sf5.router_group(25 + 5)
        assert s == (25 + 5) // 25 and col == ((25 + 5) % 25) // 5

    def test_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            SlimFly.from_q(5, concentration=0)


class TestTorus:
    def test_3d_structure(self):
        t = Torus((4, 4, 4))
        assert t.num_routers == 64
        assert t.network_radix == 6
        assert t.diameter() == 6

    def test_dimension_of_size_two(self):
        t = Torus((2, 4))
        assert t.network_radix == 3  # 1 + 2

    def test_rejects_size_one(self):
        with pytest.raises(ValueError):
            Torus((1, 4))

    def test_cube_search(self):
        t = Torus.cube(3, 512)
        assert t.num_routers == 512
        assert t.dims == (8, 8, 8)

    def test_analytics_match_measurement(self):
        for dims in ((4, 4), (5, 3), (4, 3, 3)):
            t = Torus(dims)
            assert t.diameter() == t.analytic_diameter()
            assert t.average_distance() == pytest.approx(
                t.analytic_average_distance(), rel=1e-9
            )


class TestHypercube:
    def test_structure(self):
        h = Hypercube(5)
        assert h.num_routers == 32
        assert h.network_radix == 5
        assert h.diameter() == 5

    def test_analytic_average(self):
        h = Hypercube(6)
        assert h.average_distance() == pytest.approx(h.analytic_average_distance())

    def test_neighbors_differ_one_bit(self):
        h = Hypercube(4)
        for v, nbrs in enumerate(h.adjacency):
            for u in nbrs:
                assert bin(u ^ v).count("1") == 1


class TestFatTree:
    def test_paper_scaling(self):
        """§V: p=22 gives Nr=1452, N=10648, k=44."""
        ft = FatTree3(22)
        assert ft.num_routers == 1452
        assert ft.num_endpoints == 10648
        assert ft.router_radix == 44

    def test_levels(self, ft4):
        p = ft4.p
        counts = {0: 0, 1: 0, 2: 0}
        for r in range(ft4.num_routers):
            counts[ft4.level(r)] += 1
        assert counts == {0: p * p, 1: p * p, 2: p * p}

    def test_diameter_four(self, ft4):
        assert ft4.diameter() == 4

    def test_up_down_neighbors(self, ft4):
        p = ft4.p
        edge = 0
        ups = ft4.up_neighbors(edge)
        assert len(ups) == p
        assert all(ft4.level(u) == 1 for u in ups)
        core = ft4.num_routers - 1
        assert ft4.up_neighbors(core) == []
        assert len(ft4.down_neighbors(core)) == p

    def test_endpoints_only_on_edges(self, ft4):
        for e, r in enumerate(ft4.endpoint_map):
            assert ft4.level(r) == 0

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            FatTree3(1)


class TestFlattenedButterfly:
    def test_structure(self):
        f = FlattenedButterfly(3, 4)
        assert f.num_routers == 64
        assert f.network_radix == 9
        assert f.concentration == 4
        assert f.diameter() == 3

    def test_2level(self):
        f = FlattenedButterfly(2, 5)
        assert f.num_routers == 25
        assert f.diameter() == 2

    def test_paper_p_formula(self):
        # p = ⌊(k+3)/4⌋ with k = 4c − 3 gives p = c.
        f = FlattenedButterfly(3, 6)
        assert f.concentration == (f.router_radix + 3) // 4


class TestDragonfly:
    def test_balanced_paper_config(self):
        df = Dragonfly.balanced(7)
        assert df.num_routers == 1386
        assert df.num_endpoints == 9702
        assert df.router_radix == 27
        assert df.diameter() == 3

    def test_group_structure(self, df3):
        a, g = df3.a, df3.g
        assert df3.num_routers == a * g
        for grp in range(g):
            routers = list(df3.routers_of_group(grp))
            for u in routers:
                local = [v for v in df3.adjacency[u] if df3.group_of(v) == grp]
                assert len(local) == a - 1  # complete local graph

    def test_one_global_cable_per_group_pair(self, df3):
        pairs = set()
        for u, v in df3.edges():
            gu, gv = df3.group_of(u), df3.group_of(v)
            if gu != gv:
                key = (min(gu, gv), max(gu, gv))
                assert key not in pairs, "duplicate global cable"
                pairs.add(key)
        g = df3.g
        assert len(pairs) == g * (g - 1) // 2

    def test_gateway_router(self, df3):
        for src in range(3):
            for dst in range(3):
                if src == dst:
                    continue
                gw = df3.gateway_router(src, dst)
                assert df3.group_of(gw) == src
                assert any(df3.group_of(v) == dst for v in df3.adjacency[gw])

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            Dragonfly(a=2, p=1, h=1, num_groups=10)


class TestRandomDLN:
    def test_degree_uniform(self):
        dln = RandomDLN(100, 5, 2, seed=3)
        degrees = {len(n) for n in dln.adjacency}
        assert degrees == {7}

    def test_deterministic_with_seed(self):
        a = RandomDLN(60, 4, 2, seed=11)
        b = RandomDLN(60, 4, 2, seed=11)
        assert a.adjacency == b.adjacency

    def test_different_seeds_differ(self):
        a = RandomDLN(60, 4, 2, seed=1)
        b = RandomDLN(60, 4, 2, seed=2)
        assert a.adjacency != b.adjacency

    def test_balanced_concentration(self):
        dln = RandomDLN.balanced(25, 80, seed=0)
        assert dln.concentration == 5  # ⌊√25⌋
        assert dln.router_radix == 25

    def test_low_diameter(self):
        dln = RandomDLN.balanced(20, 200, seed=0)
        assert dln.diameter() <= 5

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            RandomDLN(10, 9, 1)


class TestLongHop:
    def test_structure(self):
        lh = LongHopHypercube(8)
        assert lh.num_routers == 256
        assert lh.network_radix == 8 + lh.extra_ports

    def test_diameter_band(self):
        # Paper band 4-6 for 2^8..2^13; ours measured 4-7 (DESIGN.md §6).
        assert LongHopHypercube(8).diameter() == 4
        assert LongHopHypercube(10).diameter() == 5

    def test_masks_cover_bits_twice(self):
        lh = LongHopHypercube(10)
        coverage = [0] * 10
        for mask in lh.masks:
            for b in range(10):
                if mask & (1 << b):
                    coverage[b] += 1
        assert min(coverage) >= 2

    def test_bisection_above_plain_hypercube(self):
        lh = LongHopHypercube(7)
        bb = lh.bisection_bandwidth(link_bandwidth_gbps=1.0, seed=0)
        assert bb >= 1.4 * (lh.num_routers // 2)  # ≥ ~3N/2 target band


class TestRegistry:
    @pytest.mark.parametrize("name", TOPOLOGY_ORDER)
    def test_balanced_instance_builds(self, name):
        topo = balanced_instance(name, 256, seed=0)
        assert topo.num_endpoints > 0
        assert topo.num_routers > 1

    def test_all_builders_registered(self):
        assert set(TOPOLOGY_ORDER) == set(TOPOLOGY_BUILDERS)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            balanced_instance("NOPE", 100)

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(["SF", "DF", "FT-3", "FBF-3", "HC"]),
        st.integers(64, 2000),
    )
    def test_size_tracking(self, name, target):
        topo = balanced_instance(name, target, seed=0)
        # Balanced families are coarse; stay within a factor ~4 band.
        assert topo.num_endpoints >= target / 4
        assert topo.num_endpoints <= target * 4
