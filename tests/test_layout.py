"""Tests for rack partitioning and placement geometry (§VI-A)."""

import pytest

from repro.layout import (
    RackGrid,
    average_manhattan,
    block_racks,
    group_racks,
    near_square_dims,
    racks_for,
    slimfly_racks,
)
from repro.layout.placement import GLOBAL_CABLE_OVERHEAD_M, INTRA_RACK_LENGTH_M
from repro.layout.racks import fattree_racks
from repro.topologies import Dragonfly, FatTree3, FlattenedButterfly, Hypercube, SlimFly


class TestPlacement:
    def test_near_square(self):
        assert near_square_dims(9) == (3, 3, 0)
        assert near_square_dims(10) == (3, 3, 1)
        assert near_square_dims(19) == (4, 4, 3)
        with pytest.raises(ValueError):
            near_square_dims(0)

    def test_grid_distances(self):
        grid = RackGrid(9)
        assert grid.distance(0, 0) == 0.0
        # racks 0 and 8 sit at opposite corners of a 3x3 square.
        assert grid.distance(0, 8) == pytest.approx(4.0)

    def test_cable_lengths(self):
        grid = RackGrid(4)
        assert grid.cable_length(1, 1) == INTRA_RACK_LENGTH_M
        assert grid.cable_length(0, 1) == pytest.approx(1.0 + GLOBAL_CABLE_OVERHEAD_M)

    def test_average_manhattan_matches_grid(self):
        # The closed form is a with-replacement approximation: it
        # converges to the distinct-pair grid mean as racks grow.
        for n, rel in ((16, 0.25), (64, 0.12), (400, 0.05)):
            grid = RackGrid(n)
            assert average_manhattan(n) == pytest.approx(
                grid.all_pair_mean_distance(), rel=rel
            )


class TestSlimFlyRacks:
    def test_q_racks_of_2q_routers(self, sf5):
        racks = slimfly_racks(sf5)
        assert racks.num_racks == 5
        counts = [racks.rack_of.count(r) for r in range(5)]
        assert counts == [10] * 5  # 2q routers per rack

    def test_pairs_one_subgroup_from_each_side(self, sf5):
        racks = slimfly_racks(sf5)
        q = sf5.q
        for rack in range(q):
            members = [r for r in range(sf5.num_routers) if racks.rack_of[r] == rack]
            sides = [sf5.router_group(r)[0] for r in members]
            assert sides.count(0) == q and sides.count(1) == q

    def test_full_rack_connectivity_2q_cables(self, sf5):
        """§VI-A: every rack pair is joined by exactly 2q cables."""
        racks = slimfly_racks(sf5)
        q = sf5.q
        between: dict[tuple[int, int], int] = {}
        for u, v in sf5.edges():
            ru, rv = racks.rack_of[u], racks.rack_of[v]
            if ru != rv:
                key = (min(ru, rv), max(ru, rv))
                between[key] = between.get(key, 0) + 1
        assert len(between) == q * (q - 1) // 2  # complete rack graph
        assert set(between.values()) == {2 * q}

    def test_census(self, sf5):
        racks = slimfly_racks(sf5)
        electric, fiber, mean_len = racks.cable_census(sf5)
        assert electric + fiber == sf5.num_links
        assert fiber == 2 * 5 * (5 * 4 // 2)  # 2q per pair × C(q,2)
        assert mean_len > GLOBAL_CABLE_OVERHEAD_M


class TestOtherRacks:
    def test_group_racks(self, df3):
        racks = group_racks(df3, df3.a)
        assert racks.num_racks == df3.g
        # Intra-group (electric) cables = complete graph per rack.
        electric, fiber, _ = racks.cable_census(df3)
        assert electric == df3.g * df3.a * (df3.a - 1) // 2
        assert fiber == df3.g * (df3.g - 1) // 2

    def test_fattree_racks(self, ft4):
        racks = fattree_racks(ft4)
        assert racks.num_racks == 2 * ft4.p
        for r in range(ft4.num_routers):
            pod = ft4.pod(r)
            if pod is not None:
                assert racks.rack_of[r] == pod
            else:
                assert racks.rack_of[r] >= ft4.p

    def test_block_racks(self):
        hc = Hypercube(6)
        racks = block_racks(hc, routers_per_rack=16)
        assert racks.num_racks == 4

    def test_dispatch(self, sf5, df3, ft4):
        assert racks_for(sf5).num_racks == sf5.q
        assert racks_for(df3).num_racks == df3.g
        assert racks_for(ft4).num_racks == 2 * ft4.p
        fbf = FlattenedButterfly(3, 3)
        assert racks_for(fbf).num_racks == 9
        assert racks_for(Hypercube(6)).num_racks == 2
