"""Tests for the MMS graph construction — the heart of the paper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distance import diameter_and_average_distance
from repro.core.mms import MMSGraph, MMSParams, mms_delta, mms_q_values, valid_mms_q

#: One q per delta class, prime and prime power each.
REPRESENTATIVE_Q = [3, 4, 5, 7, 8, 9, 13]


class TestParameters:
    def test_delta_classes(self):
        assert mms_delta(5) == 1
        assert mms_delta(4) == 0
        assert mms_delta(7) == -1
        assert mms_delta(2) is None  # q ≡ 2 (mod 4)

    def test_valid_q_list(self):
        assert mms_q_values(30) == [3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29]

    def test_invalid_q_rejected(self):
        for q in (2, 6, 10, 12, 15, 21):
            assert not valid_mms_q(q)
            with pytest.raises(ValueError):
                MMSParams.from_q(q)

    def test_paper_configuration_q19(self):
        """§V: the 10,830-endpoint network has Nr=722, k'=29."""
        p = MMSParams.from_q(19)
        assert p.num_routers == 722
        assert p.network_radix == 29
        assert p.delta == -1

    def test_radix_formula(self):
        for q in REPRESENTATIVE_Q:
            p = MMSParams.from_q(q)
            assert p.network_radix == (3 * q - p.delta) // 2
            assert p.num_routers == 2 * q * q


@pytest.fixture(scope="module", params=REPRESENTATIVE_Q)
def mms(request):
    return MMSGraph(request.param)


class TestStructure:
    def test_regular(self, mms):
        k = mms.network_radix
        assert all(len(nbrs) == k for nbrs in mms.adjacency)

    def test_symmetric_no_loops(self, mms):
        for u, nbrs in enumerate(mms.adjacency):
            assert u not in nbrs
            assert len(set(nbrs)) == len(nbrs)
            for v in nbrs:
                assert u in mms.adjacency[v]

    def test_diameter_two(self, mms):
        d, avg = diameter_and_average_distance(mms.adjacency)
        assert d == 2
        assert 1.0 < avg < 2.0

    def test_vertex_count(self, mms):
        assert len(mms.adjacency) == 2 * mms.q * mms.q

    def test_generator_sets_partition_like(self, mms):
        union = mms.X | mms.Xp
        assert len(union) >= mms.q - 1
        assert 0 not in union

    def test_generator_sets_symmetric(self, mms):
        f = mms.field
        for s in mms.X:
            assert f.neg(s) in mms.X
        for s in mms.Xp:
            assert f.neg(s) in mms.Xp

    def test_full_validation(self, mms):
        mms.validate()  # should not raise

    def test_label_roundtrip(self, mms):
        q = mms.q
        for v in range(0, 2 * q * q, max(1, q)):
            s, a, b = mms.vertex_label(v)
            assert mms.vertex_id(s, a, b) == v
            assert 0 <= s <= 1 and 0 <= a < q and 0 <= b < q


class TestEquations:
    """Edges follow Eq. (1)-(3) exactly."""

    def test_eq1_subgraph0(self, mms):
        f, q = mms.field, mms.q
        for x in range(min(q, 3)):
            for y in range(q):
                u = mms.vertex_id(0, x, y)
                for v in mms.adjacency[u]:
                    s, x2, y2 = mms.vertex_label(v)
                    if s == 0:
                        assert x2 == x, "subgraph-0 edges stay within a column"
                        assert f.sub(y, y2) in mms.X

    def test_eq2_subgraph1(self, mms):
        f, q = mms.field, mms.q
        for m in range(min(q, 3)):
            for c in range(q):
                u = mms.vertex_id(1, m, c)
                for v in mms.adjacency[u]:
                    s, m2, c2 = mms.vertex_label(v)
                    if s == 1:
                        assert m2 == m
                        assert f.sub(c, c2) in mms.Xp

    def test_eq3_cross(self, mms):
        f, q = mms.field, mms.q
        for x in range(min(q, 3)):
            for y in range(q):
                u = mms.vertex_id(0, x, y)
                cross = [v for v in mms.adjacency[u] if mms.vertex_label(v)[0] == 1]
                assert len(cross) == q  # one per m
                for v in cross:
                    _, m, c = mms.vertex_label(v)
                    assert y == f.add(f.mul(m, x), c)


class TestHoffmanSingleton:
    """q=5 yields the Hoffman–Singleton graph: the unique (7,5)-Moore graph."""

    def test_is_moore_graph(self):
        g = MMSGraph(5)
        assert g.num_routers == 50
        assert g.network_radix == 7
        d, _ = diameter_and_average_distance(g.adjacency)
        assert d == 2
        # Moore graph: girth 5 -> no common neighbour for adjacent pairs,
        # exactly one for non-adjacent pairs.
        adj_sets = [set(nbrs) for nbrs in g.adjacency]
        for u in range(50):
            for v in range(u + 1, 50):
                common = len(adj_sets[u] & adj_sets[v])
                if v in adj_sets[u]:
                    assert common == 0
                else:
                    assert common == 1

    def test_num_edges(self):
        g = MMSGraph(5)
        assert len(g.edges()) == 175


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(mms_q_values(17)))
def test_property_every_valid_q_builds_diameter2(q):
    g = MMSGraph(q)
    d, _ = diameter_and_average_distance(g.adjacency)
    assert d == 2
    assert all(len(n) == g.network_radix for n in g.adjacency)


def test_networkx_export():
    g = MMSGraph(5)
    nxg = g.to_networkx()
    assert nxg.number_of_nodes() == 50
    assert nxg.number_of_edges() == 175
    assert nxg.nodes[0]["subgraph"] == 0
