"""Differential fault suite: degraded runs across backends, workers, store.

The fault axis is only trustworthy if a degraded instance is *the same
experiment* no matter how it executes.  This suite pins that from four
directions: the batched cycle-vec engine is bit-exact against the
reference cycle engine on degraded topologies, the flow model stays
within one load-grid step of cycle saturation on a faulted instance,
campaign files are byte-identical across worker counts and through
kill/resume, and the content-addressed store round-trips faulted rows
without ever serving them for the healthy spec (or vice versa).
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    Campaign,
    FaultSpec,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    run_campaign,
    scenario_hash,
)
from repro.service.store import MemoryResultStore
from repro.sim.config import SimConfig
from repro.sim.parallel import simulations_started

SF5 = TopologySpec("SF", params={"q": 5})
CFG = SimConfig(warmup_cycles=60, measure_cycles=120, drain_cycles=400)
FAULT = FaultSpec(link_fraction=0.08, seed=1)


def faulted_scenario(routing="min", backend="cycle", loads=(0.2, 0.5),
                     fault=FAULT, label=None) -> Scenario:
    params = {} if routing == "min" else {"seed": 1}
    return Scenario(
        topology=SF5,
        routing=RoutingSpec(routing, params),
        sim=CFG,
        traffic=TrafficSpec("uniform"),
        loads=list(loads),
        label=label or routing,
        backend=backend,
        fault=fault,
    )


def fault_campaign(backend="cycle") -> Campaign:
    """A mini degradation grid: healthy + faulted + disconnected."""
    scenarios = []
    for frac in (0.0, 0.08):
        fault = FaultSpec(link_fraction=frac, seed=1) if frac else None
        for name in ("min", "val"):
            scenarios.append(
                faulted_scenario(name, backend=backend, fault=fault,
                                 label=f"{name}/f={frac:g}")
            )
    scenarios.append(
        faulted_scenario("min", backend=backend,
                         fault=FaultSpec(cut_routers=[0]), label="severed")
    )
    return Campaign("fault-mini", scenarios)


def measurements(rows):
    return [(r["load"], r["latency"], r["accepted"], r["saturated"])
            for r in rows]


class TestCycleVecBitExact:
    @pytest.mark.parametrize("routing", ["min", "val", "ugal-l", "ugal-g"])
    def test_degraded_runs_are_bit_exact(self, routing):
        """cycle and cycle-vec agree flit-for-flit on a faulted SF."""
        ref = run_campaign(
            Campaign("ref", [faulted_scenario(routing)]))
        vec = run_campaign(
            Campaign("vec", [faulted_scenario(routing, backend="cycle-vec")]))
        assert measurements(ref.rows) == measurements(vec.rows)
        # Sanity: the fault actually did something — both backends
        # tagged their rows with the fraction.
        assert all(r["fault_fraction"] == FAULT.link_fraction
                   for r in ref.rows + vec.rows)


class TestFlowCycleTolerance:
    def test_faulted_saturation_within_one_grid_step(self):
        """Flow saturation tracks cycle saturation on the degraded SF.

        Same contract as tests/test_cross_fidelity.py, exercised
        through the scenario layer so both engines consume the
        identical resolver-built DegradedTopology.
        """
        loads = [round(0.1 * i, 4) for i in range(1, 11)]
        cfg = SimConfig(warmup_cycles=150, measure_cycles=350,
                        drain_cycles=1200)

        def saturation(backend):
            s = faulted_scenario("min", backend=backend, loads=loads)
            s.sim = cfg
            s.revalidate()
            rows = run_campaign(Campaign(f"xfid-{backend}", [s])).rows
            return next(
                (r["load"] for r in rows if r["saturated"]), None)

        flow_sat = saturation("flow")
        cycle_sat = saturation("cycle")
        assert flow_sat is not None and cycle_sat is not None
        assert abs(flow_sat - cycle_sat) <= 0.1 + 1e-9


class TestWorkerByteIdentity:
    def test_fault_campaign_rows_identical_across_workers(self, tmp_path):
        run_campaign(fault_campaign(), workers=1, out=tmp_path / "w1.jsonl")
        run_campaign(fault_campaign(), workers=2, out=tmp_path / "w2.jsonl")
        assert (tmp_path / "w1.jsonl").read_bytes() == (
            tmp_path / "w2.jsonl").read_bytes()

    def test_vec_backend_campaign_identical_across_workers(self, tmp_path):
        run_campaign(fault_campaign("cycle-vec"), workers=1,
                     out=tmp_path / "w1.jsonl")
        run_campaign(fault_campaign("cycle-vec"), workers=2,
                     out=tmp_path / "w2.jsonl")
        assert (tmp_path / "w1.jsonl").read_bytes() == (
            tmp_path / "w2.jsonl").read_bytes()


class TestResume:
    def test_complete_fault_file_resumes_without_simulating(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = fault_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()
        before = simulations_started()
        report = run_campaign(campaign, out=out, resume=True)
        assert simulations_started() == before
        assert report.simulated == 0 and report.skipped == 5
        assert out.read_bytes() == clean

    def test_killed_fault_campaign_resumes_byte_identical(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = fault_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()
        # Kill after the healthy prefix: the faulted scenarios (and the
        # disconnected one's structured rows) are resimulated and must
        # land byte-for-byte where they were.
        lines = clean.decode().splitlines(keepends=True)
        out.write_bytes("".join(lines[:4]).encode())
        report = run_campaign(campaign, out=out, resume=True)
        assert report.simulated == 3 and report.skipped == 2
        assert out.read_bytes() == clean


class TestStore:
    def test_faulted_rows_round_trip_through_store(self, tmp_path):
        store = MemoryResultStore()
        campaign = fault_campaign()
        first = run_campaign(campaign, out=tmp_path / "a.jsonl", store=store)
        assert first.store_hits == 0
        second = run_campaign(campaign, out=tmp_path / "b.jsonl", store=store)
        assert second.simulated == 0
        assert second.store_hits == 5
        assert (tmp_path / "a.jsonl").read_bytes() == (
            tmp_path / "b.jsonl").read_bytes()

    def test_store_entries_validate_with_fault_axis(self):
        store = MemoryResultStore()
        s = faulted_scenario("min")
        run_campaign(Campaign("one", [s]), store=store)
        entry = store.get(scenario_hash(s))
        assert entry is not None
        entry.validate()  # re-hashes the embedded spec, fault included
        assert entry.rows[0]["spec"]["fault"]["link_fraction"] == 0.08

    def test_fault_and_healthy_never_share_a_store_key(self):
        """A faulted run must not replay for the healthy spec."""
        store = MemoryResultStore()
        faulted = faulted_scenario("min")
        healthy = faulted_scenario("min", fault=None)
        assert scenario_hash(faulted) != scenario_hash(healthy)
        run_campaign(Campaign("one", [faulted]), store=store)
        assert scenario_hash(healthy) not in store
        report = run_campaign(Campaign("two", [healthy]), store=store)
        assert report.store_hits == 0 and report.simulated == 1
        # And now both coexist, each under its own digest.
        assert scenario_hash(healthy) in store
        assert scenario_hash(faulted) in store
