"""The flat engine's determinism contract (DESIGN.md).

The flat struct-of-arrays engine must reproduce the frozen seed
implementation (:mod:`repro.sim.reference`) *bit for bit* for any
seed: same RNG draw order, same switch-allocation tie-breaks, same
event orderings.  These tests run both engines over a matrix of
routing algorithms, traffic patterns, loads and packet lengths and
require identical :class:`~repro.sim.stats.SimResult` rows — the
"latency_vs_load results identical before/after the refactor"
acceptance criterion, kept alive as a regression gate.

Also here: the memory-flatness guarantee.  The seed engine tracked
channel/ejection occupancy in unbounded dicts that grew for the whole
run; the flat engine preallocates fixed-size arrays.
"""

import pytest

from repro.routing import MinimalRouting, UGALRouting, ValiantRouting
from repro.sim import SimConfig, SimEngine, latency_vs_load, simulate
from repro.sim.reference import ReferenceEngine, reference_simulate
from repro.traffic import ShiftPattern, ShufflePattern, SlimFlyWorstCase, UniformRandom

CFG = SimConfig(warmup_cycles=120, measure_cycles=300, drain_cycles=1500, seed=11)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("load", [0.05, 0.3, 0.6, 0.9])
    def test_min_uniform(self, sf5, sf5_tables, load):
        traffic = UniformRandom(sf5.num_endpoints)
        ref = reference_simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        assert ref == flat

    def test_min_uniform_sweep_rows(self, sf5, sf5_tables):
        """Whole latency_vs_load curves agree point by point."""
        traffic = UniformRandom(sf5.num_endpoints)
        loads = [0.1, 0.4, 0.7, 0.85]
        flat_points = latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), traffic, loads=loads, config=CFG
        )
        ref_results = [
            reference_simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
            for load in loads
        ]
        for pt, ref in zip(flat_points, ref_results):
            if not pt.saturated or pt.latency is not None:
                assert pt.latency == ref.avg_latency
                assert pt.accepted == ref.accepted_load
            assert pt.saturated == ref.saturated

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: ValiantRouting(t, seed=3),
            lambda t: UGALRouting(t, "local", seed=3),
            lambda t: UGALRouting(t, "global", seed=3),
        ],
        ids=["VAL", "UGAL-L", "UGAL-G"],
    )
    def test_stochastic_routings(self, sf5, sf5_tables, make_routing):
        traffic = UniformRandom(sf5.num_endpoints)
        ref = reference_simulate(sf5, make_routing(sf5_tables), traffic, 0.4, CFG)
        flat = simulate(sf5, make_routing(sf5_tables), traffic, 0.4, CFG)
        assert ref == flat

    def test_worst_case_pattern(self, sf5, sf5_tables):
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
        ref = reference_simulate(sf5, MinimalRouting(sf5_tables), wc, 0.3, CFG)
        flat = simulate(sf5, MinimalRouting(sf5_tables), wc, 0.3, CFG)
        assert ref == flat

    @pytest.mark.parametrize("make_pattern", [
        lambda n: ShufflePattern(n),
        lambda n: ShiftPattern(n),
    ], ids=["shuffle", "shift"])
    def test_vectorised_fixed_patterns(self, sf5, sf5_tables, make_pattern):
        """The batched (ndarray) destinations of bit/shift patterns
        feed the flat engine's fast path; results must still match the
        reference engine's scalar per-source draws — including RNG
        stream alignment for the coin-flipping shift pattern."""
        pat = make_pattern(sf5.num_endpoints)
        ref = reference_simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        flat = simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        assert ref == flat

    @pytest.mark.parametrize("length", [2, 4])
    def test_multiflit(self, sf5, sf5_tables, length):
        cfg = SimConfig(
            packet_length=length, warmup_cycles=120, measure_cycles=300,
            drain_cycles=2500, seed=4,
        )
        traffic = UniformRandom(sf5.num_endpoints)
        ref = reference_simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        assert ref == flat


class TestMemoryStaysFlat:
    """The busy-until state is fixed-size, however long the run."""

    def _engine(self, sf5, sf5_tables, cycles):
        cfg = SimConfig(
            packet_length=4,
            warmup_cycles=cycles // 2,
            measure_cycles=cycles // 2,
            drain_cycles=2500,
            seed=6,
        )
        return SimEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(sf5.num_endpoints),
            0.3, cfg,
        )

    def test_flat_state_sizes_independent_of_run_length(self, sf5, sf5_tables):
        short = self._engine(sf5, sf5_tables, 200)
        long = self._engine(sf5, sf5_tables, 1600)
        sizes = []
        for eng in (short, long):
            eng.run()
            net = eng.net
            sizes.append(
                (
                    len(net.channel_busy_until),
                    len(net.eject_busy_until),
                    len(net.credits_flat),
                    len(net.in_fifo),
                    len(eng._arr_wheel),
                    len(eng._credit_wheel),
                )
            )
        assert sizes[0] == sizes[1]
        assert sizes[0][0] == short.net.num_channels
        assert sizes[0][1] == sf5.num_endpoints
        # The ndarray views expose the same fixed shapes.
        assert long.net.channel_busy_array.shape == (long.net.num_channels,)
        assert long.net.eject_busy_array.shape == (sf5.num_endpoints,)
        assert long.net.credits.shape == (long.net.num_channels, long.net.num_vcs)

    def test_seed_engine_busy_dicts_grew_unboundedly(self, sf5, sf5_tables):
        """Document the leak the refactor removed: the reference's
        busy-until dicts accumulate one entry per channel/endpoint
        ever touched and were never pruned."""
        cfg = SimConfig(
            packet_length=4, warmup_cycles=100, measure_cycles=100,
            drain_cycles=2500, seed=6,
        )
        eng = ReferenceEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(sf5.num_endpoints),
            0.3, cfg,
        )
        eng.run()
        assert len(eng._channel_busy_until) > 100
        assert len(eng._eject_busy_until) > 100
