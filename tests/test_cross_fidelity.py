"""Cross-fidelity validation: flow-level vs cycle-accurate saturation.

The flow backend trades flit-level detail for speed; this suite pins
how much.  On small MMS instances (q=5, q=7) the flow-level saturation
load must fall within one load-grid step (0.1) of the cycle-accurate
saturation point for MIN and VAL across uniform and worst-case
traffic — the contract that makes paper-scale flow sweeps credible.

Both engines are deterministic (the cycle engine per seed, the flow
solver unconditionally), so these are exact regression pins, not
statistical checks.
"""

from __future__ import annotations

import pytest

from repro.routing import MinimalRouting, RoutingTables
from repro.routing.valiant import ValiantRouting
from repro.sim import SimConfig
from repro.sim.flowlevel import FlowModel
from repro.sim.sweep import find_saturation_load, latency_vs_load
from repro.topologies import SlimFly
from repro.traffic import UniformRandom
from repro.traffic.adversarial import worst_case_for

#: The shared load schedule; tolerance is one grid step.
LOADS = [round(0.1 * i, 4) for i in range(1, 11)]
TOLERANCE = 0.1 + 1e-9
CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200)

_STATE: dict[int, tuple] = {}


def _instance(q: int):
    if q not in _STATE:
        sf = SlimFly.from_q(q)
        tables = RoutingTables(sf.adjacency)
        _STATE[q] = (sf, tables)
    return _STATE[q]


def _routing_factory(name: str, tables):
    if name == "min":
        return lambda: MinimalRouting(tables)
    return lambda: ValiantRouting(tables, seed=0)


def _pattern(name: str, sf, tables):
    if name == "uniform":
        return UniformRandom(sf.num_endpoints)
    return worst_case_for(sf, tables=tables, seed=0)


def _effective(sat: float | None) -> float:
    """Saturation load capped at the schedule end (None = never)."""
    return sat if sat is not None else LOADS[-1]


@pytest.mark.parametrize("q", [5, 7])
@pytest.mark.parametrize("routing", ["min", "val"])
@pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
def test_flow_saturation_within_tolerance(q, routing, pattern):
    sf, tables = _instance(q)
    factory = _routing_factory(routing, tables)
    traffic = _pattern(pattern, sf, tables)

    flow_sat = _effective(
        FlowModel(sf, factory(), traffic).saturation_load(LOADS, CFG)
    )
    cycle_sat = _effective(
        find_saturation_load(latency_vs_load(sf, factory, traffic, LOADS, CFG))
    )
    assert abs(flow_sat - cycle_sat) <= TOLERANCE, (
        f"q={q} {routing}/{pattern}: flow saturates at {flow_sat}, "
        f"cycle at {cycle_sat} — beyond the pinned one-step tolerance"
    )


def test_worstcase_collapse_ordering_matches():
    """Both fidelities agree on the headline Fig 6d shape: worst-case
    MIN collapses far below uniform MIN, and VAL rescues it."""
    sf, tables = _instance(5)
    wc = worst_case_for(sf, tables=tables, seed=0)
    uni = UniformRandom(sf.num_endpoints)

    def flow_sat(routing, traffic):
        return _effective(
            FlowModel(sf, routing, traffic).saturation_load(LOADS, CFG)
        )

    def cycle_sat(factory, traffic):
        return _effective(
            find_saturation_load(latency_vs_load(sf, factory, traffic, LOADS, CFG))
        )

    for backend_sat in (
        lambda r, t: flow_sat(
            MinimalRouting(tables) if r == "min" else ValiantRouting(
                tables, seed=0), t
        ),
        lambda r, t: cycle_sat(_routing_factory(r, tables), t),
    ):
        min_wc = backend_sat("min", wc)
        min_uni = backend_sat("min", uni)
        val_wc = backend_sat("val", wc)
        assert min_wc < 0.5 * min_uni
        assert val_wc > 2 * min_wc
