"""Campaign-rebuilt experiments emit rows identical to the legacy paths.

The fig6/fig8/workload_completion experiments were rebuilt on the
scenario/campaign API; their ``run()`` signatures are preserved as
thin wrappers.  These tests re-implement the pre-redesign computation
inline — direct topology/routing/traffic construction plus
``parallel_latency_vs_load``/``parallel_workload_completion`` calls —
and require the rebuilt experiments to reproduce its rows exactly, at
any worker count.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.balance import balanced_concentration, saturation_load_estimate
from repro.experiments import fig6_performance, fig8_buffers_oversub, workload_completion
from repro.experiments.common import Scale, performance_trio
from repro.routing import (
    ANCARouting,
    DragonflyUGAL,
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
)
from repro.sim import CompletionTask, SimConfig, parallel_workload_completion
from repro.sim.parallel import parallel_latency_vs_load
from repro.sim.sweep import max_accepted
from repro.topologies import SlimFly
from repro.traffic import SlimFlyWorstCase, UniformRandom
from repro.workloads import make_workload, spread_placement

SCALE = Scale.QUICK
SEED = 0

#: Short simulations keep these tests cheap; equivalence is unaffected
#: because the *same* config reaches the legacy-inline and campaign
#: paths (the autouse fixture patches the preset both read).
TINY_CFG = SimConfig(warmup_cycles=30, measure_cycles=80, drain_cycles=300)


@pytest.fixture(autouse=True)
def tiny_sim_config(monkeypatch):
    for mod in (fig6_performance, fig8_buffers_oversub):
        monkeypatch.setattr(mod, "sim_config_for", lambda scale: TINY_CFG)


@pytest.fixture(scope="module")
def legacy_fig6_rows():
    """The pre-redesign fig6 path (uniform pattern), verbatim."""
    cfg = TINY_CFG
    sf, df, ft = performance_trio(SCALE)
    sf_tables = RoutingTables(sf.adjacency)
    df_tables = RoutingTables(df.adjacency)
    protocols = [
        ("SF-MIN", sf, lambda: MinimalRouting(sf_tables)),
        ("SF-VAL", sf, lambda: ValiantRouting(sf_tables, seed=SEED)),
        ("SF-UGAL-L", sf, lambda: UGALRouting(sf_tables, "local", seed=SEED)),
        ("SF-UGAL-G", sf, lambda: UGALRouting(sf_tables, "global", seed=SEED)),
        ("DF-UGAL-L", df, lambda: DragonflyUGAL(df, df_tables, seed=SEED)),
        ("FT-ANCA", ft, lambda: ANCARouting(ft, seed=SEED)),
    ]
    rows = []
    for name, topo, factory in protocols:
        points = parallel_latency_vs_load(
            topo, factory, UniformRandom(topo.num_endpoints),
            loads=fig6_performance._loads(SCALE, "uniform"), config=cfg, workers=1,
        )
        for pt in points:
            rows.append([
                name,
                pt.load,
                round(pt.latency, 1) if pt.latency is not None else None,
                round(pt.accepted, 3) if pt.accepted is not None else None,
                pt.saturated,
            ])
    return rows


@pytest.mark.parametrize("workers", [1, 2])
def test_fig6_rows_match_legacy_path(legacy_fig6_rows, workers):
    result = fig6_performance.run(
        scale=SCALE, seed=SEED, pattern="uniform", workers=workers
    )
    assert result.tables[0][1] == legacy_fig6_rows


def test_fig8_buffers_rows_match_legacy_path():
    buffers = [16, 64]
    sf = SlimFly.from_q(5)
    tables = RoutingTables(sf.adjacency)
    traffic = SlimFlyWorstCase(sf, tables, seed=SEED)
    base_cfg = TINY_CFG
    loads = [round(0.1 + 0.4 * i / 3, 3) for i in range(4)]
    legacy = []
    for buf in buffers:
        cfg = replace(base_cfg, buffer_per_port=buf)
        points = parallel_latency_vs_load(
            sf, lambda: UGALRouting(tables, "local", seed=SEED), traffic,
            loads=loads, config=cfg, workers=1,
        )
        for pt in points:
            legacy.append([
                buf, pt.load,
                round(pt.latency, 1) if pt.latency is not None else None,
                pt.saturated,
            ])
    for workers in (1, 2):
        result = fig8_buffers_oversub.run_buffers(
            scale=SCALE, seed=SEED, buffers=buffers, workers=workers
        )
        assert result.tables[0][1] == legacy


def test_fig8_oversub_rows_match_legacy_path():
    q = 5
    base = SlimFly.from_q(q)
    p_bal = balanced_concentration(base.num_routers, base.network_radix)
    cfg = TINY_CFG
    tables = RoutingTables(base.adjacency)
    loads = [round((i + 1) / 5, 3) for i in range(5)]
    legacy = []
    for p in [p_bal, p_bal + 1]:
        sf = SlimFly.from_q(q, concentration=p)
        points = parallel_latency_vs_load(
            sf, lambda: MinimalRouting(tables), UniformRandom(sf.num_endpoints),
            loads=loads, config=cfg, workers=1,
        )
        acc = max_accepted(points)
        est = saturation_load_estimate(sf.num_routers, sf.network_radix, p)
        legacy.append([p, sf.num_endpoints, round(acc, 3), round(est, 3)])
    result = fig8_buffers_oversub.run_oversub(
        scale=SCALE, seed=SEED, extra_ps=[p_bal + 1], workers=1
    )
    assert result.tables[0][1] == legacy


@pytest.mark.parametrize("workers", [1, 2])
def test_workload_completion_rows_match_legacy_path(workers):
    kind, ranks, flits = "gather", 6, 2
    sf, df, ft = performance_trio(SCALE)
    n_ranks = min(ranks, sf.num_endpoints, df.num_endpoints, ft.num_endpoints)
    cfg = SimConfig(seed=SEED)
    sf_tables = RoutingTables(sf.adjacency)
    df_tables = RoutingTables(df.adjacency)
    protocols = [
        ("SF-MIN", sf, lambda: MinimalRouting(sf_tables)),
        ("SF-VAL", sf, lambda: ValiantRouting(sf_tables, seed=SEED)),
        ("SF-UGAL-L", sf, lambda: UGALRouting(sf_tables, "local", seed=SEED)),
        ("DF-UGAL-L", df, lambda: DragonflyUGAL(df, df_tables, seed=SEED)),
        ("FT-ANCA", ft, lambda: ANCARouting(ft, seed=SEED)),
    ]
    tasks, labels = [], []
    for name, topo, factory in protocols:
        wl = make_workload(
            kind, n_ranks, flits, endpoints=spread_placement(topo, n_ranks)
        )
        tasks.append(CompletionTask(
            topology=topo, routing_factory=factory, workload=wl,
            config=cfg, max_cycles=300_000, label=f"{name}/{kind}",
        ))
        labels.append(name)
    legacy = []
    for name, res in zip(labels, parallel_workload_completion(tasks, workers=1)):
        legacy.append([
            kind, name, res.num_messages, res.delivered_flits, res.makespan,
            round(res.avg_message_latency, 1), round(res.p99_message_latency, 1),
            round(res.flits_per_cycle, 3), res.finished,
        ])
    result = workload_completion.run(
        scale=SCALE, seed=SEED, workload=kind, workers=workers,
        ranks=ranks, message_flits=flits,
    )
    assert result.tables[0][1] == legacy
