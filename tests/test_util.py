"""Tests for the util package: rng, tables, series, validation."""

import numpy as np
import pytest

from repro.util import (
    Series,
    SeriesBundle,
    ascii_table,
    check_in_range,
    check_positive_int,
    check_probability,
    format_row,
    make_rng,
    spawn_rngs,
)
from repro.util.series import crossover
from repro.util.tables import format_cell


class TestRng:
    def test_seed_determinism(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_spawn_independence(self):
        children = spawn_rngs(3, 4)
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_from_generator(self):
        g = np.random.default_rng(0)
        children = spawn_rngs(g, 3)
        assert len(children) == 3


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(1234) == "1,234"
        assert format_cell(float("nan")) == "-"
        assert format_cell(0.123456) == "0.123"
        assert format_cell(1234.5) == "1,234"

    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_title(self):
        text = ascii_table(["x"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_format_row_with_widths(self):
        assert format_row([1, 2], widths=[3, 3]) == "  1    2"


class TestSeries:
    def test_append_and_pairs(self):
        s = Series("a")
        s.append(1, 10)
        s.append(2, 20)
        assert s.as_pairs() == [(1, 10), (2, 20)]
        assert len(s) == 2

    def test_bundle_get(self):
        b = SeriesBundle("t", "x", "y")
        b.new("one")
        assert b.get("one").name == "one"
        with pytest.raises(KeyError):
            b.get("two")
        assert b.names == ["one"]

    def test_render(self):
        b = SeriesBundle("title", "load", "latency")
        s = b.new("MIN")
        s.append(0.1, 8.0)
        text = b.render()
        assert "title" in text and "MIN" in text and "(0.1, 8)" in text

    def test_render_subsamples(self):
        b = SeriesBundle("t", "x", "y")
        s = b.new("s")
        for i in range(100):
            s.append(i, i)
        text = b.render(max_points=10)
        assert text.count("(") <= 15

    def test_crossover(self):
        a = Series("a", [1, 2, 3], [1, 5, 9])
        b = Series("b", [1, 2, 3], [2, 4, 6])
        assert crossover(a, b) == 2
        c = Series("c", [1, 2, 3], [0, 0, 0])
        assert crossover(c, b) is None


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(5, "x") == 5
        assert check_positive_int(np.int64(5), "x") == 5
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            check_positive_int("five", "x")

    def test_in_range(self):
        check_in_range(5, "x", 0, 10)
        with pytest.raises(ValueError):
            check_in_range(11, "x", 0, 10)

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
