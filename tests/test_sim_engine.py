"""Tests for the cycle simulator: conservation, latency, flow control."""

import pytest

from repro.routing import MinimalRouting, RoutingTables, UGALRouting, ValiantRouting
from repro.sim import SimConfig, SimEngine, simulate
from repro.sim.network import SimNetwork
from repro.traffic import FixedPermutation, UniformRandom

QUICK = SimConfig(warmup_cycles=100, measure_cycles=300, drain_cycles=1500, seed=5)


class TestConfig:
    def test_paper_defaults(self):
        cfg = SimConfig()
        assert cfg.buffer_per_port == 64
        assert cfg.credit_delay == 2
        assert cfg.speedup == 2
        assert cfg.hop_latency == 4  # channel + SA + VC + crossbar

    def test_buffer_split(self):
        assert SimConfig(buffer_per_port=64, num_vcs=3).buffer_per_vc == 21
        assert SimConfig(buffer_per_port=2, num_vcs=4).buffer_per_vc == 1

    def test_with_vcs(self):
        cfg = SimConfig().with_vcs(5)
        assert cfg.num_vcs == 5
        assert cfg.buffer_per_port == 64


class TestNetworkState:
    def test_initial_credits(self, sf5):
        cfg = SimConfig(num_vcs=2, buffer_per_port=16)
        net = SimNetwork(sf5, cfg)
        # Flat layout: credits is the (num_channels, num_vcs) view.
        assert net.credits.shape == (net.num_channels, 2)
        assert (net.credits == 8).all()
        assert net.queue_length(0, sf5.adjacency[0][0]) == 0
        assert net.total_buffered() == 0

    def test_flat_channel_ids(self, sf5):
        net = SimNetwork(sf5, SimConfig())
        # Channel c runs (chan_src[c] -> chan_dst[c]); port_base slices
        # each router's outgoing channels in adjacency order.
        for r, nbrs in enumerate(sf5.adjacency):
            lo, hi = net.port_base_list[r], net.port_base_list[r + 1]
            assert net.chan_dst_list[lo:hi] == nbrs
            assert all(net.chan_src_list[c] == r for c in range(lo, hi))

    def test_arrival_buffers_flit_and_activates_router(self, sf5, sf5_tables):
        """An arrival event lands in the flat FIFO via the engine's
        wheel (the production delivery path) and activates the router."""
        eng = SimEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.0, QUICK
        )
        net = eng.net
        upstream = sf5.adjacency[3][0]
        chan = net.port_base_list[upstream] + net.port_index[upstream][3]
        b = chan * net.num_vcs
        eng._arr_wheel[eng.now % eng._arr_horizon].append((b, 3, object()))
        eng._pending_arrivals += 1
        eng._phase_arrivals()
        assert net.total_buffered() == 1
        assert 3 in net.active_routers
        assert eng._pending_arrivals == 0


class TestPacketDelivery:
    def test_all_packets_delivered_uniform(self, sf5, sf5_tables):
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.2, QUICK)
        assert res.injected > 0
        assert res.delivered == res.injected
        assert not res.saturated

    def test_latency_at_least_zero_load_path(self, sf5, sf5_tables):
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.05, QUICK)
        # 1-2 hops at 4 cycles/hop + eject: latency in [5, ~14] at near-zero load.
        assert 5.0 <= res.avg_latency <= 16.0

    def test_permutation_traffic(self, sf5, sf5_tables):
        n = sf5.num_endpoints
        perm = FixedPermutation({e: (e + 37) % n for e in range(n)})
        res = simulate(sf5, MinimalRouting(sf5_tables), perm, 0.2, QUICK)
        assert res.delivered == res.injected
        assert not res.saturated

    def test_accepted_tracks_offered_below_saturation(self, sf5, sf5_tables):
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.4, QUICK)
        assert res.accepted_load == pytest.approx(0.4, abs=0.05)

    def test_saturation_flag_at_overload(self, sf5, sf5_tables):
        res = simulate(
            sf5, ValiantRouting(sf5_tables, seed=1), UniformRandom(200), 0.9, QUICK
        )
        assert res.saturated
        assert res.accepted_load < 0.9

    def test_deterministic_given_seed(self, sf5, sf5_tables):
        a = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.3, QUICK)
        b = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.3, QUICK)
        assert a.avg_latency == b.avg_latency
        assert a.delivered == b.delivered

    def test_zero_load(self, sf5, sf5_tables):
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.0, QUICK)
        assert res.injected == 0
        assert res.delivered == 0


class TestVCHonouring:
    def test_engine_raises_vc_count_for_routing(self, sf5, sf5_tables):
        routing = ValiantRouting(sf5_tables, seed=0)  # needs 4 VCs
        eng = SimEngine(sf5, routing, UniformRandom(200), 0.1,
                        SimConfig(num_vcs=2, warmup_cycles=50, measure_cycles=100))
        assert eng.config.num_vcs == routing.num_vcs

    def test_engine_keeps_larger_config(self, sf5, sf5_tables):
        routing = MinimalRouting(sf5_tables)  # needs 2
        eng = SimEngine(sf5, routing, UniformRandom(200), 0.1,
                        SimConfig(num_vcs=3, warmup_cycles=50, measure_cycles=100))
        assert eng.config.num_vcs == 3


class TestBackpressure:
    def test_tiny_buffers_still_deliver(self, sf5, sf5_tables):
        cfg = SimConfig(
            buffer_per_port=4, num_vcs=2,
            warmup_cycles=100, measure_cycles=200, drain_cycles=3000, seed=2,
        )
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.15, cfg)
        assert res.delivered == res.injected

    def test_buffer_size_tradeoff_matches_fig8a(self, sf5, sf5_tables):
        """§V-D: smaller buffers -> lower latency (stiff backpressure) at
        sustainable loads, but bigger buffers enable higher bandwidth."""
        results = {}
        for buf in (8, 256):
            cfg = SimConfig(
                buffer_per_port=buf, warmup_cycles=150, measure_cycles=400,
                drain_cycles=3000, seed=2,
            )
            results[buf] = {
                load: simulate(
                    sf5, MinimalRouting(sf5_tables), UniformRandom(200), load, cfg
                )
                for load in (0.3, 0.8)
            }
        # At a load both sustain, both deliver everything at sane latency
        # (credit stalls make tiny buffers a bit slower at LOW load; the
        # paper's lower-latency effect appears near saturation and is
        # checked by the fig8a experiment's shape note).
        for buf in (8, 256):
            assert results[buf][0.3].delivered == results[buf][0.3].injected
            assert results[buf][0.3].avg_latency < 60
        # Big buffers accept at least as much traffic at high load.
        assert results[256][0.8].accepted_load >= results[8][0.8].accepted_load - 1e-9


class TestSweep:
    def test_latency_monotone_in_load(self, sf5, sf5_tables):
        from repro.sim.sweep import latency_vs_load

        pts = latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), UniformRandom(200),
            loads=[0.1, 0.4, 0.7], config=QUICK,
        )
        lats = [p.latency for p in pts if p.latency is not None]
        assert lats == sorted(lats)

    def test_saturation_short_circuit(self, sf5, sf5_tables):
        from repro.sim.sweep import find_saturation_load, latency_vs_load

        pts = latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), UniformRandom(200),
            loads=[0.3, 0.6, 0.8, 0.9], config=QUICK, stop_after_saturation=1,
        )
        sat = find_saturation_load(pts)
        assert sat is not None and sat <= 0.8
        # Points after the first saturated one are marked, not simulated.
        tail = [p for p in pts if p.load > sat]
        assert all(p.saturated for p in tail)


class TestLatencyBreakdown:
    def test_queue_vs_network_split(self, sf5, sf5_tables):
        """Source queueing is near zero at low load; network latency
        carries the pipeline cost."""
        res = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.05, QUICK)
        assert res.avg_queue_latency < 1.0
        assert res.avg_network_latency == pytest.approx(
            res.avg_latency - res.avg_queue_latency
        )
        assert res.avg_network_latency >= 5.0

    def test_queueing_grows_near_saturation(self, sf5, sf5_tables):
        low = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.1, QUICK)
        high = simulate(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.85, QUICK)
        assert high.avg_queue_latency > low.avg_queue_latency
