"""The cycle-vec differential suite: batched numpy vs the flat engine.

Mirror of ``test_sim_reference_equivalence.py`` one layer up: the
vectorised engine (:mod:`repro.sim.engine_vec`) must reproduce the
flat ``cycle`` engine *bit for bit* across its supported scope — it
replays the same RNG draw sequence, the same switch-allocation
tie-breaks (rank, buffer first-use order, endpoint order) and the same
event orderings, so every :class:`~repro.sim.stats.SimResult` field
matches exactly.  The matrix covers MIN/VAL/UGAL-L (+UGAL-G) ×
uniform/worst-case at q=5 and q=7, vectorised fixed patterns, and
multi-flit packets.

The documented fallback contract — saturation point within one 0.1
load-grid step, mean latency within 2% below saturation — is pinned by
the sweep-level test; with the current engine it holds trivially
because the per-point results are exact.

Out-of-scope requests must fail loudly: per-hop adaptive routing
(neither table-driven nor source-routed) raises at construction.
"""

import pytest

from repro.routing import MinimalRouting, UGALRouting, ValiantRouting
from repro.routing.fattree_routing import ANCARouting
from repro.routing.tables import RoutingTables
from repro.sim import SimConfig, TelemetrySpec, VecEngine, simulate, vec_simulate
from repro.traffic import ShiftPattern, ShufflePattern, SlimFlyWorstCase, UniformRandom

CFG = SimConfig(warmup_cycles=120, measure_cycles=300, drain_cycles=1500, seed=11)
#: Shorter window for the q=7 cells — same code paths, CI-sized.
CFG7 = SimConfig(warmup_cycles=80, measure_cycles=150, drain_cycles=1000, seed=11)


@pytest.fixture(scope="module")
def sf7_tables(sf7):
    return RoutingTables(sf7.adjacency)


class TestBitwiseEquivalenceQ5:
    @pytest.mark.parametrize("load", [0.05, 0.3, 0.6, 0.9])
    def test_min_uniform(self, sf5, sf5_tables, load):
        traffic = UniformRandom(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        assert flat == vec

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: ValiantRouting(t, seed=3),
            lambda t: UGALRouting(t, "local", seed=3),
            lambda t: UGALRouting(t, "global", seed=3),
        ],
        ids=["MIN", "VAL", "UGAL-L", "UGAL-G"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_routing_traffic_matrix(self, sf5, sf5_tables, make_routing, pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf5.num_endpoints)
            load = 0.4
        else:
            traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
            load = 0.3
        flat = simulate(sf5, make_routing(sf5_tables), traffic, load, CFG)
        vec = vec_simulate(sf5, make_routing(sf5_tables), traffic, load, CFG)
        assert flat == vec

    @pytest.mark.parametrize("make_pattern", [
        lambda n: ShufflePattern(n),
        lambda n: ShiftPattern(n),
    ], ids=["shuffle", "shift"])
    def test_vectorised_fixed_patterns(self, sf5, sf5_tables, make_pattern):
        pat = make_pattern(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        assert flat == vec

    @pytest.mark.parametrize("length", [2, 4])
    def test_multiflit(self, sf5, sf5_tables, length):
        cfg = SimConfig(
            packet_length=length, warmup_cycles=120, measure_cycles=300,
            drain_cycles=2500, seed=4,
        )
        traffic = UniformRandom(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        assert flat == vec


class TestBitwiseEquivalenceQ7:
    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: ValiantRouting(t, seed=3),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "VAL", "UGAL-L"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_routing_traffic_matrix(self, sf7, sf7_tables, make_routing, pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf7.num_endpoints)
        else:
            traffic = SlimFlyWorstCase(sf7, sf7_tables, seed=2)
        flat = simulate(sf7, make_routing(sf7_tables), traffic, 0.4, CFG7)
        vec = vec_simulate(sf7, make_routing(sf7_tables), traffic, 0.4, CFG7)
        assert flat == vec

    def test_min_uniform_high_load(self, sf7, sf7_tables):
        traffic = UniformRandom(sf7.num_endpoints)
        flat = simulate(sf7, MinimalRouting(sf7_tables), traffic, 0.9, CFG7)
        vec = vec_simulate(sf7, MinimalRouting(sf7_tables), traffic, 0.9, CFG7)
        assert flat == vec


class TestTelemetryEquivalence:
    """Armed probes must read identically off both engines: same bin
    edges, same flat channel numbering, same running-max bookkeeping —
    so every TelemetryResult field compares equal, not just close."""

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "UGAL-L"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_full_probe_plane_matches(self, sf5, sf5_tables, make_routing,
                                      pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf5.num_endpoints)
            load = 0.4
        else:
            traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
            load = 0.3
        tele = TelemetrySpec.full()
        flat = simulate(
            sf5, make_routing(sf5_tables), traffic, load, CFG, telemetry=tele
        )
        vec = vec_simulate(
            sf5, make_routing(sf5_tables), traffic, load, CFG, telemetry=tele
        )
        assert flat == vec
        ft, vt = flat.telemetry, vec.telemetry
        assert ft is not None and vt is not None
        assert ft.cycles == vt.cycles
        assert tuple(ft.latency_hist) == tuple(vt.latency_hist)
        assert tuple(ft.channel_flits) == tuple(vt.channel_flits)
        assert tuple(ft.channel_load) == tuple(vt.channel_load)
        assert tuple(ft.max_queue) == tuple(vt.max_queue)
        assert ft.route_packets == vt.route_packets
        assert ft.route_diverted == vt.route_diverted
        assert ft.route_diverted_frac == vt.route_diverted_frac

    def test_probes_leave_results_bit_exact(self, sf5, sf5_tables):
        """Telemetry-on scalar results equal the telemetry-off run on
        both engines (the zero-perturbation contract, vec side)."""
        traffic = UniformRandom(sf5.num_endpoints)
        for sim_fn in (simulate, vec_simulate):
            off = sim_fn(sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG)
            on = sim_fn(
                sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG,
                telemetry=TelemetrySpec.full(),
            )
            assert off.telemetry is None and on.telemetry is not None
            assert on.avg_latency == off.avg_latency
            assert on.delivered == off.delivered
            assert on.accepted_load == off.accepted_load


class TestSweepContract:
    """The pinned-tolerance fallback contract, measured at sweep level:
    saturation within one 0.1 load-grid step, latency within 2% below
    saturation.  (Held exactly today — the assertions keep the curve
    contract alive even if a future engine change trades exactness.)"""

    def test_saturation_and_latency_agree(self, sf5, sf5_tables):
        loads = [round(0.1 * i, 1) for i in range(1, 10)]
        traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
        flat = [
            simulate(sf5, MinimalRouting(sf5_tables), traffic, ld, CFG7)
            for ld in loads
        ]
        vec = [
            vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, ld, CFG7)
            for ld in loads
        ]

        def sat_index(rows):
            for i, r in enumerate(rows):
                if r.saturated:
                    return i
            return len(rows)

        assert abs(sat_index(flat) - sat_index(vec)) <= 1
        for f, v in zip(flat, vec):
            if f.saturated or v.saturated:
                break
            assert v.avg_latency == pytest.approx(f.avg_latency, rel=0.02)


class TestScope:
    def test_per_hop_adaptive_rejected(self, ft4):
        """ANCA adapts per hop (neither table-driven nor source-routed):
        construction must fail with a pointer to the cycle backend."""
        with pytest.raises(ValueError, match="cycle"):
            VecEngine(
                ft4, ANCARouting(ft4, seed=0), UniformRandom(ft4.num_endpoints),
                0.3, CFG,
            )
