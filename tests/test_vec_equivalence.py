"""The cycle-vec differential suite: batched numpy vs the flat engine.

Mirror of ``test_sim_reference_equivalence.py`` one layer up: the
vectorised engine (:mod:`repro.sim.engine_vec`) must reproduce the
flat ``cycle`` engine *bit for bit* across its supported scope — it
replays the same RNG draw sequence, the same switch-allocation
tie-breaks (rank, buffer first-use order, endpoint order) and the same
event orderings, so every :class:`~repro.sim.stats.SimResult` field
matches exactly.  The matrix covers MIN/VAL/UGAL-L (+UGAL-G) ×
uniform/worst-case at q=5 and q=7, vectorised fixed patterns, and
multi-flit packets.

The documented fallback contract — saturation point within one 0.1
load-grid step, mean latency within 2% below saturation — is pinned by
the sweep-level test; with the current engine it holds trivially
because the per-point results are exact.

Closed-loop workloads and per-hop adaptive routing (FT ANCA) are in
scope since the cycle-vec-everywhere PR: the closed-loop matrix pins
every per-message ready/completion timestamp bit-exact, the adaptive
cells replay the flat engine's shared-RNG ``next_hop`` scan, and the
campaign-level tests pin byte-identical rows across worker counts and
through the service execution path (which exercises the q>=7
cycle->cycle-vec auto-default).
"""

import pytest

from repro.routing import MinimalRouting, UGALRouting, ValiantRouting
from repro.routing.fattree_routing import ANCARouting
from repro.routing.tables import RoutingTables
from repro.sim import (
    SimConfig,
    TelemetrySpec,
    VecEngine,
    simulate,
    simulate_workload,
    vec_simulate,
    vec_simulate_workload,
)
from repro.traffic import ShiftPattern, ShufflePattern, SlimFlyWorstCase, UniformRandom
from repro.workloads.registry import make_placed_workload

CFG = SimConfig(warmup_cycles=120, measure_cycles=300, drain_cycles=1500, seed=11)
#: Shorter window for the q=7 cells — same code paths, CI-sized.
CFG7 = SimConfig(warmup_cycles=80, measure_cycles=150, drain_cycles=1000, seed=11)


@pytest.fixture(scope="module")
def sf7_tables(sf7):
    return RoutingTables(sf7.adjacency)


class TestBitwiseEquivalenceQ5:
    @pytest.mark.parametrize("load", [0.05, 0.3, 0.6, 0.9])
    def test_min_uniform(self, sf5, sf5_tables, load):
        traffic = UniformRandom(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, load, CFG)
        assert flat == vec

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: ValiantRouting(t, seed=3),
            lambda t: UGALRouting(t, "local", seed=3),
            lambda t: UGALRouting(t, "global", seed=3),
        ],
        ids=["MIN", "VAL", "UGAL-L", "UGAL-G"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_routing_traffic_matrix(self, sf5, sf5_tables, make_routing, pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf5.num_endpoints)
            load = 0.4
        else:
            traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
            load = 0.3
        flat = simulate(sf5, make_routing(sf5_tables), traffic, load, CFG)
        vec = vec_simulate(sf5, make_routing(sf5_tables), traffic, load, CFG)
        assert flat == vec

    @pytest.mark.parametrize("make_pattern", [
        lambda n: ShufflePattern(n),
        lambda n: ShiftPattern(n),
    ], ids=["shuffle", "shift"])
    def test_vectorised_fixed_patterns(self, sf5, sf5_tables, make_pattern):
        pat = make_pattern(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), pat, 0.4, CFG)
        assert flat == vec

    @pytest.mark.parametrize("length", [2, 4])
    def test_multiflit(self, sf5, sf5_tables, length):
        cfg = SimConfig(
            packet_length=length, warmup_cycles=120, measure_cycles=300,
            drain_cycles=2500, seed=4,
        )
        traffic = UniformRandom(sf5.num_endpoints)
        flat = simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        vec = vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        assert flat == vec


class TestBitwiseEquivalenceQ7:
    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: ValiantRouting(t, seed=3),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "VAL", "UGAL-L"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_routing_traffic_matrix(self, sf7, sf7_tables, make_routing, pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf7.num_endpoints)
        else:
            traffic = SlimFlyWorstCase(sf7, sf7_tables, seed=2)
        flat = simulate(sf7, make_routing(sf7_tables), traffic, 0.4, CFG7)
        vec = vec_simulate(sf7, make_routing(sf7_tables), traffic, 0.4, CFG7)
        assert flat == vec

    def test_min_uniform_high_load(self, sf7, sf7_tables):
        traffic = UniformRandom(sf7.num_endpoints)
        flat = simulate(sf7, MinimalRouting(sf7_tables), traffic, 0.9, CFG7)
        vec = vec_simulate(sf7, MinimalRouting(sf7_tables), traffic, 0.9, CFG7)
        assert flat == vec


class TestTelemetryEquivalence:
    """Armed probes must read identically off both engines: same bin
    edges, same flat channel numbering, same running-max bookkeeping —
    so every TelemetryResult field compares equal, not just close."""

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "UGAL-L"],
    )
    @pytest.mark.parametrize("pattern", ["uniform", "worstcase"])
    def test_full_probe_plane_matches(self, sf5, sf5_tables, make_routing,
                                      pattern):
        if pattern == "uniform":
            traffic = UniformRandom(sf5.num_endpoints)
            load = 0.4
        else:
            traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
            load = 0.3
        tele = TelemetrySpec.full()
        flat = simulate(
            sf5, make_routing(sf5_tables), traffic, load, CFG, telemetry=tele
        )
        vec = vec_simulate(
            sf5, make_routing(sf5_tables), traffic, load, CFG, telemetry=tele
        )
        assert flat == vec
        ft, vt = flat.telemetry, vec.telemetry
        assert ft is not None and vt is not None
        assert ft.cycles == vt.cycles
        assert tuple(ft.latency_hist) == tuple(vt.latency_hist)
        assert tuple(ft.channel_flits) == tuple(vt.channel_flits)
        assert tuple(ft.channel_load) == tuple(vt.channel_load)
        assert tuple(ft.max_queue) == tuple(vt.max_queue)
        assert ft.route_packets == vt.route_packets
        assert ft.route_diverted == vt.route_diverted
        assert ft.route_diverted_frac == vt.route_diverted_frac

    def test_probes_leave_results_bit_exact(self, sf5, sf5_tables):
        """Telemetry-on scalar results equal the telemetry-off run on
        both engines (the zero-perturbation contract, vec side)."""
        traffic = UniformRandom(sf5.num_endpoints)
        for sim_fn in (simulate, vec_simulate):
            off = sim_fn(sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG)
            on = sim_fn(
                sf5, MinimalRouting(sf5_tables), traffic, 0.4, CFG,
                telemetry=TelemetrySpec.full(),
            )
            assert off.telemetry is None and on.telemetry is not None
            assert on.avg_latency == off.avg_latency
            assert on.delivered == off.delivered
            assert on.accepted_load == off.accepted_load


class TestSweepContract:
    """The pinned-tolerance fallback contract, measured at sweep level:
    saturation within one 0.1 load-grid step, latency within 2% below
    saturation.  (Held exactly today — the assertions keep the curve
    contract alive even if a future engine change trades exactness.)"""

    def test_saturation_and_latency_agree(self, sf5, sf5_tables):
        loads = [round(0.1 * i, 1) for i in range(1, 10)]
        traffic = SlimFlyWorstCase(sf5, sf5_tables, seed=2)
        flat = [
            simulate(sf5, MinimalRouting(sf5_tables), traffic, ld, CFG7)
            for ld in loads
        ]
        vec = [
            vec_simulate(sf5, MinimalRouting(sf5_tables), traffic, ld, CFG7)
            for ld in loads
        ]

        def sat_index(rows):
            for i, r in enumerate(rows):
                if r.saturated:
                    return i
            return len(rows)

        assert abs(sat_index(flat) - sat_index(vec)) <= 1
        for f, v in zip(flat, vec):
            if f.saturated or v.saturated:
                break
            assert v.avg_latency == pytest.approx(f.avg_latency, rel=0.02)


def _assert_workload_equal(flat, vec):
    """Full WorkloadResult equality plus named per-field diagnostics."""
    assert flat.message_completions == vec.message_completions
    assert flat.message_ready == vec.message_ready
    assert flat.cycles == vec.cycles
    assert flat.makespan == vec.makespan
    assert flat == vec


class TestClosedLoopEquivalence:
    """The closed-loop differential matrix: vec vs flat, bit-exact down
    to every per-message ready/completion timestamp.  Kinds span the
    dependency shapes (one dense wave, ring chains, butterfly stages,
    sparse neighbour exchange); routings span no-RNG tables and the
    queue-reading shared-RNG UGAL-L path."""

    KINDS = ["alltoall", "ring-allreduce", "rd-allreduce", "halo2d"]

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "UGAL-L"],
    )
    @pytest.mark.parametrize("kind", KINDS)
    def test_workload_matrix_q5(self, sf5, sf5_tables, make_routing, kind):
        wl = make_placed_workload(
            kind, sf5, 16, size_flits=4, iterations=1, placement="spread"
        )
        cfg = SimConfig(seed=11)
        flat = simulate_workload(sf5, make_routing(sf5_tables), wl, cfg)
        vec = vec_simulate_workload(sf5, make_routing(sf5_tables), wl, cfg)
        _assert_workload_equal(flat, vec)

    @pytest.mark.parametrize(
        "make_routing",
        [
            lambda t: MinimalRouting(t),
            lambda t: UGALRouting(t, "local", seed=3),
        ],
        ids=["MIN", "UGAL-L"],
    )
    @pytest.mark.parametrize("kind", KINDS)
    def test_workload_matrix_q7(self, sf7, sf7_tables, make_routing, kind):
        wl = make_placed_workload(
            kind, sf7, 24, size_flits=4, iterations=1, placement="spread"
        )
        cfg = SimConfig(seed=11)
        flat = simulate_workload(sf7, make_routing(sf7_tables), wl, cfg)
        vec = vec_simulate_workload(sf7, make_routing(sf7_tables), wl, cfg)
        _assert_workload_equal(flat, vec)

    def test_ugal_global_workload(self, sf5, sf5_tables):
        wl = make_placed_workload(
            "ring-allreduce", sf5, 16, size_flits=4, iterations=1,
            placement="spread",
        )
        cfg = SimConfig(seed=11)
        flat = simulate_workload(
            sf5, UGALRouting(sf5_tables, "global", seed=3), wl, cfg
        )
        vec = vec_simulate_workload(
            sf5, UGALRouting(sf5_tables, "global", seed=3), wl, cfg
        )
        _assert_workload_equal(flat, vec)

    def test_multiflit_workload(self, sf5, sf5_tables):
        """packet_length=2 segments messages and delays tail ejection —
        release timing (now + L) must still match the flat engine."""
        wl = make_placed_workload(
            "ring-allreduce", sf5, 16, size_flits=5, iterations=2,
            placement="spread",
        )
        cfg = SimConfig(seed=11, packet_length=2)
        flat = simulate_workload(sf5, MinimalRouting(sf5_tables), wl, cfg)
        vec = vec_simulate_workload(sf5, MinimalRouting(sf5_tables), wl, cfg)
        _assert_workload_equal(flat, vec)

    def test_max_cycles_cap(self, sf5, sf5_tables):
        """A cycle cap truncates both engines to the identical partial
        run (same completions, same unfinished set)."""
        wl = make_placed_workload(
            "alltoall", sf5, 16, size_flits=4, iterations=4, placement="spread"
        )
        cfg = SimConfig(seed=11)
        flat = simulate_workload(
            sf5, MinimalRouting(sf5_tables), wl, cfg, max_cycles=60
        )
        vec = vec_simulate_workload(
            sf5, MinimalRouting(sf5_tables), wl, cfg, max_cycles=60
        )
        assert not flat.finished
        _assert_workload_equal(flat, vec)

    def test_run_cap_above_span_rejected(self, sf5, sf5_tables):
        """run(max_cycles) beyond the constructor's packed-key span must
        raise instead of silently overflowing the sort keys."""
        from repro.sim import VecClosedLoopEngine

        wl = make_placed_workload(
            "alltoall", sf5, 8, size_flits=1, iterations=1, placement="spread"
        )
        eng = VecClosedLoopEngine(
            sf5, MinimalRouting(sf5_tables), wl, SimConfig(seed=11),
            max_cycles=100,
        )
        with pytest.raises(ValueError, match="packed sort-key span"):
            eng.run(max_cycles=200)


class TestAdaptiveEquivalence:
    """Per-hop adaptive routing (FT ANCA): the vec engine replays the
    flat engine's per-request ``next_hop`` scan — one shared-RNG draw
    per upward head request per cycle, reading live queue lengths — so
    open- and closed-loop results stay bit-exact."""

    @pytest.mark.parametrize("pattern", ["uniform", "shuffle"])
    @pytest.mark.parametrize("load", [0.2, 0.5])
    def test_open_loop(self, ft4, pattern, load):
        if pattern == "uniform":
            traffic = UniformRandom(ft4.num_endpoints)
        else:
            traffic = ShufflePattern(ft4.num_endpoints)
        flat = simulate(ft4, ANCARouting(ft4, seed=3), traffic, load, CFG)
        vec = vec_simulate(ft4, ANCARouting(ft4, seed=3), traffic, load, CFG)
        assert flat == vec

    def test_open_loop_multiflit(self, ft4):
        cfg = SimConfig(
            packet_length=2, warmup_cycles=120, measure_cycles=300,
            drain_cycles=2500, seed=4,
        )
        traffic = UniformRandom(ft4.num_endpoints)
        flat = simulate(ft4, ANCARouting(ft4, seed=3), traffic, 0.3, cfg)
        vec = vec_simulate(ft4, ANCARouting(ft4, seed=3), traffic, 0.3, cfg)
        assert flat == vec

    def test_open_loop_worstcase_load(self, ft4):
        """High load keeps upward queues busy, exercising the live
        queue-length reads inside the same-cycle allocation scan."""
        traffic = UniformRandom(ft4.num_endpoints)
        flat = simulate(ft4, ANCARouting(ft4, seed=3), traffic, 0.9, CFG7)
        vec = vec_simulate(ft4, ANCARouting(ft4, seed=3), traffic, 0.9, CFG7)
        assert flat == vec

    @pytest.mark.parametrize("kind", ["alltoall", "halo2d"])
    def test_closed_loop(self, ft4, kind):
        wl = make_placed_workload(
            kind, ft4, 16, size_flits=4, iterations=1, placement="spread"
        )
        cfg = SimConfig(seed=11)
        flat = simulate_workload(ft4, ANCARouting(ft4, seed=3), wl, cfg)
        vec = vec_simulate_workload(ft4, ANCARouting(ft4, seed=3), wl, cfg)
        _assert_workload_equal(flat, vec)

    def test_telemetry_open_loop(self, ft4):
        """Armed probes must read identically off the adaptive scalar
        allocation path (occupancy decrements happen per grant there)."""
        tele = TelemetrySpec.full()
        traffic = UniformRandom(ft4.num_endpoints)
        flat = simulate(
            ft4, ANCARouting(ft4, seed=3), traffic, 0.4, CFG, telemetry=tele
        )
        vec = vec_simulate(
            ft4, ANCARouting(ft4, seed=3), traffic, 0.4, CFG, telemetry=tele
        )
        assert flat == vec
        assert tuple(flat.telemetry.channel_flits) == tuple(
            vec.telemetry.channel_flits
        )
        assert tuple(flat.telemetry.max_queue) == tuple(vec.telemetry.max_queue)


class TestScope:
    def test_per_hop_adaptive_constructs(self, ft4):
        """ANCA (neither table-driven nor source-routed) is in scope:
        construction selects the per-hop adaptive allocation path."""
        eng = VecEngine(
            ft4, ANCARouting(ft4, seed=0), UniformRandom(ft4.num_endpoints),
            0.3, CFG,
        )
        assert eng._adaptive is not None


def _closed_campaign():
    """A two-scenario closed-loop campaign at SF q=7 (98 routers — the
    cycle->cycle-vec auto-default threshold)."""
    from repro.scenarios import (
        Campaign,
        RoutingSpec,
        Scenario,
        TopologySpec,
        WorkloadSpec,
    )

    def scen(kind, routing, params):
        return Scenario(
            topology=TopologySpec("SF", params={"q": 7}),
            routing=RoutingSpec(routing, params),
            sim=SimConfig(seed=11),
            workload=WorkloadSpec(kind, ranks=16, size_flits=4, iterations=1),
            max_cycles=20_000,
            label=f"sf7/{kind}/{routing}",
        )

    return Campaign(
        "vec-closed",
        [scen("halo2d", "min", {}), scen("alltoall", "ugal-l", {"seed": 3})],
    )


class TestCampaignAndService:
    """Campaign-level byte identity through the auto-default: at q=7 a
    default-``cycle`` closed-loop scenario resolves to ``cycle-vec``
    execution, and the rows must stay byte-identical for any worker
    count and through the service execution path — with the published
    ``fidelity`` key still reporting the spec's backend."""

    def test_auto_upgrade_resolves_to_vec(self):
        from repro.scenarios.resolve import resolve

        for s in _closed_campaign().scenarios:
            assert s.backend == "cycle"
            assert resolve(s).backend == "cycle-vec"

    def test_worker_count_byte_identity(self, tmp_path):
        from repro.scenarios import run_campaign

        campaign = _closed_campaign()
        a = tmp_path / "w1.jsonl"
        b = tmp_path / "w2.jsonl"
        run_campaign(campaign, workers=1, out=a)
        run_campaign(campaign, workers=2, out=b)
        assert a.read_bytes() == b.read_bytes()

    def test_rows_report_spec_fidelity(self, tmp_path):
        import json

        from repro.scenarios import run_campaign

        out = tmp_path / "rows.jsonl"
        run_campaign(_closed_campaign(), out=out)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows
        assert all(r["fidelity"] == "cycle" for r in rows)

    def test_service_unit_byte_identity(self):
        from repro.service.units import UnitEntry, execute_unit

        scenarios = _closed_campaign().scenarios
        entries = [
            UnitEntry(index=i, of=len(scenarios), scenario=s)
            for i, s in enumerate(scenarios)
        ]
        p1, n1 = execute_unit("vec-closed", "closed", entries, workers=1)
        p2, n2 = execute_unit("vec-closed", "closed", entries, workers=2)
        assert p1 == p2
        assert n1 == n2 == len(scenarios)

    def test_vec_backend_task_matches_cycle_task(self, sf5, sf5_tables):
        """CompletionTask.backend dispatch: the same batch run on both
        fidelities returns identical WorkloadResults."""
        from repro.sim import CompletionTask, parallel_workload_completion

        wl = make_placed_workload(
            "ring-allreduce", sf5, 16, size_flits=4, iterations=1,
            placement="spread",
        )
        cfg = SimConfig(seed=11)

        def tasks(backend):
            return [
                CompletionTask(
                    topology=sf5,
                    routing_factory=lambda: UGALRouting(
                        sf5_tables, "local", seed=3
                    ),
                    workload=wl,
                    config=cfg,
                    backend=backend,
                )
            ]

        (flat,) = parallel_workload_completion(tasks("cycle"), workers=1)
        (vec,) = parallel_workload_completion(tasks("cycle-vec"), workers=1)
        _assert_workload_equal(flat, vec)
