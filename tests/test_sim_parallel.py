"""Tests for the parallel sweep orchestrator (repro.sim.parallel).

Covers the sweep-behavior checklist: serial-vs-parallel row equality,
seed determinism across worker counts, the saturation short-circuit,
and replica aggregation.
"""

import pytest

from repro.routing import MinimalRouting, ValiantRouting
from repro.sim import (
    SimConfig,
    TelemetrySpec,
    latency_vs_load,
    parallel_latency_vs_load,
    replica_seed,
)
from repro.sim.parallel import resolve_workers
from repro.traffic import UniformRandom

CFG = SimConfig(warmup_cycles=100, measure_cycles=250, drain_cycles=1200, seed=5)
LOADS = [0.1, 0.35, 0.6, 0.85]


@pytest.fixture
def uniform(sf5):
    return UniformRandom(sf5.num_endpoints)


class TestSerialParallelEquivalence:
    def test_rows_identical_to_serial_sweep(self, sf5, sf5_tables, uniform):
        serial = latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS, config=CFG
        )
        parallel = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS,
            config=CFG, workers=3,
        )
        assert serial == parallel

    def test_deterministic_across_worker_counts(self, sf5, sf5_tables, uniform):
        curves = [
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS,
                config=CFG, workers=w,
            )
            for w in (1, 2, 4)
        ]
        assert curves[0] == curves[1] == curves[2]

    def test_unpicklable_routing_factory_is_fine(self, sf5, sf5_tables, uniform):
        """Closures fan out via fork inheritance, not pickling."""
        tables = sf5_tables
        factory = lambda: MinimalRouting(tables)  # noqa: E731 - the point
        points = parallel_latency_vs_load(
            sf5, factory, uniform, loads=[0.2, 0.5], config=CFG, workers=2
        )
        assert len(points) == 2
        assert not points[0].saturated


class TestCycleVecDispatch:
    """backend='cycle-vec' rides the same fork pool as 'cycle': rows
    must be identical across worker counts and equal to the cycle rows
    (the vectorised engine's bit-exactness carried to sweep level)."""

    def test_rows_identical_across_worker_counts(self, sf5, sf5_tables, uniform):
        rows = [
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS,
                config=CFG, workers=w, backend="cycle-vec",
            )
            for w in (1, 2, 4)
        ]
        assert rows[0] == rows[1] == rows[2]

    def test_rows_equal_cycle_backend(self, sf5, sf5_tables, uniform):
        vec = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS,
            config=CFG, workers=2, backend="cycle-vec",
        )
        cyc = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform, loads=LOADS,
            config=CFG, workers=2, backend="cycle",
        )
        assert vec == cyc

    def test_replicated_rows_deterministic(self, sf5, sf5_tables, uniform):
        rows = [
            parallel_latency_vs_load(
                sf5, lambda: ValiantRouting(sf5_tables, seed=3), uniform,
                loads=[0.2, 0.5], config=CFG, workers=w, replicas=2,
                backend="cycle-vec",
            )
            for w in (1, 4)
        ]
        assert rows[0] == rows[1]


class TestSaturationShortCircuit:
    def test_tail_marked_not_simulated(self, sf5, sf5_tables, uniform):
        """VAL saturates near 0.5; later loads must come back marked
        (latency None) exactly as the serial sweep reports them."""
        loads = [0.3, 0.55, 0.7, 0.85, 0.95]
        serial = latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
            loads=loads, config=CFG, stop_after_saturation=1,
        )
        parallel = parallel_latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
            loads=loads, config=CFG, workers=2, stop_after_saturation=1,
        )
        assert serial == parallel
        marked = [pt for pt in parallel if pt.latency is None and pt.saturated]
        assert marked, "expected short-circuited tail points"

    def test_stop_after_two(self, sf5, sf5_tables, uniform):
        loads = [0.55, 0.7, 0.85, 0.95]
        serial = latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
            loads=loads, config=CFG, stop_after_saturation=2,
        )
        parallel = parallel_latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
            loads=loads, config=CFG, workers=4, stop_after_saturation=2,
        )
        assert serial == parallel

    def test_fill_rows_carry_last_accepted(self, sf5, sf5_tables, uniform):
        """Short-circuited rows report the last measured accepted
        throughput (the plateau) instead of a hole: fig6/fig8 tables
        render a complete accepted column past the cutoff."""
        loads = [0.3, 0.55, 0.7, 0.85, 0.95]
        for sweep in (
            latency_vs_load(
                sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
                loads=loads, config=CFG, stop_after_saturation=1,
            ),
            parallel_latency_vs_load(
                sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
                loads=loads, config=CFG, workers=2, stop_after_saturation=1,
            ),
        ):
            # stop_after_saturation=1: the first saturated point is the
            # last one simulated; every later row is a fill.
            first_sat = next(i for i, pt in enumerate(sweep) if pt.saturated)
            fills = sweep[first_sat + 1 :]
            assert fills, "expected short-circuited tail points"
            assert sweep[first_sat].accepted is not None
            for pt in fills:
                assert pt.saturated and pt.latency is None
                assert pt.accepted == sweep[first_sat].accepted


class TestReplicas:
    def test_replica_seeds_are_stable_and_distinct(self):
        seeds = [replica_seed(5, r) for r in range(4)]
        assert seeds[0] == 5  # replica 0 keeps the config seed
        assert len(set(seeds)) == 4
        assert seeds == [replica_seed(5, r) for r in range(4)]

    def test_replicated_rows_deterministic_across_workers(
        self, sf5, sf5_tables, uniform
    ):
        curves = [
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform,
                loads=[0.2, 0.5], config=CFG, workers=w, replicas=3,
            )
            for w in (1, 3)
        ]
        assert curves[0] == curves[1]

    def test_replica_mean_close_to_single_seed(self, sf5, sf5_tables, uniform):
        single = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform,
            loads=[0.3], config=CFG, workers=1,
        )[0]
        averaged = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform,
            loads=[0.3], config=CFG, workers=1, replicas=3,
        )[0]
        assert averaged.latency == pytest.approx(single.latency, rel=0.2)
        assert averaged.accepted == pytest.approx(single.accepted, rel=0.1)
        assert not averaged.saturated

    def test_replicas_must_be_positive(self, sf5, sf5_tables, uniform):
        with pytest.raises(ValueError):
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform,
                loads=[0.2], config=CFG, replicas=0,
            )


class TestTelemetrySweeps:
    """Telemetry attachments through the fork pool: LoadPoints must
    carry identical probe payloads at any worker count, on both
    batched backends, and replica merging must be deterministic."""

    TELE = TelemetrySpec.full()

    @staticmethod
    def _payload(points):
        return [
            (
                tuple(pt.telemetry.latency_hist),
                tuple(pt.telemetry.channel_flits),
                tuple(pt.telemetry.max_queue),
                pt.telemetry.route_packets,
                pt.telemetry.route_diverted,
            )
            for pt in points
        ]

    @pytest.mark.parametrize("backend", ["cycle", "cycle-vec"])
    def test_identical_across_worker_counts(self, sf5, sf5_tables, uniform,
                                            backend):
        sweeps = [
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform,
                loads=[0.2, 0.5], config=CFG, workers=w, backend=backend,
                telemetry=self.TELE,
            )
            for w in (1, 4)
        ]
        assert sweeps[0] == sweeps[1]
        assert self._payload(sweeps[0]) == self._payload(sweeps[1])

    def test_cycle_and_vec_payloads_equal(self, sf5, sf5_tables, uniform):
        cyc, vec = (
            parallel_latency_vs_load(
                sf5, lambda: MinimalRouting(sf5_tables), uniform,
                loads=[0.2, 0.5], config=CFG, workers=2, backend=b,
                telemetry=self.TELE,
            )
            for b in ("cycle", "cycle-vec")
        )
        assert self._payload(cyc) == self._payload(vec)

    def test_replica_merge_deterministic(self, sf5, sf5_tables, uniform):
        sweeps = [
            parallel_latency_vs_load(
                sf5, lambda: ValiantRouting(sf5_tables, seed=3), uniform,
                loads=[0.2], config=CFG, workers=w, replicas=2,
                telemetry=self.TELE,
            )
            for w in (1, 4)
        ]
        assert self._payload(sweeps[0]) == self._payload(sweeps[1])
        merged = sweeps[0][0].telemetry
        # Two replicas merged: histogram counts every delivery of both.
        assert sum(merged.latency_hist) > 0
        assert merged.cycles > 0

    def test_off_mode_rows_unchanged_and_unattached(self, sf5, sf5_tables,
                                                    uniform):
        plain = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform,
            loads=LOADS, config=CFG, workers=2,
        )
        off = parallel_latency_vs_load(
            sf5, lambda: MinimalRouting(sf5_tables), uniform,
            loads=LOADS, config=CFG, workers=2, telemetry=TelemetrySpec(),
        )
        assert plain == off
        assert all(pt.telemetry is None for pt in off)

    def test_short_circuit_fills_carry_no_telemetry(self, sf5, sf5_tables,
                                                    uniform):
        sweep = parallel_latency_vs_load(
            sf5, lambda: ValiantRouting(sf5_tables, seed=1), uniform,
            loads=[0.3, 0.55, 0.7, 0.85, 0.95], config=CFG, workers=2,
            stop_after_saturation=1, telemetry=self.TELE,
        )
        fills = [pt for pt in sweep if pt.latency is None and pt.saturated]
        assert fills, "expected short-circuited tail points"
        assert all(pt.telemetry is None for pt in fills)
        simulated = [pt for pt in sweep if pt.latency is not None]
        assert all(pt.telemetry is not None for pt in simulated)


class TestWorkerResolution:
    def test_auto_sizing(self):
        assert resolve_workers(None, 100) >= 1
        assert resolve_workers(0, 100) >= 1
        assert resolve_workers(8, 3) == 3  # bounded by task count
        assert resolve_workers(2, 100) == 2
