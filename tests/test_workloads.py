"""Tests for the workload generators and the JSONL trace format.

Dependency-order correctness of every collective, process-grid halo
structure, DAG validation, and trace round-trips.
"""

import io

import pytest

from repro.workloads import (
    AllToAll,
    BroadcastTree,
    GatherTree,
    HaloExchange2D,
    HaloExchange3D,
    Message,
    RecursiveDoublingAllReduce,
    RingAllReduce,
    TraceWorkload,
    WORKLOAD_KINDS,
    make_workload,
    read_trace,
    validate_messages,
    write_trace,
)


def by_id(messages):
    return {m.mid: m for m in messages}


class TestValidation:
    def test_duplicate_ids_rejected(self):
        msgs = [Message(0, 0, 1, 4), Message(0, 1, 0, 4)]
        with pytest.raises(ValueError, match="duplicate"):
            validate_messages(msgs)

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_messages([Message(0, 0, 1, 4, deps=(7,))])

    def test_cycle_rejected(self):
        msgs = [Message(0, 0, 1, 4, deps=(1,)), Message(1, 1, 0, 4, deps=(0,))]
        with pytest.raises(ValueError, match="cycle"):
            validate_messages(msgs)

    def test_self_dep_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Message(3, 0, 1, 4, deps=(3,))

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1, 0)

    def test_placement_must_be_injective(self):
        with pytest.raises(ValueError, match="same endpoint"):
            AllToAll(4, 8, endpoints=[0, 1, 1, 2])


class TestRingAllReduce:
    def test_message_count_and_chunks(self):
        n, size = 8, 64
        wl = RingAllReduce(n, size)
        msgs = wl.messages()
        assert len(msgs) == 2 * (n - 1) * n
        assert all(m.size_flits == -(-size // n) for m in msgs)

    def test_ring_dependency_chain(self):
        n = 6
        msgs = RingAllReduce(n, n).messages()
        m = by_id(msgs)
        # Step s, rank i occupies mid s*n + i and sends i -> i+1.
        for s in range(2 * (n - 1)):
            for i in range(n):
                msg = m[s * n + i]
                assert msg.src == i and msg.dst == (i + 1) % n
                if s == 0:
                    assert msg.deps == ()
                else:
                    # Depends on what rank i received in step s-1:
                    # the message sent by rank i-1.
                    assert msg.deps == ((s - 1) * n + (i - 1) % n,)


class TestRecursiveDoubling:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            RecursiveDoublingAllReduce(6)

    def test_round_structure(self):
        n = 8
        msgs = RecursiveDoublingAllReduce(n, 32).messages()
        m = by_id(msgs)
        assert len(msgs) == n * 3  # log2(8) rounds
        for r, span in enumerate([1, 2, 4]):
            for i in range(n):
                msg = m[r * n + i]
                assert msg.dst == msg.src ^ span
                if r:
                    # Depends on the message received from the
                    # previous-round partner.
                    prev_partner = i ^ (span >> 1)
                    assert msg.deps == ((r - 1) * n + prev_partner,)


class TestAllToAll:
    def test_every_pair_once_no_deps(self):
        n = 7
        msgs = AllToAll(n, 4).messages()
        assert len(msgs) == n * (n - 1)
        pairs = {(m.src, m.dst) for m in msgs}
        assert pairs == {(i, j) for i in range(n) for j in range(n) if i != j}
        assert all(m.deps == () for m in msgs)


class TestTrees:
    @pytest.mark.parametrize("n", [2, 5, 8, 13])
    def test_broadcast_reaches_everyone_once(self, n):
        msgs = BroadcastTree(n, 16, root=1).messages()
        assert len(msgs) == n - 1
        recipients = [m.dst for m in msgs]
        assert sorted(recipients) == sorted(set(range(n)) - {1})
        m = by_id(msgs)
        # Every non-root sender forwards only after its own receive.
        received = {msg.dst: msg.mid for msg in msgs}
        for msg in msgs:
            if msg.src != 1:
                assert msg.deps == (received[msg.src],)
            else:
                assert msg.deps == ()

    @pytest.mark.parametrize("n", [2, 5, 8, 13])
    def test_gather_collects_everything(self, n):
        size = 3
        msgs = GatherTree(n, size, root=0).messages()
        assert len(msgs) == n - 1
        # The root's incoming messages carry every rank's contribution.
        root_in = sum(m.size_flits for m in msgs if m.dst == 0)
        assert root_in == size * (n - 1)
        # A node's upward send depends on all sends it received.
        by_dst = {}
        for m in msgs:
            by_dst.setdefault(m.dst, []).append(m.mid)
        for m in msgs:
            assert set(m.deps) == set(by_dst.get(m.src, []))
        validate_messages(msgs)


class TestHalo:
    def test_2d_periodic_counts(self):
        wl = HaloExchange2D((4, 3), halo_flits=5, iterations=2)
        msgs = wl.messages()
        # 12 ranks x 4 face neighbours x 2 iterations.
        assert len(msgs) == 12 * 4 * 2
        assert all(m.size_flits == 5 for m in msgs)

    def test_3d_neighbour_set(self):
        wl = HaloExchange3D((3, 3, 3), iterations=1)
        msgs = wl.messages()
        assert len(msgs) == 27 * 6
        # Rank (1,1,1) = 13 talks to its six face neighbours.
        nbrs = {m.dst for m in msgs if m.src == 13}
        assert nbrs == {4, 22, 10, 16, 12, 14}

    def test_iteration_dependencies(self):
        wl = HaloExchange2D((3, 3), iterations=2)
        msgs = wl.messages()
        m = by_id(msgs)
        first = [x for x in msgs if x.tag == "iter0"]
        second = [x for x in msgs if x.tag == "iter1"]
        assert all(x.deps == () for x in first)
        for x in second:
            # Depends on exactly the iter-0 halos its sender received.
            assert x.deps
            for d in x.deps:
                assert m[d].tag == "iter0"
                assert m[d].dst == x.src

    def test_non_periodic_boundaries(self):
        wl = HaloExchange2D((3, 3), periodic=False, iterations=1)
        msgs = wl.messages()
        # Corner ranks have 2 neighbours, edges 3, centre 4: total 24.
        assert len(msgs) == 24

    def test_degenerate_dims_skip_self(self):
        wl = HaloExchange2D((1, 4), iterations=1)
        for m in wl.messages():
            assert m.src != m.dst


class TestPlacement:
    def test_endpoints_map_is_applied(self):
        eps = [10, 20, 30, 40]
        msgs = AllToAll(4, 2, endpoints=eps).messages()
        used = {m.src for m in msgs} | {m.dst for m in msgs}
        assert used == set(eps)


class TestRegistry:
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_all_kinds_build_and_validate(self, kind):
        wl = make_workload(kind, 24, 8)
        msgs = wl.messages()
        assert msgs
        validate_messages(msgs)
        assert wl.num_ranks <= 24

    def test_constrained_kinds_round_down(self):
        assert make_workload("rd-allreduce", 24, 8).num_ranks == 16
        assert make_workload("halo2d", 24, 8).grid == (4, 6)
        assert make_workload("halo3d", 24, 8).grid == (2, 3, 4)

    @pytest.mark.parametrize("n,grid", [(24, (2, 3, 4)), (27, (3, 3, 3)),
                                        (64, (4, 4, 4)), (256, (4, 8, 8))])
    def test_halo3d_grids_are_genuinely_3d(self, n, grid):
        """The factoriser must prefer balanced shapes over the
        degenerate (1, 1, n) ring of the same size."""
        wl = make_workload("halo3d", n, 4, iterations=1)
        assert wl.grid == grid
        # Interior ranks exchange with 6 face neighbours.
        sends_per_rank = {}
        for m in wl.messages():
            sends_per_rank[m.src] = sends_per_rank.get(m.src, 0) + 1
        assert max(sends_per_rank.values()) == 6

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("fft", 8)


class TestTraceRoundTrip:
    @pytest.mark.parametrize("kind", ["alltoall", "ring-allreduce", "gather", "halo2d"])
    def test_record_then_replay_is_identical(self, kind, tmp_path):
        wl = make_workload(kind, 12, 4)
        path = tmp_path / "trace.jsonl"
        write_trace(wl, path)
        back = read_trace(path)
        assert back.name == wl.name
        assert back.messages() == wl.messages()

    def test_in_memory_round_trip(self):
        wl = BroadcastTree(9, 7, root=2)
        buf = io.StringIO()
        write_trace(wl, buf)
        buf.seek(0)
        assert read_trace(buf).messages() == wl.messages()

    def test_completions_export(self, tmp_path):
        wl = AllToAll(4, 2)
        path = tmp_path / "run.jsonl"
        completions = {m.mid: 100 + m.mid for m in wl.messages()}
        write_trace(wl, path, completions=completions)
        lines = path.read_text().strip().splitlines()
        import json

        header = json.loads(lines[0])
        assert header["format"].startswith("repro-trace")
        assert header["num_messages"] == len(wl.messages())
        recs = [json.loads(ln) for ln in lines[1:]]
        assert all(r["t_complete"] == 100 + r["id"] for r in recs)
        # Replay ignores timestamps but keeps the DAG.
        assert read_trace(path).messages() == wl.messages()

    def test_headerless_trace_accepted(self):
        buf = io.StringIO(
            '{"id": 0, "src": 0, "dst": 1, "size": 4}\n'
            '{"id": 1, "src": 1, "dst": 2, "size": 4, "deps": [0]}\n'
        )
        wl = read_trace(buf)
        msgs = wl.messages()
        assert len(msgs) == 2
        assert msgs[1].deps == (0,)

    def test_bad_trace_rejected(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO(""))
        cyclic = io.StringIO(
            '{"format": "repro-trace/1", "workload": "x", "num_ranks": 2}\n'
            '{"id": 0, "src": 0, "dst": 1, "size": 1, "deps": [1]}\n'
            '{"id": 1, "src": 1, "dst": 0, "size": 1, "deps": [0]}\n'
        )
        with pytest.raises(ValueError, match="cycle"):
            read_trace(cyclic)
