"""Property-based tests for the simulator: conservation and flow-control
invariants over randomised configurations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import MinimalRouting, RoutingTables, ValiantRouting
from repro.sim import SimConfig, SimEngine, simulate
from repro.topologies import SlimFly
from repro.traffic import UniformRandom


@pytest.fixture(scope="module")
def net():
    sf = SlimFly.from_q(5)
    return sf, RoutingTables(sf.adjacency)


@settings(max_examples=8, deadline=None)
@given(
    load=st.floats(min_value=0.02, max_value=0.5),
    buffer_per_port=st.sampled_from([6, 16, 64]),
    seed=st.integers(0, 10_000),
)
def test_packet_conservation(net, load, buffer_per_port, seed):
    """Every measured packet injected below saturation is delivered, and
    after drain nothing remains buffered anywhere."""
    sf, tables = net
    cfg = SimConfig(
        buffer_per_port=buffer_per_port,
        warmup_cycles=60,
        measure_cycles=180,
        drain_cycles=4000,
        seed=seed,
    )
    engine = SimEngine(sf, MinimalRouting(tables), UniformRandom(200), load, cfg)
    result = engine.run()
    assert result.delivered == result.injected
    assert engine.net.total_buffered() == 0
    assert engine._pending_arrivals == 0
    assert not any(engine._arr_wheel)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_credits_restored_after_drain(net, seed):
    """Credit accounting must return to full capacity once idle."""
    sf, tables = net
    cfg = SimConfig(
        warmup_cycles=50, measure_cycles=150, drain_cycles=3000, seed=seed
    )
    engine = SimEngine(
        sf, ValiantRouting(tables, seed=seed), UniformRandom(200), 0.15, cfg
    )
    engine.run()
    # Let in-flight credit messages land.
    for _ in range(cfg.credit_delay + cfg.hop_latency + 2):
        engine._phase_arrivals()
        engine.now += 1
    cap = engine.config.buffer_per_vc
    assert (engine.net.credits == cap).all()


@settings(max_examples=6, deadline=None)
@given(
    load=st.floats(min_value=0.05, max_value=0.4),
    seed=st.integers(0, 1000),
)
def test_latency_bounded_below_by_path_time(net, load, seed):
    """No packet can beat the physical pipeline: latency >= hops*4 + 1."""
    sf, tables = net
    cfg = SimConfig(warmup_cycles=60, measure_cycles=150, drain_cycles=2500, seed=seed)
    res = simulate(sf, MinimalRouting(tables), UniformRandom(200), load, cfg)
    if res.delivered:
        # Minimum possible: 1-hop path = 4 cycles + ejection 1.
        assert res.avg_latency >= 5.0


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 1000))
def test_accepted_never_exceeds_offered(net, seed):
    sf, tables = net
    cfg = SimConfig(warmup_cycles=80, measure_cycles=200, drain_cycles=2000, seed=seed)
    for load in (0.2, 0.6):
        res = simulate(sf, MinimalRouting(tables), UniformRandom(200), load, cfg)
        assert res.accepted_load <= load * 1.15 + 0.02  # Bernoulli noise margin
