"""Channel-tracing tests: the Fig 9 hot-link story, measured in the sim."""

import pytest

from repro.routing import MinimalRouting, UGALRouting
from repro.sim import SimConfig, SimEngine, VecEngine
from repro.sim.reference import ReferenceEngine
from repro.traffic import ShufflePattern, SlimFlyWorstCase, UniformRandom

CFG = SimConfig(warmup_cycles=100, measure_cycles=300, drain_cycles=1500, seed=3)


def _trace(engine_cls, *args, **kwargs):
    eng = engine_cls(*args, trace_channels=True, **kwargs)
    eng.run()
    return eng.channel_flits


class TestTraceParity:
    """channel_flits is engine-independent: the flat engine's batched
    injection fast path (ndarray-returning patterns), its scalar path
    and the vectorised engine must all reproduce the reference trace."""

    @pytest.mark.parametrize("make_pattern", [
        lambda n: UniformRandom(n),
        lambda n: ShufflePattern(n),
    ], ids=["scalar-path", "batched-path"])
    def test_flat_matches_reference(self, sf5, sf5_tables, make_pattern):
        pat = make_pattern(sf5.num_endpoints)
        flat = _trace(SimEngine, sf5, MinimalRouting(sf5_tables), pat, 0.3, CFG)
        ref = _trace(ReferenceEngine, sf5, MinimalRouting(sf5_tables), pat, 0.3, CFG)
        assert flat == ref
        assert flat  # non-trivial trace, not vacuous equality

    def test_multiflit_counts_flits_not_packets(self, sf5, sf5_tables):
        """With L-flit packets every channel traversal carries L flits;
        the trace accumulates flits (Fig 9's flit-hop shares), so each
        count is a multiple of L — identically in all engines."""
        cfg = SimConfig(
            packet_length=4, warmup_cycles=100, measure_cycles=300,
            drain_cycles=2500, seed=3,
        )
        traffic = UniformRandom(sf5.num_endpoints)
        flat = _trace(SimEngine, sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        ref = _trace(ReferenceEngine, sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        vec = _trace(VecEngine, sf5, MinimalRouting(sf5_tables), traffic, 0.3, cfg)
        assert flat == ref == vec
        assert all(count % 4 == 0 for count in flat.values())

    @pytest.mark.parametrize("make_routing", [
        lambda t: MinimalRouting(t),
        lambda t: UGALRouting(t, "local", seed=3),
    ], ids=["MIN", "UGAL-L"])
    def test_vec_engine_traces_identically(self, sf5, sf5_tables, make_routing):
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)
        flat = _trace(SimEngine, sf5, make_routing(sf5_tables), wc, 0.15, CFG)
        vec = _trace(VecEngine, sf5, make_routing(sf5_tables), wc, 0.15, CFG)
        assert flat == vec
        assert flat

    def test_vec_trace_disabled_by_default(self, sf5, sf5_tables):
        eng = VecEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(sf5.num_endpoints),
            0.2, CFG,
        )
        eng.run()
        assert eng.channel_flits == {}


class TestChannelTracing:
    def test_disabled_by_default(self, sf5, sf5_tables):
        eng = SimEngine(sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.2, CFG)
        eng.run()
        assert eng.channel_flits == {}

    def test_uniform_load_spreads(self, sf5, sf5_tables):
        eng = SimEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(200), 0.3, CFG,
            trace_channels=True,
        )
        eng.run()
        counts = list(eng.channel_flits.values())
        assert len(counts) > 300  # most of the 350 channels touched
        # Uniform traffic on a vertex-transitive graph: spread within ~4x.
        assert max(counts) <= 5 * (sum(counts) / len(counts))

    def test_worstcase_min_concentrates_on_hot_links(self, sf5, sf5_tables):
        """Fig 9: minimal routing funnels flows onto the (Rx, Ry) cables."""
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)
        eng = SimEngine(
            sf5, MinimalRouting(sf5_tables), wc, 0.2, CFG, trace_channels=True
        )
        eng.run()
        counts = sorted(eng.channel_flits.values(), reverse=True)
        mean = sum(counts) / len(counts)
        assert counts[0] > 3 * mean  # pronounced hot links

    def test_ugal_disperses_worstcase(self, sf5, sf5_tables):
        """UGAL-L spreads the same pattern over many more channels."""
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)

        def profile(routing):
            eng = SimEngine(sf5, routing, wc, 0.15, CFG, trace_channels=True)
            eng.run()
            counts = sorted(eng.channel_flits.values(), reverse=True)
            return counts[0] / sum(counts), len(counts)

        min_share, min_channels = profile(MinimalRouting(sf5_tables))
        ugal_share, ugal_channels = profile(UGALRouting(sf5_tables, "local", seed=3))
        # UGAL pushes traffic over many more channels, so the busiest
        # one carries a much smaller share of total flit-hops.
        assert ugal_channels > 2 * min_channels
        assert ugal_share < min_share / 2


class TestXiOverride:
    def test_valid_override(self):
        from repro.core.mms import MMSGraph

        g = MMSGraph(5, xi=3)  # 3 is also primitive mod 5
        assert g.xi == 3
        g.validate()

    def test_invalid_override_rejected(self):
        from repro.core.mms import MMSGraph

        with pytest.raises(ValueError):
            MMSGraph(5, xi=4)  # 4 has order 2 mod 5
