"""Fault plane: FaultSpec serialization, sampling determinism, degraded counts.

Covers the fault axis end to end below the differential layer (see
test_fault_differential.py for cross-backend/worker equivalence):
sampling is exact and idempotent across processes, the spec round-trips
with a pinned hash, the null fault preserves the healthy hash pins, and
``DegradedTopology`` recomputes every count the flat channel arrays
size themselves by.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.analysis.faults import DegradedTopology, apply_fault
from repro.scenarios import (
    Campaign,
    FaultSpec,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    canonical_json,
    run_campaign,
    scenario_hash,
)
from repro.scenarios.resolve import resolve, resolve_topology
from repro.sim.config import SimConfig
from repro.sim.telemetry import TelemetrySpec

#: The reference scenario of tests/test_scenarios.py::TestHashing, with
#: its pinned healthy hashes per backend.  The null-fault tests assert
#: these exact digests: adding the fault axis must not move a single
#: healthy hash, or every store and resume file in the wild goes stale.
HEALTHY_HASHES = {
    "cycle": "80269c90cd7f1773",
    "flow": "2a6a978c4eaae106",
    "cycle-vec": "54668d495c521c1a",
}

#: Pinned digest of the reference scenario carrying
#: FaultSpec(link_fraction=0.05, seed=0).  A change here means the
#: fault wire format moved and old faulted store entries are orphaned.
FAULTED_HASH = "a997dc4f3a92a96e"


def reference_scenario(**overrides) -> Scenario:
    kw = dict(
        topology=TopologySpec("SF", params={"q": 5}),
        routing=RoutingSpec("min"),
        sim=SimConfig(),
        traffic=TrafficSpec("uniform"),
        loads=[0.5],
    )
    kw.update(overrides)
    return Scenario(**kw)


# The sf5 fixture (SlimFly.from_q(5), 50 routers) comes from conftest.


# ---------------------------------------------------------------------------
# Sampling (satellite: property-based fault sampling)
# ---------------------------------------------------------------------------


class TestFaultSampling:
    @pytest.mark.parametrize("fraction", [0.02, 0.05, 0.1, 0.25, 0.5])
    def test_kills_exactly_rounded_fraction(self, sf5, fraction):
        degraded = apply_fault(sf5, link_fraction=fraction, seed=1)
        expect = int(round(fraction * sf5.num_links))
        assert len(degraded.failed_links) == expect
        assert degraded.num_links == sf5.num_links - expect

    def test_never_kills_a_link_twice(self, sf5):
        # replace=False sampling: the failed set size equals the draw
        # count for every seed, i.e. no edge is ever drawn twice.
        expect = int(round(0.3 * sf5.num_links))
        for seed in range(20):
            degraded = apply_fault(sf5, link_fraction=0.3, seed=seed)
            assert len(degraded.failed_links) == expect

    def test_same_seed_same_sample(self, sf5):
        a = apply_fault(sf5, link_fraction=0.1, seed=7)
        b = apply_fault(sf5, link_fraction=0.1, seed=7)
        assert a.failed_links == b.failed_links
        assert a.adjacency == b.adjacency

    def test_different_seeds_differ(self, sf5):
        samples = {
            frozenset(apply_fault(sf5, link_fraction=0.1, seed=s).failed_links)
            for s in range(8)
        }
        assert len(samples) > 1

    def test_sample_is_identical_across_processes(self, sf5):
        """The fault sample from a fresh interpreter matches ours."""
        code = (
            "from repro.topologies.slimfly import SlimFly\n"
            "from repro.analysis.faults import apply_fault\n"
            "import json\n"
            "d = apply_fault(SlimFly.from_q(5), link_fraction=0.1, seed=42)\n"
            "print(json.dumps(sorted(list(e) for e in d.failed_links)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        remote = {tuple(e) for e in json.loads(out.stdout)}
        local = apply_fault(sf5, link_fraction=0.1, seed=42).failed_links
        assert remote == local

    def test_targeted_cuts_union_with_sample(self, sf5):
        u, v = sf5.edges()[0]
        degraded = apply_fault(sf5, link_fraction=0.1, seed=3,
                               cut_links=[(v, u)])
        assert (min(u, v), max(u, v)) in degraded.failed_links

    def test_cut_router_removes_every_cable(self, sf5):
        degraded = apply_fault(sf5, cut_routers=[0])
        assert degraded.adjacency[0] == []
        assert degraded.dead_routers == [0]

    def test_killing_every_link_is_an_error(self, sf5):
        with pytest.raises(ValueError, match="every link"):
            apply_fault(sf5, cut_routers=list(range(sf5.num_routers)))

    def test_unknown_link_is_an_error(self, sf5):
        missing = next(
            (0, v) for v in range(1, sf5.num_routers)
            if v not in sf5.adjacency[0]
        )
        with pytest.raises(ValueError, match="does not exist"):
            apply_fault(sf5, cut_links=[missing])


# ---------------------------------------------------------------------------
# FaultSpec wire format
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_round_trip_is_lossless(self):
        spec = FaultSpec(link_fraction=0.1, router_fraction=0.05, seed=9,
                         cut_links=[(4, 2), (0, 1)], cut_routers=[7, 3])
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_survives_json(self):
        spec = FaultSpec(link_fraction=0.08, seed=2, cut_links=[(1, 5)])
        via = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert via == spec

    def test_pinned_faulted_hash(self):
        s = reference_scenario(fault=FaultSpec(link_fraction=0.05, seed=0))
        assert scenario_hash(s) == FAULTED_HASH

    def test_cut_links_normalise_oriented_sorted_unique(self):
        spec = FaultSpec(cut_links=[(5, 1), (1, 5), (2, 0)])
        assert spec.cut_links == [(0, 2), (1, 5)]

    def test_cut_routers_normalise_sorted_unique(self):
        spec = FaultSpec(cut_routers=[4, 1, 4])
        assert spec.cut_routers == [1, 4]

    def test_self_loop_cut_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(cut_links=[(3, 3)])

    def test_negative_router_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(cut_routers=[-1])

    def test_fraction_of_one_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(link_fraction=1.0)

    def test_seed_defaults_to_zero_when_sampling(self):
        assert FaultSpec(link_fraction=0.1).seed == 0

    def test_pure_cut_spec_has_no_seed(self):
        # No random sampling → the seed is dead weight; it must not
        # leak into the hash.
        a = FaultSpec(cut_links=[(0, 1)], seed=5)
        b = FaultSpec(cut_links=[(0, 1)])
        assert a.seed is None
        assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())


# ---------------------------------------------------------------------------
# Null fault & hash discipline (satellite: null edge of the axis)
# ---------------------------------------------------------------------------


class TestNullFault:
    @pytest.mark.parametrize("backend", sorted(HEALTHY_HASHES))
    def test_zero_fraction_normalises_to_none(self, backend):
        s = reference_scenario(backend=backend,
                               fault=FaultSpec(link_fraction=0.0))
        assert s.fault is None
        assert "fault" not in s.to_dict()

    @pytest.mark.parametrize("backend", sorted(HEALTHY_HASHES))
    def test_healthy_hashes_are_unmoved(self, backend):
        s = reference_scenario(backend=backend,
                               fault=FaultSpec(link_fraction=0.0))
        assert scenario_hash(s) == HEALTHY_HASHES[backend]

    def test_faulted_hash_differs_from_healthy(self):
        healthy = reference_scenario()
        faulted = reference_scenario(fault=FaultSpec(link_fraction=0.05,
                                                     seed=0))
        assert scenario_hash(healthy) == HEALTHY_HASHES["cycle"]
        assert scenario_hash(faulted) != scenario_hash(healthy)

    def test_fraction_moves_the_hash(self):
        a = reference_scenario(fault=FaultSpec(link_fraction=0.05, seed=0))
        b = reference_scenario(fault=FaultSpec(link_fraction=0.1, seed=0))
        assert scenario_hash(a) != scenario_hash(b)

    def test_seed_moves_the_hash(self):
        a = reference_scenario(fault=FaultSpec(link_fraction=0.05, seed=0))
        b = reference_scenario(fault=FaultSpec(link_fraction=0.05, seed=1))
        assert scenario_hash(a) != scenario_hash(b)

    def test_scenario_round_trip_with_fault(self):
        s = reference_scenario(fault=FaultSpec(link_fraction=0.05, seed=0))
        assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s


# ---------------------------------------------------------------------------
# Validation: fault is an open-loop, table-routed axis
# ---------------------------------------------------------------------------


class TestFaultValidation:
    def test_closed_loop_scenario_rejects_fault(self):
        with pytest.raises(ValueError, match="open-loop"):
            Scenario(
                topology=TopologySpec("SF", params={"q": 5}),
                routing=RoutingSpec("min"),
                sim=SimConfig(),
                workload=WorkloadSpec("halo2d", ranks=16, size_flits=4,
                                      iterations=2),
                fault=FaultSpec(link_fraction=0.05),
            )

    @pytest.mark.parametrize("name", ["df-min", "df-ugal-l", "ft-anca"])
    def test_structural_routing_rejects_fault(self, name):
        topo = (TopologySpec("DF", target_endpoints=300)
                if name.startswith("df-")
                else TopologySpec("FT-3", target_endpoints=128))
        with pytest.raises(ValueError, match="healthy structure"):
            Scenario(
                topology=topo,
                routing=RoutingSpec(name),
                sim=SimConfig(),
                traffic=TrafficSpec("uniform"),
                loads=[0.3],
                fault=FaultSpec(link_fraction=0.05),
            )

    @pytest.mark.parametrize("name", ["min", "val", "ugal-l", "ugal-g"])
    def test_table_routings_accept_fault(self, name):
        s = reference_scenario(routing=RoutingSpec(name, {"seed": 1}),
                               fault=FaultSpec(link_fraction=0.05))
        assert s.fault is not None


# ---------------------------------------------------------------------------
# DegradedTopology counts (satellite: recomputed cached properties)
# ---------------------------------------------------------------------------


class TestDegradedCounts:
    def test_link_and_channel_counts_recomputed(self, sf5):
        degraded = apply_fault(sf5, link_fraction=0.2, seed=4)
        killed = len(degraded.failed_links)
        assert degraded.num_links == sf5.num_links - killed
        assert degraded.num_channels == sf5.num_channels - 2 * killed
        assert degraded.num_channels == sum(
            len(n) for n in degraded.adjacency)

    def test_network_radix_reflects_survivors(self, sf5):
        degraded = apply_fault(sf5, link_fraction=0.3, seed=4)
        assert degraded.network_radix == max(
            len(n) for n in degraded.adjacency)
        # A targeted cut that prunes every router below full degree
        # must pull the recomputed radix down with it.
        shaved = apply_fault(
            sf5, cut_links=[(u, sf5.adjacency[u][0])
                            for u in range(sf5.num_routers)])
        assert shaved.network_radix < sf5.network_radix

    def test_router_radix_is_installed_ports(self, sf5):
        # Cost models price the ports that were bought, not the cables
        # that survived — router_radix deliberately stays at base.
        degraded = apply_fault(sf5, link_fraction=0.3, seed=4)
        assert degraded.router_radix == sf5.router_radix
        assert degraded.concentration == sf5.concentration

    def test_endpoints_are_preserved(self, sf5):
        degraded = apply_fault(sf5, link_fraction=0.1, seed=2)
        assert degraded.num_endpoints == sf5.num_endpoints
        assert degraded.endpoint_map == sf5.endpoint_map

    def test_channel_count_matches_base_class_formula(self, sf5):
        assert sf5.num_channels == 2 * sf5.num_links

    def test_telemetry_channel_loads_sized_by_degraded_count(self):
        """Regression: probe arrays must size to the degraded network.

        A stale healthy channel count would make the flat
        ``channel_load`` vector the wrong length for every consumer
        that joins it against ``channel_layout``.
        """
        s = reference_scenario(
            sim=SimConfig(warmup_cycles=20, measure_cycles=60,
                          drain_cycles=300),
            loads=[0.2],
            label="probe",
            fault=FaultSpec(link_fraction=0.1, seed=1),
            telemetry=TelemetrySpec(channel_flits=True),
        )
        report = run_campaign(Campaign("fault-probe", [s]))
        degraded = resolve_topology(s.topology, s.fault)
        assert isinstance(degraded, DegradedTopology)
        assert report.metrics_rows, "telemetry sidecar row missing"
        load_vec = report.metrics_rows[0]["channel_load"]
        assert len(load_vec) == degraded.num_channels
        assert len(load_vec) < degraded.base.num_channels


# ---------------------------------------------------------------------------
# Disconnection is a structured result, not a crash
# ---------------------------------------------------------------------------


class TestDisconnection:
    def fragmented(self) -> Scenario:
        # Isolating router 0 severs its endpoints from everything else.
        return reference_scenario(
            sim=SimConfig(warmup_cycles=20, measure_cycles=60,
                          drain_cycles=300),
            loads=[0.2, 0.5],
            label="severed",
            fault=FaultSpec(cut_routers=[0]),
        )

    def test_resolve_reports_disconnected(self):
        resolved = resolve(self.fragmented())
        assert resolved.disconnected

    def test_rows_are_structured_not_raised(self):
        s = self.fragmented()
        report = run_campaign(Campaign("fault-severed", [s]))
        assert len(report.rows) == len(s.loads)
        for row in report.rows:
            assert row["disconnected"] is True
            assert row["latency"] is None
            assert row["accepted"] is None
            assert row["fault_fraction"] == 0.0

    def test_connected_fault_rows_carry_fraction(self):
        s = reference_scenario(
            sim=SimConfig(warmup_cycles=20, measure_cycles=60,
                          drain_cycles=300),
            loads=[0.2],
            label="mild",
            fault=FaultSpec(link_fraction=0.05, seed=1),
        )
        report = run_campaign(Campaign("fault-mild", [s]))
        (row,) = report.rows
        assert row["disconnected"] is False
        assert row["fault_fraction"] == 0.05
        assert row["latency"] is not None

    def test_healthy_rows_have_no_fault_keys(self):
        s = reference_scenario(
            sim=SimConfig(warmup_cycles=20, measure_cycles=60,
                          drain_cycles=300),
            loads=[0.2],
            label="healthy",
        )
        report = run_campaign(Campaign("fault-healthy", [s]))
        (row,) = report.rows
        assert "fault_fraction" not in row
        assert "disconnected" not in row
