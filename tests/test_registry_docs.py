"""docs/REGISTRY.md must match a fresh regeneration (no staleness)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_registry", DOCS / "gen_registry.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_registry", module)
    spec.loader.exec_module(module)
    return module


def test_committed_registry_doc_is_fresh():
    generated = _load_generator().generate()
    committed = (DOCS / "REGISTRY.md").read_text(encoding="utf-8")
    assert committed == generated, (
        "docs/REGISTRY.md is stale; regenerate with "
        "`PYTHONPATH=src python docs/gen_registry.py`"
    )


def test_table_rows_have_consistent_cell_counts():
    # Unescaped pipes (union annotations) would split cells and shift
    # columns when rendered.
    import re

    cell_split = re.compile(r"(?<!\\)\|")
    expected = None
    for line in (DOCS / "REGISTRY.md").read_text(encoding="utf-8").splitlines():
        if line.startswith("|"):
            count = len(cell_split.findall(line))
            if set(line.replace("|", "").replace("-", "").strip()) == set():
                expected = count  # separator row pins the table width
            elif expected is not None:
                assert count == expected, f"ragged table row: {line}"
        else:
            expected = None


def test_every_registry_key_documented():
    from repro.routing.registry import ROUTING_BUILDERS
    from repro.topologies.registry import TOPOLOGY_BUILDERS
    from repro.traffic.registry import PATTERN_KINDS
    from repro.workloads.registry import PLACEMENT_KINDS, WORKLOAD_KINDS

    text = (DOCS / "REGISTRY.md").read_text(encoding="utf-8")
    for key in (
        list(TOPOLOGY_BUILDERS)
        + list(ROUTING_BUILDERS)
        + list(PATTERN_KINDS)
        + list(WORKLOAD_KINDS)
        + list(PLACEMENT_KINDS)
    ):
        assert f"`{key}`" in text, f"registry key {key!r} missing from docs"
