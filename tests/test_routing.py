"""Tests for routing tables, MIN/VAL/UGAL, DF and FT protocols."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import (
    ANCARouting,
    DragonflyMinimal,
    DragonflyUGAL,
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
)
from repro.routing.valiant import stitch
from repro.topologies.fattree import AGG, CORE, EDGE


class FakeNetwork:
    """Minimal queue-length oracle for UGAL decisions outside the sim."""

    def __init__(self, lengths=None, default=0):
        self.lengths = lengths or {}
        self.default = default

    def queue_length(self, u, v):
        return self.lengths.get((u, v), self.default)


class TestTables:
    def test_distance_symmetry(self, sf5_tables):
        t = sf5_tables
        assert (t.dist == t.dist.T).all()
        assert (t.dist.diagonal() == 0).all()

    def test_sf_max_distance_two(self, sf5_tables):
        assert sf5_tables.diameter() == 2

    def test_next_hop_candidates_shrink_distance(self, sf5_tables):
        t = sf5_tables
        for src in range(0, 50, 7):
            for dst in range(0, 50, 11):
                if src == dst:
                    continue
                for cand in t.next_hop_candidates(src, dst):
                    assert t.distance(cand, dst) == t.distance(src, dst) - 1

    def test_min_path_is_shortest(self, sf5_tables):
        t = sf5_tables
        for src in range(0, 50, 5):
            for dst in range(0, 50, 13):
                path = t.min_path(src, dst)
                assert len(path) - 1 == t.distance(src, dst)
                assert path[0] == src and path[-1] == dst

    def test_min_path_deterministic(self, sf5_tables):
        assert sf5_tables.min_path(0, 37) == sf5_tables.min_path(0, 37)

    def test_count_min_paths_unique_in_moore_graph(self, sf5_tables):
        """Hoffman–Singleton: exactly one shortest path between any pair."""
        t = sf5_tables
        for src in range(0, 50, 3):
            for dst in range(50):
                if src != dst:
                    assert t.count_min_paths(src, dst) == 1

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            RoutingTables([[1], [0], []])

    def test_average_distance(self, sf5_tables, sf5):
        assert sf5_tables.average_distance() == pytest.approx(
            sf5.average_distance(), rel=1e-6
        )


class TestMinimal:
    def test_plan_matches_tables(self, sf5_tables):
        r = MinimalRouting(sf5_tables)
        assert r.plan(0, 42, None) == sf5_tables.min_path(0, 42)
        assert r.num_vcs == 2  # SF diameter

    def test_source_routed_flag(self, sf5_tables):
        r = MinimalRouting(sf5_tables)
        assert r.source_routed
        with pytest.raises(NotImplementedError):
            r.next_hop(0, 1, None, None)


class TestValiant:
    def test_paths_valid_and_bounded(self, sf5_tables):
        r = ValiantRouting(sf5_tables, seed=0)
        for dst in range(1, 50, 7):
            path = r.plan(0, dst, None)
            assert path[0] == 0 and path[-1] == dst
            # SF: VAL paths have 2..4 hops.
            assert 1 <= len(path) - 1 <= 4
            for u, v in zip(path, path[1:]):
                assert v in sf5_tables.adjacency[u]

    def test_max_hops_constraint(self, sf5_tables):
        r = ValiantRouting(sf5_tables, seed=0, max_hops=3)
        for dst in range(1, 50, 5):
            assert len(r.plan(0, dst, None)) - 1 <= 3

    def test_stitch_validates(self):
        assert stitch([1, 2], [2, 3]) == [1, 2, 3]
        with pytest.raises(ValueError):
            stitch([1, 2], [5, 3])

    def test_self_path(self, sf5_tables):
        r = ValiantRouting(sf5_tables, seed=0)
        assert r.plan(4, 4, None) == [4]

    def test_randomised_intermediates(self, sf5_tables):
        r = ValiantRouting(sf5_tables, seed=0)
        mids = {tuple(r.plan(0, 30, None)) for _ in range(20)}
        assert len(mids) > 3  # genuinely random path choices


class TestUGAL:
    def test_empty_network_prefers_min(self, sf5_tables):
        r = UGALRouting(sf5_tables, "local", seed=0)
        net = FakeNetwork(default=0)
        for dst in range(1, 50, 9):
            path = r.plan(0, dst, net)
            assert len(path) - 1 == sf5_tables.distance(0, dst)

    def test_congested_min_port_diverts(self, sf5_tables):
        r = UGALRouting(sf5_tables, "local", seed=1)
        dst = 37
        min_path = sf5_tables.min_path(0, dst)
        # Saturate the local queue toward the minimal first hop.
        net = FakeNetwork({(0, min_path[1]): 500}, default=0)
        path = r.plan(0, dst, net)
        assert path[1] != min_path[1], "UGAL-L should avoid the hot output"

    def test_global_mode_uses_whole_path(self, sf5_tables):
        r = UGALRouting(sf5_tables, "global", seed=2)
        dst = 42
        min_path = sf5_tables.min_path(0, dst)
        # Congest a *downstream* link of the min path: UGAL-G sees it,
        # UGAL-L does not.
        hot = {(min_path[-2], min_path[-1]): 500}
        g_path = r.plan(0, dst, FakeNetwork(hot))
        assert g_path[-2] != min_path[-2] or len(g_path) != len(min_path)

    def test_mode_validation(self, sf5_tables):
        with pytest.raises(ValueError):
            UGALRouting(sf5_tables, "sideways")

    def test_candidate_count(self, sf5_tables):
        r = UGALRouting(sf5_tables, "local", num_candidates=4, seed=0)
        cands = r.candidate_paths(0, 23)
        assert len(cands) == 5  # MIN + 4 VAL


class TestDragonflyRouting:
    def test_minimal_lgl(self, df3):
        tables = RoutingTables(df3.adjacency)
        r = DragonflyMinimal(df3, tables)
        for src in range(0, df3.num_routers, 13):
            for dst in range(0, df3.num_routers, 17):
                if src == dst:
                    continue
                path = r.plan(src, dst, None)
                # Canonical DF minimal: at most local-global-local.
                assert len(path) - 1 <= 3
                for u, v in zip(path, path[1:]):
                    assert v in df3.adjacency[u]
                groups = [df3.group_of(x) for x in path]
                changes = sum(1 for a, b in zip(groups, groups[1:]) if a != b)
                assert changes == (0 if groups[0] == groups[-1] else 1)

    def test_valiant_goes_through_third_group(self, df3):
        tables = RoutingTables(df3.adjacency)
        r = DragonflyUGAL(df3, tables, seed=0)
        src, dst = 0, df3.num_routers - 1
        seen_mid_groups = set()
        for _ in range(30):
            path = r._valiant_group_path(src, dst)
            groups = {df3.group_of(x) for x in path}
            seen_mid_groups |= groups - {df3.group_of(src), df3.group_of(dst)}
        assert seen_mid_groups, "VAL-group paths should visit intermediate groups"

    def test_ugal_prefers_min_when_idle(self, df3):
        tables = RoutingTables(df3.adjacency)
        r = DragonflyUGAL(df3, tables, seed=0)
        net = FakeNetwork(default=0)
        path = r.plan(0, df3.num_routers - 1, net)
        assert len(path) - 1 <= 3


class TestANCA:
    def test_same_pod_two_hops(self, ft4):
        r = ANCARouting(ft4, seed=0)
        # Two edge switches in pod 0.
        src, dst = 0, 1
        at = src
        hops = 0
        while at != dst:
            at = r.next_hop(at, dst, None, None)
            hops += 1
            assert hops <= 4
        assert hops == 2  # edge -> agg -> edge

    def test_cross_pod_four_hops_via_core(self, ft4):
        r = ANCARouting(ft4, seed=0)
        src, dst = 0, ft4.p * ft4.p - 1  # first pod vs last pod edge switch
        at, hops, levels = src, 0, [ft4.level(src)]
        while at != dst:
            at = r.next_hop(at, dst, None, None)
            levels.append(ft4.level(at))
            hops += 1
            assert hops <= 4
        assert hops == 4
        assert levels == [EDGE, AGG, CORE, AGG, EDGE]

    def test_adaptive_choice_uses_queues(self, ft4):
        r = ANCARouting(ft4, seed=0)
        ups = ft4.up_neighbors(0)
        # All but one uplink congested.
        hot = {(0, u): 99 for u in ups[1:]}
        net = FakeNetwork(hot, default=99)
        net.lengths[(0, ups[0])] = 0
        chosen = r.next_hop(0, ft4.p * ft4.p - 1, None, net)
        assert chosen == ups[0]

    def test_plan_returns_none(self, ft4):
        assert ANCARouting(ft4).plan(0, 5, None) is None
