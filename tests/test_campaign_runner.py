"""run_campaign: dispatch, JSONL persistence, resume, CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main as cli_main
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    run_campaign,
    scenario_hash,
)
from repro.sim.config import SimConfig
from repro.sim.parallel import simulations_started

CFG = SimConfig(warmup_cycles=20, measure_cycles=60, drain_cycles=300)
HC = TopologySpec("HC", target_endpoints=16, params={"concentration": 2})


def open_scenario(label="open", seed=0, loads=(0.1, 0.3)):
    return Scenario(
        topology=HC,
        routing=RoutingSpec("min"),
        sim=CFG,
        traffic=TrafficSpec("uniform", seed=seed),
        loads=list(loads),
        label=label,
    )


def closed_scenario(label="closed", kind="ring-allreduce", seed=0):
    return Scenario(
        topology=HC,
        routing=RoutingSpec("min"),
        sim=SimConfig(seed=seed),
        workload=WorkloadSpec(kind, ranks=8, size_flits=2),
        max_cycles=50_000,
        label=label,
    )


def mixed_campaign() -> Campaign:
    return Campaign(
        "mixed",
        [
            open_scenario("sweep-a"),
            closed_scenario("ring"),
            closed_scenario("a2a", kind="alltoall"),
            open_scenario("sweep-b", seed=1),
        ],
    )


class TestDispatch:
    def test_rows_in_campaign_order_with_positions(self, tmp_path):
        campaign = mixed_campaign()
        report = run_campaign(campaign, out=tmp_path / "r.jsonl")
        assert report.simulated == 4 and report.skipped == 0
        labels = [r["label"] for r in report.rows]
        assert labels == ["sweep-a", "sweep-a", "ring", "a2a", "sweep-b", "sweep-b"]
        assert [r["row"] for r in report.rows] == [0, 1, 0, 0, 0, 1]
        engines = {r["label"]: r["engine"] for r in report.rows}
        assert engines["sweep-a"] == "open" and engines["ring"] == "closed"

    def test_rows_are_self_describing(self):
        report = run_campaign(Campaign("one", [open_scenario()]))
        row = report.rows[0]
        restored = Scenario.from_dict(row["spec"])
        assert scenario_hash(restored) == row["scenario"]
        assert {"load", "latency", "accepted", "saturated"} <= set(row)

    def test_file_matches_report_rows(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        report = run_campaign(mixed_campaign(), out=out)
        lines = out.read_text().splitlines()
        assert [json.loads(x) for x in lines] == report.rows

    def test_duplicates_run_once(self):
        before = simulations_started()
        report = run_campaign(Campaign("dup", [open_scenario(), open_scenario()]))
        assert report.simulated == 1
        assert simulations_started() - before == 2  # one sweep, two loads

    def test_worker_count_does_not_change_rows(self, tmp_path):
        serial = run_campaign(mixed_campaign(), workers=1, out=tmp_path / "w1.jsonl")
        fanned = run_campaign(mixed_campaign(), workers=2, out=tmp_path / "w2.jsonl")
        assert serial.rows == fanned.rows
        assert (tmp_path / "w1.jsonl").read_bytes() == (tmp_path / "w2.jsonl").read_bytes()

    def test_resume_requires_out(self):
        with pytest.raises(ValueError, match="resume"):
            run_campaign(mixed_campaign(), resume=True)

    def test_rows_carry_fidelity(self):
        report = run_campaign(
            Campaign("fid", [open_scenario(), closed_scenario()])
        )
        assert {r["fidelity"] for r in report.rows} == {"cycle"}

    def test_flow_backend_dispatch_and_fidelity_tag(self, tmp_path):
        flow = open_scenario("flow-sweep")
        flow.backend = "flow"
        flow.revalidate()
        campaign = Campaign("fid-mixed", [open_scenario("cycle-sweep"), flow])
        report = run_campaign(campaign, out=tmp_path / "rows.jsonl")
        fidelity = {r["label"]: r["fidelity"] for r in report.rows}
        assert fidelity == {"cycle-sweep": "cycle", "flow-sweep": "flow"}
        # Flow rows are real measurements with the open-loop schema.
        flow_rows = [r for r in report.rows if r["fidelity"] == "flow"]
        assert len(flow_rows) == 2
        assert all(r["spec"]["backend"] == "flow" for r in flow_rows)
        assert all(r["accepted"] is not None for r in flow_rows)

    def test_flow_campaign_worker_count_byte_identity(self, tmp_path):
        """The flow determinism contract at the campaign level: output
        files are byte-identical for any worker count."""
        def flow_campaign():
            s = open_scenario("flow", loads=(0.2, 0.5, 0.8))
            s.backend = "flow"
            s.revalidate()
            return Campaign("flow-only", [s])

        run_campaign(flow_campaign(), workers=1, out=tmp_path / "w1.jsonl")
        run_campaign(flow_campaign(), workers=4, out=tmp_path / "w4.jsonl")
        assert (tmp_path / "w1.jsonl").read_bytes() == (
            tmp_path / "w4.jsonl"
        ).read_bytes()

    def test_flow_campaign_resumes_with_zero_simulations(self, tmp_path):
        s = open_scenario("flow", loads=(0.2, 0.5))
        s.backend = "flow"
        s.revalidate()
        campaign = Campaign("flow-resume", [s])
        out = tmp_path / "rows.jsonl"
        run_campaign(campaign, out=out)
        before = simulations_started()
        report = run_campaign(campaign, out=out, resume=True)
        assert simulations_started() == before
        assert report.simulated == 0 and report.skipped == 1


class TestResume:
    def test_complete_file_resumes_with_zero_simulations(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = mixed_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()

        before = simulations_started()
        report = run_campaign(campaign, out=out, resume=True)
        assert simulations_started() == before
        assert report.simulated == 0 and report.skipped == 4
        assert out.read_bytes() == clean
        assert [r["label"] for r in report.rows] == [
            "sweep-a", "sweep-a", "ring", "a2a", "sweep-b", "sweep-b"
        ]

    @pytest.mark.parametrize("keep_lines", [0, 1, 2, 3, 5])
    def test_killed_campaign_resumes_byte_identical(self, tmp_path, keep_lines):
        out = tmp_path / "rows.jsonl"
        campaign = mixed_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()

        # Simulate a kill: keep a prefix plus a torn (half-written) line.
        lines = clean.decode().splitlines(keepends=True)
        torn = lines[keep_lines][: len(lines[keep_lines]) // 2] if keep_lines < len(lines) else ""
        out.write_bytes("".join(lines[:keep_lines]).encode() + torn.encode())

        report = run_campaign(campaign, out=out, resume=True)
        assert out.read_bytes() == clean
        assert report.simulated + report.skipped == 4

    def test_interrupted_resume_keeps_tmp_progress(self, tmp_path):
        # Kill #1 leaves a partial out file; the resume run makes more
        # progress into out.jsonl.tmp and is killed too.  The next
        # resume must harvest the tmp file instead of re-simulating.
        out = tmp_path / "rows.jsonl"
        campaign = mixed_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()
        lines = clean.decode().splitlines(keepends=True)
        out.write_text("".join(lines[:2]))                      # kill #1: sweep-a only
        (tmp_path / "rows.jsonl.tmp").write_text("".join(lines[:4]))  # kill #2: +ring, a2a
        before = simulations_started()
        report = run_campaign(campaign, out=out, resume=True)
        assert report.simulated == 1 and report.skipped == 3    # only sweep-b reruns
        assert simulations_started() - before == 2              # its two load points
        assert out.read_bytes() == clean

    def test_partial_scenario_reruns_completely(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = Campaign("one", [open_scenario(loads=(0.1, 0.2, 0.3))])
        run_campaign(campaign, out=out)
        clean = out.read_bytes()
        # Keep only 2 of the scenario's 3 rows: the scenario is
        # incomplete and must be resimulated from scratch.
        out.write_text("".join(clean.decode().splitlines(keepends=True)[:2]))
        before = simulations_started()
        report = run_campaign(campaign, out=out, resume=True)
        assert simulations_started() > before
        assert report.simulated == 1 and report.skipped == 0
        assert out.read_bytes() == clean

    def test_resume_ignores_foreign_rows(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = Campaign("one", [open_scenario()])
        run_campaign(campaign, out=out)
        clean = out.read_bytes()
        out.write_bytes(b'{"scenario": "feedface00000000", "row": 0, "rows": 1}\n' + clean)
        report = run_campaign(campaign, out=out, resume=True)
        assert report.skipped == 1
        assert out.read_bytes() == clean

    def test_resume_ignores_rows_from_other_campaigns(self, tmp_path):
        # Same scenarios under a renamed campaign: cached lines would
        # replay the stale name verbatim, so they must not be reused.
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("old-name", [open_scenario()]), out=out)
        report = run_campaign(
            Campaign("new-name", [open_scenario()]), out=out, resume=True
        )
        assert report.simulated == 1 and report.skipped == 0
        assert all(
            json.loads(l)["campaign"] == "new-name"
            for l in out.read_text().splitlines()
        )

    def test_resume_with_missing_file_runs_everything(self, tmp_path):
        report = run_campaign(
            Campaign("one", [open_scenario()]), out=tmp_path / "new.jsonl", resume=True
        )
        assert report.simulated == 1

    def test_changed_scenario_invalidates_cache(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("one", [open_scenario(label="v1")]), out=out)
        report = run_campaign(
            Campaign("one", [open_scenario(label="v2")]), out=out, resume=True
        )
        assert report.simulated == 1 and report.skipped == 0

    def test_noop_resume_never_resolves_a_topology(self, tmp_path, monkeypatch):
        """A fully-cached resume short-circuits before spec resolution:
        O(hash count) plus the byte replay, no topology construction."""
        out = tmp_path / "rows.jsonl"
        campaign = mixed_campaign()
        run_campaign(campaign, out=out)
        clean = out.read_bytes()

        def bomb(*a, **k):  # any resolve() call fails the test
            raise AssertionError("no-op resume resolved a scenario")

        monkeypatch.setattr("repro.scenarios.runner.resolve", bomb)
        report = run_campaign(campaign, out=out, resume=True)
        assert report.simulated == 0 and report.skipped == 4
        assert out.read_bytes() == clean


class TestHeartbeatRateGuards:
    """sims/sec must be null, not a division artifact, whenever a
    campaign schedules zero simulations or finishes in ~zero time."""

    def test_fully_resumed_campaign_reports_null_rate(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        campaign = mixed_campaign()
        run_campaign(campaign, out=out)
        report = run_campaign(campaign, out=out, resume=True)
        hb = report.heartbeat
        assert hb["sims"] == 0 and hb["sims_per_s"] is None
        assert "sims/s" not in report.summary()

    def test_simulated_campaign_reports_a_rate(self):
        report = run_campaign(Campaign("one", [open_scenario()]))
        hb = report.heartbeat
        assert hb["sims"] > 0 and hb["sims_per_s"] > 0
        assert "sims/s" in report.summary()

    def test_rate_helper_guards_zero_sims_and_zero_wall(self):
        from repro.scenarios.runner import _sims_per_s

        assert _sims_per_s(0, 1.0) is None
        assert _sims_per_s(5, 0.0) is None
        assert _sims_per_s(5, -1.0) is None
        assert _sims_per_s(10, 2.0) == 5.0

    def test_summary_tolerates_rateless_heartbeat(self):
        from repro.scenarios.runner import CampaignReport

        report = CampaignReport(campaign="c")
        report.events.append(
            {"event": "campaign_finish", "wall_s": 0.0, "sims": 0,
             "sims_per_s": None, "simulated": 0, "skipped": 0, "rows": 0}
        )
        assert "sims/s" not in report.summary()  # and no TypeError


class TestTelemetrySidecar:
    """The metrics sidecar: worker-count byte-identity, resume replay,
    and the no-probes-no-file contract."""

    @staticmethod
    def probed_scenario(label="probed", loads=(0.1, 0.3)):
        from repro.sim.telemetry import TelemetrySpec

        return Scenario(
            topology=HC,
            routing=RoutingSpec("min"),
            sim=CFG,
            traffic=TrafficSpec("uniform", seed=0),
            loads=list(loads),
            label=label,
            telemetry=TelemetrySpec.full(),
        )

    def test_sidecar_byte_identical_across_worker_counts(self, tmp_path):
        for w in (1, 4):
            run_campaign(
                Campaign("tele", [self.probed_scenario()]),
                workers=w, out=tmp_path / f"w{w}.jsonl",
            )
        s1 = (tmp_path / "w1.jsonl.metrics.jsonl").read_bytes()
        s4 = (tmp_path / "w4.jsonl.metrics.jsonl").read_bytes()
        assert s1 == s4
        rows = [json.loads(x) for x in s1.decode().splitlines()]
        assert [r["row"] for r in rows] == [0, 1]
        assert all("channel_load" in r and "latency_hist" in r for r in rows)

    def test_report_carries_metrics_rows_and_heartbeat(self):
        report = run_campaign(Campaign("tele", [self.probed_scenario()]))
        assert len(report.metrics_rows) == 2
        hb = report.heartbeat
        assert hb is not None and hb["sims"] == 2
        assert "telemetry rows" in report.summary()
        assert "sims/s" in report.summary()

    def test_resume_replays_sidecar_byte_identical(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("tele", [self.probed_scenario()]), out=out)
        sidecar = out.with_name(out.name + ".metrics.jsonl")
        before = sidecar.read_bytes()
        report = run_campaign(
            Campaign("tele", [self.probed_scenario()]), out=out, resume=True
        )
        assert report.simulated == 0 and report.skipped == 1
        assert sidecar.read_bytes() == before

    def test_probeless_campaign_leaves_no_sidecar(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("plain", [open_scenario()]), out=out)
        assert not out.with_name(out.name + ".metrics.jsonl").exists()

    def test_stale_sidecar_removed_when_probes_disarmed(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        run_campaign(Campaign("tele", [self.probed_scenario()]), out=out)
        sidecar = out.with_name(out.name + ".metrics.jsonl")
        assert sidecar.exists()
        run_campaign(Campaign("tele", [open_scenario("probed")]), out=out)
        assert not sidecar.exists()

    def test_progress_streams_heartbeat_events(self, tmp_path, capsys):
        run_campaign(
            Campaign("tele", [self.probed_scenario()]),
            out=tmp_path / "r.jsonl", progress=True,
        )
        events = [json.loads(x) for x in capsys.readouterr().err.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "scenario_start"
        assert kinds[-1] == "campaign_finish"
        assert events[-1]["sims"] == 2


class TestCampaignCLI:
    def test_cli_runs_and_resumes(self, tmp_path, capsys):
        campaign = Campaign("cli", [open_scenario(), closed_scenario()])
        cfile = campaign.save(tmp_path / "c.json")
        out = tmp_path / "c.jsonl"
        assert cli_main(["campaign", str(cfile), "--out", str(out)]) == 0
        assert "simulated=2" in capsys.readouterr().out
        assert cli_main(
            ["campaign", str(cfile), "--out", str(out), "--resume"]
        ) == 0
        assert "simulated=0 skipped=2" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 3

    def test_cli_default_out_derives_from_campaign_file(self, tmp_path, capsys):
        cfile = Campaign("cli", [open_scenario()]).save(tmp_path / "grid.json")
        assert cli_main(["campaign", str(cfile)]) == 0
        assert (tmp_path / "grid.results.jsonl").exists()

    def test_cli_missing_file_errors(self, tmp_path, capsys):
        assert cli_main(["campaign", str(tmp_path / "nope.json")]) == 2
        assert cli_main(["campaign"]) == 2

    def test_cli_rejects_stray_positional(self, capsys):
        # `fig6 worstcase` (forgotten --pattern) must not silently run
        # the default pattern with the stray word bound to campaign_file.
        assert cli_main(["fig6", "worstcase"]) == 2
        assert "unexpected argument" in capsys.readouterr().err

    def test_cli_rejects_cross_mode_flags(self, tmp_path, capsys):
        cfile = Campaign("cli", [open_scenario()]).save(tmp_path / "c.json")
        assert cli_main(["campaign", str(cfile), "--json", "x.json"]) == 2
        assert "--json applies to experiments" in capsys.readouterr().err
        assert cli_main(["campaign", str(cfile), "--replicas", "8"]) == 2
        assert "edit the spec" in capsys.readouterr().err
        assert cli_main(["table2", "--scale", "quick", "--resume"]) == 2
        assert "campaign" in capsys.readouterr().err

    def test_cli_rejects_service_flags_cross_mode(self, tmp_path, capsys):
        cfile = Campaign("cli", [open_scenario()]).save(tmp_path / "c.json")
        assert cli_main(["table2", "--store", "s"]) == 2
        assert "--store/--service" in capsys.readouterr().err
        assert cli_main(["table2", "--fail-after", "1"]) == 2
        assert "serve-worker" in capsys.readouterr().err
        assert cli_main(["campaign", str(cfile), "--fail-after", "1"]) == 2
        assert "edit the spec" in capsys.readouterr().err
        assert cli_main(["serve-worker"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert cli_main(["serve-worker", "h:1", "--resume"]) == 2
        assert "serve-worker" in capsys.readouterr().err
        assert cli_main(["campaign", str(cfile), "--service", "nonsense"]) == 2
        assert "[HOST:]PORT" in capsys.readouterr().err

    def test_cli_campaign_store_round_trip(self, tmp_path, capsys):
        cfile = Campaign("cli", [open_scenario()]).save(tmp_path / "c.json")
        store = tmp_path / "store"
        out1, out2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert cli_main(
            ["campaign", str(cfile), "--out", str(out1), "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["campaign", str(cfile), "--out", str(out2), "--store", str(store)]
        ) == 0
        assert "simulated=0" in capsys.readouterr().out
        assert out1.read_bytes() == out2.read_bytes()

    def test_cli_json_flag_writes_experiment_results(self, tmp_path, capsys):
        path = tmp_path / "res.json"
        assert cli_main(["table2", "--scale", "quick", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert isinstance(data, list) and data[0]["experiment"]
        assert data[0]["tables"][0]["rows"]
