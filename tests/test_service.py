"""Layer 7 campaign service: store integrity, wire protocol, scheduler."""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
import subprocess
import sys
import threading

import pytest

from test_campaign_runner import closed_scenario, mixed_campaign, open_scenario
from test_fault_differential import FAULT, faulted_scenario
from repro.scenarios import Campaign, FaultSpec, run_campaign, scenario_hash
from repro.service.coordinator import ServiceConfig
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    MESSAGE_TYPES,
    FrameDecoder,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.service.store import (
    STORE_BACKENDS,
    FileResultStore,
    MemoryResultStore,
    StoreEntry,
    StoreIntegrityError,
    open_store,
)
from repro.service.worker import parse_address, serve_worker
from repro.sim.parallel import simulations_started
from repro.sim.telemetry import TelemetrySpec


def telemetry_campaign() -> Campaign:
    """Two open scenarios with armed probes (exercise the metrics sidecar)."""
    spec = TelemetrySpec(latency_hist=True, channel_flits=True)
    return Campaign(
        "probed",
        [
            dataclasses.replace(open_scenario("probed-a"), telemetry=spec),
            dataclasses.replace(open_scenario("probed-b", seed=1), telemetry=spec),
        ],
    )


def campaign_files(tmp_path, name):
    out = tmp_path / f"{name}.jsonl"
    return out, out.with_name(out.name + ".metrics.jsonl"), out.with_name(
        out.name + ".meta.json"
    )


# ---------------------------------------------------------------------------
# Content-addressed store
# ---------------------------------------------------------------------------


class TestStore:
    def test_cold_run_populates_store_with_valid_entries(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        campaign = mixed_campaign()
        run_campaign(campaign, out=tmp_path / "cold.jsonl", store=store)
        for s in campaign.dedup().scenarios:
            entry = store.get(scenario_hash(s))
            assert entry is not None
            assert entry.scenario == scenario_hash(s)
            assert all("campaign" not in row for row in entry.rows)
            assert [r["row"] for r in entry.rows] == list(range(len(entry.rows)))

    def test_warm_store_simulates_zero_and_is_byte_identical(self, tmp_path):
        campaign = telemetry_campaign()
        store = tmp_path / "store"
        cold, cold_metrics, _ = campaign_files(tmp_path, "cold")
        warm, warm_metrics, _ = campaign_files(tmp_path, "warm")
        run_campaign(campaign, out=cold, store=store)
        before = simulations_started()
        report = run_campaign(campaign, out=warm, store=store)
        assert simulations_started() - before == 0
        assert report.simulated == 0 and report.store_hits == 2
        assert warm.read_bytes() == cold.read_bytes()
        assert cold_metrics.exists()
        assert warm_metrics.read_bytes() == cold_metrics.read_bytes()
        assert "store_hits=2" in report.summary()

    def test_store_hit_survives_campaign_rename(self, tmp_path):
        campaign = mixed_campaign()
        store = tmp_path / "store"
        run_campaign(campaign, out=tmp_path / "a.jsonl", store=store)
        renamed = Campaign("renamed", list(campaign.scenarios))
        report = run_campaign(renamed, out=tmp_path / "b.jsonl", store=store)
        assert report.simulated == 0 and report.store_hits == 4
        rows = [
            json.loads(line)
            for line in (tmp_path / "b.jsonl").read_text().splitlines()
        ]
        assert all(r["campaign"] == "renamed" for r in rows)

    def test_store_hits_get_cache_origin_in_meta(self, tmp_path):
        campaign = mixed_campaign()
        store = tmp_path / "store"
        _, _, cold_meta = campaign_files(tmp_path, "cold")
        _, _, warm_meta = campaign_files(tmp_path, "warm")
        run_campaign(campaign, out=tmp_path / "cold.jsonl", store=store)
        run_campaign(campaign, out=tmp_path / "warm.jsonl", store=store)
        cold = json.loads(cold_meta.read_text())
        warm = json.loads(warm_meta.read_text())
        assert [s["origin"] for s in cold["scenarios"]] == ["simulated"] * 4
        assert [s["origin"] for s in warm["scenarios"]] == ["cache"] * 4
        # origin is sidecar-only provenance: the row payloads stay
        # byte-comparable across cache temperatures.
        assert (tmp_path / "warm.jsonl").read_bytes() == (
            tmp_path / "cold.jsonl"
        ).read_bytes()

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"])
    def test_corrupt_entry_quarantined_and_resimulated(self, tmp_path, damage):
        campaign = mixed_campaign()
        store_root = tmp_path / "store"
        cold = tmp_path / "cold.jsonl"
        run_campaign(campaign, out=cold, store=store_root)
        victim = sorted((store_root / "objects").rglob("*.json"))[0]
        text = victim.read_text()
        if damage == "truncate":
            victim.write_text(text[: len(text) // 2])
        else:
            # Flip one character inside the payload body.
            i = text.index('"rows":') + 20
            flipped = "x" if text[i] != "x" else "y"
            victim.write_text(text[:i] + flipped + text[i + 1 :])
        healed = tmp_path / "healed.jsonl"
        report = run_campaign(campaign, out=healed, store=store_root)
        assert report.simulated == 1 and report.store_hits == 3
        assert healed.read_bytes() == cold.read_bytes()
        store = FileResultStore(store_root)
        assert len(store.quarantined()) == 1
        assert not victim.exists() or store.get(victim.stem) is not None

    def test_corrupt_entry_is_healed_by_the_resimulation(self, tmp_path):
        campaign = Campaign("one", [open_scenario()])
        store_root = tmp_path / "store"
        run_campaign(campaign, out=tmp_path / "a.jsonl", store=store_root)
        victim = next((store_root / "objects").rglob("*.json"))
        victim.write_text("not json at all")
        run_campaign(campaign, out=tmp_path / "b.jsonl", store=store_root)
        # The re-simulated entry was written back: a third run hits.
        before = simulations_started()
        report = run_campaign(campaign, out=tmp_path / "c.jsonl", store=store_root)
        assert report.store_hits == 1
        assert simulations_started() - before == 0

    def test_entry_filed_under_wrong_hash_is_a_miss(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        campaign = Campaign("one", [open_scenario()])
        run_campaign(campaign, out=tmp_path / "a.jsonl", store=store)
        h = scenario_hash(campaign.scenarios[0])
        bogus = "0" * 16
        target = store._object_path(bogus)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store._object_path(h).read_text())
        assert store.get(bogus) is None
        assert store.quarantined()

    def test_concurrent_same_hash_writers_race_safely(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        campaign = Campaign("one", [open_scenario()])
        run_campaign(campaign, out=tmp_path / "a.jsonl", store=store)
        h = scenario_hash(campaign.scenarios[0])
        entry = store.get(h)
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    store.put(entry)
                    got = store.get(h)
                    assert got is not None and got.digest() == entry.digest()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.quarantined() == []

    def test_validate_rejects_incoherent_entries(self):
        s = open_scenario()
        h = scenario_hash(s)
        base = {
            "scenario": h, "label": s.label, "engine": "open",
            "fidelity": "cycle", "row": 0, "rows": 1, "spec": s.to_dict(),
        }
        with pytest.raises(StoreIntegrityError, match="no result rows"):
            StoreEntry(h, []).validate()
        with pytest.raises(StoreIntegrityError, match="foreign hash"):
            StoreEntry(h, [{**base, "scenario": "f" * 16}]).validate()
        with pytest.raises(StoreIntegrityError, match="row indices"):
            StoreEntry(h, [{**base, "row": 3}]).validate()
        with pytest.raises(StoreIntegrityError, match="campaign"):
            StoreEntry(h, [{**base, "campaign": "x"}]).validate()
        # A different label is a different scenario hash (the label is
        # part of the serialized spec), so a swapped-in spec must trip
        # the re-hash check.
        other = {**base, "spec": open_scenario("other-label").to_dict()}
        with pytest.raises(StoreIntegrityError, match="hashes to"):
            StoreEntry(h, [other]).validate()

    def test_memory_store_and_open_store_dispatch(self, tmp_path):
        mem = open_store("memory:")
        assert isinstance(mem, MemoryResultStore)
        assert open_store(mem) is mem
        assert isinstance(open_store(str(tmp_path / "s")), FileResultStore)
        assert isinstance(open_store(tmp_path / "s"), FileResultStore)
        assert isinstance(open_store(f"file:{tmp_path / 's'}"), FileResultStore)
        with pytest.raises(TypeError):
            open_store(42)
        assert set(STORE_BACKENDS) == {"file", "memory"}

    def test_memory_store_serves_run_campaign(self, tmp_path):
        store = MemoryResultStore()
        campaign = mixed_campaign()
        run_campaign(campaign, out=tmp_path / "a.jsonl", store=store)
        assert len(store) == 4
        before = simulations_started()
        report = run_campaign(campaign, out=tmp_path / "b.jsonl", store=store)
        assert report.store_hits == 4
        assert simulations_started() - before == 0


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "hello", "worker": "w0", "nested": {"x": [1, 2]}}
            send_message(a, message)
            assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none_and_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.close()
        assert recv_message(b) is None
        b.close()
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", 100) + b"{")  # header promises more
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_message(b)
        b.close()

    def test_oversized_frame_is_corruption_not_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="frame limit"):
                recv_message(b)
            with pytest.raises(ProtocolError, match="frame limit"):
                FrameDecoder().feed(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
        finally:
            a.close()
            b.close()

    def test_untyped_messages_are_rejected_both_ways(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="'type'"):
                send_message(a, {"no": "type"})
            payload = b'"just a string"'
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="typed message"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_decoder_reassembles_byte_dribble(self):
        messages = [
            {"type": "hello", "worker": "w"},
            {"type": "heartbeat", "lease": 7},
            {"type": "result", "lease": 7, "results": [{"rows": []}]},
        ]
        blob = b""
        a, b = socket.socketpair()
        try:
            for m in messages:
                send_message(a, m)
            blob = b.recv(1 << 20)
        finally:
            a.close()
            b.close()
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(blob)):
            decoded.extend(decoder.feed(blob[i : i + 1]))
        assert decoded == messages

    def test_message_vocabulary_is_complete(self):
        assert set(MESSAGE_TYPES) == {
            "hello", "lease", "heartbeat", "result", "error", "shutdown",
        }
        for direction, _meaning in MESSAGE_TYPES.values():
            assert "->" in direction

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7077") == ("127.0.0.1", 7077)
        assert parse_address(":7077") == ("127.0.0.1", 7077)
        with pytest.raises(ValueError):
            parse_address("no-port")


# ---------------------------------------------------------------------------
# Coordinator/worker scheduler
# ---------------------------------------------------------------------------


def service_config(**kw) -> tuple[ServiceConfig, "threading.Event", dict]:
    bound: dict = {}
    ready = threading.Event()

    def on_bound(host, port):
        bound["addr"] = f"{host}:{port}"
        ready.set()

    kw.setdefault("port", 0)
    kw.setdefault("heartbeat_timeout", 5.0)
    return ServiceConfig(on_bound=on_bound, **kw), ready, bound


def start_thread_workers(ready, bound, count, **kw):
    """Launch serve_worker threads once the coordinator has bound."""
    threads = []

    def launch():
        assert ready.wait(10)
        for i in range(count):
            t = threading.Thread(
                target=serve_worker,
                args=(bound["addr"],),
                kwargs={"name": f"w{i}", "retry_for": 5.0, **kw},
                daemon=True,
            )
            t.start()
            threads.append(t)

    starter = threading.Thread(target=launch, daemon=True)
    starter.start()
    return starter, threads


class TestService:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_byte_identical_at_any_worker_count(self, tmp_path, n_workers):
        campaign = mixed_campaign()
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)
        cfg, ready, bound = service_config(wait_for_workers=30.0)
        starter, threads = start_thread_workers(ready, bound, n_workers)
        svc = tmp_path / "svc.jsonl"
        report = run_campaign(campaign, out=svc, service=cfg)
        starter.join(10)
        for t in threads:
            t.join(10)
        assert svc.read_bytes() == serial.read_bytes()
        assert report.simulated == 4 and report.skipped == 0
        events = [e["event"] for e in report.events]
        assert events.count("worker_joined") >= 1
        assert "service_listening" in events and "campaign_finish" in events

    def test_service_with_telemetry_sidecar_byte_identical(self, tmp_path):
        campaign = telemetry_campaign()
        serial, serial_metrics, _ = campaign_files(tmp_path, "serial")
        run_campaign(campaign, out=serial)
        cfg, ready, bound = service_config(wait_for_workers=30.0)
        starter, threads = start_thread_workers(ready, bound, 2)
        svc, svc_metrics, _ = campaign_files(tmp_path, "svc")
        run_campaign(campaign, out=svc, service=cfg)
        starter.join(10)
        for t in threads:
            t.join(10)
        assert svc.read_bytes() == serial.read_bytes()
        assert svc_metrics.read_bytes() == serial_metrics.read_bytes()

    def test_no_workers_degrades_to_local_execution(self, tmp_path):
        campaign = mixed_campaign()
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)
        cfg, _, _ = service_config(wait_for_workers=0.0)
        report = run_campaign(campaign, out=tmp_path / "svc.jsonl", service=cfg)
        assert (tmp_path / "svc.jsonl").read_bytes() == serial.read_bytes()
        assert report.simulated == 4

    def test_service_resume_interleaves_cached_scenarios(self, tmp_path):
        campaign = mixed_campaign()
        out = tmp_path / "rows.jsonl"
        run_campaign(campaign, out=out)
        reference = out.read_bytes()
        # Drop the middle closed-loop scenarios' lines, keep the opens.
        keep = [
            line
            for line in out.read_text().splitlines()
            if json.loads(line)["engine"] == "open"
        ]
        out.write_text("\n".join(keep) + "\n")
        cfg, _, _ = service_config(wait_for_workers=0.0)
        report = run_campaign(campaign, out=out, resume=True, service=cfg)
        assert report.simulated == 2 and report.skipped == 2
        assert out.read_bytes() == reference

    def test_silent_worker_detected_by_heartbeat_timeout(self, tmp_path):
        """A worker that takes a lease and goes mute loses it; the
        campaign still completes (local fallback) byte-identically."""
        campaign = Campaign("one", [open_scenario(), open_scenario("o2", seed=3)])
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)
        cfg, ready, bound = service_config(
            wait_for_workers=1.0, heartbeat_timeout=0.6,
        )
        taken = threading.Event()

        def mute_worker():
            assert ready.wait(10)
            host, port = parse_address(bound["addr"])
            sock = socket.create_connection((host, port), timeout=10)
            try:
                send_message(sock, {"type": "hello", "worker": "mute", "pid": 0})
                message = recv_message(sock)
                assert message["type"] == "lease"
                taken.set()
                # Hold the lease, send nothing: the coordinator must
                # declare this worker dead on heartbeat silence alone
                # (the socket stays open — no EOF shortcut).
                import time as _time

                _time.sleep(3.0)
            finally:
                sock.close()

        t = threading.Thread(target=mute_worker, daemon=True)
        t.start()
        report = run_campaign(campaign, out=tmp_path / "svc.jsonl", service=cfg)
        t.join(10)
        assert taken.is_set()
        assert (tmp_path / "svc.jsonl").read_bytes() == serial.read_bytes()
        events = [e["event"] for e in report.events]
        assert "worker_dead" in events
        dead = next(e for e in report.events if e["event"] == "worker_dead")
        assert dead["reason"] == "heartbeat_timeout" and dead["worker"] == "mute"
        assert "lease_retry" in events

    def test_vanishing_worker_lease_is_requeued_on_eof(self, tmp_path):
        campaign = Campaign("one", [open_scenario()])
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)
        cfg, ready, bound = service_config(wait_for_workers=1.0)

        def doomed_worker():
            assert ready.wait(10)
            host, port = parse_address(bound["addr"])
            sock = socket.create_connection((host, port), timeout=10)
            send_message(sock, {"type": "hello", "worker": "doomed", "pid": 0})
            message = recv_message(sock)
            assert message["type"] == "lease"
            sock.close()  # vanish mid-lease, like a SIGKILL would

        t = threading.Thread(target=doomed_worker, daemon=True)
        t.start()
        report = run_campaign(campaign, out=tmp_path / "svc.jsonl", service=cfg)
        t.join(10)
        assert (tmp_path / "svc.jsonl").read_bytes() == serial.read_bytes()
        dead = next(e for e in report.events if e["event"] == "worker_dead")
        assert dead["reason"] == "disconnected"

    def test_worker_error_is_retried_then_surfaced_locally(self, tmp_path):
        """A lease the worker reports as failed falls back (after the
        retry budget) to in-process execution — which succeeds here,
        proving worker failures never poison a runnable unit."""
        campaign = Campaign("one", [open_scenario()])
        cfg, ready, bound = service_config(wait_for_workers=1.0, max_retries=0)

        def lying_worker():
            assert ready.wait(10)
            host, port = parse_address(bound["addr"])
            sock = socket.create_connection((host, port), timeout=10)
            try:
                send_message(sock, {"type": "hello", "worker": "liar", "pid": 0})
                message = recv_message(sock)
                send_message(
                    sock,
                    {
                        "type": "error",
                        "lease": message["lease"],
                        "error": "synthetic failure",
                    },
                )
                recv_message(sock)  # wait for shutdown
            finally:
                sock.close()

        t = threading.Thread(target=lying_worker, daemon=True)
        t.start()
        report = run_campaign(campaign, out=tmp_path / "svc.jsonl", service=cfg)
        t.join(10)
        assert report.simulated == 1
        fallback = next(
            e for e in report.events if e["event"] == "unit_local_fallback"
        )
        assert "synthetic failure" in fallback["reason"]

    def test_stale_result_for_requeued_lease_is_ignored(self, tmp_path):
        """test_silent_worker's complement: a worker declared dead gets
        disconnected, so its late result can never double-commit (the
        lease-id check plus the closed socket)."""
        campaign = Campaign("one", [open_scenario()])
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)
        cfg, ready, bound = service_config(
            wait_for_workers=0.8, heartbeat_timeout=0.4,
        )

        def zombie_worker():
            assert ready.wait(10)
            host, port = parse_address(bound["addr"])
            sock = socket.create_connection((host, port), timeout=10)
            try:
                send_message(sock, {"type": "hello", "worker": "zombie", "pid": 0})
                message = recv_message(sock)
                import time as _time

                _time.sleep(1.2)  # long past heartbeat_timeout
                try:
                    send_message(
                        sock,
                        {
                            "type": "result",
                            "lease": message["lease"],
                            "results": [{"scenario": "bogus", "rows": []}],
                            "sims": 0,
                        },
                    )
                except OSError:
                    pass  # coordinator already hung up — equally fine
            finally:
                sock.close()

        t = threading.Thread(target=zombie_worker, daemon=True)
        t.start()
        report = run_campaign(campaign, out=tmp_path / "svc.jsonl", service=cfg)
        t.join(10)
        assert (tmp_path / "svc.jsonl").read_bytes() == serial.read_bytes()
        assert report.simulated == 1  # the real (local) execution, once

    def test_service_and_store_compose(self, tmp_path):
        campaign = mixed_campaign()
        store = tmp_path / "store"
        cfg, ready, bound = service_config(wait_for_workers=30.0)
        starter, threads = start_thread_workers(ready, bound, 2)
        cold = tmp_path / "cold.jsonl"
        run_campaign(campaign, out=cold, service=cfg, store=store)
        starter.join(10)
        for t in threads:
            t.join(10)
        # Warm pass: every scenario comes from the store; no service
        # socket is even opened (the no-op short-circuit).
        before = simulations_started()
        cfg2, _, _ = service_config(wait_for_workers=30.0)
        report = run_campaign(
            campaign, out=tmp_path / "warm.jsonl", service=cfg2, store=store
        )
        assert simulations_started() - before == 0
        assert report.store_hits == 4 and report.simulated == 0
        assert (tmp_path / "warm.jsonl").read_bytes() == cold.read_bytes()
        assert "service_listening" not in [e["event"] for e in report.events]


# ---------------------------------------------------------------------------
# Chaos drill: a faulted campaign through a dying fleet
# ---------------------------------------------------------------------------


def drill_campaign() -> Campaign:
    """Three degraded-topology scenarios, including a fragmented one."""
    return Campaign(
        "fault-drill",
        [
            faulted_scenario("min", label="min/f=0.08"),
            faulted_scenario("val", label="val/f=0.08"),
            faulted_scenario("min", fault=FaultSpec(cut_routers=[0]),
                             label="severed"),
        ],
    )


def start_subprocess_workers(ready, bound, specs, delay=0.5):
    """Launch real serve-worker processes once the coordinator binds.

    ``specs`` is a list of extra-flag lists, one worker process each,
    started in order with ``delay`` seconds between them.  Subprocesses
    (not threads) because ``--fail-after`` SIGKILLs the whole process.
    """
    procs: list = []

    def launch():
        assert ready.wait(10)
        import time as _time

        for extra in specs:
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.experiments",
                     "serve-worker", bound["addr"],
                     "--retry-for", "5", *extra],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
            _time.sleep(delay)

    starter = threading.Thread(target=launch, daemon=True)
    starter.start()
    return starter, procs


class TestFaultChaosDrill:
    """Degraded campaigns survive worker death byte-identically, and
    their store entries are keyed by the faulted hash alone."""

    def test_sigkilled_worker_drill_is_byte_identical(self, tmp_path):
        campaign = drill_campaign()
        serial = tmp_path / "serial.jsonl"
        run_campaign(campaign, out=serial)

        # First worker SIGKILLs itself on its first lease; a healthy
        # worker joins right behind it and (with the local fallback)
        # mops up the requeued unit.
        store_root = tmp_path / "store"
        cfg, ready, bound = service_config(
            wait_for_workers=30.0, heartbeat_timeout=2.0,
        )
        starter, procs = start_subprocess_workers(
            ready, bound, [["--fail-after", "1"], []],
        )
        svc = tmp_path / "svc.jsonl"
        try:
            report = run_campaign(
                campaign, out=svc, service=cfg, store=store_root)
        finally:
            starter.join(10)
            for p in procs:
                try:
                    p.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    p.kill()

        assert svc.read_bytes() == serial.read_bytes()
        assert report.simulated == 3 and report.skipped == 0
        events = [e["event"] for e in report.events]
        assert "worker_dead" in events
        assert "lease_retry" in events

        # Store discipline: every faulted scenario landed under its
        # own (faulted) digest, and none of their healthy twins'
        # digests exist — a faulted result can never replay for a
        # healthy spec, nor vice versa.
        store = FileResultStore(store_root)
        for s in campaign.scenarios:
            entry = store.get(scenario_hash(s))
            assert entry is not None
            entry.validate()
            twin = dataclasses.replace(s, fault=None)
            assert store.get(scenario_hash(twin)) is None
        assert store.quarantined() == []

    def test_warm_store_replays_drill_without_workers(self, tmp_path):
        """Second pass over the drill store: zero simulations, zero
        service sockets, byte-identical rows — faulted entries behave
        exactly like healthy ones in the content-addressed plane."""
        campaign = drill_campaign()
        store = MemoryResultStore()
        cold = tmp_path / "cold.jsonl"
        run_campaign(campaign, out=cold, store=store)
        before = simulations_started()
        cfg, _, _ = service_config(wait_for_workers=30.0)
        report = run_campaign(
            campaign, out=tmp_path / "warm.jsonl", service=cfg, store=store)
        assert simulations_started() == before
        assert report.store_hits == 3 and report.simulated == 0
        assert (tmp_path / "warm.jsonl").read_bytes() == cold.read_bytes()
        assert "service_listening" not in [e["event"] for e in report.events]
