"""Closed-loop engine tests: dependency-gated injection, completion
accounting, determinism across worker counts, and the completion-time
experiment (the ISSUE 2 acceptance criteria)."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.routing import ANCARouting, MinimalRouting, UGALRouting, ValiantRouting
from repro.sim import (
    ClosedLoopEngine,
    CompletionTask,
    SimConfig,
    SimEngine,
    simulate_workload,
    parallel_workload_completion,
)
from repro.traffic import UniformRandom
from repro.workloads import (
    AllToAll,
    BroadcastTree,
    Message,
    RingAllReduce,
    TraceWorkload,
    make_workload,
    read_trace,
    write_trace,
)

CFG = SimConfig(seed=9)


class TestClosedLoopBasics:
    def test_alltoall_completes(self, sf5, sf5_tables):
        wl = AllToAll(16, 4)
        res = simulate_workload(sf5, MinimalRouting(sf5_tables), wl, CFG)
        assert res.finished
        assert res.completed_messages == res.num_messages == 16 * 15
        assert res.delivered_flits == 16 * 15 * 4
        assert set(res.message_completions) == {m.mid for m in wl.messages()}
        assert res.makespan == max(res.message_completions.values())
        assert res.makespan <= res.cycles
        assert res.avg_message_latency > 0

    def test_dependencies_gate_injection(self, sf5, sf5_tables):
        """No message becomes ready before every dependency completed."""
        wl = RingAllReduce(12, 24)
        res = simulate_workload(sf5, MinimalRouting(sf5_tables), wl, CFG)
        assert res.finished
        for m in wl.messages():
            for d in m.deps:
                assert res.message_completions[d] <= res.message_ready[m.mid]

    def test_deterministic_across_runs(self, sf5, sf5_tables):
        wl = AllToAll(16, 4)
        a = simulate_workload(sf5, UGALRouting(sf5_tables, "local", seed=3), wl, CFG)
        b = simulate_workload(sf5, UGALRouting(sf5_tables, "local", seed=3), wl, CFG)
        assert a == b

    def test_multiflit_segmentation(self, sf5, sf5_tables):
        """A 10-flit message under 4-flit packets is 3 packets; the
        injected packet count shows the segmentation."""
        cfg = SimConfig(seed=9, packet_length=4)
        msgs = [Message(0, 0, 60, 10), Message(1, 60, 0, 10, deps=(0,))]
        engine = ClosedLoopEngine(sf5, MinimalRouting(sf5_tables), msgs, cfg)
        res = engine.run()
        assert res.finished
        assert engine.measured_injected == 6  # 2 messages x 3 packets
        # A dependent may not start before the dependency's tail flit
        # fully ejected, and the run must account the final tail.
        assert res.message_completions[0] <= res.message_ready[1]
        assert res.makespan <= res.cycles

    def test_loopback_messages_complete_instantly(self, sf5, sf5_tables):
        msgs = [
            Message(0, 5, 5, 8),  # same endpoint: no network traversal
            Message(1, 5, 50, 8, deps=(0,)),
        ]
        res = simulate_workload(sf5, MinimalRouting(sf5_tables), msgs, CFG)
        assert res.finished
        assert res.message_completions[0] == res.message_ready[0]

    def test_unsatisfiable_deps_reported_not_hung(self, sf5, sf5_tables):
        """A dependency cycle (only expressible via raw messages)
        stalls: the engine detects quiescence and reports a partial,
        unfinished run instead of spinning to the cycle cap."""
        msgs = [
            Message(0, 0, 9, 4, deps=(1,)),
            Message(1, 9, 0, 4, deps=(0,)),
        ]
        res = simulate_workload(sf5, MinimalRouting(sf5_tables), msgs, CFG)
        assert not res.finished
        assert res.completed_messages == 0
        assert res.cycles < 1000
        # Determinism equality must survive the NaN latency fields of
        # a run where nothing completed.
        again = simulate_workload(sf5, MinimalRouting(sf5_tables), msgs, CFG)
        assert res == again

    def test_open_loop_engine_untouched(self, sf5, sf5_tables):
        """The hook that powers closed-loop stays disabled open-loop."""
        eng = SimEngine(
            sf5, MinimalRouting(sf5_tables), UniformRandom(sf5.num_endpoints),
            0.3, SimConfig(warmup_cycles=50, measure_cycles=100, drain_cycles=500),
        )
        assert eng._deliver_hook is None
        eng.run()


class TestRoutingProtocols:
    @pytest.mark.parametrize("make_routing", [
        lambda t, topo: MinimalRouting(t),
        lambda t, topo: ValiantRouting(t, seed=1),
        lambda t, topo: UGALRouting(t, "local", seed=1),
    ], ids=["MIN", "VAL", "UGAL-L"])
    def test_slimfly_protocols_complete(self, sf5, sf5_tables, make_routing):
        wl = BroadcastTree(20, 16)
        res = simulate_workload(
            sf5, make_routing(sf5_tables, sf5), wl, CFG
        )
        assert res.finished

    def test_per_hop_adaptive_fattree(self, ft4):
        wl = AllToAll(12, 4)
        res = simulate_workload(ft4, ANCARouting(ft4, seed=1), wl, CFG)
        assert res.finished


class TestWorkerDeterminism:
    """Acceptance: per-message completion times identical for any
    ``--workers`` count."""

    def _tasks(self, sf5, sf5_tables):
        return [
            CompletionTask(
                sf5, lambda: MinimalRouting(sf5_tables), AllToAll(16, 4), CFG,
                label="min/alltoall",
            ),
            CompletionTask(
                sf5, lambda: UGALRouting(sf5_tables, "local", seed=3),
                RingAllReduce(12, 24), CFG, label="ugal/ring",
            ),
            CompletionTask(
                sf5, lambda: ValiantRouting(sf5_tables, seed=3),
                BroadcastTree(20, 16), CFG, label="val-broadcast",
            ),
        ]

    def test_results_identical_for_any_worker_count(self, sf5, sf5_tables):
        runs = [
            parallel_workload_completion(self._tasks(sf5, sf5_tables), workers=w)
            for w in (1, 2, 3)
        ]
        assert runs[0] == runs[1] == runs[2]
        # Equality covers every per-message completion timestamp.
        assert runs[0][0].message_completions

    def test_empty_task_list(self):
        assert parallel_workload_completion([], workers=4) == []


class TestTraceReplayThroughEngine:
    def test_recorded_run_reexports_and_replays(self, sf5, sf5_tables, tmp_path):
        wl = make_workload("gather", 12, 4)
        res = simulate_workload(sf5, MinimalRouting(sf5_tables), wl, CFG)
        path = tmp_path / "run.jsonl"
        write_trace(wl, path, completions=res.message_completions)
        replay = read_trace(path)
        res2 = simulate_workload(sf5, MinimalRouting(sf5_tables), replay, CFG)
        # Same DAG on the same network: identical schedule.
        assert res2.message_completions == res.message_completions
        assert res2.makespan == res.makespan


class TestCompletionExperiment:
    def test_registered_with_runner(self):
        assert "workload_completion" in EXPERIMENTS

    def test_quick_run_all_protocols(self):
        result = run_experiment(
            "workload_completion", Scale.QUICK, seed=0,
            workload="broadcast", workers=2, ranks=12, message_flits=4,
        )
        rendered = result.render()
        assert "SHAPE VIOLATION" not in rendered
        headers, rows = result.tables[0]
        assert len(rows) == 5  # SF-MIN/VAL/UGAL-L, DF-UGAL-L, FT-ANCA
        assert all(row[-1] for row in rows)  # every protocol finished

    def test_workers_do_not_change_experiment_output(self):
        kw = dict(workload="alltoall", ranks=10, message_flits=2)
        a = run_experiment("workload_completion", Scale.QUICK, seed=0, workers=1, **kw)
        b = run_experiment("workload_completion", Scale.QUICK, seed=0, workers=3, **kw)
        assert a.tables == b.tables

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_experiment(
                "workload_completion", Scale.QUICK, seed=0, workload="fft"
            )
