"""Docstring audit: every public ``repro.*`` symbol documents itself.

The public API surface is what the subpackages export through
``__all__`` plus the lazy top-level exports; each symbol (and each
exporting module) must carry a non-empty docstring so the registry
reference and API docs can introspect them.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.analysis.frames",
    "repro.analysis.figures",
    "repro.analysis.report",
    "repro.core",
    "repro.costmodel",
    "repro.experiments.common",
    "repro.galois",
    "repro.layout",
    "repro.routing",
    "repro.routing.registry",
    "repro.scenarios",
    "repro.scenarios.spec",
    "repro.scenarios.campaign",
    "repro.scenarios.resolve",
    "repro.scenarios.runner",
    "repro.service",
    "repro.service.coordinator",
    "repro.service.protocol",
    "repro.service.store",
    "repro.service.units",
    "repro.service.worker",
    "repro.sim",
    "repro.sim.parallel",
    "repro.topologies",
    "repro.topologies.registry",
    "repro.traffic",
    "repro.traffic.registry",
    "repro.util",
    "repro.workloads",
    "repro.workloads.registry",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_module_docstring(modname):
    module = importlib.import_module(modname)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{modname} has no module docstring"
    )


def _public_symbols():
    for modname in PUBLIC_MODULES:
        module = importlib.import_module(modname)
        for name in getattr(module, "__all__", []):
            yield modname, name


@pytest.mark.parametrize("modname,name", sorted(set(_public_symbols())))
def test_public_symbol_docstring(modname, name):
    obj = getattr(importlib.import_module(modname), name)
    if not (inspect.isclass(obj) or inspect.isfunction(obj)
            or inspect.ismethod(obj) or inspect.isroutine(obj)
            or inspect.ismodule(obj)):
        return  # plain data (version strings, registries, flags)
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), f"{modname}.{name} has no docstring"
    # A bare auto-generated dataclass signature is not documentation.
    assert not doc.startswith(f"{getattr(obj, '__name__', '')}("), (
        f"{modname}.{name} only has the auto-generated dataclass docstring"
    )
