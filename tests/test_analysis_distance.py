"""Tests for distance/diameter computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distance import (
    adjacency_to_csr,
    average_distance,
    bfs_distances,
    diameter,
    diameter_and_average_distance,
    distance_matrix,
    eccentricity,
)


def ring(n):
    return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


def path(n):
    adj = [[] for _ in range(n)]
    for i in range(n - 1):
        adj[i].append(i + 1)
        adj[i + 1].append(i)
    return adj


class TestBFS:
    def test_ring_distances(self):
        d = bfs_distances(ring(8), 0)
        assert list(d) == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_disconnected_marks_minus_one(self):
        adj = [[1], [0], []]
        d = bfs_distances(adj, 0)
        assert d[2] == -1

    def test_csr_roundtrip(self):
        adj = ring(6)
        csr = adjacency_to_csr(adj)
        assert csr.shape == (6, 6)
        assert csr.nnz == 12


class TestDiameterAverage:
    def test_ring(self):
        d, avg = diameter_and_average_distance(ring(8))
        assert d == 4
        # ring of 8: distances 1,2,3,4,3,2,1 from any node; avg = 16/7
        assert avg == pytest.approx(16 / 7)

    def test_path_graph(self):
        d, avg = diameter_and_average_distance(path(5))
        assert d == 4

    def test_single_vertex(self):
        assert diameter_and_average_distance([[]]) == (0, 0.0)

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter_and_average_distance([[1], [0], []])

    def test_sampled_estimate_close(self):
        adj = ring(64)
        _, exact = diameter_and_average_distance(adj)
        _, sampled = diameter_and_average_distance(adj, sources=16, seed=0)
        # Ring is vertex-transitive: any source gives the exact average.
        assert sampled == pytest.approx(exact)

    def test_matches_distance_matrix(self):
        adj = ring(10)
        dm = distance_matrix(adj)
        d, avg = diameter_and_average_distance(adj)
        assert d == dm.max()
        n = len(adj)
        assert avg == pytest.approx(dm.sum() / (n * (n - 1)))

    def test_convenience_wrappers(self):
        adj = ring(6)
        assert diameter(adj) == 3
        assert average_distance(adj) == pytest.approx(9 / 5)
        assert eccentricity(adj, 0) == 3

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 40))
    def test_ring_closed_form(self, n):
        d, avg = diameter_and_average_distance(ring(n))
        assert d == n // 2
        if n % 2 == 0:
            expected = (n * n / 4) / (n - 1)
        else:
            expected = (n * n - 1) / 4 / (n - 1)
        assert avg == pytest.approx(expected)
