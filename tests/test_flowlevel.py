"""Flow-level backend: demand model, water-filling, backend registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.routing import MinimalRouting, RoutingTables
from repro.routing.fattree_routing import ANCARouting
from repro.routing.ugal import UGALRouting
from repro.routing.valiant import ValiantRouting
from repro.scenarios.spec import canonical_json
from repro.sim import SimConfig
from repro.sim.backends import (
    BACKEND_KINDS,
    ENGINE_BACKENDS,
    get_backend,
)
from repro.sim.flowlevel import (
    FlowModel,
    flow_simulate,
    flow_sweep,
    router_demands,
    waterfill,
)
from repro.sim.parallel import parallel_latency_vs_load
from repro.topologies import FatTree3, SlimFly
from repro.traffic import UniformRandom
from repro.traffic.adversarial import worst_case_for
from repro.traffic.permutations import BitReversalPattern, ShiftPattern
from repro.traffic.patterns import FixedPermutation

CFG = SimConfig(warmup_cycles=50, measure_cycles=100, drain_cycles=400)


@pytest.fixture(scope="module")
def sf():
    return SlimFly.from_q(5)


@pytest.fixture(scope="module")
def tables(sf):
    return RoutingTables(sf.adjacency)


class TestRouterDemands:
    def test_uniform_mass_and_symmetry(self, sf):
        D, intra, n_active = router_demands(
            UniformRandom(sf.num_endpoints), sf
        )
        # Every endpoint offers exactly 1 flit/cycle in total.
        assert math.isclose(D.sum() + intra, sf.num_endpoints)
        assert n_active == sf.num_endpoints
        assert np.allclose(D, D.T)  # uniform is symmetric
        assert np.all(np.diag(D) == 0)

    def test_permutation_demand(self, sf):
        pat = FixedPermutation({0: 7, 7: 0, 1: 9}, name="toy")
        D, intra, n_active = router_demands(pat, sf)
        assert n_active == 3
        assert math.isclose(D.sum() + intra, 3.0)
        emap = sf.endpoint_map
        assert D[emap[0], emap[7]] >= 1.0

    def test_shift_splits_half_rate(self, sf):
        D, intra, n_active = router_demands(
            ShiftPattern(sf.num_endpoints), sf
        )
        size = ShiftPattern(sf.num_endpoints).size
        assert n_active == size
        # Every source has a self-directed outcome on one of its two
        # coin sides, so exactly half the offered mass enters the
        # pattern (the other half idles, as in the cycle engine).
        assert math.isclose(D.sum() + intra, size / 2)

    def test_bit_pattern_drops_fixed_points(self, sf):
        pat = BitReversalPattern(sf.num_endpoints)
        D, intra, n_active = router_demands(pat, sf)
        fixed = sum(1 for s in range(pat.size) if pat._map(s) == s)
        assert math.isclose(D.sum() + intra, pat.size - fixed)

    def test_unsupported_pattern_rejected(self, sf):
        class Mystery:
            pass

        with pytest.raises(ValueError, match="no demand model"):
            router_demands(Mystery(), sf)


class TestWaterfill:
    def _fill(self, demands, paths, channels):
        ent_flow = np.asarray(
            [f for f, chans in enumerate(paths) for _ in chans]
        )
        ent_chan = np.asarray([c for chans in paths for c in chans])
        return waterfill(np.asarray(demands, float), ent_flow, ent_chan, channels)

    def test_shared_bottleneck_splits_fairly(self):
        rates = self._fill([1.0, 1.0], [[0], [0]], 1)
        assert np.allclose(rates, [0.5, 0.5])

    def test_demand_cap_frees_capacity(self):
        # Flow 0 wants only 0.2; flow 1 takes the rest of the channel.
        rates = self._fill([0.2, 1.0], [[0], [0]], 1)
        assert np.allclose(rates, [0.2, 0.8])

    def test_disjoint_flows_meet_demand(self):
        rates = self._fill([0.7, 0.4], [[0], [1]], 2)
        assert np.allclose(rates, [0.7, 0.4])

    def test_multi_hop_bottleneck(self):
        # Flow 0 crosses both channels; flow 1 only the second.  The
        # second channel is the bottleneck; max-min gives 0.5 each.
        rates = self._fill([1.0, 1.0], [[0, 1], [1]], 2)
        assert np.allclose(rates, [0.5, 0.5])

    def test_max_min_dominates_proportional(self):
        # Classic 3-flow line network: the long flow shares both
        # links; max-min gives the short flows the freed headroom.
        rates = self._fill([1.0, 1.0, 1.0], [[0, 1], [0], [1]], 2)
        assert np.allclose(rates, [0.5, 0.5, 0.5])

    def test_never_exceeds_capacity(self, sf, tables):
        model = FlowModel(
            sf, MinimalRouting(tables), UniformRandom(sf.num_endpoints)
        )
        demands = 2.0 * model.flow_demand  # far past saturation
        rates = waterfill(
            demands, model.ent_flow, model.ent_chan, model.cmap.num_channels
        )
        loads = np.bincount(
            model.ent_chan,
            weights=rates[model.ent_flow],
            minlength=model.cmap.num_channels,
        )
        assert loads.max() <= 1.0 + 1e-9
        assert np.all(rates <= demands + 1e-12)


class TestFlowModel:
    def test_model_kind_per_routing(self, sf, tables):
        uni = UniformRandom(sf.num_endpoints)
        assert FlowModel(sf, MinimalRouting(tables), uni).kind == "min"
        assert FlowModel(sf, ValiantRouting(tables, seed=0), uni).kind == "val"
        assert (
            FlowModel(sf, UGALRouting(tables, "local", seed=0), uni).kind
            == "ugal"
        )
        ft = FatTree3(4)
        assert (
            FlowModel(ft, ANCARouting(ft, seed=0), UniformRandom(
                ft.num_endpoints)).kind
            == "spread"
        )

    def test_unsupported_routing_rejected(self, sf):
        class Teleport:
            pass

        with pytest.raises(ValueError, match="no path-set model"):
            FlowModel(sf, Teleport(), UniformRandom(sf.num_endpoints))

    def test_ecmp_matches_analysis_fluid_model(self, sf, tables):
        """The vectorised ECMP spread equals the dict-based reference
        fluid model in repro.analysis.channel_load."""
        from repro.analysis.channel_load import channel_loads, uniform_demands

        model = FlowModel(
            sf, MinimalRouting(tables), UniformRandom(sf.num_endpoints)
        )
        loads = model._ecmp_loads(model.D)
        reference = channel_loads(sf, uniform_demands(sf), tables=tables)
        for (u, v), value in reference.items():
            c = model.cmap.chan_of[u, v]
            assert math.isclose(loads[c], value, rel_tol=1e-9)
        assert math.isclose(loads.sum(), sum(reference.values()), rel_tol=1e-9)

    def test_min_collapses_on_worstcase(self, sf, tables):
        """The Fig 6d structure: MIN collapses near 1/(2p) offered load
        while VAL sustains several times more."""
        wc = worst_case_for(sf, tables=tables, seed=0)
        loads = [round(0.05 * i, 4) for i in range(1, 20)]
        min_sat = FlowModel(sf, MinimalRouting(tables), wc).saturation_load(loads)
        val_sat = FlowModel(
            sf, ValiantRouting(tables, seed=0), wc
        ).saturation_load(loads)
        assert min_sat is not None and min_sat <= 0.3
        assert val_sat is None or val_sat >= 2 * min_sat

    def test_latency_monotone_below_saturation(self, sf, tables):
        model = FlowModel(
            sf, MinimalRouting(tables), UniformRandom(sf.num_endpoints)
        )
        lats = []
        for load in (0.1, 0.3, 0.5, 0.7):
            res = model.simulate(load, CFG)
            assert not res.saturated
            lats.append(res.avg_latency)
            assert res.p99_latency >= res.avg_latency
        assert lats == sorted(lats)

    def test_saturated_point_contract(self, sf, tables):
        wc = worst_case_for(sf, tables=tables, seed=0)
        res = FlowModel(sf, MinimalRouting(tables), wc).simulate(0.9, CFG)
        assert res.saturated
        assert res.delivered == 0  # the sweep layer nulls the latency
        assert math.isnan(res.avg_latency)
        assert 0 < res.accepted_load < 0.9

    def test_sweep_marks_past_saturation(self, sf, tables):
        wc = worst_case_for(sf, tables=tables, seed=0)
        points = flow_sweep(
            sf, lambda: MinimalRouting(tables), wc,
            [0.1, 0.3, 0.5, 0.7, 0.9], CFG,
        )
        saturated = [p.saturated for p in points]
        first = saturated.index(True)
        assert all(saturated[first:])
        # Fill rows carry the plateau accepted value, latency None.
        assert points[-1].latency is None
        assert points[-1].accepted == points[first].accepted

    def test_deterministic_across_runs(self, sf, tables):
        def rows():
            pts = flow_sweep(
                sf,
                lambda: UGALRouting(tables, "local", seed=0),
                UniformRandom(sf.num_endpoints),
                [0.2, 0.5, 0.8],
                CFG,
            )
            return canonical_json([
                [p.load, p.latency, p.accepted, p.saturated] for p in pts
            ])

        assert rows() == rows()


class TestBackendRegistry:
    def test_registry_contents(self):
        assert BACKEND_KINDS == ("cycle", "cycle-vec", "flow")
        assert ENGINE_BACKENDS["cycle"].supports_closed_loop
        assert ENGINE_BACKENDS["cycle-vec"].supports_closed_loop
        assert not ENGINE_BACKENDS["flow"].supports_closed_loop
        for backend in ENGINE_BACKENDS.values():
            assert backend.fidelity and backend.determinism

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown engine backend"):
            get_backend("warp")

    def test_unknown_backend_error_lists_choices(self):
        """The error text enumerates every registered backend."""
        with pytest.raises(KeyError) as exc:
            get_backend("warp")
        message = str(exc.value)
        for name in ("cycle", "cycle-vec", "flow"):
            assert name in message

    def test_cycle_vec_backend_matches_cycle(self, sf, tables):
        from repro.sim.engine import simulate

        uni = UniformRandom(sf.num_endpoints)
        direct = simulate(sf, MinimalRouting(tables), uni, 0.4, CFG)
        via = get_backend("cycle-vec").simulate(
            sf, MinimalRouting(tables), uni, 0.4, CFG
        )
        assert direct == via

    def test_cycle_backend_matches_direct_engine(self, sf, tables):
        from repro.sim.engine import simulate

        uni = UniformRandom(sf.num_endpoints)
        direct = simulate(sf, MinimalRouting(tables), uni, 0.4, CFG)
        via = get_backend("cycle").simulate(
            sf, MinimalRouting(tables), uni, 0.4, CFG
        )
        assert direct == via

    def test_flow_backend_matches_direct_solver(self, sf, tables):
        uni = UniformRandom(sf.num_endpoints)
        direct = flow_simulate(sf, MinimalRouting(tables), uni, 0.4, CFG)
        via = get_backend("flow").simulate(
            sf, MinimalRouting(tables), uni, 0.4, CFG
        )
        assert direct == via

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_dispatch_worker_independent(self, sf, tables, workers):
        """parallel_latency_vs_load(backend='flow') yields identical
        rows at any worker count (the flow determinism contract)."""
        uni = UniformRandom(sf.num_endpoints)
        points = parallel_latency_vs_load(
            sf,
            lambda: MinimalRouting(tables),
            uni,
            loads=[0.2, 0.5, 0.8],
            config=CFG,
            workers=workers,
            backend="flow",
        )
        expected = flow_sweep(
            sf, lambda: MinimalRouting(tables), uni, [0.2, 0.5, 0.8], CFG
        )
        assert points == expected

    def test_parallel_dispatch_unknown_backend(self, sf, tables):
        with pytest.raises(KeyError, match="unknown engine backend"):
            parallel_latency_vs_load(
                sf,
                lambda: MinimalRouting(tables),
                UniformRandom(sf.num_endpoints),
                loads=[0.2],
                backend="warp",
            )
