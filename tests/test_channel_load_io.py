"""Tests for the fluid channel-load model and topology serialisation."""

import pytest

from repro.analysis.channel_load import (
    average_channel_load,
    channel_loads,
    max_channel_load,
    permutation_demands,
    saturation_throughput,
    uniform_demands,
)
from repro.core.balance import channel_load as paper_channel_load
from repro.topologies import SlimFly
from repro.topologies.io import (
    export_catalog_markdown,
    export_edge_list,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.traffic import SlimFlyWorstCase


class TestChannelLoads:
    def test_single_flow_unit_path(self, sf5, sf5_tables):
        # One endpoint pair on adjacent routers: exactly one channel loaded.
        eps = sf5.endpoints_of_router
        r0 = 0
        r1 = sf5.adjacency[0][0]
        demands = {(eps[r0][0], eps[r1][0]): 0.7}
        loads = channel_loads(sf5, demands, sf5_tables)
        assert loads == {(r0, r1): pytest.approx(0.7)}

    def test_two_hop_flow_splits_nothing_in_moore_graph(self, sf5, sf5_tables):
        # Unique 2-hop paths: the full rate appears on both hops.
        eps = sf5.endpoints_of_router
        adj0 = set(sf5.adjacency[0])
        far = next(r for r in range(1, 50) if r not in adj0)
        demands = {(eps[0][0], eps[far][0]): 1.0}
        loads = channel_loads(sf5, demands, sf5_tables)
        assert len(loads) == 2
        assert all(v == pytest.approx(1.0) for v in loads.values())

    def test_uniform_reproduces_paper_average(self, sf5, sf5_tables):
        """Fluid average ≈ the §II-B2 closed form (same idealisation)."""
        demands = uniform_demands(sf5, rate=1.0)
        loads = channel_loads(sf5, demands, sf5_tables)
        avg = average_channel_load(loads, sf5)
        paper = paper_channel_load(
            sf5.num_routers, sf5.network_radix, sf5.concentration
        ) / sf5.num_endpoints  # closed form counts routes at unit rate per pair
        # Both count expected traversals per channel per injected flit.
        assert avg == pytest.approx(paper, rel=0.05)

    def test_uniform_saturation_near_line_rate(self, sf5, sf5_tables):
        sat = saturation_throughput(sf5, uniform_demands(sf5), sf5_tables)
        assert 0.6 <= sat <= 1.0  # balanced SF: close to full injection

    def test_worstcase_saturation_matches_sim_collapse(self, sf5, sf5_tables):
        """The fluid bound predicts the measured 1/(2p) Fig 6d collapse."""
        wc = SlimFlyWorstCase(sf5, sf5_tables, seed=0)
        sat = saturation_throughput(
            sf5, permutation_demands(wc.mapping), sf5_tables
        )
        p = sf5.concentration
        assert sat == pytest.approx(1 / (2 * p), rel=0.35)

    def test_max_channel_load_empty(self):
        assert max_channel_load({}) == 0.0


class TestTopologyIO:
    def test_roundtrip(self, tmp_path, sf5):
        path = tmp_path / "sf5.json"
        save_topology(sf5, path, attributes={"q": 5})
        loaded = load_topology(path)
        assert loaded.adjacency == sf5.adjacency
        assert loaded.endpoint_map == sf5.endpoint_map
        assert loaded.name == sf5.name

    def test_dict_roundtrip_preserves_structure(self, df3):
        doc = topology_to_dict(df3)
        loaded = topology_from_dict(doc)
        assert loaded.num_links == df3.num_links
        assert loaded.diameter() == df3.diameter()

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            topology_from_dict({"format": "other"})
        with pytest.raises(ValueError):
            topology_from_dict({"format": "repro-topology", "version": 99})

    def test_edge_list_export(self, tmp_path, sf5):
        path = tmp_path / "sf5.edges"
        export_edge_list(sf5, path)
        lines = path.read_text().strip().split("\n")
        assert lines[0].startswith("#")
        assert len(lines) - 1 == sf5.num_links
        u, v = map(int, lines[1].split())
        assert v in sf5.adjacency[u]

    def test_catalog_markdown(self):
        text = export_catalog_markdown(20000)
        assert text.count("\n") >= 12  # header + >= 11 configs (§VII-A)
        assert "| 19 |" in text
