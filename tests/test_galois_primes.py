"""Unit + property tests for primality/factorisation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.galois.primes import (
    factorize,
    is_prime,
    is_prime_power,
    prime_powers_up_to,
    primes_up_to,
)


class TestIsPrime:
    def test_small_values(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        for n in range(-5, 32):
            assert is_prime(n) == (n in known)

    def test_larger_primes(self):
        assert is_prime(7919)
        assert is_prime(104729)

    def test_larger_composites(self):
        assert not is_prime(7917)
        assert not is_prime(104730)
        assert not is_prime(7919 * 7919)

    def test_carmichael_number(self):
        # 561 = 3*11*17 fools Fermat tests; trial division does not care.
        assert not is_prime(561)


class TestSieve:
    def test_matches_trial_division(self):
        sieve = set(primes_up_to(500))
        for n in range(501):
            assert (n in sieve) == is_prime(n)

    def test_empty_below_two(self):
        assert primes_up_to(1) == []
        assert primes_up_to(-3) == []


class TestFactorize:
    def test_examples(self):
        assert factorize(1) == {}
        assert factorize(2) == {2: 1}
        assert factorize(12) == {2: 2, 3: 1}
        assert factorize(9702) == {2: 1, 3: 2, 7: 2, 11: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, n):
        total = 1
        for p, e in factorize(n).items():
            assert is_prime(p)
            total *= p**e
        assert total == n


class TestPrimePower:
    def test_detects_powers(self):
        assert is_prime_power(5) == (5, 1)
        assert is_prime_power(8) == (2, 3)
        assert is_prime_power(9) == (3, 2)
        assert is_prime_power(49) == (7, 2)
        assert is_prime_power(343) == (7, 3)

    def test_rejects_composites_and_trivia(self):
        for n in (0, 1, 6, 10, 12, 100):
            assert is_prime_power(n) is None

    def test_listing(self):
        pps = prime_powers_up_to(32)
        assert pps == [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32]

    @given(st.integers(min_value=2, max_value=5000))
    def test_consistency_with_factorize(self, n):
        result = is_prime_power(n)
        factors = factorize(n)
        if len(factors) == 1:
            (p, e), = factors.items()
            assert result == (p, e)
        else:
            assert result is None
