"""Tests for the cost and power models (§VI-B/C, Table IV)."""

import pytest

from repro.costmodel import (
    CABLE_MODELS,
    analytic_counts,
    analytic_network_cost,
    network_cost,
    network_power_watts,
    power_per_endpoint,
    table4_rows,
)
from repro.costmodel.cables import get_cable_model
from repro.costmodel.counts import (
    dragonfly_counts,
    fattree_counts,
    slimfly_counts,
    sweep_counts,
)
from repro.costmodel.routers import get_router_model, router_cost
from repro.topologies import Dragonfly, SlimFly


class TestCableModel:
    def test_paper_fdr10_fit(self):
        m = get_cable_model("mellanox-fdr10")
        # f(x) at 1 m, exact paper coefficients × 40 Gb/s.
        assert m.electric_cost(1.0) == pytest.approx(40 * (0.4079 + 0.5771))
        assert m.optical_cost(10.0) == pytest.approx(40 * (0.919 + 2.7452))
        assert not m.estimated

    def test_crossover(self):
        m = get_cable_model("mellanox-fdr10")
        x = m.crossover_length()
        # Electric cheaper below, optical cheaper above.
        assert m.electric_cost(x - 1) < m.optical_cost(x - 1)
        assert m.electric_cost(x + 1) > m.optical_cost(x + 1)
        assert 5.0 < x < 10.0  # paper Fig 13a: mid-single-digit meters

    def test_all_models_sane(self):
        for m in CABLE_MODELS.values():
            assert m.electric_cost(1.0) > 0
            assert m.optical_cost(1.0) > 0
            assert m.crossover_length() > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_cable_model("nope")


class TestRouterModel:
    def test_paper_fit(self):
        # f(k) = 350.4k − 892.3
        assert router_cost(43) == pytest.approx(350.4 * 43 - 892.3)

    def test_floor_at_tiny_radix(self):
        assert router_cost(1) > 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            get_router_model().cost(0)


class TestPower:
    def test_formula(self):
        # Nr·k·4 lanes·0.7 W
        assert network_power_watts(722, 43) == pytest.approx(722 * 43 * 2.8)

    def test_paper_sf_power_per_node(self):
        """Table IV: SF ≈ 8.02 W/node with k=43."""
        assert power_per_endpoint(722, 43, 10830) == pytest.approx(8.02, abs=0.05)

    def test_paper_df_power_per_node(self):
        assert power_per_endpoint(990, 43, 10890) == pytest.approx(10.9, abs=0.1)

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            power_per_endpoint(1, 1, 0)


class TestCounts:
    def test_dragonfly_exact_cables(self):
        """DF h=7: 9009 electric, 4851 fiber (Table IV's k=27 column)."""
        c = dragonfly_counts(h=7)
        assert c.electric_cables == 9009
        assert c.fiber_cables == 4851
        assert c.num_endpoints == 9702

    def test_slimfly_counts_match_layout_census(self, sf5):
        """Closed-form electric/fiber split equals the measured census."""
        from repro.layout import slimfly_racks

        c = slimfly_counts(5)
        electric, fiber, _ = slimfly_racks(sf5).cable_census(sf5)
        assert c.electric_cables == electric
        assert c.fiber_cables == fiber

    def test_fattree_counts(self):
        c = fattree_counts(22)
        assert c.num_routers == 5 * 22 * 22
        assert c.num_endpoints == 2 * 22**3
        assert c.fiber_cables == 4 * 22**3

    def test_dispatch(self):
        c = analytic_counts("HC", n_dims=8)
        assert c.num_routers == 256
        with pytest.raises(KeyError):
            analytic_counts("NOPE")

    def test_sweeps_monotone(self):
        for name in ("SF", "DF", "FT-3", "FBF-3", "HC", "T3D"):
            sizes = [c.num_endpoints for c in sweep_counts(name, 20000)]
            assert sizes == sorted(sizes)
            assert all(s <= 20000 for s in sizes)


class TestCost:
    def test_exact_vs_analytic_slimfly_close(self, sf5):
        exact = network_cost(sf5)
        analytic = analytic_network_cost(slimfly_counts(5))
        assert exact.total_cost == pytest.approx(analytic.total_cost, rel=0.15)

    def test_report_identities(self, sf5):
        rep = network_cost(sf5)
        assert rep.total_cost == pytest.approx(rep.router_cost + rep.cable_cost)
        assert rep.cost_per_endpoint == pytest.approx(rep.total_cost / 200)
        assert rep.electric_cables + rep.fiber_cables == sf5.num_links

    def test_endpoint_cables_toggle(self, sf5):
        with_e = network_cost(sf5, include_endpoint_cables=True)
        without = network_cost(sf5, include_endpoint_cables=False)
        assert with_e.total_cost > without.total_cost


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return table4_rows()

    def test_fourteen_rows(self, rows):
        assert len(rows) == 14

    def test_sf_beats_df_by_about_quarter(self, rows):
        sf = next(r for r in rows if r.counts.name == "SF")
        df_same = [
            r for r in rows
            if r.counts.name == "DF" and r.group == "high-radix same-k"
        ]
        comparable_df = min(df_same, key=lambda r: abs(r.counts.num_endpoints - 10830))
        saving = 1 - sf.cost_per_node / comparable_df.cost_per_node
        assert 0.10 <= saving <= 0.40  # paper: ≈25%

    def test_sf_lowest_power(self, rows):
        sf = next(r for r in rows if r.counts.name == "SF")
        for r in rows:
            if r.counts.name != "SF":
                assert sf.power_per_node_w < r.power_per_node_w

    def test_low_radix_expensive(self, rows):
        """Low-radix networks cost much more per node than SF."""
        sf = next(r for r in rows if r.counts.name == "SF")
        for r in rows:
            if r.group == "low-radix":
                assert r.cost_per_node > 1.4 * sf.cost_per_node

    def test_paper_sf_numbers_close(self, rows):
        sf = next(r for r in rows if r.counts.name == "SF")
        assert sf.cost_per_node == pytest.approx(1033, rel=0.15)
        assert sf.power_per_node_w == pytest.approx(8.02, rel=0.05)
