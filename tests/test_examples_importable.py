"""Smoke tests: every example script parses, imports, and exposes main().

Running the examples end-to-end takes minutes (they sweep the
simulator); correctness of the underlying calls is covered by the unit
and integration suites, so here we assert the scripts are importable
and their entry points exist — the failure mode that actually bites
shipped examples.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_imports(path):
    # Parse (catches syntax errors with a clear message).
    tree = ast.parse(path.read_text())
    # Has a main() and a __main__ guard.
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main() function"
    assert "__main__" in path.read_text()
    # Import executes top-level code (the import block) without running main.
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)


def test_at_least_three_examples():
    assert len(EXAMPLES) >= 3
