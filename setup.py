"""Legacy setup shim.

The environment has setuptools but no `wheel`, so PEP 660 editable
installs (which need bdist_wheel) are unavailable; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work offline.
"""
from setuptools import setup

setup()
