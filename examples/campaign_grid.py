#!/usr/bin/env python3
"""Declarative campaigns: describe a simulation grid as data, run it,
resume it (DESIGN.md, Layer 5).

Builds a {routing × traffic} grid over a small Slim Fly plus two
closed-loop collective scenarios, saves the campaign as JSON
(committable next to its results), executes it through the single
entry point `repro.scenarios.run_campaign`, then re-runs with
``resume=True`` to show that a completed output file costs zero
simulations.

Run:  python examples/campaign_grid.py [output-dir]

Produces ``campaign_grid.json`` (the spec) and ``campaign_grid.jsonl``
(one row per result).  The same files replay through the CLI:

    python -m repro.experiments campaign campaign_grid.json \\
        --workers 4 --out campaign_grid.jsonl --resume
"""

import sys
import time
from pathlib import Path

from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    run_campaign,
)
from repro.sim import SimConfig

CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200, seed=7)
LOADS = [0.1, 0.3, 0.5, 0.7]


def build_campaign() -> Campaign:
    # A grid campaign: one base scenario, axes for routing and traffic.
    base = Scenario(
        topology=TopologySpec("SF", params={"q": 5}),
        routing=RoutingSpec("min"),
        sim=CFG,
        traffic=TrafficSpec("uniform", seed=7),
        loads=LOADS,
    )
    grid = Campaign.from_grid(
        "sf-grid",
        base,
        {
            "routing": [
                RoutingSpec("min"),
                RoutingSpec("val", {"seed": 7}),
                RoutingSpec("ugal-l", {"seed": 7}),
            ],
            "traffic": [
                TrafficSpec("uniform", seed=7),
                TrafficSpec("worstcase", seed=7),
            ],
        },
        label=lambda s: f"{s.routing.name}/{s.traffic.pattern}",
    )
    # Campaigns mix engines freely: append closed-loop collectives.
    closed = [
        Scenario(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=SimConfig(seed=7),
            workload=WorkloadSpec(kind, ranks=16, size_flits=4),
            max_cycles=200_000,
            label=f"min/{kind}",
        )
        for kind in ("ring-allreduce", "broadcast")
    ]
    return Campaign("campaign-grid-demo", grid.scenarios + closed)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    campaign = build_campaign()
    spec_path = campaign.save(out_dir / "campaign_grid.json")
    rows_path = out_dir / "campaign_grid.jsonl"
    print(f"campaign spec -> {spec_path} ({len(campaign)} scenarios, "
          f"{campaign.num_rows} rows)")

    t0 = time.time()
    report = run_campaign(campaign, workers=0, out=rows_path)
    print(f"{report.summary()}  [{time.time() - t0:.1f}s]")

    # Resume on a complete file: every scenario is reused, zero sims.
    t0 = time.time()
    resumed = run_campaign(campaign, workers=0, out=rows_path, resume=True)
    print(f"{resumed.summary()}  [{time.time() - t0:.1f}s]")
    assert resumed.simulated == 0, "resume on a complete file must be free"

    best = min(
        (r for r in report.rows if r["engine"] == "open" and r["latency"]),
        key=lambda r: r["latency"],
    )
    print(f"lowest-latency open-loop row: {best['label']} "
          f"@ load {best['load']} -> {best['latency']:.1f} cycles")


if __name__ == "__main__":
    main()
