#!/usr/bin/env python3
"""Datacenter design study: pick and lay out a Slim Fly for a target size.

Scenario from the paper's §VI-A/§VII: you must connect ~10,000 nodes
with 44-port routers.  The script

1. searches the Slim Fly catalogue for candidate configurations,
2. compares them against a balanced Dragonfly and fat tree of the same
   class (routers, cables, cost, power),
3. derives the physical rack layout (racks, cables per rack pair,
   cable-length census), and
4. shows the §VII-C incremental-expansion headroom (how many endpoints
   can be added before leaving the paper's tolerated oversubscription).

Run:  python examples/datacenter_design.py [target_endpoints]
"""

import sys

from repro.core.balance import balanced_concentration, saturation_load_estimate
from repro.core.catalog import find_slimfly_for_endpoints, slimfly_catalog
from repro.costmodel import analytic_network_cost, network_cost
from repro.costmodel.counts import dragonfly_counts, fattree_counts, slimfly_counts
from repro.costmodel.power import power_per_endpoint
from repro.layout import slimfly_racks
from repro.topologies import SlimFly
from repro.util.tables import ascii_table


def main(target: int = 10_000) -> None:
    print(f"== Designing a Slim Fly deployment for ~{target:,} endpoints ==\n")

    # -- 1. Candidates from the catalogue ------------------------------------
    rows = []
    for cfg in slimfly_catalog(int(target * 1.6)):
        if cfg.num_endpoints >= target * 0.4:
            rows.append([cfg.q, cfg.num_routers, cfg.network_radix,
                         cfg.concentration, cfg.router_radix, cfg.num_endpoints])
    print(ascii_table(["q", "Nr", "k'", "p", "k", "N"], rows,
                      title="Catalogue candidates (§VII-A)"))

    best = find_slimfly_for_endpoints(target)
    print(f"\nselected q={best.q}: N={best.num_endpoints:,} with "
          f"radix-{best.router_radix} routers\n")

    # -- 2. Compare with DF / FT of the same class ---------------------------
    sf_counts = slimfly_counts(best.q)
    h = max(2, round((best.num_endpoints / 4) ** 0.25))
    df_counts = dragonfly_counts(h=h)
    ft_counts = fattree_counts(best.router_radix / 2)
    cmp_rows = []
    for counts in (sf_counts, df_counts, ft_counts):
        rep = analytic_network_cost(counts)
        cmp_rows.append([
            counts.name, counts.num_endpoints, counts.num_routers,
            counts.router_radix, round(rep.cost_per_endpoint),
            round(power_per_endpoint(counts.num_routers, counts.router_radix,
                                     counts.num_endpoints), 2),
        ])
    print(ascii_table(["topology", "N", "Nr", "k", "$/node", "W/node"], cmp_rows,
                      title="Cost & power comparison (§VI-B/C methodology)"))

    # -- 3. Physical layout ----------------------------------------------------
    sf = SlimFly.from_q(best.q)
    racks = slimfly_racks(sf)
    electric, fiber, mean_fiber = racks.cable_census(sf)
    per_rack = sf.num_routers // racks.num_racks
    print(f"\nlayout (§VI-A): {racks.num_racks} racks × {per_rack} routers "
          f"({per_rack * sf.concentration} endpoints each)")
    print(f"  every rack pair joined by 2q = {2 * sf.q} cables "
          f"(fully connected rack graph)")
    print(f"  cable census: {electric:,} electric intra-rack, {fiber:,} fiber "
          f"inter-rack (mean run {mean_fiber:.1f} m)")
    exact = network_cost(sf, racks)
    print(f"  exact layout-priced cost: {exact.cost_per_endpoint:,.0f} $/endpoint")

    # -- 4. Expansion headroom (§VII-C) -----------------------------------------
    p_bal = balanced_concentration(sf.num_routers, sf.network_radix)
    print(f"\nincremental expansion (§VII-C): balanced p={p_bal}")
    for extra in (1, 2, 3):
        p = p_bal + extra
        est = saturation_load_estimate(sf.num_routers, sf.network_radix, p)
        print(f"  p={p}: +{extra * sf.num_routers:,} endpoints, "
              f"estimated accepted uniform load {100 * est:.0f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
