#!/usr/bin/env python3
"""Routing study: MIN vs VAL vs UGAL under benign and adversarial traffic.

Reproduces the §V experiment narrative on a workstation-sized network:

- uniform random traffic (the graph-computation workload of §V-A),
- the Fig 9 worst-case pattern (§V-C),

for all four Slim Fly protocols, printing latency/throughput curves and
the saturation points.  Then verifies the §IV-D deadlock-freedom story
on the exact paths the protocols produced.

Run:  python examples/routing_comparison.py
"""

from repro.experiments.common import Scale, sim_config_for
from repro.routing import (
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
    dfsssp_vc_count,
    gopal_vc_assignment_is_deadlock_free,
)
from repro.sim.sweep import find_saturation_load, latency_vs_load
from repro.topologies import SlimFly
from repro.traffic import SlimFlyWorstCase, UniformRandom
from repro.util.tables import ascii_table


def sweep(sf, tables, traffic, title, loads):
    cfg = sim_config_for(Scale.DEFAULT)
    protocols = [
        ("MIN", lambda: MinimalRouting(tables)),
        ("VAL", lambda: ValiantRouting(tables, seed=1)),
        ("UGAL-L", lambda: UGALRouting(tables, "local", seed=1)),
        ("UGAL-G", lambda: UGALRouting(tables, "global", seed=1)),
    ]
    rows = []
    sat_summary = []
    for name, factory in protocols:
        points = latency_vs_load(sf, factory, traffic, loads=loads, config=cfg)
        for pt in points:
            rows.append([
                name, pt.load,
                round(pt.latency, 1) if pt.latency is not None else None,
                round(pt.accepted, 3) if pt.accepted is not None else None,
                pt.saturated,
            ])
        sat = find_saturation_load(points)
        sat_summary.append([name, sat if sat is not None else ">max"])
    print(ascii_table(["protocol", "load", "latency", "accepted", "sat"], rows,
                      title=title))
    print(ascii_table(["protocol", "saturation load"], sat_summary))
    print()


def main() -> None:
    sf = SlimFly.from_q(5)
    tables = RoutingTables(sf.adjacency)
    print(f"network: {sf!r}\n")

    sweep(sf, tables, UniformRandom(sf.num_endpoints),
          "Uniform random traffic (§V-A)", [0.2, 0.4, 0.6, 0.8, 0.9])
    sweep(sf, tables, SlimFlyWorstCase(sf, tables, seed=0),
          "Worst-case traffic (§V-C, Fig 9)", [0.05, 0.1, 0.2, 0.3, 0.45])

    # Deadlock-freedom on the protocols' actual paths (§IV-D).
    min_paths = [tables.min_path(s, d)
                 for s in range(sf.num_routers)
                 for d in range(sf.num_routers) if s != d]
    val = ValiantRouting(tables, seed=1)
    val_paths = [val.plan(s, (s + 11) % sf.num_routers, None)
                 for s in range(sf.num_routers)]
    print("deadlock-freedom (§IV-D):")
    print(f"  MIN with 2 hop-indexed VCs acyclic: "
          f"{gopal_vc_assignment_is_deadlock_free(min_paths, 2)}")
    print(f"  VAL with 4 hop-indexed VCs acyclic: "
          f"{gopal_vc_assignment_is_deadlock_free(val_paths, 4)}")
    print(f"  DFSSSP-style VC layers for static routing: "
          f"{dfsssp_vc_count(tables)} (paper: 3 for every SF)")


if __name__ == "__main__":
    main()
