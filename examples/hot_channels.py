#!/usr/bin/env python3
"""Where the flits actually go: per-channel telemetry, SF vs DF.

The paper's Fig 9 argument is about *distribution*, not averages:
under the worst-case pattern, minimal routing on Slim Fly funnels all
traffic through a handful of saturated channels while most of the
network idles; adaptive UGAL spreads the same demand across many
lightly-loaded channels.  This example arms the telemetry probe plane
(`repro.sim.telemetry`) on the quick-scale §V comparison networks —
Slim Fly MMS(q=5) and the balanced Dragonfly(h=3), whose per-endpoint
cost the cost model prices side by side — and shows:

1. the top-10 hottest channels per protocol, named router->router in
   the repo's flat channel numbering,
2. the fraction of packets each adaptive protocol diverted onto
   non-minimal paths (the mechanism behind the flattening),
3. the channel-load CDF, rendered to an SVG next to this script's
   output directory — the same figure family `report` builds from a
   campaign's `.metrics.jsonl` sidecar.

Probes never perturb results (results are bit-identical with
telemetry off) and cost nothing when left off.

Run:  python examples/hot_channels.py [out_dir]
"""

import sys
from pathlib import Path

from repro.analysis.figures import LineFigure, LineSeries
from repro.costmodel import network_cost
from repro.experiments.common import Scale, performance_trio
from repro.routing import make_routing
from repro.sim import SimConfig, TelemetrySpec, simulate
from repro.sim.network import channel_layout
from repro.traffic import make_pattern
from repro.util import ascii_table

#: Fig 9's sample point: well below either network's saturation, so
#: load imbalance is a routing choice, not a capacity limit.
LOAD = 0.3
CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200, seed=1)
#: Only the probes this study reads; arming fewer probes costs less.
PROBES = TelemetrySpec(channel_flits=True, routing_decisions=True)


def build_protocols():
    """(label, topology, routing factory) for SF-MIN / SF-UGAL-L / DF-UGAL-L."""
    sf, df, _ = performance_trio(Scale.QUICK)
    return [
        ("SF-MIN", sf, lambda: make_routing("min", sf)),
        ("SF-UGAL-L", sf, lambda: make_routing("ugal-l", sf, seed=0)),
        ("DF-UGAL-L", df, lambda: make_routing("df-ugal-l", df, seed=0)),
    ]


def print_cost_comparison(sf, df) -> None:
    rows = []
    for name, topo in (("Slim Fly MMS(q=5)", sf), ("Dragonfly(h=3)", df)):
        cost = network_cost(topo)
        rows.append([
            name, topo.num_routers, topo.num_endpoints,
            f"${cost.cost_per_endpoint:,.0f}",
        ])
    print(ascii_table(["network", "routers", "endpoints", "cost/endpoint"], rows))
    print()


def probe_run(label, topo, routing_factory):
    """One worst-case simulation with the probe plane armed."""
    pattern = make_pattern("worstcase", topo, seed=0)
    result = simulate(topo, routing_factory(), pattern, LOAD, CFG,
                      telemetry=PROBES)
    tele = result.telemetry
    assert tele is not None and tele.channel_load is not None
    return label, topo, tele


def print_hot_channels(label, topo, tele, top=10) -> None:
    """The hottest channels, named src->dst in flat channel numbering."""
    _, _, chan_src, chan_dst = channel_layout(topo)
    load = tele.channel_load
    hottest = sorted(range(len(load)), key=lambda c: load[c], reverse=True)[:top]
    rows = [
        [rank + 1, f"r{chan_src[c]} -> r{chan_dst[c]}", f"{load[c]:.3f}"]
        for rank, c in enumerate(hottest)
    ]
    idle = sum(1 for v in load if v == 0.0)
    print(f"{label}: mean load {sum(load) / len(load):.3f} flits/cycle "
          f"over {len(load)} channels, {idle} idle, "
          f"{tele.route_diverted_frac:.1%} of packets diverted")
    print(ascii_table(["rank", "channel", "flits/cycle"], rows))
    print()


def channel_cdf_figure(runs) -> LineFigure:
    """Fraction of channels at or below each load — Fig 9's shape."""
    series = []
    for label, _, tele in runs:
        loads = sorted(tele.channel_load)
        n = len(loads)
        series.append(LineSeries(
            name=label,
            x=[round(v, 4) for v in loads],
            y=[round((i + 1) / n, 4) for i in range(n)],
        ))
    return LineFigure(
        title="Channel-load CDF, worst-case traffic (Fig 9 family)",
        xlabel="channel load [flits/cycle]",
        ylabel="fraction of channels",
        series=series,
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("hot_channels_out")
    protocols = build_protocols()
    sf, df = protocols[0][1], protocols[2][1]
    print(f"Worst-case traffic at load {LOAD}, probes: "
          f"{sorted(PROBES.to_dict())}\n")
    print_cost_comparison(sf, df)

    runs = [probe_run(*p) for p in protocols]
    for label, topo, tele in runs:
        print_hot_channels(label, topo, tele)

    out_dir.mkdir(parents=True, exist_ok=True)
    svg_path = out_dir / "hot-channels-cdf.svg"
    svg_path.write_text(channel_cdf_figure(runs).render_svg(), encoding="utf-8")
    print(f"channel-load CDF written to {svg_path}")
    sf_min = dict((label, tele) for label, _, tele in runs)
    hottest = lambda t: max(t.channel_load)  # noqa: E731
    print(f"\nMIN's hottest channel carries "
          f"{hottest(sf_min['SF-MIN']):.2f} flits/cycle vs "
          f"{hottest(sf_min['SF-UGAL-L']):.2f} under UGAL-L: adaptivity "
          f"trades a few saturated channels for many warm ones.")


if __name__ == "__main__":
    main()
