#!/usr/bin/env python3
"""Quickstart: build a Slim Fly, inspect it, route on it, simulate it.

Walks through the library's core objects in ~a minute of wall time:

1. construct the MMS-based Slim Fly for a target size,
2. check the structural claims (diameter 2, balanced concentration,
   Moore-bound proximity),
3. build routing tables and look at minimal/Valiant paths,
4. run a short cycle-accurate simulation under uniform traffic,
5. price the network with the paper's cost and power models.

Run:  python examples/quickstart.py
"""

from repro.core.balance import balanced_concentration, channel_load
from repro.core.moore import moore_bound_diameter2, moore_fraction
from repro.costmodel import network_cost
from repro.costmodel.power import power_per_endpoint
from repro.routing import MinimalRouting, RoutingTables, ValiantRouting
from repro.sim import SimConfig, simulate
from repro.topologies import SlimFly
from repro.traffic import UniformRandom


def main() -> None:
    # -- 1. Construct -------------------------------------------------------
    sf = SlimFly.for_endpoints(200)
    print(f"built {sf!r}")
    print(f"  q={sf.q} (delta={sf.delta:+d}), generator sets X={sorted(sf.mms.X)}, "
          f"X'={sorted(sf.mms.Xp)}")

    # -- 2. Structure -------------------------------------------------------
    diam = sf.diameter()
    avg = sf.average_distance()
    frac = moore_fraction(sf.num_routers, sf.network_radix, 2)
    print(f"  diameter={diam} (paper: always 2), average distance={avg:.3f}")
    print(f"  routers={sf.num_routers} = {100 * frac:.0f}% of the Moore bound "
          f"MB({sf.network_radix}, 2)={moore_bound_diameter2(sf.network_radix)}")
    p_bal = balanced_concentration(sf.num_routers, sf.network_radix)
    print(f"  balanced concentration p={p_bal} "
          f"(channel load {channel_load(sf.num_routers, sf.network_radix, p_bal):.1f})")

    # -- 3. Routing ---------------------------------------------------------
    tables = RoutingTables(sf.adjacency)
    src, dst = 0, sf.num_routers - 1
    print(f"  MIN path {src}->{dst}: {tables.min_path(src, dst)}")
    val = ValiantRouting(tables, seed=0)
    print(f"  VAL path {src}->{dst}: {val.plan(src, dst, None)}")

    # -- 4. Simulate --------------------------------------------------------
    cfg = SimConfig(warmup_cycles=300, measure_cycles=700, drain_cycles=2000)
    for load in (0.1, 0.5, 0.8):
        res = simulate(sf, MinimalRouting(tables), UniformRandom(sf.num_endpoints),
                       load, cfg)
        print(f"  MIN @ load {load:.1f}: latency {res.avg_latency:6.1f} cycles, "
              f"accepted {res.accepted_load:.3f}, saturated={res.saturated}")

    # -- 5. Price -----------------------------------------------------------
    report = network_cost(sf)
    watts = power_per_endpoint(sf.num_routers, sf.router_radix, sf.num_endpoints)
    print(f"  cost: {report.total_cost:,.0f} $ total, "
          f"{report.cost_per_endpoint:,.0f} $/endpoint "
          f"({report.electric_cables:.0f} electric + {report.fiber_cables:.0f} fiber cables)")
    print(f"  power: {watts:.1f} W/endpoint")


if __name__ == "__main__":
    main()
