"""Closed-loop workloads: how long does a collective take on Slim Fly?

The paper's §V evaluation is open-loop — Bernoulli injection at a
fixed offered load.  Applications instead care about *completion
time*: a rank sends only once the data it depends on has arrived.
This walkthrough builds collective workloads as dependency DAGs,
replays them closed-loop on Slim Fly vs the fat tree, and shows the
JSONL trace record/replay round trip.

Run:  PYTHONPATH=src python examples/collective_completion.py
"""

import io

from repro.routing import ANCARouting, MinimalRouting, RoutingTables, UGALRouting
from repro.sim import CompletionTask, SimConfig, parallel_workload_completion, simulate_workload
from repro.topologies import FatTree3, SlimFly
from repro.workloads import (
    RingAllReduce,
    make_workload,
    read_trace,
    spread_placement,
    write_trace,
)

RANKS = 24
CFG = SimConfig(seed=1)


def main() -> None:
    sf = SlimFly.from_q(5)  # MMS(q=5): 50 routers, diameter 2, N=200
    ft = FatTree3(6)
    sf_tables = RoutingTables(sf.adjacency)

    # 1. One closed-loop run: ring all-reduce on Slim Fly under MIN.
    wl = RingAllReduce(RANKS, size_flits=64, endpoints=spread_placement(sf, RANKS))
    res = simulate_workload(sf, MinimalRouting(sf_tables), wl, CFG)
    print(f"ring all-reduce on SF-MIN: {res.num_messages} messages, "
          f"completed in {res.makespan} cycles "
          f"(avg message latency {res.avg_message_latency:.1f})")

    # 2. A comparison family fanned across processes: identical rows
    #    for any worker count, one task per (topology, routing, kind).
    tasks = []
    for kind in ("alltoall", "broadcast", "halo2d"):
        for name, topo, factory in [
            ("SF-MIN", sf, lambda: MinimalRouting(sf_tables)),
            ("SF-UGAL-L", sf, lambda: UGALRouting(sf_tables, "local", seed=1)),
            ("FT-ANCA", ft, lambda: ANCARouting(ft, seed=1)),
        ]:
            tasks.append(CompletionTask(
                topo, factory,
                make_workload(kind, RANKS, 8, endpoints=spread_placement(topo, RANKS)),
                CFG, label=f"{name}/{kind}",
            ))
    results = parallel_workload_completion(tasks, workers=0)  # all cores
    print("\ncompletion time [cycles]:")
    for task, r in zip(tasks, results):
        print(f"  {task.label:22s} {r.makespan:6d}  "
              f"({'finished' if r.finished else 'CAPPED'})")

    # 3. Trace round trip: record, re-export with measured timestamps,
    #    replay — the replay re-derives timing from the DAG alone.
    buf = io.StringIO()
    write_trace(wl, buf, completions=res.message_completions)
    buf.seek(0)
    replay = read_trace(buf)
    res2 = simulate_workload(sf, MinimalRouting(sf_tables), replay, CFG)
    print(f"\ntrace replay reproduces the schedule: "
          f"{res2.message_completions == res.message_completions}")


if __name__ == "__main__":
    main()
