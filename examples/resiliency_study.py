#!/usr/bin/env python3
"""Resiliency study: Slim Fly vs Dragonfly vs random topology (§III-D).

Monte-Carlo link-failure sweep on comparable networks reporting, per
removal fraction, the probability of (a) staying connected, (b) keeping
the diameter within +2, (c) keeping the average path within +1 hop —
the paper's three §III-D metrics side by side, plus the counter-
intuitive headline: SF beats DF despite using fewer cables.

Run:  python examples/resiliency_study.py
"""

from repro.analysis.resiliency import (
    diameter_resiliency,
    disconnection_resiliency,
    pathlength_resiliency,
)
from repro.topologies import Dragonfly, RandomDLN, SlimFly
from repro.util.tables import ascii_table


def main() -> None:
    sf = SlimFly.from_q(5)
    df = Dragonfly.balanced(3)
    dln = RandomDLN.balanced(sf.router_radix, sf.num_routers, seed=0)
    networks = [("SF", sf), ("DF", df), ("DLN", dln)]
    fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    samples = 25

    print("networks under test:")
    for name, topo in networks:
        print(f"  {name}: Nr={topo.num_routers}, links={topo.num_links}, "
              f"k'={topo.network_radix}")
    print()

    for metric, fn, kwargs in (
        ("connectivity survives", disconnection_resiliency, {}),
        ("diameter stays within +2", diameter_resiliency, {"max_increase": 2}),
        ("avg path stays within +1", pathlength_resiliency, {"max_increase": 1.0}),
    ):
        rows = []
        headline = {}
        for name, topo in networks:
            res = fn(topo.adjacency, fractions=fractions, samples=samples,
                     seed=1, **kwargs)
            rows.append([name] + [f"{100 * p:.0f}%" for p in res.survival_probability])
            headline[name] = res.max_survivable_fraction
        print(ascii_table(
            ["network"] + [f"{int(100 * f)}% cut" for f in fractions], rows,
            title=f"P[{metric}] vs removed-cable fraction",
        ))
        print(f"  majority-survivable fraction: "
              + ", ".join(f"{n}={100 * v:.0f}%" for n, v in headline.items()))
        sf_wins = headline["SF"] >= headline["DF"]
        print(f"  paper's counter-intuitive claim (SF ≥ DF with fewer cables): "
              f"{'holds' if sf_wins else 'NOT reproduced here'}\n")


if __name__ == "__main__":
    main()
