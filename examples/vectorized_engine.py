#!/usr/bin/env python3
"""One Slim Fly, three fidelities: cycle vs cycle-vec vs flow.

Sweeps a single MMS instance through every engine backend behind the
Layer-2 contract (`repro.sim.backends`) and prints, per backend, the
wall-clock throughput and the resulting curve — demonstrating:

1. `cycle-vec` reproduces the `cycle` rows *bit for bit* while running
   the same flit-level semantics as batched numpy phases (the speedup
   grows with q: ~2x at the q=5 of this demo, ~7x at q=11),
2. `flow` lands the same saturation story orders of magnitude faster,
   at steady-state fidelity,
3. all three agree on where the network saturates — the cross-check
   that lets campaigns mix fidelities.

Run:  python examples/vectorized_engine.py
"""

import time

from repro.routing import MinimalRouting, RoutingTables
from repro.sim import SimConfig, get_backend
from repro.topologies import SlimFly
from repro.traffic import UniformRandom
from repro.util.tables import ascii_table

CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200, seed=1)
LOADS = [0.1, 0.3, 0.5, 0.7, 0.9]
BACKENDS = ("cycle", "cycle-vec", "flow")


def sweep_all_backends(sf, tables, traffic):
    """Run the same sweep through each backend, timing it."""
    curves = {}
    for name in BACKENDS:
        backend = get_backend(name)
        t0 = time.time()
        rows = backend.sweep(
            sf, lambda: MinimalRouting(tables), traffic, LOADS,
            config=CFG, workers=1,
        )
        elapsed = time.time() - t0
        # Flits simulated during the measurement windows of the
        # non-short-circuited points (flow solves rates, not flits, so
        # its "throughput" is rows/s).
        curves[name] = (rows, elapsed)
    return curves


def print_throughput(curves) -> None:
    rows = []
    for name, (points, elapsed) in curves.items():
        solved = sum(1 for p in points if p.latency is not None)
        rows.append([name, f"{elapsed:.2f}s", f"{solved}/{len(points)}"])
    print(ascii_table(["backend", "sweep time", "rows solved"], rows))
    cyc = curves["cycle"][1]
    vec = curves["cycle-vec"][1]
    print(f"\ncycle-vec ran the identical flit-level sweep "
          f"{cyc / vec:.1f}x faster (advantage grows with q).\n")


def print_agreement(curves) -> None:
    cycle_rows, _ = curves["cycle"]
    vec_rows, _ = curves["cycle-vec"]
    flow_rows, _ = curves["flow"]
    print(f"cycle-vec rows identical to cycle: {vec_rows == cycle_rows}")

    def sat_load(rows):
        for p in rows:
            if p.saturated:
                return p.load
        return None

    table = []
    for load, c, v, f in zip(LOADS, cycle_rows, vec_rows, flow_rows):
        fmt = lambda p: "saturated" if p.latency is None else f"{p.latency:.1f}"
        table.append([load, fmt(c), fmt(v), fmt(f)])
    print(ascii_table(["load", "cycle", "cycle-vec", "flow"], table))
    print(f"\nsaturation point per backend: "
          f"cycle={sat_load(cycle_rows)}, cycle-vec={sat_load(vec_rows)}, "
          f"flow={sat_load(flow_rows)}")


def main() -> None:
    sf = SlimFly.from_q(5)
    tables = RoutingTables(sf.adjacency)
    traffic = UniformRandom(sf.num_endpoints)
    print(f"SlimFly MMS(q=5): {sf.num_routers} routers, "
          f"{sf.num_endpoints} endpoints — MIN routing, uniform traffic\n")
    curves = sweep_all_backends(sf, tables, traffic)
    print_throughput(curves)
    print_agreement(curves)


if __name__ == "__main__":
    main()
