#!/usr/bin/env python3
"""Simulating failures: the fault axis end to end (DESIGN.md, the
fault plane).

Builds a small degradation grid — MIN and UGAL-L on the q=5 Slim Fly
at 0%, 5%, and 10% dead links, plus one deliberately fragmented
instance — and shows the contracts that make faults a first-class
scenario axis:

1. a ``FaultSpec`` rides inside the scenario, so the same campaign
   file replays on any backend, worker count, or store;
2. rows are byte-identical for any ``workers`` value;
3. a disconnecting fault yields structured rows (``disconnected``,
   null measurements) — never a crash;
4. faulted scenarios hash differently from their healthy twins, so a
   content-addressed store can never cross-serve them.

Run:  python examples/failure_sweep.py [output-dir]

The same sweep at paper scale, from the CLI:

    python -m repro.experiments fault-degradation --scale paper --workers 8
"""

import sys
from pathlib import Path

from repro.scenarios import (
    Campaign,
    FaultSpec,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    run_campaign,
    scenario_hash,
)
from repro.sim import SimConfig

CFG = SimConfig(warmup_cycles=60, measure_cycles=120, drain_cycles=400, seed=7)
FRACTIONS = [0.0, 0.05, 0.1]


def build_campaign() -> Campaign:
    """The demo grid: {MIN, UGAL-L} x fault fractions, plus a severed net."""
    scenarios = []
    for name, rspec in [
        ("MIN", RoutingSpec("min")),
        ("UGAL-L", RoutingSpec("ugal-l", {"seed": 7})),
    ]:
        for frac in FRACTIONS:
            scenarios.append(
                Scenario(
                    topology=TopologySpec("SF", params={"q": 5}),
                    routing=rspec,
                    sim=CFG,
                    traffic=TrafficSpec("uniform", seed=7),
                    loads=[0.2, 0.5, 0.8],
                    label=f"{name}/f={frac:g}",
                    # 0.0 normalises to None: the healthy baseline is
                    # the very same scenario (and hash) as ever.
                    fault=FaultSpec(link_fraction=frac, seed=7) if frac else None,
                )
            )
    scenarios.append(
        Scenario(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=CFG,
            traffic=TrafficSpec("uniform", seed=7),
            loads=[0.2, 0.5],
            label="MIN/severed",
            # Cutting every cable of router 0 strands its endpoints.
            fault=FaultSpec(cut_routers=[0]),
        )
    )
    return Campaign("failure-sweep-demo", scenarios)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    campaign = build_campaign()
    print(f"campaign: {len(campaign)} scenarios, {campaign.num_rows} rows")

    # Hash discipline: each fault level is its own scenario identity.
    for s in campaign.scenarios:
        tag = "healthy" if s.fault is None else (
            "severed" if s.fault.cut_routers else f"f={s.fault.link_fraction:g}"
        )
        print(f"  {scenario_hash(s)}  {s.label:<14} ({tag})")

    report = run_campaign(campaign, workers=1, out=out_dir / "w1.jsonl")
    print(f"serial  {report.summary()}")

    print(f"{'label':<14} {'load':>5} {'latency':>9} {'accepted':>9}  flags")
    for row in report.rows:
        lat = f"{row['latency']:.1f}" if row["latency"] is not None else "—"
        acc = f"{row['accepted']:.3f}" if row["accepted"] is not None else "—"
        flag = "DISCONNECTED" if row.get("disconnected") else ""
        print(f"{row['label']:<14} {row['load']:>5} {lat:>9} {acc:>9}  {flag}")

    severed = [r for r in report.rows if r["label"] == "MIN/severed"]
    assert severed and all(r["disconnected"] for r in severed)
    assert all(r["latency"] is None and r["accepted"] is None for r in severed)

    fanned = run_campaign(campaign, workers=2, out=out_dir / "w2.jsonl")
    assert (out_dir / "w1.jsonl").read_bytes() == (out_dir / "w2.jsonl").read_bytes(), (
        "fault campaigns must be byte-identical at any worker count"
    )
    print(f"fanned  {fanned.summary()}")
    print("workers=1 and workers=2 outputs byte-identical; "
          "disconnection reported as structured rows")


if __name__ == "__main__":
    main()
