#!/usr/bin/env python3
"""Distributed campaigns: content-addressed store + worker service
(DESIGN.md, Layer 7).

Runs one small campaign four ways and shows every output is
byte-identical:

1. serial baseline — plain ``run_campaign`` in this process;
2. distributed — a coordinator in this process leases work units to
   two ``serve-worker`` subprocesses over the socket protocol;
3. distributed + store — same, but fresh results are also written to a
   content-addressed result store;
4. warm store — re-run against the store: every scenario replays from
   cache, zero simulations, no service needed.

Run:  python examples/distributed_campaign.py [output-dir]

The same flow from the CLI (two shells, any hosts that share a port):

    python -m repro.experiments campaign grid.json --service 0.0.0.0:7077
    python -m repro.experiments serve-worker HOST:7077 --workers 0
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    run_campaign,
)
from repro.service.coordinator import ServiceConfig
from repro.sim import SimConfig

CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200, seed=7)


def build_campaign() -> Campaign:
    # Several open-loop scenarios (one work unit each) plus a
    # closed-loop batch, so the coordinator has real units to shard.
    base = Scenario(
        topology=TopologySpec("SF", params={"q": 5}),
        routing=RoutingSpec("min"),
        sim=CFG,
        traffic=TrafficSpec("uniform", seed=7),
        loads=[0.1, 0.4, 0.7],
    )
    grid = Campaign.from_grid(
        "distributed-demo",
        base,
        {
            "routing": [
                RoutingSpec("min"),
                RoutingSpec("val", {"seed": 7}),
                RoutingSpec("ugal-l", {"seed": 7}),
            ],
            "traffic": [
                TrafficSpec("uniform", seed=7),
                TrafficSpec("worstcase", seed=7),
            ],
        },
        label=lambda s: f"{s.routing.name}/{s.traffic.pattern}",
    )
    closed = [
        Scenario(
            topology=TopologySpec("SF", params={"q": 5}),
            routing=RoutingSpec("min"),
            sim=SimConfig(seed=7),
            workload=WorkloadSpec("ring-allreduce", ranks=16, size_flits=4),
            max_cycles=200_000,
            label="min/ring-allreduce",
        )
    ]
    return Campaign("distributed-demo", grid.scenarios + closed)


def _spawn_workers(host: str, port: int, count: int) -> list:
    """Launch ``serve-worker`` subprocesses pointed at the coordinator."""
    src = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "serve-worker",
             f"{host}:{port}", "--workers", "1", "--retry-for", "30"],
            env=env,
        )
        for _ in range(count)
    ]


def run_distributed(campaign: Campaign, out: Path, store=None):
    """Run the campaign through an in-process coordinator + 2 workers."""
    procs: list = []
    service = ServiceConfig(
        port=0,  # ephemeral; workers launch once the listener reports in
        wait_for_workers=30.0,
        on_bound=lambda host, port: procs.extend(_spawn_workers(host, port, 2)),
    )
    try:
        report = run_campaign(campaign, out=out, store=store, service=service)
    finally:
        for p in procs:
            p.wait(timeout=30)
    return report


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    campaign = build_campaign()
    print(f"campaign: {len(campaign)} scenarios, {campaign.num_rows} rows")

    # 1. Serial baseline.
    t0 = time.time()
    serial = run_campaign(campaign, workers=1, out=out_dir / "serial.jsonl")
    print(f"serial       {serial.summary()}  [{time.time() - t0:.1f}s]")

    # 2. Coordinator + two worker subprocesses.
    t0 = time.time()
    svc = run_distributed(campaign, out_dir / "service.jsonl")
    print(f"service      {svc.summary()}  [{time.time() - t0:.1f}s]")
    assert _bytes(out_dir / "service.jsonl") == _bytes(out_dir / "serial.jsonl"), (
        "service output must be byte-identical to the serial run"
    )

    # 3. Same again, but populate a content-addressed store on the way.
    store = out_dir / "store"
    t0 = time.time()
    cold = run_distributed(campaign, out_dir / "cold.jsonl", store=store)
    print(f"service+store {cold.summary()}  [{time.time() - t0:.1f}s]")
    assert _bytes(out_dir / "cold.jsonl") == _bytes(out_dir / "serial.jsonl")

    # 4. Warm store: everything replays from cache — no simulations,
    #    no sockets, byte-identical rows.
    t0 = time.time()
    warm = run_campaign(campaign, out=out_dir / "warm.jsonl", store=store)
    print(f"warm store   {warm.summary()}  [{time.time() - t0:.1f}s]")
    assert warm.simulated == 0, "a warm store must cost zero simulations"
    assert warm.store_hits == len(campaign)
    assert _bytes(out_dir / "warm.jsonl") == _bytes(out_dir / "serial.jsonl")

    print("all four outputs byte-identical; warm pass simulated nothing")


def _bytes(path: Path) -> bytes:
    return path.read_bytes()


if __name__ == "__main__":
    main()
