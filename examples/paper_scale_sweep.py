#!/usr/bin/env python3
"""Mixed-fidelity campaigns: overlay cycle-accurate and flow-level
sweeps, then scale the flow backend to the full paper-size Slim Fly
(DESIGN.md, "Layer 2 — backends").

Part 1 builds a {routing x backend} grid on a small MMS(q=5) instance:
every protocol sweeps twice — once through the cycle-accurate engine,
once through the flow-level solver — so the resulting JSONL holds both
fidelities of the same curves (the report layer renders the flow rows
dashed, in the protocol's color).  Part 2 (``--paper``) runs the
flow-only paper-scale Fig 6 panel: SF q=25 (23,750 endpoints) MIN /
VAL / UGAL-L against DF h=9 and FT-3 p=29 — sizes the Python cycle
engine cannot sweep, solved in seconds per scenario.

Run:  python examples/paper_scale_sweep.py [output-dir] [--paper]

Produces ``fidelity_grid.jsonl`` (and with ``--paper`` additionally
``fig6_paper.jsonl``); render either with:

    python -m repro.experiments report <rows.jsonl> --out report/
"""

import sys
import time
from pathlib import Path

from repro.experiments.fig6_performance import paper_campaign
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    run_campaign,
)
from repro.sim import SimConfig

CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200)
LOADS = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85]


def fidelity_grid() -> Campaign:
    """{routing x backend} on MMS(q=5): each curve at both fidelities."""
    base = Scenario(
        topology=TopologySpec("SF", params={"q": 5}),
        routing=RoutingSpec("min"),
        sim=CFG,
        traffic=TrafficSpec("uniform"),
        loads=LOADS,
    )
    return Campaign.from_grid(
        "fig6-fidelity-overlay",
        base,
        {
            "routing": [
                RoutingSpec("min"),
                RoutingSpec("val", {"seed": 0}),
                RoutingSpec("ugal-l", {"seed": 0}),
            ],
            "backend": ["cycle", "flow"],
        },
        # One label per protocol: rows of the two backends share it,
        # which is exactly what makes the report overlay them.
        label=lambda s: f"SF-{s.routing.name.upper()}",
    )


def saturation_by_fidelity(rows) -> dict[tuple[str, str], float | None]:
    """First saturated load per (label, fidelity) — the overlay summary."""
    out: dict[tuple[str, str], float | None] = {}
    for row in rows:
        key = (row["label"], row["fidelity"])
        out.setdefault(key, None)
        if row["saturated"] and out[key] is None:
            out[key] = row["load"]
    return out


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--paper"]
    paper = "--paper" in sys.argv[1:]
    out_dir = Path(args[0]) if args else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    grid = fidelity_grid()
    print(f"campaign {grid.name}: {len(grid)} scenarios "
          f"({len(LOADS)} loads each, both fidelities)")
    start = time.time()
    report = run_campaign(grid, workers=0, out=out_dir / "fidelity_grid.jsonl")
    print(f"  {report.summary()}  [{time.time() - start:.1f}s]")

    print("\nsaturation load, cycle vs flow (the fidelity you trade):")
    sats = saturation_by_fidelity(report.rows)
    labels = dict.fromkeys(label for label, _ in sats)
    for label in labels:
        cyc = sats.get((label, "cycle"))
        flo = sats.get((label, "flow"))
        fmt = lambda v: f"{v:.2f}" if v is not None else f">{LOADS[-1]:.2f}"
        print(f"  {label:10s} cycle={fmt(cyc)}  flow={fmt(flo)}")

    if not paper:
        print("\n(pass --paper to add the q=25 paper-scale flow sweep)")
        return

    camp = paper_campaign(scale="default", pattern="uniform")
    print(f"\ncampaign {camp.name}: {len(camp)} paper-scale scenarios "
          f"(flow backend only — ~24K endpoints each)")
    start = time.time()
    report = run_campaign(camp, workers=1, out=out_dir / "fig6_paper.jsonl")
    print(f"  {report.summary()}  [{time.time() - start:.1f}s]")
    for (label, _), sat in saturation_by_fidelity(report.rows).items():
        shown = f"{sat:.2f}" if sat is not None else "none measured"
        print(f"  {label:10s} saturation {shown}")


if __name__ == "__main__":
    main()
