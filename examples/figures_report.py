#!/usr/bin/env python3
"""From campaign JSONL to paper figures to REPORT.md (DESIGN.md, Layer 6).

Runs a small {routing}-grid campaign on a Slim Fly, then hands the
streamed JSONL rows to the analysis layer: `RowTable` ingestion,
saturation-point detection, deterministic SVG figure rendering, and
finally `build_report`, which writes a self-documenting `REPORT.md`
with per-figure provenance (scenario hashes, seeds, worker counts).

Run:  python examples/figures_report.py [output-dir]

Rebuilding the report from the same rows reproduces every SVG byte
for byte — the same property `python -m repro.experiments report`
gives the full figure set, and that CI asserts.
"""

import sys
import time
from pathlib import Path

from repro.analysis import RowTable, build_report, saturation_point
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    run_campaign,
)
from repro.sim import SimConfig

CFG = SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200, seed=7)
LOADS = [0.1, 0.3, 0.5, 0.7, 0.9]


def build_campaign() -> Campaign:
    sf = TopologySpec("SF", params={"q": 5})
    open_loop = [
        Scenario(
            topology=sf,
            routing=spec,
            sim=CFG,
            traffic=TrafficSpec("uniform"),
            loads=LOADS,
            label=name,
        )
        for name, spec in (
            ("SF-MIN", RoutingSpec("min")),
            ("SF-VAL", RoutingSpec("val", {"seed": 0})),
            ("SF-UGAL-L", RoutingSpec("ugal-l", {"seed": 0})),
        )
    ]
    closed_loop = [
        Scenario(
            topology=sf,
            routing=RoutingSpec("min"),
            sim=SimConfig(seed=7),
            workload=WorkloadSpec("ring-allreduce", ranks=16, size_flits=4),
            max_cycles=100_000,
            label="SF-MIN/ring-allreduce",
        )
    ]
    return Campaign("figures-report-demo", open_loop + closed_loop)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    rows_path = out_dir / "figures_report_demo.jsonl"

    print("== 1. run the campaign (rows stream to JSONL) ==")
    start = time.time()
    report = run_campaign(build_campaign(), workers=0, out=rows_path)
    print(f"{report.summary()}  [{time.time() - start:.1f}s]")

    print("\n== 2. ingest the rows and inspect the curves ==")
    table = RowTable.from_jsonl(rows_path)
    print(f"campaigns: {table.campaigns()}, labels: {table.labels()}")
    for curve in table.curves():
        sat = saturation_point(curve)
        where = (
            f"saturates at load {sat:g}" if sat is not None
            else "no saturation seen"
        )
        print(f"  {curve.label}: {len(curve)} points, {where}")

    print("\n== 3. build the report (figures + REPORT.md) ==")
    result = build_report([rows_path], out_dir, analytics=False)
    print(result.summary())
    for artifact in result.figures:
        print(f"  figure: {artifact.paths[0]}")

    print("\n== 4. rebuild — byte-identical figures ==")
    before = {p: p.read_bytes() for a in result.figures for p in a.paths}
    build_report([rows_path], out_dir, analytics=False)
    identical = all(p.read_bytes() == b for p, b in before.items())
    print(f"all figure bytes identical across rebuilds: {identical}")
    assert identical

    print(f"\nOpen {result.report_path} to read the report.")


if __name__ == "__main__":
    main()
