#!/usr/bin/env python3
"""Simulator deep dive: tracing, latency breakdown, multi-flit packets.

Uses the simulator's diagnostic extensions to *show* the mechanisms the
paper argues about:

1. **Channel tracing** — visualises the Fig 9 worst-case mechanism:
   under minimal routing a handful of cables carry the traffic; UGAL-L
   disperses it across the whole network.
2. **Latency breakdown** — splits end-to-end latency into source
   queueing vs in-network time across the load range, showing the
   open-loop queue divergence at saturation.
3. **Multi-flit packets** — virtual cut-through with 1/4/8-flit
   packets: the flow-control dimension §V deliberately excluded, here
   measured (serialisation latency up, bandwidth roughly preserved).

Run:  python examples/simulator_deep_dive.py
"""

from repro.routing import MinimalRouting, RoutingTables, UGALRouting
from repro.sim import SimConfig, SimEngine, simulate
from repro.topologies import SlimFly
from repro.traffic import SlimFlyWorstCase, UniformRandom
from repro.util.tables import ascii_table

CFG = SimConfig(warmup_cycles=300, measure_cycles=700, drain_cycles=2500, seed=1)


def hot_link_study(sf, tables) -> None:
    wc = SlimFlyWorstCase(sf, tables, seed=0)
    rows = []
    for name, routing in (
        ("MIN", MinimalRouting(tables)),
        ("UGAL-L", UGALRouting(tables, "local", seed=1)),
    ):
        eng = SimEngine(sf, routing, wc, 0.15, CFG, trace_channels=True)
        res = eng.run()
        counts = sorted(eng.channel_flits.values(), reverse=True)
        total = sum(counts)
        rows.append([
            name,
            len(counts),
            counts[0],
            f"{100 * counts[0] / total:.1f}%",
            f"{100 * sum(counts[:5]) / total:.1f}%",
            round(res.accepted_load, 3),
        ])
    print(ascii_table(
        ["routing", "channels used", "hottest [flits]", "hottest share",
         "top-5 share", "accepted"],
        rows,
        title="Fig 9 mechanism: worst-case traffic concentration (q=5, load 0.15)",
    ))
    print()


def latency_breakdown(sf, tables) -> None:
    rows = []
    traffic = UniformRandom(sf.num_endpoints)
    for load in (0.1, 0.4, 0.7, 0.85):
        res = simulate(sf, MinimalRouting(tables), traffic, load, CFG)
        rows.append([
            load,
            round(res.avg_latency, 1),
            round(res.avg_queue_latency, 1),
            round(res.avg_network_latency, 1),
            res.saturated,
        ])
    print(ascii_table(
        ["offered load", "total latency", "source queueing", "in-network", "sat"],
        rows,
        title="Latency breakdown, uniform traffic + MIN",
    ))
    print("  -> the in-network term stays near the pipeline floor; the\n"
          "     source queue is what diverges at saturation (open loop).\n")


def multiflit_study(sf, tables) -> None:
    rows = []
    traffic = UniformRandom(sf.num_endpoints)
    for length in (1, 4, 8):
        cfg = SimConfig(
            packet_length=length, warmup_cycles=300, measure_cycles=700,
            drain_cycles=2500, seed=1,
        )
        res = simulate(sf, MinimalRouting(tables), traffic, 0.4, cfg)
        rows.append([
            length,
            round(res.avg_latency, 1),
            round(res.accepted_load, 3),
            res.saturated,
        ])
    print(ascii_table(
        ["flits/packet", "tail latency [cyc]", "accepted [flits/cyc]", "sat"],
        rows,
        title="Virtual cut-through with multi-flit packets (flit load 0.4)",
    ))
    print("  -> serialisation adds (L-1) cycles per hop; flit throughput holds.")


def main() -> None:
    sf = SlimFly.from_q(5)
    tables = RoutingTables(sf.adjacency)
    print(f"network: {sf!r}\n")
    hot_link_study(sf, tables)
    latency_breakdown(sf, tables)
    multiflit_study(sf, tables)


if __name__ == "__main__":
    main()
