#!/usr/bin/env python3
"""Parallel load sweeps: the Layer-3 orchestrator in practice.

Demonstrates `repro.sim.parallel_latency_vs_load`:

1. a multi-process latency-vs-load curve whose rows are bit-for-bit
   identical to the serial sweep (determinism contract),
2. the saturation short-circuit carrying over to the parallel path,
3. seed replicas: averaging each load point over derived seeds for
   smoother curves, still deterministic for any worker count.

Run:  python examples/parallel_sweep.py
"""

import time

from repro.routing import MinimalRouting, RoutingTables, ValiantRouting
from repro.sim import SimConfig, latency_vs_load, parallel_latency_vs_load
from repro.topologies import SlimFly
from repro.traffic import UniformRandom
from repro.util.tables import ascii_table

CFG = SimConfig(warmup_cycles=200, measure_cycles=500, drain_cycles=1500, seed=7)
LOADS = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85]


def serial_vs_parallel(sf, tables, traffic) -> None:
    t0 = time.time()
    serial = latency_vs_load(
        sf, lambda: MinimalRouting(tables), traffic, loads=LOADS, config=CFG
    )
    t_serial = time.time() - t0
    t0 = time.time()
    parallel = parallel_latency_vs_load(
        sf, lambda: MinimalRouting(tables), traffic, loads=LOADS, config=CFG,
        workers=0,  # one worker per core
    )
    t_parallel = time.time() - t0
    print(f"serial {t_serial:.1f}s, parallel {t_parallel:.1f}s, "
          f"rows identical: {serial == parallel}\n")


def short_circuit(sf, tables, traffic) -> None:
    points = parallel_latency_vs_load(
        sf, lambda: ValiantRouting(tables, seed=1), traffic,
        loads=LOADS, config=CFG, workers=0, stop_after_saturation=1,
    )
    rows = [
        [pt.load,
         round(pt.latency, 1) if pt.latency is not None else "—",
         round(pt.accepted, 3) if pt.accepted is not None else "—",
         pt.saturated]
        for pt in points
    ]
    print(ascii_table(
        ["offered load", "latency [cyc]", "accepted", "saturated"], rows,
        title="VAL sweep: loads past saturation are marked, not simulated",
    ))
    print()


def replicated_curve(sf, tables, traffic) -> None:
    points = parallel_latency_vs_load(
        sf, lambda: MinimalRouting(tables), traffic,
        loads=[0.2, 0.5, 0.8], config=CFG, workers=0, replicas=4,
    )
    rows = [[pt.load, round(pt.latency, 2), round(pt.accepted, 4)] for pt in points]
    print(ascii_table(
        ["offered load", "mean latency (4 seeds)", "mean accepted"], rows,
        title="Seed-replicated MIN curve (deterministic for any worker count)",
    ))


def main() -> None:
    sf = SlimFly.from_q(5)
    tables = RoutingTables(sf.adjacency)
    traffic = UniformRandom(sf.num_endpoints)
    print(f"network: {sf!r}\n")
    serial_vs_parallel(sf, tables, traffic)
    short_circuit(sf, tables, traffic)
    replicated_curve(sf, tables, traffic)


if __name__ == "__main__":
    main()
