#!/usr/bin/env python3
"""Oversubscription study (§V-E, §VII-C): growing a Slim Fly in place.

Takes a balanced Slim Fly and adds endpoints beyond the balanced
concentration p, measuring (via simulation) the accepted uniform load
and latency at each step and comparing with the analytic channel-load
estimate.  Reproduces the paper's finding that a Slim Fly tolerates
≈10% extra endpoints with a modest bandwidth cost — the §VII-C
incremental-growth strategy used by deployed systems.

Run:  python examples/oversubscription_study.py
"""

from repro.core.balance import (
    balanced_concentration,
    oversubscription_factor,
    saturation_load_estimate,
)
from repro.experiments.common import Scale, sim_config_for
from repro.routing import MinimalRouting, RoutingTables
from repro.sim.sweep import latency_vs_load, max_accepted
from repro.topologies import SlimFly
from repro.traffic import UniformRandom
from repro.util.tables import ascii_table


def main() -> None:
    q = 5
    base = SlimFly.from_q(q)
    tables = RoutingTables(base.adjacency)
    p_bal = balanced_concentration(base.num_routers, base.network_radix)
    cfg = sim_config_for(Scale.DEFAULT)
    loads = [0.15 * (i + 1) for i in range(6)]

    rows = []
    for p in range(p_bal, p_bal + 4):
        sf = SlimFly.from_q(q, concentration=p)
        traffic = UniformRandom(sf.num_endpoints)
        points = latency_vs_load(
            sf, lambda: MinimalRouting(tables), traffic, loads=loads, config=cfg
        )
        low_load_latency = points[0].latency
        rows.append([
            p,
            sf.num_endpoints,
            f"{oversubscription_factor(sf.num_routers, sf.network_radix, p):.2f}x",
            round(max_accepted(points), 3),
            round(saturation_load_estimate(sf.num_routers, sf.network_radix, p), 3),
            round(low_load_latency, 1) if low_load_latency else None,
        ])
    print(ascii_table(
        ["p", "N", "oversub", "measured accepted", "analytic estimate",
         "low-load latency"],
        rows,
        title=f"Oversubscribed Slim Fly q={q} (balanced p={p_bal})",
    ))
    print("\npaper §V-E: full-bandwidth SF accepts ~87.5% of uniform traffic; "
          "p+1 ~80%, p+3 ~75% — graceful degradation, low-load latency flat.")


if __name__ == "__main__":
    main()
