"""Engine-backend registry: one simulation contract, several fidelities.

Layer 2 used to *be* the cycle engine; it is now an interface with
three implementations selected by name (the ``backend`` axis of a
:class:`~repro.scenarios.spec.Scenario`, the ``backend=`` argument of
:func:`repro.sim.parallel.parallel_latency_vs_load`):

- ``cycle`` — the cycle-accurate flit-level engine
  (:mod:`repro.sim.engine`): bit-exact against the frozen seed
  implementation, worker-count independent rows, open and closed loop.
- ``cycle-vec`` — the same cycle-accurate semantics rebuilt as batched
  numpy phases (:mod:`repro.sim.engine_vec`): bit-exact against
  ``cycle`` across the full contract — open and closed loop;
  table-driven, source-routed and per-hop adaptive algorithms — with a
  speedup that grows with instance size (~2x at q=5, ~7x at q=11,
  >10x by q=17 — per-cycle numpy dispatch overhead amortises over
  wider batches).  Because the rows are bit-identical, scenario
  resolution defaults large cycle-fidelity instances (>= 98 routers,
  i.e. Slim Fly q>=7) to this backend transparently.
- ``flow`` — the flow-level fluid solver (:mod:`repro.sim.flowlevel`):
  steady-state link rates by iterated water-filling, ~100-1000x faster,
  scales to full paper-size MMS instances; open loop only, rows
  byte-identical across worker counts (it consumes no RNG and runs
  in-process).

Every backend answers the same two questions — one load point
(:meth:`EngineBackend.simulate` -> :class:`~repro.sim.stats.SimResult`)
and one load sweep (:meth:`EngineBackend.sweep` ->
:class:`~repro.sim.stats.LoadPoint` rows) — so campaigns can grid over
fidelities and the analysis layer can overlay their curves.  Rows carry
the backend under the ``fidelity`` key.

The determinism contracts are deliberately different and all load-
bearing (see DESIGN.md, "Layer 2 — backends"): ``cycle`` must stay bit
identical to :mod:`repro.sim.reference`; ``cycle-vec`` must stay bit
identical to ``cycle`` (the differential suite
``tests/test_vec_equivalence.py``); ``flow`` must produce
byte-identical rows for any worker count, pinned against the cycle
engine by the cross-fidelity tolerance suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.sim.config import SimConfig
from repro.sim.stats import LoadPoint, SimResult
from repro.sim.telemetry import TelemetrySpec


class EngineBackend(ABC):
    """One simulation fidelity behind the common Layer-2 contract.

    Attributes
    ----------
    name:
        Registry key (the ``backend`` value scenarios serialize).
    fidelity:
        Human-readable fidelity label for docs and reports.
    determinism:
        One-line statement of the backend's determinism contract.
    supports_closed_loop:
        Whether workload (closed-loop) scenarios can dispatch here.
    """

    name: str = "backend"
    fidelity: str = ""
    determinism: str = ""
    supports_closed_loop: bool = False

    @abstractmethod
    def simulate(
        self,
        topology,
        routing,
        traffic,
        offered_load: float,
        config: SimConfig | None = None,
        telemetry: TelemetrySpec | None = None,
    ) -> SimResult:
        """Solve a single (topology, routing, traffic, load) point.

        ``telemetry`` arms the opt-in probe plane
        (:mod:`repro.sim.telemetry`); ``None`` — the default — is the
        zero-cost path with bit-identical results to a probe-free
        build.
        """

    @abstractmethod
    def sweep(
        self,
        topology,
        routing_factory: Callable[[], object],
        traffic,
        loads: Sequence[float],
        config: SimConfig | None = None,
        workers: int | None = 1,
        replicas: int = 1,
        stop_after_saturation: int = 1,
        telemetry: TelemetrySpec | None = None,
    ) -> list[LoadPoint]:
        """Latency-vs-load curve with the shared sweep semantics.

        All backends honour the same row contract: ascending loads,
        saturation short-circuit fill rows, and worker-count
        independent results.
        """


class CycleBackend(EngineBackend):
    """The cycle-accurate flit-level engine (DESIGN.md Layers 1-2)."""

    name = "cycle"
    fidelity = "cycle-accurate (flit level)"
    determinism = (
        "bit-exact vs the frozen seed engine (sim/reference.py) for any "
        "seed and routing; rows identical for any worker count"
    )
    supports_closed_loop = True

    def simulate(
        self, topology, routing, traffic, offered_load, config=None,
        telemetry=None,
    ):
        from repro.sim.engine import simulate

        return simulate(
            topology, routing, traffic, offered_load, config,
            telemetry=telemetry,
        )

    def sweep(
        self,
        topology,
        routing_factory,
        traffic,
        loads,
        config=None,
        workers=1,
        replicas=1,
        stop_after_saturation=1,
        telemetry=None,
    ):
        from repro.sim.parallel import parallel_latency_vs_load

        return parallel_latency_vs_load(
            topology,
            routing_factory,
            traffic,
            loads=loads,
            config=config,
            workers=workers,
            replicas=replicas,
            stop_after_saturation=stop_after_saturation,
            backend="cycle",
            telemetry=telemetry,
        )


class CycleVecBackend(EngineBackend):
    """The batched-numpy cycle engine (:mod:`repro.sim.engine_vec`).

    Same flit-level semantics as ``cycle``, executed as vectorised
    phases over preallocated arrays.  Open and closed loop;
    table-driven (MIN), source-routed (VAL/UGAL) and per-hop adaptive
    (FT ANCA) algorithms.
    """

    name = "cycle-vec"
    fidelity = "cycle-accurate (flit level, batched numpy)"
    determinism = (
        "bit-exact vs the cycle backend (open and closed loop, all "
        "registry routings); rows identical for any worker count"
    )
    supports_closed_loop = True

    def simulate(
        self, topology, routing, traffic, offered_load, config=None,
        telemetry=None,
    ):
        from repro.sim.engine_vec import vec_simulate

        return vec_simulate(
            topology, routing, traffic, offered_load, config,
            telemetry=telemetry,
        )

    def sweep(
        self,
        topology,
        routing_factory,
        traffic,
        loads,
        config=None,
        workers=1,
        replicas=1,
        stop_after_saturation=1,
        telemetry=None,
    ):
        from repro.sim.parallel import parallel_latency_vs_load

        return parallel_latency_vs_load(
            topology,
            routing_factory,
            traffic,
            loads=loads,
            config=config,
            workers=workers,
            replicas=replicas,
            stop_after_saturation=stop_after_saturation,
            backend="cycle-vec",
            telemetry=telemetry,
        )


class FlowBackend(EngineBackend):
    """The flow-level fluid solver (:mod:`repro.sim.flowlevel`).

    ``workers`` and ``replicas`` are accepted for signature parity and
    ignored: the model is deterministic (no RNG, no scheduling), so a
    replica average equals the single solution and the in-process
    computation is byte-identical at any worker count — the property
    CI pins with a ``cmp`` between ``--workers 1`` and ``--workers 4``
    campaign outputs.
    """

    name = "flow"
    fidelity = "flow-level (steady-state rates)"
    determinism = (
        "pure function of the spec: no RNG consumed, solved in-process; "
        "rows byte-identical across worker counts and reruns"
    )
    supports_closed_loop = False

    def simulate(
        self, topology, routing, traffic, offered_load, config=None,
        telemetry=None,
    ):
        from repro.sim.flowlevel import flow_simulate

        return flow_simulate(
            topology, routing, traffic, offered_load, config,
            telemetry=telemetry,
        )

    def sweep(
        self,
        topology,
        routing_factory,
        traffic,
        loads,
        config=None,
        workers=1,
        replicas=1,
        stop_after_saturation=1,
        telemetry=None,
    ):
        from repro.sim.flowlevel import flow_sweep

        # Solved points are counted inside FlowModel.sweep (one per
        # non-short-circuited load), matching the cycle counter's
        # scheduled == executed semantics.
        return flow_sweep(
            topology,
            routing_factory,
            traffic,
            loads,
            config=config,
            stop_after_saturation=stop_after_saturation,
            telemetry=telemetry,
        )


#: name -> backend singleton (backends are stateless dispatchers).
ENGINE_BACKENDS: dict[str, EngineBackend] = {
    backend.name: backend
    for backend in (CycleBackend(), CycleVecBackend(), FlowBackend())
}

#: Accepted ``backend`` values, registry order (``cycle`` first: the
#: default every pre-backend spec implicitly carries).
BACKEND_KINDS = tuple(ENGINE_BACKENDS)


def backends_supporting(kind: str) -> list[str]:
    """Registry names able to run a scenario kind, registry order.

    ``kind`` is a scenario's engine mode: ``"open"`` (traffic + loads
    axis — every backend) or ``"closed"`` (workload DAG — backends
    whose :attr:`EngineBackend.supports_closed_loop` is set).  Error
    paths enumerate this list so a rejected spec names its fixes.
    """
    if kind == "closed":
        return [
            name
            for name, backend in ENGINE_BACKENDS.items()
            if backend.supports_closed_loop
        ]
    if kind == "open":
        return list(ENGINE_BACKENDS)
    raise ValueError(f"unknown scenario kind {kind!r}; choose 'open' or 'closed'")


def _capability_summary() -> str:
    """One-line capability listing for dispatch error messages."""
    return (
        f"open-loop capable: {backends_supporting('open')}; "
        f"closed-loop capable: {backends_supporting('closed')}"
    )


def get_backend(name: str) -> EngineBackend:
    """Look up an engine backend by registry name."""
    try:
        return ENGINE_BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown engine backend {name!r}; choose from "
            f"{sorted(ENGINE_BACKENDS)} ({_capability_summary()})"
        ) from None
