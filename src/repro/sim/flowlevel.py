"""Flow-level (fluid) engine: steady-state link rates, no cycles.

The cycle engine answers "what happens flit by flit"; this module
answers the same sweep questions — accepted throughput, saturation
load, mean/p99 latency — by solving per-load *steady-state link rates*
instead of ticking cycles, which is 100–1000x faster and scales to
full paper-size MMS instances (q=25–43, thousands of routers, 10k+
endpoints) that the Python cycle engine cannot sweep.

The model, per (topology, routing, traffic) triple:

1. **Demand.**  Endpoint traffic aggregates to a router-level demand
   matrix ``D`` (flits/cycle between router pairs at unit offered load
   per active endpoint).  Intra-router traffic never enters the fabric
   and is accounted separately (it is always delivered).
2. **Path sets.**  Each routing maps demand to per-channel rates:

   - *MIN* follows the deterministic next-hop table exactly (the same
     paths the cycle engine drives), keeping a per-flow channel list;
   - *VAL* decomposes into its two legs — ``s -> w`` and ``w -> d``
     for a uniform random intermediate ``w ∉ {s, d}`` — whose expected
     rates are again demand matrices, routed as ECMP fluid splits
     (the exact expectation of ``sample_min_path``'s per-hop uniform
     choice);
   - *UGAL* blends the MIN and VAL channel-load vectors: at each
     offered load it diverts the smallest traffic fraction ``x`` that
     keeps the peak channel utilisation feasible (MIN-like at low
     load, Valiant-like spreading near saturation), falling back to
     the peak-minimising blend when nothing is feasible;
   - *Dragonfly MIN/UGAL* route the canonical local-global-local
     gateway paths of :class:`~repro.routing.dragonfly_routing.
     DragonflyMinimal` (generic shortest-path tables would smear the
     single-cable funnel that defines Dragonfly behaviour), with the
     group-Valiant flavour as the UGAL diversion set;
   - *ANCA* (fat tree) spreads over all minimal next hops (ECMP) —
     the fluid ideal of per-hop adaptive up-routing.

3. **Allocation.**  Flow rates solve max-min fairness over the path
   sets by iterated water-filling: rates rise together until a channel
   saturates (its flows freeze) or a flow meets its demand, repeated
   until no flow can grow.  MIN keeps per-flow paths, so the filling
   is exact per flow; the spreading models (VAL/UGAL/ANCA) put every
   flow on essentially every bottleneck, for which water-filling
   degenerates to the uniform throttle ``min(1, capacity/peak)``.
4. **Latency.**  Zero-load latency is ``hop_latency x hops +
   packet_length`` (the cycle engine's unloaded pipeline), plus an
   M/M/1-style queueing term per traversed channel,
   ``rho/(1 - rho)`` packet-service times.  Saturated points report
   no latency (open-loop queues diverge), matching the cycle rows.

Determinism contract (weaker than the cycle engine's bit-exactness,
stronger than "roughly reproducible"): results are a pure
single-process function of (topology, routing class + params, traffic,
loads, config) — no RNG is consumed, no scheduling enters the
computation — so campaign rows are byte-identical across worker counts
and reruns.  The cross-fidelity suite (``tests/test_cross_fidelity.py``)
pins how far flow-level saturation may drift from the cycle engine's
on small instances.
"""

from __future__ import annotations

import numpy as np

from repro.routing.dragonfly_routing import DragonflyMinimal, DragonflyUGAL
from repro.routing.fattree_routing import ANCARouting
from repro.routing.minimal import MinimalRouting
from repro.routing.tables import RoutingTables
from repro.routing.ugal import UGALRouting
from repro.routing.valiant import ValiantRouting
from repro.sim.config import SimConfig
from repro.sim.stats import LoadPoint, SimResult
from repro.sim.telemetry import TelemetryResult, TelemetrySpec
from repro.traffic.patterns import FixedPermutation, UniformRandom
from repro.traffic.permutations import ShiftPattern, _BitPattern

#: Channel capacity in flits/cycle (the simulator's wire rate).
CAPACITY = 1.0
#: Saturation criterion, matching the cycle engine: a point saturates
#: when accepted falls below this fraction of the injected rate.
SATURATION_RATIO = 0.95
#: Utilisation clip for the queueing term (rho/(1-rho) diverges; the
#: clip keeps unsaturated-point latencies finite and monotone).
UTIL_CLIP = 0.995
#: Water-filling round cap.  Each round freezes at least one flow or
#: channel, so structured patterns converge in a handful of rounds;
#: the cap only bounds adversarially unstructured demand.
MAX_FILL_ROUNDS = 500
#: UGAL blend grid: candidate fractions of traffic diverted to the
#: Valiant path set (fixed grid => deterministic blend choice).
UGAL_BLEND_GRID = 101


# -- demand aggregation -------------------------------------------------------


def router_demands(traffic, topology) -> tuple[np.ndarray, float, int]:
    """Router-level demand at unit offered load per active endpoint.

    Returns ``(D, intra, n_active)``: ``D[u, v]`` is the aggregate
    flits/cycle routers ``u -> v`` exchange when every active endpoint
    offers 1 flit/cycle, ``intra`` the total same-router demand (never
    enters the fabric, always delivered), and ``n_active`` the
    pattern's active-endpoint count (the normalisation the cycle
    engine's ``accepted_load`` uses).

    Supported patterns: uniform random, fixed permutations (including
    every worst-case generator) and the §V-B bit/shift patterns.
    Stochastic destinations aggregate to their expectation, which is
    exact for a fluid model.
    """
    n = topology.num_routers
    emap = np.asarray(topology.endpoint_map)
    if isinstance(traffic, UniformRandom):
        counts = np.bincount(emap, minlength=n).astype(float)
        total = topology.num_endpoints
        D = np.outer(counts, counts) / (total - 1)
        intra = float(np.sum(counts * (counts - 1)) / (total - 1))
        np.fill_diagonal(D, 0.0)
        return D, intra, total
    if isinstance(traffic, FixedPermutation):
        srcs = np.asarray(sorted(traffic.mapping), dtype=np.int64)
        dsts = np.asarray([traffic.mapping[int(s)] for s in srcs], dtype=np.int64)
        rates = np.ones(len(srcs))
        return _pairs_to_matrix(emap, n, srcs, dsts, rates) + (len(srcs),)
    if isinstance(traffic, ShiftPattern):
        size, half = traffic.size, traffic.size // 2
        srcs = np.arange(size, dtype=np.int64)
        base = srcs % half
        pair_srcs = np.concatenate([srcs, srcs])
        pair_dsts = np.concatenate([base, base + half])
        rates = np.full(2 * size, 0.5)
        keep = pair_dsts != pair_srcs  # self-directed coin outcomes idle
        D, intra = _pairs_to_matrix(
            emap, n, pair_srcs[keep], pair_dsts[keep], rates[keep]
        )
        return D, intra, size
    if isinstance(traffic, _BitPattern):
        srcs = np.arange(traffic.size, dtype=np.int64)
        dsts = np.asarray([traffic._map(int(s)) for s in srcs], dtype=np.int64)
        keep = dsts != srcs  # fixed points of the bit map stay idle
        D, intra = _pairs_to_matrix(
            emap, n, srcs[keep], dsts[keep], np.ones(int(keep.sum()))
        )
        return D, intra, traffic.size
    raise ValueError(
        f"flow backend has no demand model for traffic "
        f"{type(traffic).__name__!r}; supported: uniform, fixed "
        f"permutations (worst-case included), bit/shift patterns"
    )


def _pairs_to_matrix(emap, n, srcs, dsts, rates) -> tuple[np.ndarray, float]:
    """Accumulate endpoint (src, dst, rate) triples into router demand."""
    ru, rv = emap[srcs], emap[dsts]
    inter = ru != rv
    D = np.zeros((n, n))
    np.add.at(D, (ru[inter], rv[inter]), rates[inter])
    return D, float(rates[~inter].sum())


# -- flat channel map ---------------------------------------------------------


class _ChannelMap:
    """Directed router channels on flat ids, adjacency order.

    Channel ``port_base[u] + j`` carries ``u -> adjacency[u][j]`` —
    the same numbering :class:`repro.sim.network.SimNetwork` uses, so
    flow-level channel rates are directly comparable to cycle-engine
    channel traces.
    """

    def __init__(self, topology):
        adjacency = topology.adjacency
        n = len(adjacency)
        degrees = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=n)
        self.port_base = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.port_base[1:])
        self.num_channels = int(self.port_base[-1])
        #: Flattened adjacency: entry e is the channel with id e.
        self.flat_src = np.repeat(np.arange(n, dtype=np.int32), degrees)
        self.flat_dst = np.fromiter(
            (v for nbrs in adjacency for v in nbrs),
            dtype=np.int32,
            count=self.num_channels,
        )
        #: Dense (u, v) -> channel id lookup (-1 where no edge).
        self.chan_of = np.full((n, n), -1, dtype=np.int32)
        self.chan_of[self.flat_src, self.flat_dst] = np.arange(
            self.num_channels, dtype=np.int32
        )


# -- max-min fair allocation --------------------------------------------------


def waterfill(
    demands: np.ndarray,
    ent_flow: np.ndarray,
    ent_chan: np.ndarray,
    num_channels: int,
    capacity: float = CAPACITY,
) -> np.ndarray:
    """Max-min fair flow rates by iterated water-filling.

    ``demands`` caps each flow; ``(ent_flow, ent_chan)`` list every
    (flow, channel) incidence (a flow appears once per traversed
    channel).  All active rates rise together until a channel
    saturates — freezing every flow crossing it — or a flow reaches
    its demand; repeat until nothing can grow.  Deterministic: pure
    array arithmetic in fixed order, no tie-breaking randomness.
    """
    rate = np.zeros(len(demands))
    active = demands > 0
    for _ in range(MAX_FILL_ROUNDS):
        if not active.any():
            break
        act_entries = active[ent_flow]
        load = np.bincount(
            ent_chan, weights=rate[ent_flow], minlength=num_channels
        )
        cnt = np.bincount(ent_chan[act_entries], minlength=num_channels)
        used = cnt > 0
        headroom = capacity - load
        t_link = (
            float(np.min(headroom[used] / cnt[used])) if used.any() else np.inf
        )
        t_demand = float(np.min(demands[active] - rate[active]))
        t = max(0.0, min(t_link, t_demand))
        rate[active] += t
        # Freeze order matters for nothing: both criteria are applied
        # to the post-increment state within the same round.
        saturated = used & (headroom - t * cnt <= 1e-12)
        if saturated.any():
            blocked = np.unique(ent_flow[act_entries & saturated[ent_chan]])
            active[blocked] = False
        active &= demands - rate > 1e-12
    return rate


# -- the model ----------------------------------------------------------------


class FlowModel:
    """Load-independent fluid state for one (topology, routing, traffic).

    Channel loads are linear in the offered load, so everything
    expensive — demand aggregation, path routing, per-channel unit
    loads — happens once here; :meth:`simulate` then solves each load
    point in milliseconds.
    """

    #: Routing classes mapped to their fluid path-set model.
    _KINDS = (
        (MinimalRouting, "min"),
        (DragonflyMinimal, "df-min"),
        (ValiantRouting, "val"),
        (UGALRouting, "ugal"),
        (DragonflyUGAL, "df-ugal"),
        (ANCARouting, "spread"),
    )

    def __init__(self, topology, routing, traffic):
        self.topology = topology
        self.kind = self._model_kind(routing)
        tables = getattr(routing, "tables", None)
        self.tables = tables if tables is not None else RoutingTables(
            topology.adjacency
        )
        self.cmap = _ChannelMap(topology)
        self.n = topology.num_routers
        self.D, self.intra, self.n_active = router_demands(traffic, topology)
        #: Total inter-router demand at unit offered load.
        self.total_demand = float(self.D.sum())

        if self.kind == "min":
            self._build_min_flows()
            self.unit_loads = np.bincount(
                self.ent_chan,
                weights=self.flow_demand[self.ent_flow],
                minlength=self.cmap.num_channels,
            )
        elif self.kind == "val":
            self.unit_loads = self._val_unit_loads()
            self._build_flow_list()
        elif self.kind == "ugal":
            self.min_loads = self._det_min_loads(self.D)
            self.val_loads = self._val_unit_loads()
            self._build_flow_list()
        elif self.kind == "df-min":
            self.unit_loads = self._df_canonical_loads(self.D)
            self._build_flow_list()
        elif self.kind == "df-ugal":
            self.min_loads = self._df_canonical_loads(self.D)
            self.val_loads = self._df_group_val_loads()
            self._build_flow_list()
        else:  # spread (ANCA): ECMP over all minimal next hops
            self.unit_loads = self._ecmp_loads(self.D)
            self._build_flow_list()

    @classmethod
    def _model_kind(cls, routing) -> str:
        for klass, kind in cls._KINDS:
            if isinstance(routing, klass):
                return kind
        raise ValueError(
            f"flow backend has no path-set model for routing "
            f"{type(routing).__name__!r}; supported: MIN, Valiant, "
            f"UGAL (SF/DF) and FT-ANCA"
        )

    # -- path-set -> unit channel loads -----------------------------------

    def _build_flow_list(self) -> None:
        """Flow (src, dst, demand, hops) arrays for the spread models."""
        fs, fd = np.nonzero(self.D)
        self.flow_src, self.flow_dst = fs, fd
        self.flow_demand = self.D[fs, fd]
        self.flow_hops = self.tables.dist[fs, fd].astype(np.float64)
        if self.kind in ("val", "ugal", "df-ugal"):
            # Expected Valiant hops per flow: mean over intermediates
            # of d(s,w) + d(w,d).  The 1/(n-2) exclusion correction is
            # O(1/n) and dropped.
            dist = self.tables.dist
            row_mean = dist.mean(axis=1)
            col_mean = dist.mean(axis=0)
            self.flow_hops_val = row_mean[fs] + col_mean[fd]

    def _build_min_flows(self) -> None:
        """Per-flow deterministic MIN paths as (flow, channel) entries."""
        fs, fd = np.nonzero(self.D)
        self.flow_src, self.flow_dst = fs, fd
        self.flow_demand = self.D[fs, fd]
        self.flow_hops = self.tables.dist[fs, fd].astype(np.float64)
        nh = self.tables.next_hop_matrix()
        chan_of = self.cmap.chan_of
        flows, chans = [], []
        idx = np.arange(len(fs))
        cur = fs.copy()
        dst = fd
        while len(idx):
            nxt = nh[cur, dst[idx]]
            flows.append(idx)
            chans.append(chan_of[cur, nxt])
            alive = nxt != dst[idx]
            idx, cur = idx[alive], nxt[alive]
        self.ent_flow = (
            np.concatenate(flows) if flows else np.empty(0, dtype=np.int64)
        )
        self.ent_chan = (
            np.concatenate(chans) if chans else np.empty(0, dtype=np.int32)
        )

    def _det_min_loads(self, D: np.ndarray) -> np.ndarray:
        """Channel loads of deterministic next-hop routing (loads only).

        Propagates the whole demand matrix one hop per round — no
        per-flow bookkeeping, so it stays cheap for the dense matrices
        the UGAL blend routes (n^2 flows at paper scale).
        """
        n = self.n
        nh = self.tables.next_hop_matrix()
        chan_of = self.cmap.chan_of
        loads = np.zeros(self.cmap.num_channels)
        T = D.copy()
        for _ in range(int(self.tables.dist.max())):
            uu, dd = np.nonzero(T)
            if not len(uu):
                break
            rates = T[uu, dd]
            nxt = nh[uu, dd]
            loads += np.bincount(
                chan_of[uu, nxt], weights=rates, minlength=self.cmap.num_channels
            )
            moved = nxt != dd
            T = np.zeros((n, n))
            np.add.at(T, (nxt[moved], dd[moved]), rates[moved])
        return loads

    def _ecmp_loads(self, D: np.ndarray) -> np.ndarray:
        """Channel loads under even splitting over minimal next hops.

        The fluid ECMP model of :mod:`repro.analysis.channel_load`,
        vectorised per destination over the flat edge list: at each
        distance level, a router's through-traffic divides equally
        among its neighbours one hop closer to the destination.
        """
        n = self.n
        dist = self.tables.dist
        flat_src, flat_dst = self.cmap.flat_src, self.cmap.flat_dst
        loads = np.zeros(self.cmap.num_channels)
        for d in range(n):
            x = D[:, d]
            if not x.any():
                continue
            dcol = dist[:, d]
            src_level = dcol[flat_src]
            dst_level = dcol[flat_dst]
            x = x.astype(np.float64, copy=True)
            for k in range(int(dcol[x > 0].max()), 0, -1):
                edges = np.nonzero((src_level == k) & (dst_level == k - 1))[0]
                if not edges.size:
                    continue
                srcs = flat_src[edges]
                cnt = np.bincount(srcs, minlength=n)
                contrib = (x / np.maximum(cnt, 1))[srcs]
                loads[edges] += contrib
                x = x + np.bincount(
                    flat_dst[edges], weights=contrib, minlength=n
                )
        return loads

    # -- Dragonfly canonical (gateway) path set ----------------------------

    def _df_structure(self):
        """Group membership and the (g x g) gateway-router matrix."""
        topo = self.topology
        if not hasattr(topo, "gateway_router"):
            raise ValueError(
                "Dragonfly routing given a non-Dragonfly topology "
                f"({type(topo).__name__}); the flow model needs its "
                "gateway structure"
            )
        if not hasattr(self, "_df_groups"):
            g = topo.g
            group_of = np.fromiter(
                (topo.group_of(r) for r in range(self.n)),
                dtype=np.int64,
                count=self.n,
            )
            gateways = np.zeros((g, g), dtype=np.int64)
            for g1 in range(g):
                for g2 in range(g):
                    if g1 != g2:
                        gateways[g1, g2] = topo.gateway_router(g1, g2)
            #: (n x g) one-hot membership, for group aggregation matmuls.
            member = np.zeros((self.n, g))
            member[np.arange(self.n), group_of] = 1.0
            self._df_groups = (group_of, gateways, member)
        return self._df_groups

    def _df_canonical_loads(self, D: np.ndarray) -> np.ndarray:
        """Channel loads of canonical local-global-local DF routing.

        Every inter-group flow funnels through the single designated
        gateway pair of its (source group, destination group) cable —
        the structure that produces the Dragonfly worst case.  Four
        contributions: intra-group direct hops, the local up-hop to
        the source gateway, the global cable, and the local down-hop
        from the destination gateway.
        """
        group_of, gateways, member = self._df_structure()
        n, g = self.n, member.shape[1]
        chan_of = self.cmap.chan_of
        loads = np.zeros(self.cmap.num_channels)

        # Intra-group pairs: groups are cliques, one direct local hop.
        uu, vv = np.nonzero(D)
        same = group_of[uu] == group_of[vv]
        if same.any():
            np.add.at(loads, chan_of[uu[same], vv[same]], D[uu[same], vv[same]])

        # Router -> destination-group aggregate demand (n x g).
        M = D @ member
        rows = np.repeat(np.arange(n), g)
        dst_groups = np.tile(np.arange(g), n)
        inter = group_of[rows] != dst_groups
        rows, dst_groups = rows[inter], dst_groups[inter]
        rates = M[rows, dst_groups]
        nz = rates > 0
        rows, dst_groups, rates = rows[nz], dst_groups[nz], rates[nz]
        gw_src = gateways[group_of[rows], dst_groups]
        up = gw_src != rows  # the gateway itself skips the local hop
        np.add.at(loads, chan_of[rows[up], gw_src[up]], rates[up])

        # Global cables: group-pair totals over the single gateway pair.
        G = member.T @ M
        g1, g2 = np.nonzero(G)
        off = g1 != g2
        g1, g2 = g1[off], g2[off]
        np.add.at(
            loads, chan_of[gateways[g1, g2], gateways[g2, g1]], G[g1, g2]
        )

        # Source-group -> router aggregate demand (g x n), down-hops.
        T = member.T @ D
        src_groups = np.repeat(np.arange(g), n)
        cols = np.tile(np.arange(n), g)
        inter = src_groups != group_of[cols]
        src_groups, cols = src_groups[inter], cols[inter]
        rates = T[src_groups, cols]
        nz = rates > 0
        src_groups, cols, rates = src_groups[nz], cols[nz], rates[nz]
        gw_dst = gateways[group_of[cols], src_groups]
        down = gw_dst != cols
        np.add.at(loads, chan_of[gw_dst[down], cols[down]], rates[down])
        return loads

    def _df_group_val_loads(self) -> np.ndarray:
        """Unit channel loads of DF group-Valiant misrouting.

        A diverted packet goes canonically to a uniform random router
        of a random intermediate group, then canonically on — so both
        legs are canonical-path demand matrices again.  Exclusion of
        the endpoint groups is an O(1/g) correction and dropped; leg
        demand spreads mass-preservingly over all other groups.
        """
        group_of, gateways, member = self._df_structure()
        D, n = self.D, self.n
        g = member.shape[1]
        a = n // g  # routers per group (canonical DF is uniform)
        spread = np.full((n, n), 1.0 / max(1, (g - 1) * a))
        # Zero the same-group block: intermediates live in other groups.
        same = group_of[:, None] == group_of[None, :]
        spread[same] = 0.0
        D1 = D.sum(axis=1)[:, None] * spread
        D2 = spread * D.sum(axis=0)[None, :]
        return self._df_canonical_loads(D1) + self._df_canonical_loads(D2)

    def _val_unit_loads(self) -> np.ndarray:
        """Unit channel loads of the Valiant path set.

        Phase demands: leg 1 carries ``D1[s, w] = (sum_d D[s, d] -
        D[s, w]) / (n - 2)`` (every flow from ``s`` spread over its
        admissible intermediates), leg 2 symmetrically into each
        destination; both legs route as ECMP fluid (the expectation of
        per-hop uniform path sampling).
        """
        D, n = self.D, self.n
        denominator = max(1, n - 2)
        D1 = (D.sum(axis=1)[:, None] - D) / denominator
        np.fill_diagonal(D1, 0.0)
        D2 = (D.sum(axis=0)[None, :] - D) / denominator
        np.fill_diagonal(D2, 0.0)
        return self._ecmp_loads(D1) + self._ecmp_loads(D2)

    # -- per-load solution -------------------------------------------------

    def _ugal_blend(self, load: float) -> tuple[float, np.ndarray]:
        """Smallest feasible Valiant fraction at ``load`` (else argmin).

        Peak utilisation is convex in the blend fraction (a max of
        lines), so scanning a fixed grid from 0 finds the least
        diversion that fits — UGAL's "minimal unless congested" —
        deterministically; when no fraction fits, the peak-minimising
        blend is used and the point throttles.  The per-fraction peaks
        are load-independent (loads scale linearly), so the grid is
        computed once and cached across the sweep's load points.
        """
        if not hasattr(self, "_blend_peaks"):
            xs = np.linspace(0.0, 1.0, UGAL_BLEND_GRID)
            self._blend_peaks = xs, np.array(
                [
                    np.max((1.0 - x) * self.min_loads + x * self.val_loads)
                    for x in xs
                ]
            )
        xs, peaks = self._blend_peaks
        feasible = np.nonzero(load * peaks <= CAPACITY)[0]
        best = int(feasible[0]) if feasible.size else int(np.argmin(peaks))
        x = float(xs[best])
        return x, (1.0 - x) * self.min_loads + x * self.val_loads

    def simulate(
        self,
        offered_load: float,
        config: SimConfig | None = None,
        telemetry: TelemetrySpec | None = None,
    ) -> SimResult:
        """Solve one load point; returns a cycle-compatible SimResult.

        ``delivered``/``injected`` count *flows* (the fluid analogue of
        packets): a saturated point reports ``delivered=0`` so the
        sweep layer nulls its latency exactly like a collapsed cycle
        run.  ``cycles`` is 0 — nothing was ticked.

        With ``telemetry`` armed, the already-computed per-channel
        steady-state rates (same flat channel numbering as the cycle
        engines) and the routing-diversion fraction ride out on
        ``result.telemetry``; packet-granular probes (histograms, queue
        occupancy) stay ``None`` — a fluid model has no packets.
        """
        config = config or SimConfig()
        load = float(offered_load)
        n_flows = len(self.flow_demand)
        offered_total = load * self.total_demand
        diverted_frac = 0.0

        if self.kind == "min":
            demands = load * self.flow_demand
            rates = waterfill(
                demands, self.ent_flow, self.ent_chan, self.cmap.num_channels
            )
            accepted_total = float(rates.sum())
            channel_loads = np.bincount(
                self.ent_chan,
                weights=rates[self.ent_flow],
                minlength=self.cmap.num_channels,
            )
            hops = self.flow_hops
            weights = rates
            per_flow_wait = np.zeros(n_flows)
            util = np.minimum(channel_loads / CAPACITY, UTIL_CLIP)
            wait = util / (1.0 - util)
            np.add.at(per_flow_wait, self.ent_flow, wait[self.ent_chan])
        else:
            if self.kind in ("ugal", "df-ugal"):
                blend, unit_loads = self._ugal_blend(load)
                hops = (1.0 - blend) * self.flow_hops + blend * self.flow_hops_val
                diverted_frac = blend
            else:
                unit_loads = self.unit_loads
                hops = (
                    self.flow_hops_val if self.kind == "val" else self.flow_hops
                )
                if self.kind == "val":
                    diverted_frac = 1.0
            peak = float(unit_loads.max()) if unit_loads.size else 0.0
            throttle = (
                min(1.0, CAPACITY / (load * peak)) if load * peak > 0 else 1.0
            )
            rates = load * throttle * self.flow_demand
            accepted_total = float(rates.sum())
            channel_loads = load * throttle * unit_loads
            weights = rates
            util = np.minimum(channel_loads / CAPACITY, UTIL_CLIP)
            load_mass = float(channel_loads.sum())
            mean_wait = (
                float((channel_loads * (util / (1.0 - util))).sum()) / load_mass
                if load_mass > 0
                else 0.0
            )
            per_flow_wait = hops * mean_wait

        saturated = (
            offered_total > 0
            and accepted_total < SATURATION_RATIO * offered_total
        )
        pl = config.packet_length
        base = config.hop_latency * hops + pl
        latency = base + pl * per_flow_wait
        total_weight = float(weights.sum())
        if saturated or total_weight <= 0:
            avg_latency = p99 = float("nan")
            queue_latency = float("nan")
        else:
            avg_latency = float((weights * latency).sum()) / total_weight
            p99 = _weighted_percentile(latency, weights, 99.0)
            queue_latency = (
                pl * float((weights * per_flow_wait).sum()) / total_weight
            )

        n_active = max(1, self.n_active)
        accepted = (accepted_total + load * self.intra) / n_active
        tele_result = None
        if telemetry is not None and telemetry.enabled:
            tele_result = TelemetryResult(
                cycles=0,
                channel_load=(
                    tuple(float(x) for x in channel_loads.tolist())
                    if telemetry.channel_flits
                    else None
                ),
                route_diverted_frac=(
                    diverted_frac if telemetry.routing_decisions else None
                ),
            )
        return SimResult(
            offered_load=load,
            accepted_load=accepted,
            avg_latency=avg_latency,
            p99_latency=p99,
            delivered=0 if saturated else n_flows,
            injected=n_flows,
            saturated=bool(saturated),
            cycles=0,
            avg_queue_latency=queue_latency,
            telemetry=tele_result,
        )

    def sweep(
        self,
        loads,
        config: SimConfig | None = None,
        stop_after_saturation: int = 1,
        telemetry: TelemetrySpec | None = None,
    ) -> list[LoadPoint]:
        """Ascending-load walk with the cycle sweep's fill semantics.

        Points past ``stop_after_saturation`` consecutive saturated
        loads are marked (latency ``None``, last measured accepted) —
        byte-compatible with :func:`repro.sim.sweep.latency_vs_load`
        rows, so cycle and flow curves overlay in the same figures.
        """
        # Lazy import: parallel's counter is shared across backends,
        # and parallel itself only imports this module on demand.
        from repro.sim.parallel import _count_simulations

        points: list[LoadPoint] = []
        run = 0
        last_accepted: float | None = None
        for load in loads:
            if run >= stop_after_saturation:
                points.append(
                    LoadPoint(
                        load=load, latency=None, accepted=last_accepted,
                        saturated=True,
                    )
                )
                continue
            _count_simulations(1)
            result = self.simulate(load, config, telemetry)
            latency = (
                None
                if result.saturated and result.delivered == 0
                else result.avg_latency
            )
            points.append(
                LoadPoint(
                    load=load,
                    latency=latency,
                    accepted=result.accepted_load,
                    saturated=result.saturated,
                    telemetry=result.telemetry,
                )
            )
            run = run + 1 if result.saturated else 0
            last_accepted = result.accepted_load
        return points

    def saturation_load(
        self, loads, config: SimConfig | None = None
    ) -> float | None:
        """First offered load of the schedule marked saturated."""
        for pt in self.sweep(loads, config):
            if pt.saturated:
                return pt.load
        return None


def _weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Weighted percentile (lowest value covering q% of the mass)."""
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    total = cum[-1]
    if total <= 0:
        return float("nan")
    idx = int(np.searchsorted(cum, (q / 100.0) * total, side="left"))
    return float(values[order[min(idx, len(order) - 1)]])


# -- engine-style entry points ------------------------------------------------


def flow_simulate(
    topology,
    routing,
    traffic,
    offered_load: float,
    config: SimConfig | None = None,
    telemetry: TelemetrySpec | None = None,
) -> SimResult:
    """One-shot flow-level solution of a single load point.

    Signature-compatible with :func:`repro.sim.engine.simulate`; for
    sweeps build one :class:`FlowModel` and reuse it — the model setup
    dominates and the per-load solve is cheap.
    """
    return FlowModel(topology, routing, traffic).simulate(
        offered_load, config, telemetry
    )


def flow_sweep(
    topology,
    routing_factory,
    traffic,
    loads,
    config: SimConfig | None = None,
    stop_after_saturation: int = 1,
    telemetry: TelemetrySpec | None = None,
) -> list[LoadPoint]:
    """Latency-vs-load curve under the flow-level model.

    Signature-compatible with the cycle sweeps (the backend registry's
    dispatch target).  The model is deterministic and in-process, so
    rows are byte-identical for any worker count by construction.
    """
    model = FlowModel(topology, routing_factory(), traffic)
    return model.sweep(loads, config, stop_after_saturation, telemetry)
