"""Parallel sweep orchestrator (DESIGN.md, Layer 3).

Fans the (offered load × seed replica) grid of a latency-vs-load
experiment across ``multiprocessing`` workers and returns the same
:class:`~repro.sim.stats.LoadPoint` rows the serial
:func:`~repro.sim.sweep.latency_vs_load` produces:

- **Determinism** — each (point, replica) derives its RNG seed from
  the config seed and the replica index alone, so results are
  identical for any worker count (including the in-process serial
  fallback).  Replica 0 keeps the config seed itself, which makes a
  1-replica parallel sweep bit-for-bit equal to the serial sweep.
- **Saturation short-circuit** — the serial sweep stops simulating
  after ``stop_after_saturation`` consecutive saturated points and
  marks the tail.  The parallel runner schedules loads in
  worker-sized waves (ascending), re-evaluates the cutoff after each
  wave, and replaces any row past the cutoff with the same marked
  ``LoadPoint`` — output equality is preserved while wasted work is
  bounded by one wave.
- **Worker transport** — tasks carry only ``(point, replica, load)``
  tuples; the topology, routing factory (often an unpicklable
  closure), traffic pattern and config are published in a module
  global *before* the pool forks, so children inherit them by
  copy-on-write.  This requires the ``fork`` start method; platforms
  without it (Windows, macOS spawn default) transparently fall back
  to the serial path.

With ``replicas > 1`` each load point is simulated under several
derived seeds and the row reports the replica mean (latency averaged
over non-saturated replicas, accepted load over all, saturation by
majority vote) — the cheap way to put confidence behind a curve.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.engine import simulate, simulate_workload
from repro.sim.stats import LoadPoint, SimResult, WorkloadResult
from repro.sim.sweep import default_loads
from repro.sim.telemetry import TelemetrySpec, merge_telemetry

#: Simulation inputs published to forked workers (set per sweep).
_WORK: dict = {}

#: Simulations scheduled by this process (serial runs and tasks handed
#: to a pool alike) since import.  Scheduled == executed — waves only
#: ever contain tasks that run — so the delta across a call is the
#: number of simulations it cost.  The campaign resume tests and CI
#: assert a zero delta when every scenario is reused from cache.
_SIMULATIONS_STARTED = 0


def simulations_started() -> int:
    """Monotonic count of simulations this process has scheduled."""
    return _SIMULATIONS_STARTED


def _count_simulations(n: int) -> None:
    global _SIMULATIONS_STARTED
    _SIMULATIONS_STARTED += n


def credit_simulations(n: int) -> None:
    """Credit simulations executed remotely on this process's behalf.

    The campaign-service coordinator runs work units on other
    processes/hosts; their workers report how many simulations each
    unit cost, and the coordinator credits them here so
    :func:`simulations_started` keeps meaning "simulations this
    campaign scheduled" regardless of where they ran.  A no-op resume
    still credits nothing.
    """
    if n > 0:
        _count_simulations(int(n))


def replica_seed(base_seed: int, replica: int) -> int:
    """Deterministic seed for one replica, independent of scheduling.

    Replica 0 is the config seed itself (serial equivalence); higher
    replicas hash (seed, replica) through ``numpy.random.SeedSequence``
    for statistically independent streams.
    """
    if replica == 0:
        return int(base_seed)
    ss = np.random.SeedSequence([int(base_seed), int(replica)])
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def _simulate_task(task: tuple[int, int, float]) -> tuple[int, int, SimResult]:
    """Run one (point, replica) simulation inside a worker."""
    index, replica, load = task
    topology = _WORK["topology"]
    routing_factory = _WORK["routing_factory"]
    traffic = _WORK["traffic"]
    config: SimConfig = _WORK["config"]
    sim_fn = _WORK.get("sim_fn", simulate)
    telemetry = _WORK.get("telemetry")
    seed = replica_seed(config.seed, replica)
    if seed != config.seed:
        config = replace(config, seed=seed)
    result = sim_fn(
        topology, routing_factory(), traffic, load, config, telemetry=telemetry
    )
    return index, replica, result


def _aggregate(load: float, results: Sequence[SimResult]) -> LoadPoint:
    """Collapse one point's replica results into a LoadPoint row."""
    if len(results) == 1:
        r = results[0]
        latency = None if r.saturated and r.delivered == 0 else r.avg_latency
        return LoadPoint(
            load=load, latency=latency, accepted=r.accepted_load,
            saturated=r.saturated, telemetry=r.telemetry,
        )
    # Strict majority: a tie (e.g. 1 of 2 replicas) does not mark the
    # point saturated, so the sweep keeps simulating the tail.
    saturated = 2 * sum(r.saturated for r in results) > len(results)
    lats = [
        r.avg_latency
        for r in results
        if not (r.saturated and r.delivered == 0)
        and r.avg_latency == r.avg_latency  # drop NaN
    ]
    latency = sum(lats) / len(lats) if lats else None
    accepted = sum(r.accepted_load for r in results) / len(results)
    telemetry = merge_telemetry([r.telemetry for r in results])
    return LoadPoint(
        load=load, latency=latency, accepted=accepted, saturated=saturated,
        telemetry=telemetry,
    )


def _apply_short_circuit(
    points: list[LoadPoint | None], loads: Sequence[float], stop_after_saturation: int
) -> list[LoadPoint]:
    """Replace rows past the saturation cutoff with marked points.

    Replicates the serial sweep's walk: a point is *marked* (not
    simulated) once ``stop_after_saturation`` consecutive earlier
    points saturated, and marked rows carry the last measured
    accepted throughput (identical to the serial fill).
    """
    out: list[LoadPoint] = []
    run = 0
    last_accepted: float | None = None
    for load, pt in zip(loads, points):
        if run >= stop_after_saturation or pt is None:
            out.append(
                LoadPoint(
                    load=load, latency=None, accepted=last_accepted, saturated=True
                )
            )
            continue
        out.append(pt)
        run = run + 1 if pt.saturated else 0
        last_accepted = pt.accepted
    return out


def _fork_context():
    # fork is listed as available on macOS but is unsafe there once
    # Accelerate/CoreFoundation state exists (the reason CPython moved
    # macOS to spawn-by-default); honour the documented serial fallback.
    if sys.platform == "darwin":
        return None
    try:
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
    except ValueError:  # pragma: no cover - exotic platforms
        pass
    return None


def resolve_workers(workers: int | None, num_tasks: int) -> int:
    """0/None means one worker per core, bounded by the task count."""
    if not workers or workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, num_tasks))


def parallel_latency_vs_load(
    topology,
    routing_factory: Callable[[], object],
    traffic,
    loads: Sequence[float] | None = None,
    config: SimConfig | None = None,
    workers: int | None = None,
    replicas: int = 1,
    stop_after_saturation: int = 1,
    backend: str = "cycle",
    telemetry: TelemetrySpec | None = None,
) -> list[LoadPoint]:
    """Latency-vs-load curve, fanned across processes.

    Drop-in replacement for :func:`repro.sim.sweep.latency_vs_load`
    (identical rows for ``replicas=1``, any ``workers``), plus seed
    replication.  ``workers=None`` or ``0`` auto-sizes to the CPU
    count; ``workers=1`` runs in-process.

    ``backend`` selects the engine fidelity through the
    :mod:`repro.sim.backends` registry; the fork pool below drives the
    cycle-accurate engines (``"cycle"``, ``"cycle-vec"`` — both consume
    per-replica RNG streams), while other backends (``"flow"``) solve
    the sweep through their own dispatcher.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if backend not in ("cycle", "cycle-vec"):
        from repro.sim.backends import get_backend

        return get_backend(backend).sweep(
            topology,
            routing_factory,
            traffic,
            loads if loads is not None else default_loads(),
            config=config,
            workers=workers,
            replicas=replicas,
            stop_after_saturation=stop_after_saturation,
            telemetry=telemetry,
        )
    if backend == "cycle-vec":
        from repro.sim.engine_vec import vec_simulate as sim_fn
    else:
        sim_fn = simulate
    loads = list(loads) if loads is not None else default_loads()
    config = config or SimConfig()
    workers = resolve_workers(workers, len(loads) * replicas)
    ctx = _fork_context()
    if workers <= 1 or ctx is None or not loads:
        return _serial_sweep(
            topology, routing_factory, traffic, loads, config, replicas,
            stop_after_saturation, sim_fn, telemetry=telemetry,
        )

    global _WORK
    points: list[LoadPoint | None] = [None] * len(loads)
    loads_per_wave = max(1, workers // replicas)
    _WORK = dict(
        topology=topology,
        routing_factory=routing_factory,
        traffic=traffic,
        config=config,
        sim_fn=sim_fn,
        telemetry=telemetry,
    )
    try:
        with ctx.Pool(processes=workers) as pool:
            done = 0
            run = 0
            while done < len(loads) and run < stop_after_saturation:
                wave = range(done, min(done + loads_per_wave, len(loads)))
                tasks = [
                    (i, rep, loads[i]) for i in wave for rep in range(replicas)
                ]
                _count_simulations(len(tasks))
                by_point: dict[int, list[SimResult]] = {i: [] for i in wave}
                for i, _rep, result in pool.map(_simulate_task, tasks, chunksize=1):
                    by_point[i].append(result)
                for i in wave:
                    points[i] = _aggregate(loads[i], by_point[i])
                done = wave[-1] + 1
                # Re-evaluate the saturation cutoff over everything
                # computed so far (waves may overshoot it; the marker
                # pass below discards the overshoot).
                run = 0
                for pt in points[:done]:
                    run = run + 1 if pt.saturated else 0
                    if run >= stop_after_saturation:
                        break
    finally:
        _WORK = {}
    return _apply_short_circuit(points, loads, stop_after_saturation)


@dataclass
class CompletionTask:
    """One closed-loop simulation point for the workload fan-out.

    ``routing_factory`` builds a fresh routing instance inside the
    worker (stateful RNG streams never cross task boundaries), exactly
    like the load-sweep contract.
    """

    topology: object
    routing_factory: Callable[[], object]
    workload: object
    config: SimConfig = field(default_factory=SimConfig)
    max_cycles: int | None = None
    label: str = ""
    #: Engine fidelity: ``"cycle"`` (flat) or ``"cycle-vec"`` (batched
    #: numpy) — bit-identical rows either way, per the differential
    #: suite, so dispatch is a pure speed choice.
    backend: str = "cycle"


def _completion_fn(backend: str):
    """Closed-loop simulate function for a task's engine fidelity."""
    if backend == "cycle-vec":
        from repro.sim.engine_vec import vec_simulate_workload

        return vec_simulate_workload
    return simulate_workload


def _workload_task(index: int) -> tuple[int, WorkloadResult]:
    """Run one closed-loop task inside a worker."""
    task: CompletionTask = _WORK["tasks"][index]
    result = _completion_fn(task.backend)(
        task.topology,
        task.routing_factory(),
        task.workload,
        task.config,
        task.max_cycles,
    )
    return index, result


def parallel_workload_completion(
    tasks: Sequence[CompletionTask],
    workers: int | None = None,
) -> list[WorkloadResult]:
    """Fan closed-loop workload points across processes.

    Returns one :class:`~repro.sim.stats.WorkloadResult` per task, in
    task order.  Tasks are independent closed-loop runs, each
    deterministic given its config seed, so the rows — including every
    per-message completion timestamp — are identical for any worker
    count (the acceptance bar of the workload experiment family).
    Transport follows the sweep runner: tasks are published to the
    fork-inherited module global and workers receive only indices, so
    topologies/closures never pickle.  Each task names its engine
    fidelity (:attr:`CompletionTask.backend`); ``cycle`` and
    ``cycle-vec`` produce bit-identical rows, so mixing fidelities in
    one fan-out changes nothing but speed.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = resolve_workers(workers, len(tasks))
    _count_simulations(len(tasks))
    ctx = _fork_context()
    if workers <= 1 or ctx is None:
        return [
            _completion_fn(t.backend)(
                t.topology, t.routing_factory(), t.workload, t.config, t.max_cycles
            )
            for t in tasks
        ]
    global _WORK
    _WORK = dict(tasks=tasks)
    results: list[WorkloadResult | None] = [None] * len(tasks)
    try:
        with ctx.Pool(processes=workers) as pool:
            for index, result in pool.map(
                _workload_task, range(len(tasks)), chunksize=1
            ):
                results[index] = result
    finally:
        _WORK = {}
    return results  # type: ignore[return-value]


def _serial_sweep(
    topology, routing_factory, traffic, loads, config, replicas,
    stop_after_saturation, sim_fn=simulate, telemetry=None,
) -> list[LoadPoint]:
    """In-process path: identical semantics, no pool."""
    points: list[LoadPoint] = []
    run = 0
    last_accepted: float | None = None
    for index, load in enumerate(loads):
        if run >= stop_after_saturation:
            points.append(
                LoadPoint(
                    load=load, latency=None, accepted=last_accepted, saturated=True
                )
            )
            continue
        results = []
        for rep in range(replicas):
            seed = replica_seed(config.seed, rep)
            cfg = config if seed == config.seed else replace(config, seed=seed)
            _count_simulations(1)
            results.append(
                sim_fn(
                    topology, routing_factory(), traffic, load, cfg,
                    telemetry=telemetry,
                )
            )
        pt = _aggregate(load, results)
        points.append(pt)
        run = run + 1 if pt.saturated else 0
        last_accepted = pt.accepted
    return points
