"""Simulator configuration with the paper's §V defaults."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the cycle simulator.

    Defaults mirror §V: "Total buffering/port is 64 flit entries …
    Router delay for credit processing is 2 cycles.  Delays for channel
    latency, switch allocation, VC allocation, and processing in a
    crossbar are 1 cycle each.  Speedup of the internals of the routers
    over the channel transmission rate is 2."  Three VCs unless the
    routing algorithm demands more.
    """

    #: Total flit buffering per input port, split evenly across VCs.
    buffer_per_port: int = 64
    #: Virtual channels (the paper runs three; adaptive schemes may need 4).
    num_vcs: int = 3
    #: Cycles for the downstream router to process and return a credit.
    credit_delay: int = 2
    #: Wire latency in cycles.
    channel_latency: int = 1
    #: Switch-allocation, VC-allocation and crossbar stage delays.
    sa_delay: int = 1
    vc_delay: int = 1
    crossbar_delay: int = 1
    #: Internal router speedup over the channel rate.
    speedup: int = 2
    #: Flits per packet.  The paper's §V setup uses 1 ("single flow
    #: control unit packets") to isolate routing behaviour; larger
    #: values enable the virtual-cut-through extension: packets then
    #: need `packet_length` credits to advance, occupy the channel for
    #: `packet_length` cycles, and latency is measured at the tail flit.
    packet_length: int = 1
    #: Warmup cycles before measurement starts.
    warmup_cycles: int = 500
    #: Measurement window length in cycles.
    measure_cycles: int = 1500
    #: Extra cycles allowed for measured packets to drain.
    drain_cycles: int = 4000
    #: RNG seed for injection and adaptive tie-breaks.
    seed: int = 1

    @property
    def hop_latency(self) -> int:
        """Zero-load cycles per hop: channel + SA + VC + crossbar."""
        return (
            self.channel_latency + self.sa_delay + self.vc_delay + self.crossbar_delay
        )

    @property
    def buffer_per_vc(self) -> int:
        """Per-VC share of the input-port buffer (at least one flit)."""
        return max(1, self.buffer_per_port // self.num_vcs)

    def with_vcs(self, num_vcs: int) -> "SimConfig":
        """Copy with a different VC count (buffer per port unchanged)."""
        from dataclasses import replace

        return replace(self, num_vcs=num_vcs)

    def scaled(self, warmup: int, measure: int, drain: int | None = None) -> "SimConfig":
        """Copy with different run lengths (tests use short runs)."""
        from dataclasses import replace

        return replace(
            self,
            warmup_cycles=warmup,
            measure_cycles=measure,
            drain_cycles=drain if drain is not None else 2 * measure,
        )
