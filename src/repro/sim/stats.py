"""Simulation results and measurement bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimResult:
    """Outcome of one (topology, routing, pattern, load) simulation."""

    offered_load: float
    #: Flits delivered per active endpoint per cycle in the window.
    accepted_load: float
    #: Mean end-to-end latency (cycles) of measured, delivered packets.
    avg_latency: float
    #: 99th percentile latency of the measured sample.
    p99_latency: float
    #: Measured packets delivered / injected.
    delivered: int
    injected: int
    #: True when the network could not sustain the offered load
    #: (accepted < 95% of offered, or measured packets failed to drain).
    saturated: bool
    #: Total cycles simulated.
    cycles: int
    #: Mean cycles spent waiting in the source injection queue; the
    #: remainder of ``avg_latency`` is in-network time.  Past
    #: saturation this term dominates (open-loop queues diverge).
    avg_queue_latency: float = float("nan")

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0

    @property
    def avg_network_latency(self) -> float:
        """Mean in-network latency: total minus source queueing."""
        return self.avg_latency - self.avg_queue_latency


@dataclass
class LoadPoint:
    """One x-point of a latency-vs-load curve."""

    load: float
    latency: float | None  # None past saturation
    accepted: float
    saturated: bool


class LatencyAccumulator:
    """Streaming collector for measured packet latencies.

    ``values`` is public so the engine's hot loop can bind
    ``values.append`` directly instead of paying a method call per
    delivered packet.
    """

    def __init__(self):
        self.values: list[int] = []

    def add(self, latency: int) -> None:
        self.values.append(latency)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self.values else float("nan")
