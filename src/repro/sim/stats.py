"""Simulation results and measurement bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimResult:
    """Outcome of one (topology, routing, pattern, load) simulation."""

    offered_load: float
    #: Flits delivered per active endpoint per cycle in the window.
    accepted_load: float
    #: Mean end-to-end latency (cycles) of measured, delivered packets.
    avg_latency: float
    #: 99th percentile latency of the measured sample.
    p99_latency: float
    #: Measured packets delivered / injected.
    delivered: int
    injected: int
    #: True when the network could not sustain the offered load
    #: (accepted < 95% of offered, or measured packets failed to drain).
    saturated: bool
    #: Total cycles simulated.
    cycles: int
    #: Mean cycles spent waiting in the source injection queue; the
    #: remainder of ``avg_latency`` is in-network time.  Past
    #: saturation this term dominates (open-loop queues diverge).
    avg_queue_latency: float = float("nan")
    #: Armed-probe measurements (:class:`repro.sim.telemetry.
    #: TelemetryResult`), or None when telemetry was off — the default,
    #: so telemetry-off results compare equal to pre-telemetry ones.
    telemetry: object | None = None

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0

    @property
    def avg_network_latency(self) -> float:
        """Mean in-network latency: total minus source queueing."""
        return self.avg_latency - self.avg_queue_latency


@dataclass
class LoadPoint:
    """One x-point of a latency-vs-load curve."""

    load: float
    latency: float | None  # None past saturation
    #: Accepted throughput.  Points short-circuited past saturation
    #: carry the last *measured* accepted value (the curve's plateau)
    #: so downstream tables/plots never see a hole mid-curve.
    accepted: float
    saturated: bool
    #: Merged telemetry for this point (replicas combined), or None
    #: when telemetry was off or the point was short-circuit filled.
    telemetry: object | None = None


@dataclass(eq=False)
class WorkloadResult:
    """Outcome of one closed-loop (workload) simulation.

    Unlike :class:`SimResult` there is no offered/accepted load: the
    workload injects exactly its message DAG and the figure of merit
    is *completion time*.

    Equality treats NaN latency fields (a run where nothing completed)
    as equal, so the worker-count determinism contract — identical
    results for any ``--workers`` — holds for stalled runs too.
    """

    workload: str
    num_messages: int
    completed_messages: int
    #: True when every message completed before the cycle cap.
    finished: bool
    #: Cycle the last message completed (the collective's completion
    #: time); equals ``cycles`` capped runs never reached.
    makespan: int
    #: Total cycles simulated.
    cycles: int
    #: Sum of message sizes actually delivered, in flits.
    delivered_flits: int
    #: Mean / p99 of per-message latency (completion − ready, i.e.
    #: excluding time spent waiting on dependencies).
    avg_message_latency: float
    p99_message_latency: float
    #: Mean per-packet end-to-end latency (tail ejection − injection).
    avg_packet_latency: float
    #: Per-message completion cycle (tail flit ejected), by message id.
    message_completions: dict[int, int] = field(default_factory=dict)
    #: Per-message ready cycle (all dependencies satisfied), by id.
    message_ready: dict[int, int] = field(default_factory=dict)

    @property
    def flits_per_cycle(self) -> float:
        """Aggregate delivered bandwidth over the whole run."""
        return self.delivered_flits / self.cycles if self.cycles else 0.0

    def __eq__(self, other):
        if not isinstance(other, WorkloadResult):
            return NotImplemented
        from dataclasses import fields

        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b and not (
                isinstance(a, float) and isinstance(b, float)
                and a != a and b != b  # both NaN
            ):
                return False
        return True


class LatencyAccumulator:
    """Streaming collector for measured packet latencies.

    ``values`` is public so the engine's hot loop can bind
    ``values.append`` directly instead of paying a method call per
    delivered packet.
    """

    def __init__(self):
        self.values: list[int] = []

    def add(self, latency: int) -> None:
        self.values.append(latency)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self.values else float("nan")
