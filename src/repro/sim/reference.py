"""Frozen copy of the seed (pre-flat-array) simulator.

This is the per-packet, dict-of-deque implementation the repository
shipped with, kept verbatim (modulo renames) as

- the *oracle* for differential tests: the flat engine in
  :mod:`repro.sim.engine` must reproduce its results bit-for-bit for a
  given seed (see ``tests/test_sim_reference_equivalence.py``), and
- the *baseline* for the throughput benchmark
  (``benchmarks/bench_sim_throughput.py``), which tracks the flat
  engine's speedup over this code.

Do not optimise or "fix" this module; behavioural changes here
invalidate both uses.  See DESIGN.md for the architecture notes.
"""


from __future__ import annotations

from collections import deque

from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimConfig
from repro.sim.packet import Packet
from repro.sim.stats import LatencyAccumulator, SimResult
from repro.topologies.base import Topology
from repro.util.rng import make_rng


class ReferenceNetwork:
    """Mutable flow-control state of a simulated network."""

    def __init__(self, topology: Topology, config: SimConfig):
        self.topology = topology
        self.config = config
        nr = topology.num_routers

        #: neighbor id -> port index per router (dict lookup beats .index()).
        self.port_index: list[dict[int, int]] = [
            {v: i for i, v in enumerate(nbrs)} for nbrs in topology.adjacency
        ]
        #: Lazily-populated input FIFOs keyed by (network_port, vc).
        self.in_buf: list[dict[tuple[int, int], deque]] = [dict() for _ in range(nr)]
        #: Credits toward each neighbour, per VC.
        cap = config.buffer_per_vc
        self.credits: list[list[list[int]]] = [
            [[cap] * config.num_vcs for _ in nbrs] for nbrs in topology.adjacency
        ]
        #: Output staging queues per network port.
        self.out_stage: list[list[deque]] = [
            [deque() for _ in nbrs] for nbrs in topology.adjacency
        ]
        #: Injection FIFOs, one per endpoint (unbounded).
        self.inject_queue: list[deque] = [deque() for _ in range(topology.num_endpoints)]
        #: Routers that may have switch-allocation work this cycle.
        self.active_routers: set[int] = set()

    # -- buffer helpers ------------------------------------------------------

    def buffer_of(self, router: int, port: int, vc: int) -> deque:
        key = (port, vc)
        buf = self.in_buf[router].get(key)
        if buf is None:
            buf = deque()
            self.in_buf[router][key] = buf
        return buf

    def deliver(self, router: int, port: int, vc: int, packet) -> None:
        """Channel arrival into an input buffer slot (credit was reserved)."""
        self.buffer_of(router, port, vc).append(packet)
        self.active_routers.add(router)

    def enqueue_injection(self, endpoint: int, packet) -> None:
        self.inject_queue[endpoint].append(packet)
        self.active_routers.add(self.topology.endpoint_map[endpoint])

    # -- congestion signal (UGAL) ------------------------------------------------

    def queue_length(self, router: int, neighbor: int) -> int:
        """Output-queue occupancy toward ``neighbor`` as UGAL sees it."""
        port = self.port_index[router][neighbor]
        staged = len(self.out_stage[router][port])
        cap = self.config.buffer_per_vc
        downstream = sum(cap - c for c in self.credits[router][port])
        return staged + downstream

    def total_buffered(self) -> int:
        """Flits resident in input buffers + staging (conservation checks)."""
        total = 0
        for bufs in self.in_buf:
            total += sum(len(b) for b in bufs.values())
        for stages in self.out_stage:
            total += sum(len(s) for s in stages)
        total += sum(len(q) for q in self.inject_queue)
        return total


class ReferenceEngine:
    """Drives one simulation run."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic,
        offered_load: float,
        config: SimConfig | None = None,
        trace_channels: bool = False,
    ):
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.offered_load = float(offered_load)
        self.config = config or SimConfig()
        #: Optional per-channel flit counters ((u, v) -> flits sent),
        #: for hot-link analyses like the Fig 9 worst-case diagnosis.
        self.trace_channels = trace_channels
        self.channel_flits: dict[tuple[int, int], int] = {}
        if self.config.num_vcs < routing.num_vcs:
            # Honour the routing algorithm's deadlock-freedom demand.
            self.config = self.config.with_vcs(routing.num_vcs)
        self.net = ReferenceNetwork(topology, self.config)
        self.rng = make_rng(self.config.seed)

        self.now = 0
        # Event buckets keyed by cycle.
        self._arrivals: dict[int, list] = {}
        self._credit_returns: dict[int, list] = {}

        self.active_endpoints = list(traffic.active_endpoints(topology))
        self._active_eps_arr = None
        self.measured_injected = 0
        self.measured_delivered = 0
        self.window_ejections = 0
        self.latencies = LatencyAccumulator()
        self.queue_latencies = LatencyAccumulator()
        # Ejection-port occupancy: endpoint -> busy-until cycle (an
        # L-flit packet holds its endpoint link for L cycles).
        self._eject_busy_until: dict[int, int] = {}
        # Channel serialisation for multi-flit packets: (router, port)
        # -> busy-until cycle.  Untouched on the L == 1 fast path.
        self._channel_busy_until: dict[tuple[int, int], int] = {}

    # -- event scheduling ------------------------------------------------------

    def _schedule_arrival(self, when: int, router: int, port: int, vc: int, pkt) -> None:
        self._arrivals.setdefault(when, []).append((router, port, vc, pkt))

    def _schedule_credit(self, when: int, router: int, port: int, vc: int) -> None:
        self._credit_returns.setdefault(when, []).append((router, port, vc))

    # -- cycle phases ------------------------------------------------------

    def _phase_arrivals(self) -> None:
        for router, port, vc, pkt in self._arrivals.pop(self.now, ()):
            self.net.deliver(router, port, vc, pkt)
        for router, port, vc in self._credit_returns.pop(self.now, ()):
            self.net.credits[router][port][vc] += 1
            self.net.active_routers.add(router)

    def _phase_injection(self, measuring: bool) -> None:
        # Offered load is in flits/cycle/endpoint; with L-flit packets
        # the packet-generation probability scales down by L.
        load = self.offered_load / self.config.packet_length
        if load <= 0.0 or not self.active_endpoints:
            return
        n = len(self.active_endpoints)
        if self._active_eps_arr is None:
            import numpy as np

            self._active_eps_arr = np.asarray(self.active_endpoints)
        coins = self.rng.random(n) < load
        if not coins.any():
            return
        topo = self.topology
        for src in self._active_eps_arr[coins]:
            src = int(src)
            dst = self.traffic.destination(src, self.rng)
            if dst is None or dst == src:
                continue
            src_router = topo.endpoint_map[src]
            dst_router = topo.endpoint_map[dst]
            path = None
            if self.routing.source_routed:
                path = self.routing.plan(src_router, dst_router, self.net)
            pkt = Packet(
                src_endpoint=src,
                dst_endpoint=dst,
                dst_router=dst_router,
                path=path,
                inject_time=self.now,
                measured=measuring,
            )
            if measuring:
                self.measured_injected += 1
            self.net.enqueue_injection(src, pkt)

    def _desired_next(self, pkt: Packet, router: int) -> int:
        """Next router for a flit at ``router`` (path or per-hop query)."""
        if pkt.path is not None:
            return pkt.path[pkt.hop + 1]
        return self.routing.next_hop(router, pkt.dst_router, pkt, self.net)

    def _phase_switch_allocation(self) -> None:
        net = self.net
        cfg = self.config
        topo = self.topology
        length = cfg.packet_length
        # Routers may become inactive; collect removals after the sweep.
        inactive: list[int] = []
        for router in list(net.active_routers):
            # Gather candidate head flits: (inject_time, kind, key, pkt, next)
            requests = []
            bufs = net.in_buf[router]
            for (port, vc), q in bufs.items():
                if q:
                    pkt = q[0]
                    requests.append((pkt.inject_time, 0, (port, vc), pkt))
            for ep in topo.endpoints_of_router[router]:
                q = net.inject_queue[ep]
                if q:
                    pkt = q[0]
                    requests.append((pkt.inject_time, 1, ep, pkt))
            if not requests:
                if all(not s for s in net.out_stage[router]):
                    inactive.append(router)
                continue
            requests.sort(key=lambda r: (r[0], r[1]))  # oldest first
            granted_per_port: dict[int, int] = {}
            for _, kind, key, pkt in requests:
                if pkt.dst_router == router:
                    # Ejection: the endpoint link carries 1 flit/cycle,
                    # so an L-flit packet occupies it for L cycles.
                    ep = pkt.dst_endpoint
                    if self._eject_busy_until.get(ep, 0) > self.now:
                        continue
                    self._eject_busy_until[ep] = self.now + length
                    self._pop_granted(router, kind, key)
                    self._complete(pkt)
                    continue
                nxt = self._desired_next(pkt, router)
                port = net.port_index[router][nxt]
                if granted_per_port.get(port, 0) >= cfg.speedup:
                    continue
                vc = min(pkt.hop, cfg.num_vcs - 1)
                if net.credits[router][port][vc] < length:
                    continue  # VCT: the whole packet must fit downstream
                net.credits[router][port][vc] -= length
                granted_per_port[port] = granted_per_port.get(port, 0) + 1
                self._pop_granted(router, kind, key)
                net.out_stage[router][port].append((pkt, vc))
            # Router stays active if anything is still buffered/staged.
        for router in inactive:
            net.active_routers.discard(router)

    def _pop_granted(self, router: int, kind: int, key) -> None:
        """Remove a granted head flit and send a credit upstream if needed."""
        net = self.net
        if kind == 1:  # injection FIFO: no upstream credits
            pkt = net.inject_queue[key].popleft()
            pkt.start_time = self.now
            return
        port, vc = key
        net.in_buf[router][(port, vc)].popleft()
        # The freed slots belong to the upstream router's credit pool
        # (all L at once — packet-granularity VCT credit return).
        upstream = self.topology.adjacency[router][port]
        up_port = net.port_index[upstream][router]
        for _ in range(self.config.packet_length):
            self._schedule_credit(
                self.now + self.config.credit_delay, upstream, up_port, vc
            )

    def _phase_transmit(self) -> None:
        net = self.net
        length = self.config.packet_length
        # Tail flit arrives after serialising the remaining L−1 flits.
        latency = self.config.hop_latency + (length - 1)
        adjacency = self.topology.adjacency
        for router in list(net.active_routers):
            stages = net.out_stage[router]
            for port, stage in enumerate(stages):
                if not stage:
                    continue
                if length > 1:
                    busy_key = (router, port)
                    if self._channel_busy_until.get(busy_key, 0) > self.now:
                        continue
                    self._channel_busy_until[busy_key] = self.now + length
                pkt, vc = stage.popleft()
                nxt = adjacency[router][port]
                pkt.hop += 1
                if self.trace_channels:
                    key = (router, nxt)
                    self.channel_flits[key] = (
                        self.channel_flits.get(key, 0) + length
                    )
                in_port = net.port_index[nxt][router]
                self._schedule_arrival(self.now + latency, nxt, in_port, vc, pkt)

    def _complete(self, pkt: Packet) -> None:
        # Tail flit leaves `packet_length` cycles after the grant.
        tail = self.now + self.config.packet_length
        if pkt.measured:
            self.measured_delivered += 1
            self.latencies.add(tail - pkt.inject_time)
            self.queue_latencies.add(pkt.start_time - pkt.inject_time)
        if self._in_window:
            self.window_ejections += self.config.packet_length

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        warmup, measure = cfg.warmup_cycles, cfg.measure_cycles
        end_measure = warmup + measure
        deadline = end_measure + cfg.drain_cycles
        self._in_window = False

        while True:
            t = self.now
            measuring = warmup <= t < end_measure
            self._in_window = measuring
            self._phase_arrivals()
            if t < end_measure:
                self._phase_injection(measuring)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if self.now >= end_measure:
                drained = self.measured_delivered >= self.measured_injected
                if drained and not self._arrivals and self._all_idle():
                    break
                if drained and self.now >= end_measure + 8:
                    break
                if self.now >= deadline:
                    break

        n_active = max(1, len(self.active_endpoints))
        accepted = self.window_ejections / (n_active * measure) if measure else 0.0
        drained = self.measured_delivered >= self.measured_injected
        # Saturation compares delivery against the traffic actually
        # injected, not the nominal Bernoulli rate: patterns may leave
        # sources idle (self-mapped endpoints in bit permutations), and
        # that structural shortfall is not congestion.
        injected_rate = (
            self.measured_injected
            * self.config.packet_length
            / (n_active * measure)
            if measure
            else 0.0
        )
        saturated = (not drained) or (
            injected_rate > 0 and accepted < 0.95 * injected_rate
        )
        return SimResult(
            offered_load=self.offered_load,
            accepted_load=accepted,
            avg_latency=self.latencies.mean(),
            p99_latency=self.latencies.percentile(99),
            delivered=self.measured_delivered,
            injected=self.measured_injected,
            saturated=saturated,
            cycles=self.now,
            avg_queue_latency=self.queue_latencies.mean(),
        )

    def _all_idle(self) -> bool:
        net = self.net
        for router in net.active_routers:
            if any(q for q in net.in_buf[router].values()):
                return False
            if any(net.out_stage[router]):
                return False
        return not any(net.inject_queue)


def reference_simulate(
    topology: Topology,
    routing: RoutingAlgorithm,
    traffic,
    offered_load: float,
    config: SimConfig | None = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`ReferenceEngine`."""
    return ReferenceEngine(topology, routing, traffic, offered_load, config).run()


class ReferenceMinimalRouting:
    """The seed commit's MIN hot path, frozen alongside the engine.

    The live ``RoutingTables.min_path`` now follows a precomputed
    next-hop matrix; the seed planned every packet by scanning
    neighbour candidates with numpy scalar reads.  The throughput
    benchmark pairs this planner with :class:`ReferenceEngine` so the
    baseline measures the seed commit end to end.
    """

    name = "MIN"
    source_routed = True

    def __init__(self, tables):
        self.tables = tables
        self.num_vcs = max(1, tables.diameter())

    def _candidates(self, at: int, dst: int) -> list[int]:
        dist = self.tables.dist
        target = dist[at, dst] - 1
        return [v for v in self.tables.adjacency[at] if dist[v, dst] == target]

    def plan(self, src_router: int, dst_router: int, network=None) -> list[int]:
        path = [src_router]
        at = src_router
        while at != dst_router:
            at = self._candidates(at, dst_router)[0]
            path.append(at)
        return path
