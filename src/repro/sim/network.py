"""Simulator state for one topology: buffers, credits, channels.

Structure per router r (ports numbered as in
:class:`~repro.topologies.base.Topology`: network ports follow the
adjacency order, injection queues follow):

- ``in_buf[r][(port, vc)]`` — input FIFO (deque of packets), created
  lazily so idle ports cost nothing (active-set scheduling, see the
  hpc-parallel guide notes in DESIGN.md).
- ``credits[r][port][vc]`` — free slots in the *downstream* router's
  input buffer for that channel/VC.
- ``out_stage[r][port]`` — the output staging queue (fed at up to
  ``speedup`` flits/cycle, drained at channel rate 1 flit/cycle).
- injection queues are unbounded (open-loop source queues; their
  occupancy is what diverges past saturation) and ejection is one
  flit per endpoint per cycle.

``queue_length(u, v)`` exposes the congestion signal UGAL variants
read: the output staging occupancy plus flits already buffered
downstream (capacity − credits).
"""

from __future__ import annotations

from collections import deque

from repro.sim.config import SimConfig
from repro.topologies.base import Topology


class SimNetwork:
    """Mutable flow-control state of a simulated network."""

    def __init__(self, topology: Topology, config: SimConfig):
        self.topology = topology
        self.config = config
        nr = topology.num_routers

        #: neighbor id -> port index per router (dict lookup beats .index()).
        self.port_index: list[dict[int, int]] = [
            {v: i for i, v in enumerate(nbrs)} for nbrs in topology.adjacency
        ]
        #: Lazily-populated input FIFOs keyed by (network_port, vc).
        self.in_buf: list[dict[tuple[int, int], deque]] = [dict() for _ in range(nr)]
        #: Credits toward each neighbour, per VC.
        cap = config.buffer_per_vc
        self.credits: list[list[list[int]]] = [
            [[cap] * config.num_vcs for _ in nbrs] for nbrs in topology.adjacency
        ]
        #: Output staging queues per network port.
        self.out_stage: list[list[deque]] = [
            [deque() for _ in nbrs] for nbrs in topology.adjacency
        ]
        #: Injection FIFOs, one per endpoint (unbounded).
        self.inject_queue: list[deque] = [deque() for _ in range(topology.num_endpoints)]
        #: Routers that may have switch-allocation work this cycle.
        self.active_routers: set[int] = set()

    # -- buffer helpers ------------------------------------------------------

    def buffer_of(self, router: int, port: int, vc: int) -> deque:
        key = (port, vc)
        buf = self.in_buf[router].get(key)
        if buf is None:
            buf = deque()
            self.in_buf[router][key] = buf
        return buf

    def deliver(self, router: int, port: int, vc: int, packet) -> None:
        """Channel arrival into an input buffer slot (credit was reserved)."""
        self.buffer_of(router, port, vc).append(packet)
        self.active_routers.add(router)

    def enqueue_injection(self, endpoint: int, packet) -> None:
        self.inject_queue[endpoint].append(packet)
        self.active_routers.add(self.topology.endpoint_map[endpoint])

    # -- congestion signal (UGAL) ------------------------------------------------

    def queue_length(self, router: int, neighbor: int) -> int:
        """Output-queue occupancy toward ``neighbor`` as UGAL sees it."""
        port = self.port_index[router][neighbor]
        staged = len(self.out_stage[router][port])
        cap = self.config.buffer_per_vc
        downstream = sum(cap - c for c in self.credits[router][port])
        return staged + downstream

    def total_buffered(self) -> int:
        """Flits resident in input buffers + staging (conservation checks)."""
        total = 0
        for bufs in self.in_buf:
            total += sum(len(b) for b in bufs.values())
        for stages in self.out_stage:
            total += sum(len(s) for s in stages)
        total += sum(len(q) for q in self.inject_queue)
        return total
