"""Flat struct-of-arrays simulator state (see DESIGN.md).

Every directed router-to-router channel gets a *flat channel id*:
channel ``c = port_base[r] + p`` is network port ``p`` of router ``r``
(ports numbered as in :class:`~repro.topologies.base.Topology`), and
carries flits from ``r`` to ``chan_dst[c]``.  All flow-control state is
preallocated over these ids instead of the seed implementation's
per-router dicts (kept in :mod:`repro.sim.reference`):

- ``credits`` — ``(num_channels, num_vcs)`` array of free slots in the
  downstream input buffer of each channel/VC (``credits_flat`` is the
  ravelled view the engine's hot loops index with
  ``c * num_vcs + vc``).
- ``in_fifo[c * num_vcs + vc]`` — the input FIFO *fed by* channel
  ``c``, resident at router ``chan_dst[c]``.
- ``out_stage[c]`` — the output staging queue of channel ``c`` (fed at
  up to ``speedup`` flits/cycle, drained at channel rate 1
  flit/cycle).
- ``channel_busy_until`` / ``eject_busy_until`` — fixed-size arrays
  replacing the unbounded busy-until dicts of the seed engine (their
  growth on long multi-flit runs was a leak; arrays cap it by
  construction).
- injection queues are unbounded (open-loop source queues; their
  occupancy is what diverges past saturation) and ejection is one
  flit per endpoint per cycle.

``in_order[r]`` records the first-use order of router ``r``'s input
FIFOs.  The seed engine iterated lazily-created dict entries, so its
switch-allocation tie-break among equally-old flits follows buffer
*creation* order; tracking that order explicitly keeps the flat engine
bitwise identical to the reference (see DESIGN.md, "Determinism
contract").

``queue_length(u, v)`` exposes the congestion signal UGAL variants
read: the output staging occupancy plus flits already buffered
downstream (capacity − credits).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.config import SimConfig
from repro.topologies.base import Topology


def channel_layout(topology: Topology):
    """Flat channel arrays of a topology: ``(degrees, port_base, chan_src,
    chan_dst)``.

    The shared numbering both cycle engines index flow-control state
    with: channel ``c = port_base[r] + p`` is network port ``p`` of
    router ``r`` and carries flits ``r -> chan_dst[c]``.  Factored out
    of :class:`SimNetwork` so the vectorised engine
    (:mod:`repro.sim.engine_vec`) can build its preallocated arrays
    without instantiating the per-channel deques it never uses.
    """
    nr = topology.num_routers
    adjacency = topology.adjacency
    degrees = np.fromiter((len(n) for n in adjacency), dtype=np.int64, count=nr)
    port_base = np.zeros(nr + 1, dtype=np.int64)
    np.cumsum(degrees, out=port_base[1:])
    C = int(port_base[-1])
    chan_src = np.repeat(np.arange(nr, dtype=np.int64), degrees)
    chan_dst = np.fromiter(
        (v for nbrs in adjacency for v in nbrs), dtype=np.int64, count=C
    )
    return degrees, port_base, chan_src, chan_dst


class SimNetwork:
    """Mutable flow-control state of a simulated network, flat layout."""

    def __init__(self, topology: Topology, config: SimConfig):
        self.topology = topology
        self.config = config
        nr = topology.num_routers
        adjacency = topology.adjacency
        V = config.num_vcs
        self.num_vcs = V

        #: neighbor id -> port index per router (dict lookup beats .index()).
        self.port_index: list[dict[int, int]] = [
            {v: i for i, v in enumerate(nbrs)} for nbrs in adjacency
        ]
        #: (router, port) -> flat channel id: ``port_base[r] + port``.
        degrees, self.port_base, self.chan_src, self.chan_dst = channel_layout(
            topology
        )
        C = int(self.port_base[-1])
        self.num_channels = C
        self.port_base_list: list[int] = self.port_base.tolist()
        self.chan_src_list: list[int] = self.chan_src.tolist()
        self.chan_dst_list: list[int] = self.chan_dst.tolist()
        #: buffer id -> source router of its channel (credit-return target).
        self.buf_src_list: list[int] = np.repeat(self.chan_src, V).tolist()
        #: Channel *into* router r on its arrival port p (reverse lookup).
        pb = self.port_base_list
        self.in_chan: list[list[int]] = [
            [pb[v] + self.port_index[v][u] for v in nbrs]
            for u, nbrs in enumerate(adjacency)
        ]

        cap = config.buffer_per_vc
        #: Free downstream slots per (channel, VC), flat-indexed by
        #: ``c * num_vcs + vc``.  Stored as a preallocated Python list:
        #: the switch-allocation loop does one read-modify-write per
        #: grant, and CPython list indexing is ~2.5x faster than numpy
        #: scalar indexing there (see DESIGN.md); the :attr:`credits`
        #: property exposes the ``(num_channels, num_vcs)`` array view.
        self.credits_flat: list[int] = [cap] * (C * V)
        #: Input FIFOs, one per (channel, VC), preallocated.
        self.in_fifo: list[deque] = [deque() for _ in range(C * V)]
        #: First-use order of input FIFOs per router, as
        #: (scan sequence, flat id, FIFO) triples: the allocation scan
        #: neither re-indexes nor enumerates, and the sequence number
        #: is the switch-allocation tie-break (see module doc).
        self.in_order: list[list[tuple[int, int, deque]]] = [[] for _ in range(nr)]
        self._in_seen = bytearray(C * V)
        #: Scan sequence offset placing injection FIFOs after every
        #: possible input FIFO of a router.
        self.inject_seq_base = C * V + 1
        #: Output staging queues, one per directed channel.
        self.out_stage: list[deque] = [deque() for _ in range(C)]
        #: Bitmask of locally-staged output ports per router (bit p set
        #: iff ``out_stage[port_base[r] + p]`` is non-empty); lets
        #: transmission and idle checks skip empty ports.
        self.stage_mask: list[int] = [0] * nr
        #: Injection FIFOs, one per endpoint (unbounded).
        self.inject_queue: list[deque] = [deque() for _ in range(topology.num_endpoints)]
        #: (scan sequence, endpoint, FIFO) triples per router.
        self.inject_pairs: list[list[tuple[int, int, deque]]] = [
            [
                (self.inject_seq_base + i, ep, self.inject_queue[ep])
                for i, ep in enumerate(eps)
            ]
            for eps in topology.endpoints_of_router
        ]
        #: Routers that may have switch-allocation work this cycle.
        self.active_routers: set[int] = set()
        #: Channel serialisation for multi-flit packets (busy-until
        #: cycle), one fixed slot per channel — the seed engine's
        #: unbounded ``dict[(router, port) -> cycle]`` grew without
        #: limit on long runs.
        self.channel_busy_until: list[int] = [0] * C
        #: Ejection-port occupancy per endpoint (busy-until cycle).
        self.eject_busy_until: list[int] = [0] * topology.num_endpoints

    # -- array views ---------------------------------------------------------

    @property
    def credits(self) -> np.ndarray:
        """``(num_channels, num_vcs)`` credit snapshot (copy)."""
        return np.asarray(self.credits_flat, dtype=np.int64).reshape(
            self.num_channels, self.num_vcs
        )

    @property
    def channel_busy_array(self) -> np.ndarray:
        return np.asarray(self.channel_busy_until, dtype=np.int64)

    @property
    def eject_busy_array(self) -> np.ndarray:
        return np.asarray(self.eject_busy_until, dtype=np.int64)

    # -- congestion signal (UGAL) ------------------------------------------------

    def queue_length(self, router: int, neighbor: int) -> int:
        """Output-queue occupancy toward ``neighbor`` as UGAL sees it."""
        c = self.port_base_list[router] + self.port_index[router][neighbor]
        staged = len(self.out_stage[c])
        V = self.num_vcs
        cap = self.config.buffer_per_vc
        downstream = cap * V - sum(self.credits_flat[c * V : (c + 1) * V])
        return staged + downstream

    def total_buffered(self) -> int:
        """Flits resident in input buffers + staging (conservation checks)."""
        total = sum(len(b) for b in self.in_fifo)
        total += sum(len(s) for s in self.out_stage)
        total += sum(len(q) for q in self.inject_queue)
        return total
