"""Opt-in telemetry plane shared by all three engine backends.

The engines compute far more than the scalar summaries in
:class:`~repro.sim.stats.SimResult` — full latency distributions,
per-channel flit counts, queue depths, and routing decisions — but
historically discarded all of it.  This module defines the opt-in
probe selection (:class:`TelemetrySpec`) and the result container
(:class:`TelemetryResult`) that carries those measurements out of a
run, in a shape identical across the ``cycle``, ``cycle-vec`` and
``flow`` backends.

Design constraints (see DESIGN.md, "The telemetry plane"):

- **Zero cost when off.**  ``telemetry=None`` (the default everywhere)
  leaves the engine hot loops untouched: results are bit-identical to
  a build without this module, and the benchmark suite gates the
  off-mode overhead below 3%.
- **Deterministic when on.**  Every probe is defined so that the
  scalar ``cycle`` engine and the batched ``cycle-vec`` engine produce
  *identical* values (same histogram counts, same per-channel flits,
  same max occupancy, same diversion counters), and results are
  independent of worker count.  No probe consumes RNG.
- **Picklable and comparable.**  :class:`TelemetryResult` stores plain
  tuples/ints/floats only (never numpy arrays), so dataclass equality
  works and results travel through the fork pool unchanged.

Channel numbering is the flat scheme shared by the whole repo: channel
``c = port_base[u] + p`` carries ``u -> adjacency[u][p]``, so
cycle-engine flit counts and flow-solver link rates are directly
comparable index by index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "LATENCY_BIN_EDGES",
    "TelemetrySpec",
    "TelemetryResult",
    "latency_histogram",
    "merge_telemetry",
]


def _log_spaced_edges(lo: int = 1, hi: int = 1 << 20, per_octave: int = 4) -> tuple[int, ...]:
    """Fixed quarter-octave integer bin edges from ``lo`` to ``hi``.

    Rounded to integers and deduplicated, so consecutive small bins
    (1, 2, 3, 4, ...) widen smoothly into log-spaced ones.  The edges
    are a module-level constant: every histogram ever produced uses the
    same bins, which is what makes histograms comparable across
    engines, runs and PRs.
    """
    edges = [lo]
    k = 0
    while edges[-1] < hi:
        k += 1
        e = int(round(lo * 2.0 ** (k / per_octave)))
        if e > edges[-1]:
            edges.append(e)
    return tuple(edges)


#: Shared latency histogram bin edges (cycles).  Bin ``i`` of a
#: histogram counts samples with ``edges[i-1] <= s < edges[i]``; the
#: first slot counts samples below ``edges[0]`` and the last slot
#: counts samples at or above ``edges[-1]`` (overflow).
LATENCY_BIN_EDGES: tuple[int, ...] = _log_spaced_edges()


def latency_histogram(samples: Iterable[int] | np.ndarray) -> tuple[int, ...]:
    """Histogram latency samples over :data:`LATENCY_BIN_EDGES`.

    Returns ``len(LATENCY_BIN_EDGES) + 1`` counts (underflow bin,
    one bin per consecutive edge pair, overflow bin).  Order of the
    samples does not matter, so the scalar engine's Python list and
    the vectorised engine's chunked arrays histogram identically.
    """
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size == 0:
        return (0,) * (len(LATENCY_BIN_EDGES) + 1)
    idx = np.searchsorted(np.asarray(LATENCY_BIN_EDGES, dtype=np.int64), arr, side="right")
    counts = np.bincount(idx, minlength=len(LATENCY_BIN_EDGES) + 1)
    return tuple(int(c) for c in counts)


@dataclass(frozen=True)
class TelemetrySpec:
    """Which probes to arm for a run.  All probes default to off.

    An all-off spec is equivalent to passing ``telemetry=None`` (both
    serialize to nothing, so scenario hashes are unaffected), which is
    what makes the axis safe to thread through every API level.
    """

    #: Full latency distribution over :data:`LATENCY_BIN_EDGES`
    #: (measured packets only, like ``avg_latency``/``p99``).
    latency_hist: bool = False
    #: Per-channel flit counters over the whole run (warmup included),
    #: plus the derived per-channel utilisation ``flits / cycles``.
    #: Subsumes the legacy engine-only ``trace_channels`` kwarg.
    channel_flits: bool = False
    #: Per-router maximum queue occupancy (packets resident in the
    #: router's input-VC FIFOs and its endpoints' injection queues).
    queue_occupancy: bool = False
    #: Routing-decision counters: planned packets and the fraction
    #: diverted onto non-minimal paths (VAL/UGAL adaptivity, measured).
    routing_decisions: bool = False

    @property
    def enabled(self) -> bool:
        """True if any probe is armed."""
        return bool(
            self.latency_hist
            or self.channel_flits
            or self.queue_occupancy
            or self.routing_decisions
        )

    @classmethod
    def full(cls) -> "TelemetrySpec":
        """Every probe armed — the common case for exploratory runs."""
        return cls(
            latency_hist=True,
            channel_flits=True,
            queue_occupancy=True,
            routing_decisions=True,
        )

    def to_dict(self) -> dict:
        """Serializable form; only armed probes are written."""
        data: dict = {}
        for name in ("latency_hist", "channel_flits", "queue_occupancy", "routing_decisions"):
            if getattr(self, name):
                data[name] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySpec":
        known = {"latency_hist", "channel_flits", "queue_occupancy", "routing_decisions"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown telemetry probes: {sorted(unknown)}")
        return cls(**{k: bool(v) for k, v in data.items()})


@dataclass
class TelemetryResult:
    """Probe measurements from one simulation (or one merged replica set).

    Fields are ``None`` when the corresponding probe was not armed (or
    when the backend cannot produce it: the fluid flow solver has no
    packets, so it fills only ``channel_load`` and
    ``route_diverted_frac``).  Tuples only — never numpy arrays — so
    equality and pickling behave.
    """

    #: Simulated cycles backing the counters (0 for the flow backend).
    cycles: int = 0
    #: Latency histogram counts over :data:`LATENCY_BIN_EDGES`
    #: (see :func:`latency_histogram` for the bin convention).
    latency_hist: tuple[int, ...] | None = None
    #: Whole-run flit count per flat channel id.
    channel_flits: tuple[int, ...] | None = None
    #: Per-channel load: ``flits / cycles`` for cycle engines,
    #: steady-state solver rates (flits/cycle) for the flow backend.
    channel_load: tuple[float, ...] | None = None
    #: Per-router maximum queue occupancy (packets).
    max_queue: tuple[int, ...] | None = None
    #: Packets whose route was planned (all injected packets).
    route_packets: int | None = None
    #: Of those, packets sent on a longer-than-minimal path.
    route_diverted: int | None = None
    #: ``route_diverted / route_packets`` (flow backend: the UGAL
    #: blend fraction / 1.0 for VAL / 0.0 for minimal routing).
    route_diverted_frac: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (tuples become lists); ``None`` fields omitted."""
        data: dict = {"cycles": self.cycles}
        for name in (
            "latency_hist",
            "channel_flits",
            "channel_load",
            "max_queue",
            "route_packets",
            "route_diverted",
            "route_diverted_frac",
        ):
            value = getattr(self, name)
            if value is not None:
                data[name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryResult":
        def tup(name, kind):
            value = data.get(name)
            return None if value is None else tuple(kind(v) for v in value)

        return cls(
            cycles=int(data.get("cycles", 0)),
            latency_hist=tup("latency_hist", int),
            channel_flits=tup("channel_flits", int),
            channel_load=tup("channel_load", float),
            max_queue=tup("max_queue", int),
            route_packets=data.get("route_packets"),
            route_diverted=data.get("route_diverted"),
            route_diverted_frac=data.get("route_diverted_frac"),
        )


def _sum_tuples(values: Sequence[tuple[int, ...]]) -> tuple[int, ...]:
    return tuple(sum(col) for col in zip(*values))


def merge_telemetry(results: Sequence[TelemetryResult]) -> TelemetryResult | None:
    """Combine replica telemetry into one result (deterministic).

    Histograms and flit/decision counters sum; queue maxima take the
    elementwise max; derived rates/fractions are recomputed from the
    merged counters so the merge order never matters.  Replica results
    arrive in seed order from the sweep orchestrator, which keeps the
    (order-insensitive) merge byte-stable across worker counts.
    """
    results = [r for r in results if r is not None]
    if not results:
        return None
    if len(results) == 1:
        return results[0]
    cycles = sum(r.cycles for r in results)
    hists = [r.latency_hist for r in results if r.latency_hist is not None]
    flits = [r.channel_flits for r in results if r.channel_flits is not None]
    queues = [r.max_queue for r in results if r.max_queue is not None]
    packets = [r.route_packets for r in results if r.route_packets is not None]
    diverted = [r.route_diverted for r in results if r.route_diverted is not None]
    channel_flits = _sum_tuples(flits) if flits else None
    channel_load: tuple[float, ...] | None = None
    if channel_flits is not None and cycles > 0:
        channel_load = tuple(f / cycles for f in channel_flits)
    elif channel_flits is None:
        loads = [r.channel_load for r in results if r.channel_load is not None]
        if loads:
            # Flow backend: no flit counters; average the solver rates.
            n = len(loads)
            channel_load = tuple(sum(col) / n for col in zip(*loads))
    route_packets = sum(packets) if packets else None
    route_diverted = sum(diverted) if diverted else None
    frac: float | None = None
    if route_packets is not None:
        frac = (route_diverted or 0) / route_packets if route_packets else 0.0
    else:
        fracs = [r.route_diverted_frac for r in results if r.route_diverted_frac is not None]
        if fracs:
            frac = sum(fracs) / len(fracs)
    return TelemetryResult(
        cycles=cycles,
        latency_hist=_sum_tuples(hists) if hists else None,
        channel_flits=channel_flits,
        channel_load=channel_load,
        max_queue=tuple(max(col) for col in zip(*queues)) if queues else None,
        route_packets=route_packets,
        route_diverted=route_diverted,
        route_diverted_frac=frac,
    )
