"""The cycle loop, batched-numpy edition (the ``cycle-vec`` backend).

Same four phases per cycle as :mod:`repro.sim.engine` — arrivals,
injection, switch allocation, transmission (credit return rides the
arrival phase) — but every phase operates as batched numpy operations
over preallocated flat arrays instead of per-flit Python loops:

- **Packet state** lives in struct-of-arrays form: one ``(pool, 4)``
  int64 array holding (dst endpoint, dst router, hop, inject time) per
  pool id, recycled through a free-list stack.  No ``Packet`` objects
  are ever built.
- **FIFOs** (input VC buffers, injection queues, output stages) are
  2-D ring buffers: a ``(queues, capacity)`` id array plus head/length
  vectors, so pushes and pops across all queues are fancy-indexed
  scatters/gathers.
- **Event wheels** (flit arrivals, credit returns) are fixed index
  arrays over the modulo horizon — one slice assignment schedules a
  whole cycle's events, one gather applies them.
- **Switch allocation** packs each head-flit request into a single
  int64 key ``(resource group, rank, seq)`` — group is the output
  channel for forwarding or the destination endpoint for ejection,
  rank/seq exactly the flat engine's tie-break.  Output resources are
  independent (credits belong to one port's buffers, ejection to one
  endpoint), so groups never interact: a request in a group holding no
  more requests than its capacity is granted outright, and only the
  *contested* groups (found with one ``bincount``) are sorted — the
  first ``speedup`` (or 1, for ejection) of each win.  When some
  requested buffer runs low on credits the decision is no longer
  positional; a wave loop then replays the per-group scan order with
  explicit credit accounting (rare below saturation).
- **MIN next-hops** resolve by fancy indexing a precomputed
  ``(router, destination) -> output channel`` matrix whose diagonal
  (-1) doubles as the ejection test.

Determinism: the engine replays the flat engine's RNG draw sequence
(one Bernoulli batch per cycle, one batched destination draw, source-
routed plans in source order) and its switch-allocation tie-break
(rank, then buffer first-use sequence, then endpoint order).  Event
ordering normally reduces to canonical ascending-channel order, with
one subtlety at cold start: the flat engine iterates a Python *set* of
active routers, whose order deviates from ascending while the set's
hash table is still small.  The engine mirrors that set exactly
(same add/discard traffic) and sorts transmissions by its iteration
order until the mirror provably turns ascending-forever, at which
point it is dropped.  The differential suite
(``tests/test_vec_equivalence.py``) pins ``cycle-vec`` against
``cycle`` bit-for-bit across the contract matrix, with the pinned
saturation/latency tolerance as the documented fallback contract.

Supported: open- and closed-loop traffic; table-driven (MIN),
source-routed (VAL/UGAL) and per-hop adaptive (FT ANCA) algorithms;
single- and multi-flit packets.  Closed-loop workloads run on
:class:`VecClosedLoopEngine`, which batches the dependency-gated
injection frontier (ready messages as index arrays, message->packet
segmentation via ``np.repeat``) and reuses the open-loop allocation
and transmit phases unchanged.  Per-hop adaptive algorithms consult
``next_hop()`` per head request per cycle from one shared RNG while
reading queue state that same-cycle grants mutate — a serial
dependency with no batched form — so switch allocation for them
replays the flat engine's scan scalar (:meth:`VecEngine._alloc_adaptive`)
while arrivals, injection and transmit stay vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimConfig
from repro.sim.network import channel_layout
from repro.sim.stats import SimResult
from repro.sim.telemetry import TelemetryResult, TelemetrySpec, latency_histogram
from repro.topologies.base import Topology
from repro.util.rng import make_rng

#: Hops a stored source-routed path may span (2x diameter covers VAL's
#: two stitched minimal legs on every topology this repo builds).
_PATH_SLOTS = 8


class _QueueView:
    """The ``queue_length`` view adaptive planners (UGAL) read.

    Exposes the same congestion signal as
    :meth:`repro.sim.network.SimNetwork.queue_length`, backed by the
    vectorised engine's arrays, so UGAL's per-packet cost comparison
    sees bit-identical state and plans identical paths.
    """

    __slots__ = ("_pb", "_pi", "_stage_len", "_credits", "_V", "_cap")

    def __init__(self, pb, pi, stage_len, credits, V, cap):
        self._pb = pb
        self._pi = pi
        self._stage_len = stage_len
        self._credits = credits
        self._V = V
        self._cap = cap

    def queue_length(self, router: int, neighbor: int) -> int:
        c = self._pb[router] + self._pi[router][neighbor]
        V = self._V
        s = c * V
        down = self._cap * V - int(self._credits[s : s + V].sum())
        return int(self._stage_len[c]) + down


class VecEngine:
    """Drives one batched-numpy simulation run (open loop only)."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic,
        offered_load: float,
        config: SimConfig | None = None,
        trace_channels: bool = False,
        telemetry: TelemetrySpec | None = None,
    ):
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.offered_load = float(offered_load)
        self.config = config or SimConfig()
        if self.config.num_vcs < routing.num_vcs:
            self.config = self.config.with_vcs(routing.num_vcs)
        cfg = self.config
        #: Armed probe selection, or None (the zero-cost default).
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        tele = self.telemetry
        #: ``trace_channels`` survives as a thin alias for the
        #: ``channel_flits`` telemetry probe (see the flat engine).
        self.trace_channels = bool(
            trace_channels or (tele is not None and tele.channel_flits)
        )

        table_driven = getattr(routing, "table_driven", False)
        source_routed = getattr(routing, "source_routed", False)

        nr = topology.num_routers
        adjacency = topology.adjacency
        _, port_base, chan_src, chan_dst = channel_layout(topology)
        C = int(port_base[-1])
        V = cfg.num_vcs
        cap = cfg.buffer_per_vc
        n_ep = topology.num_endpoints
        self.num_routers = nr
        self.num_channels = C
        self.num_vcs = V
        self._cap = cap
        self._n_ep = n_ep
        self._pb = port_base
        self._chan_src = chan_src
        self._chan_dst = chan_dst
        self._speedup = cfg.speedup
        self._L = cfg.packet_length

        #: Flat channel id of every ordered router pair (-1 = no link;
        #: the diagonal's -1 is the vectorised "eject here" test).
        chan_of = np.full((nr, nr), -1, dtype=np.int64)
        chan_of[chan_src, chan_dst] = np.arange(C, dtype=np.int64)

        self._next_chan_flat: np.ndarray | None = None
        self._plan = None
        #: Per-hop adaptive ``next_hop`` (FT ANCA): consulted per head
        #: request per cycle by :meth:`_alloc_adaptive`; None otherwise.
        self._adaptive = None
        self._chan_of_list: list[list[int]] | None = None
        self._view: _QueueView | None = None
        if table_driven:
            nh = np.asarray(routing.next_hop_table(), dtype=np.int64)
            self._next_chan_flat = chan_of[
                np.arange(nr, dtype=np.int64)[:, None], nh
            ].ravel()
        else:
            if source_routed:
                self._plan = routing.plan
            else:
                self._adaptive = routing.next_hop
            self._chan_of_list = chan_of.tolist()
            pi = [{v: i for i, v in enumerate(nbrs)} for nbrs in adjacency]
            self._pi = pi

        # -- flow-control state (all preallocated) -------------------------
        NB = C * V
        self._NB = NB
        self.credits = np.full(NB, cap, dtype=np.int64)
        #: Router at which buffer b resides (= chan_dst of its channel).
        self._buf_router = np.repeat(chan_dst, V)
        self._buf_router_list = self._buf_router.tolist()
        #: Source router of buffer b's channel (credit-return target).
        self._buf_src = np.repeat(chan_src, V)
        #: ``buf_router * nr``, pre-scaled for next-hop matrix lookups.
        self._buf_rnr = self._buf_router * nr
        # Input-buffer rings: credits bound occupancy by `cap` packets.
        self._buf_store = np.zeros((NB, cap), dtype=np.int64)
        self._buf_head = np.zeros(NB, dtype=np.int64)
        self._buf_len = np.zeros(NB, dtype=np.int64)
        #: First-use sequence per buffer (the flat engine's in_order
        #: tie-break), assigned from per-router counters on first
        #: arrival; -1 = never used.
        self._in_seq = np.full(NB, -1, dtype=np.int64)
        self._rseq = [0] * nr
        self._unseen = True
        #: Injection-FIFO sequence: after every possible input FIFO.
        inj_seq = np.zeros(n_ep, dtype=np.int64)
        ep_router = np.zeros(n_ep, dtype=np.int64)
        for r, eps in enumerate(topology.endpoints_of_router):
            for i, ep in enumerate(eps):
                inj_seq[ep] = NB + 1 + i
                ep_router[ep] = r
        self._inj_seq = inj_seq
        self._ep_router = ep_router
        self._ep_rnr = ep_router * nr
        # Output stages: one (packet, downstream buffer) slot ring per
        # channel; staged packets hold downstream credits, bounding
        # occupancy.
        scap = V * cap + 1
        self._scap = scap
        self._stage_sb = np.zeros((C, scap, 2), dtype=np.int64)
        self._stage_head = np.zeros(C, dtype=np.int64)
        self._stage_len = np.zeros(C, dtype=np.int64)
        # Injection rings (unbounded: grown by doubling past saturation).
        self._icap = 16
        self._inj_store = np.zeros((n_ep, self._icap), dtype=np.int64)
        self._inj_head = np.zeros(n_ep, dtype=np.int64)
        self._inj_len = np.zeros(n_ep, dtype=np.int64)
        #: Conservative upper bound on max(_inj_len): bumped by one per
        #: injecting cycle, trued up against the real max only when it
        #: nears the ring capacity (saves a 200-element reduction per
        #: cycle on the hot path).
        self._inj_maxbound = 0
        # Busy-until state (multi-flit serialisation).
        self._chan_busy = np.zeros(C, dtype=np.int64)
        self._eject_busy = np.zeros(n_ep, dtype=np.int64)

        # -- packet pool (struct of arrays + free-list) --------------------
        pool = max(4096, 4 * n_ep)
        self._pool = pool
        #: Columns: dst endpoint, dst router, hop, inject time.
        self._ps = np.zeros((pool, 4), dtype=np.int64)
        self._p_start = np.zeros(pool, dtype=np.int64)
        self._p_path = (
            np.zeros((pool, _PATH_SLOTS), dtype=np.int64)
            if self._plan is not None
            else None
        )
        self._free = np.arange(pool, dtype=np.int64)
        self._free_top = pool

        # -- event wheels --------------------------------------------------
        H = cfg.hop_latency + cfg.packet_length
        self._arr_horizon = H
        #: Per slot: up to C (packet, destination buffer) pairs.
        self._arr_ev = np.zeros((H, C, 2), dtype=np.int64)
        self._arr_n = [0] * H
        Hc = cfg.credit_delay + 1
        self._credit_horizon = Hc
        self._cw = np.zeros((Hc, 2 * C + n_ep), dtype=np.int64)
        self._cw_n = [0] * Hc

        # -- tie-break key packing -----------------------------------------
        # key = grp * (RANK_SPAN * SEQ_SPAN) + inject_time * (2 * SEQ_SPAN)
        #       + injection_bit * SEQ_SPAN + seq
        # == ((grp * RANK_SPAN) + rank) * SEQ_SPAN + seq with the flat
        # engine's rank = inject_time << 1 | is_injection.
        deadline = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles
        seq_span = NB + 2 + max(
            (len(eps) for eps in topology.endpoints_of_router), default=1
        )
        rank_span = 2 * (deadline + 2)
        n_groups = C + n_ep
        self._n_groups = n_groups
        if n_groups * rank_span * seq_span >= 2**62:
            raise ValueError("simulation too large for packed int64 sort keys")
        self._k_grp = rank_span * seq_span
        self._k_inj = 2 * seq_span
        #: Buffered / injection seq term with the injection bit folded in.
        self._in_seqk = self._in_seq  # seq, assigned on first use
        self._inj_seqk = inj_seq + seq_span
        #: Per-group grant capacity: `speedup` per output channel, one
        #: per ejection port.
        self._gcap_g = np.concatenate(
            [
                np.full(C, cfg.speedup, dtype=np.int64),
                np.ones(n_ep, dtype=np.int64),
            ]
        )
        self._gcnt = np.zeros(n_groups, dtype=np.int64)

        # -- scratch (sized for the worst-case request count) --------------
        nmax = NB + n_ep
        self._s_pk = np.empty(nmax, dtype=np.int64)
        self._s_seqk = np.empty(nmax, dtype=np.int64)
        self._idx = np.arange(nmax, dtype=np.int64)

        self.rng = make_rng(cfg.seed)
        self.active_endpoints = list(traffic.active_endpoints(topology))
        self._active_eps_arr = (
            np.asarray(self.active_endpoints, dtype=np.int64)
            if self.active_endpoints
            else None
        )
        self._emap = np.asarray(topology.endpoint_map, dtype=np.int64)
        self._excludes_self = bool(getattr(traffic, "excludes_self", False))
        if self._plan is not None or self._adaptive is not None:
            self._view = _QueueView(
                self._pb.tolist(), self._pi, self._stage_len, self.credits,
                V, cap,
            )
        #: Per-delivery callback over ejected pool ids; stays None open
        #: loop.  The closed-loop subclass uses it to track message
        #: completion without duplicating the allocation phase.
        self._deliver_pids = None

        #: Mirror of the flat engine's ``active_routers`` set.  Its
        #: CPython iteration order is the flat engine's transmit order,
        #: which fixes the first-use sequence of input buffers (the
        #: allocation tie-break).  For small-int router ids the order
        #: is ascending — the canonical order this engine transmits in
        #: — except while the set's hash table is still small (cold
        #: start).  We replay the same add/discard traffic on a real
        #: set and sort transmits by its iteration order until it holds
        #: every router ascending: from then on re-adds hit their home
        #: slots and the order is ascending forever, so the mirror is
        #: dropped.
        self._mirror: set[int] | None = set()
        self._router_range = list(range(nr))

        self.now = 0
        self.measured_injected = 0
        self.measured_delivered = 0
        self.window_ejections = 0
        self._lat_chunks: list[np.ndarray] = []
        self._qlat_chunks: list[np.ndarray] = []
        self._pending = 0
        self._n_buffered = 0
        self._n_staged = 0
        self._n_injq = 0
        self._trace = np.zeros(C, dtype=np.int64) if self.trace_channels else None
        # Telemetry probe state (allocated only when armed; the hot
        # phases pay one None check per batch when off).
        self._tele_occ = tele is not None and tele.queue_occupancy
        self._tele_route = tele is not None and tele.routing_decisions
        self._occ = np.zeros(nr, dtype=np.int64) if self._tele_occ else None
        self._occ_max = np.zeros(nr, dtype=np.int64) if self._tele_occ else None
        self._route_total = 0
        self._route_diverted = 0
        self._tele_dist: list[list[int]] | None = None
        if self._tele_route:
            tables = getattr(routing, "tables", None)
            if tables is not None:
                self._tele_dist = tables.dist.tolist()

    # -- pool / ring growth ----------------------------------------------------

    def _grow_pool(self, need: int) -> None:
        old = self._pool
        new = old
        while new - old + self._free_top < need:
            new *= 2
        grow = new - old
        self._ps = np.concatenate([self._ps, np.zeros((grow, 4), dtype=np.int64)])
        self._p_start = np.concatenate(
            [self._p_start, np.zeros(grow, dtype=np.int64)]
        )
        if self._p_path is not None:
            self._p_path = np.concatenate(
                [self._p_path, np.zeros((grow, _PATH_SLOTS), dtype=np.int64)]
            )
        free = np.empty(new, dtype=np.int64)
        free[: self._free_top] = self._free[: self._free_top]
        free[self._free_top : self._free_top + grow] = np.arange(
            old, new, dtype=np.int64
        )
        self._free = free
        self._free_top += grow
        self._pool = new

    def _grow_inj(self) -> None:
        old = self._icap
        new = old * 2
        store = np.zeros((self._n_ep, new), dtype=np.int64)
        # Re-anchor every ring at offset 0 (rare: doubling schedule).
        heads = self._inj_head.tolist()
        lens = self._inj_len.tolist()
        for ep in range(self._n_ep):
            ln = lens[ep]
            if ln:
                h = heads[ep]
                idx = (h + np.arange(ln)) % old
                store[ep, :ln] = self._inj_store[ep, idx]
        self._inj_store = store
        self._inj_head[:] = 0
        self._icap = new

    # -- cycle phases ----------------------------------------------------------

    def _phase_arrivals(self) -> None:
        now = self.now
        mirror = self._mirror
        slot = now % self._arr_horizon
        k = self._arr_n[slot]
        if k:
            self._arr_n[slot] = 0
            self._pending -= k
            ev = self._arr_ev[slot, :k]
            p = ev[:, 0]
            b = ev[:, 1]
            if mirror is not None:
                mirror.update(self._buf_router[b].tolist())
            if self._unseen:
                seqs = self._in_seq[b]
                if (seqs < 0).any():
                    in_seq = self._in_seq
                    rseq = self._rseq
                    brl = self._buf_router_list
                    for bb in b[seqs < 0].tolist():
                        r = brl[bb]
                        in_seq[bb] = rseq[r]
                        rseq[r] += 1
            pos = self._buf_head[b] + self._buf_len[b]
            cap = self._cap
            pos[pos >= cap] -= cap
            self._buf_store[b, pos] = p
            self._buf_len[b] += 1
            self._n_buffered += k
            if self._tele_occ:
                # Arrivals only increment, so the post-batch maximum
                # equals the flat engine's per-packet running max.
                np.add.at(self._occ, self._buf_router[b], 1)
                np.maximum(self._occ_max, self._occ, out=self._occ_max)
        cslot = now % self._credit_horizon
        m = self._cw_n[cslot]
        if m:
            self._cw_n[cslot] = 0
            # One key per freed packet slot group; keys are distinct
            # (a FIFO pops at most one head per cycle), so a fancy add
            # is safe.  Multi-flit packets return all L credits at once.
            keys = self._cw[cslot, :m]
            self.credits[keys] += self._L
            if mirror is not None:
                mirror.update(self._buf_src[keys].tolist())

    def _phase_injection(self, measuring: bool) -> None:
        load = self.offered_load / self._L
        if load <= 0.0 or self._active_eps_arr is None:
            return
        coins = self.rng.random(len(self.active_endpoints)) < load
        if not coins.any():
            return
        srcs = self._active_eps_arr[coins]
        dsts = self.traffic.destinations(srcs, self.rng)
        now = self.now
        if isinstance(dsts, np.ndarray):
            if not self._excludes_self:
                keep = dsts != srcs
                if not keep.all():
                    srcs = srcs[keep]
                    dsts = dsts[keep]
        else:
            pairs = [
                (s, d)
                for s, d in zip(srcs.tolist(), dsts)
                if d is not None and d != s
            ]
            if not pairs:
                return
            srcs = np.array([s for s, _ in pairs], dtype=np.int64)
            dsts = np.array([d for _, d in pairs], dtype=np.int64)
        k = len(srcs)
        if k == 0:
            return
        if self._mirror is not None:
            self._mirror.update(self._emap[srcs].tolist())
        if self._free_top < k:
            self._grow_pool(k)
        self._free_top -= k
        ids = self._free[self._free_top : self._free_top + k].copy()
        dst_rt = self._emap[dsts]
        ps = self._ps
        ps[ids, 0] = dsts
        ps[ids, 1] = dst_rt
        ps[ids, 2] = 0
        ps[ids, 3] = now
        self._p_start[ids] = now
        if self._plan is not None:
            # Source-routed plans, drawn in source order: the identical
            # RNG consumption (and, for UGAL, the identical queue view)
            # as the flat engine's injection loop.
            src_rt = self._emap[srcs]
            plan = self._plan
            if self._tele_route:
                plan = self._counted_plan(plan)
            view = self._view
            chan_of = self._chan_of_list
            path_rows = self._p_path
            for pid, sr, dr in zip(ids.tolist(), src_rt.tolist(), dst_rt.tolist()):
                path = plan(sr, dr, view)
                row = path_rows[pid]
                for h in range(len(path) - 1):
                    row[h] = chan_of[path[h]][path[h + 1]]
        self._inj_maxbound += 1
        if self._inj_maxbound >= self._icap - 1:
            true_max = int(self._inj_len.max())
            if true_max >= self._icap - 1:
                self._grow_inj()
            self._inj_maxbound = true_max + 1
        pos = self._inj_head[srcs] + self._inj_len[srcs]
        icap = self._icap
        pos[pos >= icap] -= icap
        self._inj_store[srcs, pos] = ids
        self._inj_len[srcs] += 1
        self._n_injq += k
        if self._tele_occ:
            np.add.at(self._occ, self._emap[srcs], 1)
            np.maximum(self._occ_max, self._occ, out=self._occ_max)
        if self._tele_route and self._plan is None:
            # Table-driven protocols never call plan(); every injected
            # packet follows the minimal next-hop table.
            self._route_total += k
        if measuring:
            self.measured_injected += k

    def _counted_plan(self, plan):
        """Wrap ``plan()`` with the routing-decision counters — the
        same definition as the flat engine's, so counters agree."""
        dist = self._tele_dist

        def counted(src_router, dst_router, view):
            path = plan(src_router, dst_router, view)
            self._route_total += 1
            if dist is not None and len(path) - 1 > dist[src_router][dst_router]:
                self._route_diverted += 1
            return path

        return counted

    def _phase_switch_allocation(self) -> None:
        if self._adaptive is not None:
            return self._alloc_adaptive()
        ob = self._buf_len.nonzero()[0]
        oe = self._inj_len.nonzero()[0]
        nb = ob.size
        ne = oe.size
        n = nb + ne
        if self._mirror is not None:
            # The flat engine drops idle routers from its active set
            # here; membership after allocation is exactly the routers
            # with head requests or staged output.
            busy = set(
                self._chan_src[self._stage_len.nonzero()[0]].tolist()
            )
            if nb:
                busy.update(self._buf_router[ob].tolist())
            if ne:
                busy.update(self._ep_router[oe].tolist())
            # Discard in place (never intersection_update: that
            # rebuilds the hash table and loses the iteration order
            # the flat engine's per-element discards preserve).
            mirror = self._mirror
            stale = [r for r in mirror if r not in busy]
            for r in stale:
                mirror.discard(r)
        if n == 0:
            return
        now = self.now
        L = self._L
        speedup = self._speedup
        V = self.num_vcs
        C = self.num_channels

        # -- assemble head-flit requests (buffered first, then inject) -----
        pk = self._s_pk[:n]
        seqk = self._s_seqk[:n]
        if nb:
            pk[:nb] = self._buf_store[ob, self._buf_head[ob]]
            seqk[:nb] = self._in_seq[ob]
        if ne:
            pk[nb:] = self._inj_store[oe, self._inj_head[oe]]
            seqk[nb:] = self._inj_seqk[oe]
        ps = self._ps[pk]
        dst_rt = ps[:, 1]
        if self._next_chan_flat is not None:
            cidx = dst_rt.copy()
            if nb:
                cidx[:nb] += self._buf_rnr[ob]
            if ne:
                cidx[nb:] += self._ep_rnr[oe]
            cout = self._next_chan_flat[cidx]
            ej = cout < 0  # the next-hop matrix diagonal
        else:
            rtr = np.empty(n, dtype=np.int64)
            if nb:
                rtr[:nb] = self._buf_router[ob]
            if ne:
                rtr[nb:] = self._ep_router[oe]
            ej = dst_rt == rtr
            hops = ps[:, 2]
            # Clip for ejection rows whose packet traversed a full
            # maximum-length path (the gathered value is unused there).
            cout = self._p_path[pk, np.minimum(hops, _PATH_SLOTS - 1)]
        bout = cout * V + np.minimum(ps[:, 2], V - 1)
        grp = np.where(ej, C + ps[:, 0], cout)
        key = grp * self._k_grp + ps[:, 3] * self._k_inj + seqk

        # -- grant decision ------------------------------------------------
        # Credit screen: when every downstream buffer can absorb a full
        # allocation round, grants are purely positional.
        credits = self.credits
        fast = int(credits.min()) >= speedup * L
        if not fast:
            fwd = (~ej).nonzero()[0]
            fast = (
                fwd.size == 0
                or int(credits[bout[fwd]].min()) >= speedup * L
            )
        if fast:
            grant = self._grant_positional(n, grp, key, ej)
            if L > 1:
                gem = (grant & ej).nonzero()[0]
                if gem.size:
                    busy_g = self._eject_busy[ps[gem, 0]] > now
                    if busy_g.any():
                        grant[gem[busy_g]] = False
        else:
            grant = self._grant_waves(n, grp, key, ej, bout, now)

        gi = grant.nonzero()[0]
        if gi.size == 0:
            return

        # -- pop granted heads; buffered pops return their credits ---------
        split = int(np.searchsorted(gi, nb))
        bsel = gi[:split]
        if bsel.size:
            bb = ob[bsel]
            h = self._buf_head[bb] + 1
            h[h >= self._cap] = 0
            self._buf_head[bb] = h
            self._buf_len[bb] -= 1
            self._n_buffered -= bsel.size
            if self._tele_occ:
                np.subtract.at(self._occ, self._buf_router[bb], 1)
            cslot = (now + self.config.credit_delay) % self._credit_horizon
            m = self._cw_n[cslot]
            self._cw[cslot, m : m + bb.size] = bb
            self._cw_n[cslot] = m + bb.size
        esel = gi[split:]
        if esel.size:
            ee = oe[esel - nb]
            h = self._inj_head[ee] + 1
            h[h >= self._icap] = 0
            self._inj_head[ee] = h
            self._inj_len[ee] -= 1
            self._n_injq -= esel.size
            self._p_start[pk[esel]] = now
            if self._tele_occ:
                np.subtract.at(self._occ, self._ep_router[ee], 1)

        # -- deliver granted ejections -------------------------------------
        gej = ej[gi]
        eji = gi[gej]
        if eji.size:
            epk = pk[eji]
            if L > 1:
                self._eject_busy[ps[eji, 0]] = now + L
            inj_t = ps[eji, 3]
            meas = (inj_t >= self._warmup) & (inj_t < self._end_measure)
            nmeas = int(meas.sum())
            if nmeas:
                self.measured_delivered += nmeas
                self._lat_chunks.append((now + L - inj_t)[meas])
                self._qlat_chunks.append((self._p_start[epk] - inj_t)[meas])
            if self._in_window:
                self.window_ejections += L * eji.size
            if self._deliver_pids is not None:
                self._deliver_pids(epk)
            self._free[self._free_top : self._free_top + eji.size] = epk
            self._free_top += eji.size

        # -- stage granted forwards ----------------------------------------
        fsel = gi[~gej]
        if fsel.size:
            # Stage rings must hold same-cycle pushes in grant (= key)
            # order; for forwarding rows the packed key is
            # channel-major already, so one small argsort yields both
            # the per-channel ordering and the duplicate offsets.
            so = np.argsort(key[fsel])
            fsel = fsel[so]
            fc = cout[fsel]
            fbuf = bout[fsel]
            np.subtract.at(credits, fbuf, L)
            i2 = self._idx[: fc.size]
            boundary = np.empty(fc.size, dtype=bool)
            boundary[0] = True
            if fc.size > 1:
                np.not_equal(fc[1:], fc[:-1], out=boundary[1:])
            off = i2 - np.maximum.accumulate(i2 * boundary)
            spos = self._stage_head[fc] + self._stage_len[fc] + off
            spos %= self._scap
            self._stage_sb[fc, spos, 0] = pk[fsel]
            self._stage_sb[fc, spos, 1] = fbuf
            # Boundary rows carry their channel's full push count.
            last = np.empty(fc.size, dtype=bool)
            last[-1] = True
            if fc.size > 1:
                last[:-1] = boundary[1:]
            self._stage_len[fc[last]] += off[last] + 1
            self._n_staged += fsel.size

    def _alloc_adaptive(self) -> None:
        """Switch allocation for per-hop adaptive routing (FT ANCA).

        The flat engine consults ``next_hop()`` for every head request
        every cycle — even when the grant then fails — drawing from one
        shared RNG and reading queue lengths that same-cycle grants at
        the same router already mutated.  That serial dependency admits
        no batched grant, so this path replays the flat scan exactly:
        routers in active-set iteration order, requests per router
        oldest-first (the same packed rank/seq key), each grant applied
        immediately so the queue view the next ``next_hop()`` call
        reads is bit-identical.  All other phases stay vectorised.

        The ``packet`` argument of ``next_hop`` is passed as ``None``
        (this engine builds no Packet objects); every per-hop algorithm
        in the registry decides on (router, destination, queue view)
        alone.
        """
        ob = self._buf_len.nonzero()[0]
        oe = self._inj_len.nonzero()[0]
        nb = ob.size
        ne = oe.size
        n = nb + ne
        mirror = self._mirror
        if mirror is not None:
            busy = set(
                self._chan_src[self._stage_len.nonzero()[0]].tolist()
            )
            if nb:
                busy.update(self._buf_router[ob].tolist())
            if ne:
                busy.update(self._ep_router[oe].tolist())
            stale = [r for r in mirror if r not in busy]
            for r in stale:
                mirror.discard(r)
        if n == 0:
            return
        now = self.now
        L = self._L
        speedup = self._speedup
        V = self.num_vcs
        vc_cap = V - 1
        cap = self._cap
        icap = self._icap
        scap = self._scap
        credits = self.credits
        ps = self._ps
        chan_of = self._chan_of_list
        next_hop = self._adaptive
        view = self._view
        eject_busy = self._eject_busy
        occ = self._occ

        pk = self._s_pk[:n]
        seqk = self._s_seqk[:n]
        if nb:
            pk[:nb] = self._buf_store[ob, self._buf_head[ob]]
            seqk[:nb] = self._in_seq[ob]
        if ne:
            pk[nb:] = self._inj_store[oe, self._inj_head[oe]]
            seqk[nb:] = self._inj_seqk[oe]
        rtr = np.empty(n, dtype=np.int64)
        if nb:
            rtr[:nb] = self._buf_router[ob]
        if ne:
            rtr[nb:] = self._ep_router[oe]
        qid = np.empty(n, dtype=np.int64)
        if nb:
            qid[:nb] = ob
        if ne:
            qid[nb:] = oe
        # (rank, seq) collapse into one int: the flat request sort key
        # (seqk already folds the injection bit in via seq_span).
        lkey = ps[pk, 3] * self._k_inj + seqk
        if mirror is not None:
            # Requesting routers are busy by construction, so every one
            # survives the discard above and keeps its mirror position.
            rpos = {r: i for i, r in enumerate(mirror)}
            rord = np.fromiter(
                (rpos[r] for r in rtr.tolist()), dtype=np.int64, count=n
            )
            order = np.lexsort((lkey, rord))
        else:
            order = np.lexsort((lkey, rtr))

        cslot = (now + self.config.credit_delay) % self._credit_horizon
        cw = self._cw[cslot]
        buf_head = self._buf_head
        buf_len = self._buf_len
        inj_head = self._inj_head
        inj_len = self._inj_len
        stage_head = self._stage_head
        stage_len = self._stage_len
        stage_sb = self._stage_sb
        p_start = self._p_start
        warmup = self._warmup
        end_measure = self._end_measure
        delivered_pids: list[int] = []
        granted: dict[int, int] = {}
        cur_router = -1
        for i in order.tolist():
            r = int(rtr[i])
            if r != cur_router:
                cur_router = r
                granted = {}
            p = int(pk[i])
            row = ps[p]
            dst_rt = int(row[1])
            is_inj = i >= nb
            q = int(qid[i])
            if dst_rt == r:
                ep = int(row[0])
                if eject_busy[ep] > now:
                    continue
                eject_busy[ep] = now + L
                if is_inj:
                    h = inj_head[q] + 1
                    inj_head[q] = h if h < icap else 0
                    inj_len[q] -= 1
                    self._n_injq -= 1
                    p_start[p] = now
                else:
                    h = buf_head[q] + 1
                    buf_head[q] = h if h < cap else 0
                    buf_len[q] -= 1
                    self._n_buffered -= 1
                    m = self._cw_n[cslot]
                    cw[m] = q
                    self._cw_n[cslot] = m + 1
                if occ is not None:
                    occ[r] -= 1
                inj_t = int(row[3])
                if warmup <= inj_t < end_measure:
                    self.measured_delivered += 1
                    self._lat_chunks.append(
                        np.array([now + L - inj_t], dtype=np.int64)
                    )
                    self._qlat_chunks.append(
                        np.array([int(p_start[p]) - inj_t], dtype=np.int64)
                    )
                if self._in_window:
                    self.window_ejections += L
                delivered_pids.append(p)
                self._free[self._free_top] = p
                self._free_top += 1
                continue
            nbr = next_hop(r, dst_rt, None, view)
            c = chan_of[r][nbr]
            g = granted.get(c, 0)
            if g >= speedup:
                continue
            hop = int(row[2])
            vc = hop if hop < vc_cap else vc_cap
            b_out = c * V + vc
            if credits[b_out] < L:
                continue
            credits[b_out] -= L
            granted[c] = g + 1
            if is_inj:
                h = inj_head[q] + 1
                inj_head[q] = h if h < icap else 0
                inj_len[q] -= 1
                self._n_injq -= 1
                p_start[p] = now
            else:
                h = buf_head[q] + 1
                buf_head[q] = h if h < cap else 0
                buf_len[q] -= 1
                self._n_buffered -= 1
                m = self._cw_n[cslot]
                cw[m] = q
                self._cw_n[cslot] = m + 1
            if occ is not None:
                occ[r] -= 1
            spos = stage_head[c] + stage_len[c]
            if spos >= scap:
                spos -= scap
            stage_sb[c, spos, 0] = p
            stage_sb[c, spos, 1] = b_out
            stage_len[c] += 1
            self._n_staged += 1
        if delivered_pids and self._deliver_pids is not None:
            self._deliver_pids(np.asarray(delivered_pids, dtype=np.int64))

    def _grant_positional(self, n, grp, key, ej):
        """Grant when credits are plentiful: capacity is per group, so
        uncontested groups (no more requests than capacity) grant
        outright and only contested ones need their key order."""
        cnt = np.bincount(grp, minlength=self._n_groups)
        over = cnt > self._gcap_g
        if not over.any():
            return np.ones(n, dtype=bool)
        contested = over[grp]
        grant = ~contested
        ci = contested.nonzero()[0]
        so = np.argsort(key[ci])
        cg = grp[ci[so]]
        i2 = self._idx[: ci.size]
        boundary = np.empty(ci.size, dtype=bool)
        boundary[0] = True
        np.not_equal(cg[1:], cg[:-1], out=boundary[1:])
        pos = i2 - np.maximum.accumulate(i2 * boundary)
        win = pos < self._gcap_g[cg]
        grant[ci[so[win]]] = True
        return grant

    def _grant_waves(self, n, grp, key, ej, bout, now):
        """Credit-scarce fallback: replay per-group scan order exactly.

        Ejection groups resolve in one shot (capacity 1, busy-gated);
        forwarding groups grant in waves — each wave decides the first
        undecided request of every group, port counters and a working
        credit copy carrying the outcome forward, with a bulk deny once
        a port exhausts its ``speedup`` grants.
        """
        order = np.argsort(key)
        g = grp[order]
        eo = ej[order]
        bo = bout[order]
        idx = self._idx[:n]
        new = np.empty(n, dtype=bool)
        new[0] = True
        np.not_equal(g[1:], g[:-1], out=new[1:])
        pos = idx - np.maximum.accumulate(idx * new)

        grant = np.zeros(n, dtype=bool)
        decided = eo.copy()
        em = eo & (pos == 0)
        if em.any():
            if self._L > 1:
                pk_em = self._s_pk[:n][order[em]]
                free = self._eject_busy[self._ps[pk_em, 0]] <= now
                gem = em.nonzero()[0]
                grant[gem[free]] = True
            else:
                grant[em] = True
        credits = self.credits.copy()
        gcnt = self._gcnt
        gcnt[:] = 0
        speedup = self._speedup
        L = self._L
        while True:
            und = (~decided).nonzero()[0]
            if und.size == 0:
                break
            gu = g[und]
            first = np.empty(und.size, dtype=bool)
            first[0] = True
            np.not_equal(gu[1:], gu[:-1], out=first[1:])
            cidx = und[first]
            cg = g[cidx]
            cb = bo[cidx]
            ok = (gcnt[cg] < speedup) & (credits[cb] >= L)
            decided[cidx] = True
            grant[cidx] = ok
            if ok.any():
                np.add.at(gcnt, cg[ok], 1)
                np.subtract.at(credits, cb[ok], L)
            und = (~decided).nonzero()[0]
            if und.size:
                dead = gcnt[g[und]] >= speedup
                if dead.any():
                    decided[und[dead]] = True
        out = np.empty(n, dtype=bool)
        out[order] = grant
        return out

    def _phase_transmit(self) -> None:
        tc = self._stage_len.nonzero()[0]
        mirror = self._mirror
        if mirror is not None:
            if (
                len(mirror) == self.num_routers
                and list(mirror) == self._router_range
            ):
                # Full and ascending: CPython keeps a grown small-int
                # table canonical forever, so the flat engine's
                # transmit order is ascending from here on.
                self._mirror = None
            elif tc.size > 1:
                # Replay the flat engine's router iteration order
                # (ports stay ascending within a router).
                pos = {r: i for i, r in enumerate(mirror)}
                src = self._chan_src
                C = self.num_channels
                okey = [pos[src[c]] * C + c for c in tc.tolist()]
                tc = tc[np.argsort(okey)]
        if tc.size == 0:
            return
        now = self.now
        L = self._L
        if L > 1:
            tc = tc[self._chan_busy[tc] <= now]
            if tc.size == 0:
                return
            self._chan_busy[tc] = now + L
        k = tc.size
        heads = self._stage_head[tc]
        pairs = self._stage_sb[tc, heads]
        heads = heads + 1
        heads[heads >= self._scap] = 0
        self._stage_head[tc] = heads
        self._stage_len[tc] -= 1
        self._n_staged -= k
        self._ps[pairs[:, 0], 2] += 1
        if self._trace is not None:
            self._trace[tc] += L
        slot = (now + self.config.hop_latency + L - 1) % self._arr_horizon
        self._arr_ev[slot, :k] = pairs
        self._arr_n[slot] = k
        self._pending += k

    # -- main loop -------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        warmup, measure = cfg.warmup_cycles, cfg.measure_cycles
        end_measure = warmup + measure
        deadline = end_measure + cfg.drain_cycles
        self._warmup = warmup
        self._end_measure = end_measure
        self._in_window = False

        while True:
            t = self.now
            measuring = warmup <= t < end_measure
            self._in_window = measuring
            self._phase_arrivals()
            if t < end_measure:
                self._phase_injection(measuring)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if self.now >= end_measure:
                drained = self.measured_delivered >= self.measured_injected
                if (
                    drained
                    and not self._pending
                    and not self._n_buffered
                    and not self._n_staged
                    and not self._n_injq
                ):
                    break
                if drained and self.now >= end_measure + 8:
                    break
                if self.now >= deadline:
                    break

        n_active = max(1, len(self.active_endpoints))
        accepted = self.window_ejections / (n_active * measure) if measure else 0.0
        drained = self.measured_delivered >= self.measured_injected
        injected_rate = (
            self.measured_injected * cfg.packet_length / (n_active * measure)
            if measure
            else 0.0
        )
        saturated = (not drained) or (
            injected_rate > 0 and accepted < 0.95 * injected_rate
        )
        lats = (
            np.concatenate(self._lat_chunks)
            if self._lat_chunks
            else np.empty(0, dtype=np.int64)
        )
        qlats = (
            np.concatenate(self._qlat_chunks)
            if self._qlat_chunks
            else np.empty(0, dtype=np.int64)
        )
        return SimResult(
            offered_load=self.offered_load,
            accepted_load=accepted,
            avg_latency=float(np.mean(lats)) if lats.size else float("nan"),
            p99_latency=float(np.percentile(lats, 99)) if lats.size else float("nan"),
            delivered=self.measured_delivered,
            injected=self.measured_injected,
            saturated=saturated,
            cycles=self.now,
            avg_queue_latency=float(np.mean(qlats)) if qlats.size else float("nan"),
            telemetry=self._telemetry_result(lats),
        )

    def _telemetry_result(self, lats: np.ndarray) -> TelemetryResult | None:
        """Assemble armed-probe measurements (None when telemetry is off).

        Mirrors :meth:`repro.sim.engine.SimEngine._telemetry_result`
        value for value: identical bin edges, the same flat channel
        numbering, and per-channel loads computed with the same Python
        ``int / int`` division, so results compare equal bit for bit.
        """
        tele = self.telemetry
        if tele is None:
            return None
        cycles = self.now
        hist = latency_histogram(lats) if tele.latency_hist else None
        channel_flits = channel_load = None
        if tele.channel_flits:
            channel_flits = tuple(int(f) for f in self._trace.tolist())
            channel_load = tuple(
                (f / cycles if cycles else 0.0) for f in channel_flits
            )
        route_packets = route_diverted = frac = None
        if self._tele_route:
            route_packets = self._route_total
            route_diverted = self._route_diverted
            frac = route_diverted / route_packets if route_packets else 0.0
        return TelemetryResult(
            cycles=cycles,
            latency_hist=hist,
            channel_flits=channel_flits,
            channel_load=channel_load,
            max_queue=(
                tuple(int(x) for x in self._occ_max.tolist())
                if self._tele_occ
                else None
            ),
            route_packets=route_packets,
            route_diverted=route_diverted,
            route_diverted_frac=frac,
        )

    # -- tracing ---------------------------------------------------------------

    @property
    def channel_flits(self) -> dict[tuple[int, int], int]:
        """Per-channel flit counts, ``(src router, dst router) -> flits``,
        matching :attr:`repro.sim.engine.SimEngine.channel_flits`."""
        if self._trace is None:
            return {}
        out: dict[tuple[int, int], int] = {}
        src = self._chan_src
        dst = self._chan_dst
        for c in np.flatnonzero(self._trace):
            out[(int(src[c]), int(dst[c]))] = int(self._trace[c])
        return out


def vec_simulate(
    topology: Topology,
    routing: RoutingAlgorithm,
    traffic,
    offered_load: float,
    config: SimConfig | None = None,
    telemetry: TelemetrySpec | None = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`VecEngine`."""
    return VecEngine(
        topology, routing, traffic, offered_load, config, telemetry=telemetry
    ).run()


# -- closed-loop (workload) mode ---------------------------------------------


class VecClosedLoopEngine(VecEngine):
    """Dependency-driven ("closed-loop") variant of the batched engine.

    The network model — switch allocation, VC/credit flow control,
    transmission — is the inherited open-loop one; only injection and
    the run loop differ, mirroring how
    :class:`repro.sim.engine.ClosedLoopEngine` subclasses the flat
    engine.  Injection batches the ready-message frontier: released and
    newly-ready messages process as sorted index arrays, flits segment
    into packets with one ``np.repeat`` per batch, and the packets
    scatter into the per-endpoint injection rings grouped by source.
    Message completion is tracked through the engine's per-delivery
    hook over ejected pool ids: each cycle's ejections decrement their
    messages' remaining-packet counters in one fancy-indexed subtract
    (at most one ejection per endpoint per cycle and all packets of a
    message share one destination endpoint, so the ids are distinct),
    and messages hitting zero complete at the tail-ejection cycle
    ``now + packet_length``, releasing dependents exactly when the flat
    engine does.

    Bit-exact against ``ClosedLoopEngine`` — including every
    per-message ready/completion timestamp — for table-driven,
    source-routed and per-hop adaptive routing: plans draw in ascending
    message-id order (the flat injection order), and the allocation
    tie-breaks are the inherited open-loop ones.

    ``max_cycles`` participates in the packed sort-key span (ranks run
    to the cycle cap instead of the open-loop deadline), so a custom
    cap must be passed at construction, not just to :meth:`run`.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        workload,
        config: SimConfig | None = None,
        trace_channels: bool = False,
        max_cycles: int | None = None,
    ):
        from repro.sim.engine import DEFAULT_MAX_CYCLES, _NullTraffic

        super().__init__(
            topology, routing, _NullTraffic(), 0.0, config, trace_channels
        )
        limit = DEFAULT_MAX_CYCLES if max_cycles is None else int(max_cycles)
        self._limit = limit
        # Re-span the packed sort keys: inject times now run to the
        # closed-loop cycle cap instead of the open-loop deadline.
        seq_span = self._k_inj // 2
        rank_span = 2 * (limit + 2)
        if self._n_groups * rank_span * seq_span >= 2**62:
            raise ValueError("simulation too large for packed int64 sort keys")
        self._k_grp = rank_span * seq_span

        if hasattr(workload, "messages"):
            msgs = workload.messages()
            self.workload_name = getattr(workload, "name", "workload")
        else:
            msgs = list(workload)
            self.workload_name = "workload"
        n_ep = self._n_ep
        seen: set[int] = set()
        for m in msgs:
            if m.mid in seen:
                raise ValueError(f"duplicate message id {m.mid}")
            seen.add(m.mid)
            if not (0 <= m.src < n_ep):
                raise ValueError(f"message {m.mid}: bad source endpoint {m.src}")
            if not (0 <= m.dst < n_ep):
                raise ValueError(
                    f"message {m.mid}: bad destination endpoint {m.dst}"
                )
        # Dense message indices in ascending-mid order, so sorting an
        # index batch reproduces the flat engine's sorted-mid batches.
        mids = sorted(seen)
        midx = {mid: i for i, mid in enumerate(mids)}
        M = len(mids)
        self._mids = mids
        self.total_messages = M
        self.completed = 0
        self._delivered_flits = 0
        m_src = np.zeros(M, dtype=np.int64)
        m_dst = np.zeros(M, dtype=np.int64)
        m_size = np.zeros(M, dtype=np.int64)
        pending = [0] * M
        dependents: list[list[int]] = [[] for _ in range(M)]
        for m in msgs:
            i = midx[m.mid]
            m_src[i] = m.src
            m_dst[i] = m.dst
            m_size[i] = m.size_flits
            pending[i] = len(m.deps)
            for d in m.deps:
                if d not in midx:
                    raise ValueError(f"message {m.mid} depends on unknown id {d}")
                dependents[midx[d]].append(i)
        self._m_src = m_src
        self._m_dst = m_dst
        self._m_size = m_size
        self._m_src_rt = self._emap[m_src]
        self._m_dst_rt = self._emap[m_dst]
        self._m_zero = m_src == m_dst
        self._m_pending = pending
        self._m_dependents = dependents
        self._m_remaining = np.zeros(M, dtype=np.int64)
        self._ready_t = np.full(M, -1, dtype=np.int64)
        self._comp_t = np.full(M, -1, dtype=np.int64)
        self._ready: list[int] = [i for i in range(M) if pending[i] == 0]
        #: Release cycle -> dense indices whose last dependency
        #: completes at a future cycle (multi-flit tail ejection).
        self._release: dict[int, list[int]] = {}
        #: Pool column: owning dense message index per packet id.
        self._p_msg = np.zeros(self._pool, dtype=np.int64)
        self._deliver_pids = self._on_delivered_batch

    # -- pool growth -------------------------------------------------------

    def _grow_pool(self, need: int) -> None:
        old = self._pool
        super()._grow_pool(need)
        self._p_msg = np.concatenate(
            [self._p_msg, np.zeros(self._pool - old, dtype=np.int64)]
        )

    # -- dependency bookkeeping --------------------------------------------

    def _complete_msg(self, mi: int, t: int) -> None:
        self._comp_t[mi] = t
        self.completed += 1
        self._delivered_flits += int(self._m_size[mi])
        pending = self._m_pending
        for dep in self._m_dependents[mi]:
            left = pending[dep] - 1
            pending[dep] = left
            if left == 0:
                # A dependent may not inject before the completing
                # tail flit has fully ejected (cycle t).
                if t <= self.now:
                    self._ready.append(dep)
                else:
                    self._release.setdefault(t, []).append(dep)

    def _on_delivered_batch(self, pids: np.ndarray) -> None:
        mids = self._p_msg[pids]
        rem = self._m_remaining
        rem[mids] -= 1
        done = mids[rem[mids] == 0]
        if done.size:
            t = self.now + self._L
            for mi in done.tolist():
                self._complete_msg(int(mi), t)

    # -- overridden phases -------------------------------------------------

    def _phase_injection(self, measuring: bool) -> None:
        now = self.now
        released = self._release.pop(now, None)
        if released:
            self._ready.extend(released)
        if not self._ready:
            return
        L = self._L
        plan = self._plan
        while self._ready:
            batch = np.asarray(sorted(self._ready), dtype=np.int64)
            self._ready = []
            self._ready_t[batch] = now
            zh = self._m_zero[batch]
            if zh.any():
                # Zero-hop messages (src == dst endpoint) complete at
                # `now` and may cascade within the phase: dependents
                # land back in _ready for the next sorted batch.
                for mi in batch[zh].tolist():
                    self._complete_msg(mi, now)
            nz = batch[~zh]
            if nz.size == 0:
                continue
            if self._mirror is not None:
                self._mirror.update(self._m_src_rt[nz].tolist())
            npkts = -(-self._m_size[nz] // L)
            self._m_remaining[nz] = npkts
            total = int(npkts.sum())
            self.measured_injected += total
            if total == 0:
                continue
            if self._free_top < total:
                self._grow_pool(total)
            self._free_top -= total
            ids = self._free[self._free_top : self._free_top + total].copy()
            # _grow_pool replaces the pool arrays; bind after it ran.
            ps = self._ps
            # Batch-major packet order == the flat engine's ascending-
            # mid injection order (packets of one message contiguous).
            rep = np.repeat(np.arange(nz.size, dtype=np.int64), npkts)
            mrows = nz[rep]
            dst_rt = self._m_dst_rt[nz][rep]
            ps[ids, 0] = self._m_dst[nz][rep]
            ps[ids, 1] = dst_rt
            ps[ids, 2] = 0
            ps[ids, 3] = now
            self._p_start[ids] = now
            self._p_msg[ids] = mrows
            if plan is not None:
                # Source-routed plans per packet in batch order: the
                # identical RNG consumption (and queue view) as the
                # flat closed-loop injection loop.
                view = self._view
                chan_of = self._chan_of_list
                path_rows = self._p_path
                src_rt = self._m_src_rt[nz][rep].tolist()
                drt = dst_rt.tolist()
                for j, pid in enumerate(ids.tolist()):
                    path = plan(src_rt[j], drt[j], view)
                    prow = path_rows[pid]
                    for h in range(len(path) - 1):
                        prow[h] = chan_of[path[h]][path[h + 1]]
            # Scatter into the injection rings grouped by source
            # endpoint, preserving batch order within each ring.
            srcs = self._m_src[nz][rep]
            so = np.argsort(srcs, kind="stable")
            ss = srcs[so]
            sid = ids[so]
            u, counts = np.unique(ss, return_counts=True)
            while int((self._inj_len[u] + counts).max()) >= self._icap - 1:
                self._grow_inj()
            i2 = np.arange(ss.size, dtype=np.int64)
            boundary = np.empty(ss.size, dtype=bool)
            boundary[0] = True
            if ss.size > 1:
                np.not_equal(ss[1:], ss[:-1], out=boundary[1:])
            off = i2 - np.maximum.accumulate(i2 * boundary)
            pos = self._inj_head[ss] + self._inj_len[ss] + off
            icap = self._icap
            pos[pos >= icap] -= icap
            self._inj_store[ss, pos] = sid
            self._inj_len[u] += counts
            self._n_injq += total

    # -- main loop ---------------------------------------------------------

    def run(self, max_cycles: int | None = None):
        from repro.sim.stats import WorkloadResult

        limit = self._limit if max_cycles is None else int(max_cycles)
        if limit > self._limit:
            raise ValueError(
                "max_cycles exceeds the packed sort-key span; pass the "
                "cycle cap to the VecClosedLoopEngine constructor"
            )
        # Every closed-loop packet is measured (the flat engine injects
        # with measured=True throughout).
        self._warmup = 0
        self._end_measure = 1 << 60
        self._in_window = True
        total = self.total_messages
        while self.completed < total and self.now < limit:
            self._phase_arrivals()
            self._phase_injection(True)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if (
                not self._ready
                and not self._release
                and not self._pending
                and self.completed < total
                and not self._n_buffered
                and not self._n_staged
                and not self._n_injq
            ):
                # Unsatisfiable dependencies: nothing in flight and
                # nothing ready — report the partial run.
                break
        done = (self._comp_t >= 0).nonzero()[0]
        lats = (self._comp_t - self._ready_t)[done]
        mean = float(np.mean(lats)) if lats.size else float("nan")
        p99 = float(np.percentile(lats, 99)) if lats.size else float("nan")
        makespan = int(self._comp_t[done].max()) if done.size else 0
        plats = (
            np.concatenate(self._lat_chunks)
            if self._lat_chunks
            else np.empty(0, dtype=np.int64)
        )
        mids = self._mids
        return WorkloadResult(
            workload=self.workload_name,
            num_messages=total,
            completed_messages=self.completed,
            finished=self.completed == total,
            makespan=makespan,
            cycles=max(self.now, makespan),
            delivered_flits=self._delivered_flits,
            avg_message_latency=mean,
            p99_message_latency=p99,
            avg_packet_latency=(
                float(np.mean(plats)) if plats.size else float("nan")
            ),
            message_completions={
                mids[i]: int(self._comp_t[i]) for i in done.tolist()
            },
            message_ready={
                mids[i]: int(self._ready_t[i])
                for i in (self._ready_t >= 0).nonzero()[0].tolist()
            },
        )


def vec_simulate_workload(
    topology: Topology,
    routing: RoutingAlgorithm,
    workload,
    config: SimConfig | None = None,
    max_cycles: int | None = None,
):
    """One-shot closed-loop run on the batched engine.

    Drop-in for :func:`repro.sim.engine.simulate_workload` with
    bit-identical :class:`~repro.sim.stats.WorkloadResult` rows.
    """
    return VecClosedLoopEngine(
        topology, routing, workload, config, max_cycles=max_cycles
    ).run()
