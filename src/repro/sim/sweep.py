"""Latency-vs-offered-load curves (the x-axes of Figs 6 and 8).

Runs the simulator across a load schedule and collects
:class:`~repro.sim.stats.LoadPoint` rows.  Past saturation the
open-loop latency diverges, so once a point saturates the sweep marks
the remaining loads saturated instead of burning cycles on them
(``stop_after_saturation``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.config import SimConfig
from repro.sim.engine import simulate
from repro.sim.stats import LoadPoint, SimResult


def default_loads(maximum: float = 1.0, points: int = 10) -> list[float]:
    """Evenly spaced offered loads in (0, maximum]."""
    step = maximum / points
    return [round(step * (i + 1), 10) for i in range(points)]


def latency_vs_load(
    topology,
    routing_factory: Callable[[], object],
    traffic,
    loads: Sequence[float] | None = None,
    config: SimConfig | None = None,
    stop_after_saturation: int = 1,
) -> list[LoadPoint]:
    """Simulate each offered load and return curve points.

    ``routing_factory`` builds a fresh routing instance per load so
    stateful RNG streams do not leak between runs (determinism per
    point).  ``stop_after_saturation`` counts how many consecutive
    saturated points to simulate before short-circuiting the rest.
    """
    loads = list(loads) if loads is not None else default_loads()
    points: list[LoadPoint] = []
    saturated_run = 0
    last_accepted: float | None = None
    for load in loads:
        if saturated_run >= stop_after_saturation:
            # Short-circuited rows carry the last measured accepted
            # throughput (the curve's plateau) so downstream tables
            # keep a full accepted column past the cutoff.
            points.append(
                LoadPoint(
                    load=load, latency=None, accepted=last_accepted, saturated=True
                )
            )
            continue
        result: SimResult = simulate(
            topology, routing_factory(), traffic, load, config
        )
        latency = None if result.saturated and result.delivered == 0 else result.avg_latency
        points.append(
            LoadPoint(
                load=load,
                latency=latency,
                accepted=result.accepted_load,
                saturated=result.saturated,
            )
        )
        saturated_run = saturated_run + 1 if result.saturated else 0
        last_accepted = result.accepted_load
    return points


def find_saturation_load(points: list[LoadPoint]) -> float | None:
    """First offered load marked saturated, or None if never saturated.

    This is the "accepted bandwidth" statistic of §V-E (the offered
    uniform load that saturates the network).
    """
    for pt in points:
        if pt.saturated:
            return pt.load
    return None


def max_accepted(points: list[LoadPoint]) -> float:
    """Largest accepted throughput seen along the curve."""
    vals = [pt.accepted for pt in points if pt.accepted is not None]
    return max(vals) if vals else 0.0
