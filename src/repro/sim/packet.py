"""The packet record.

The paper simulates single-flit packets ("we utilize single flow
control unit (flit) packets to prevent the influence of flow control
issues on the routing schemes"), so packet == flit here and no
segmentation/reassembly state is needed.  ``__slots__`` keeps the hot
allocation path lean.
"""

from __future__ import annotations


class Packet:
    """One single-flit packet in flight."""

    __slots__ = (
        "src_endpoint",
        "dst_endpoint",
        "dst_router",
        "path",
        "hop",
        "inject_time",
        "start_time",
        "measured",
        "rank",
        # Message id for closed-loop (workload) runs; never set on the
        # open-loop path, where packets have no application context.
        "msg",
    )

    def __init__(
        self,
        src_endpoint: int,
        dst_endpoint: int,
        dst_router: int,
        path: list[int] | None,
        inject_time: int,
        measured: bool,
    ):
        self.src_endpoint = src_endpoint
        self.dst_endpoint = dst_endpoint
        self.dst_router = dst_router
        #: Planned router path for source-routed protocols, else None.
        self.path = path
        #: Hops completed so far (also the Gopal VC index of the next hop).
        self.hop = 0
        self.inject_time = inject_time
        #: Cycle the packet left its source injection queue (set by the
        #: engine at the first switch-allocation grant); the difference
        #: to ``inject_time`` is the source-queueing delay.
        self.start_time = inject_time
        #: True when injected inside the measurement window.
        self.measured = measured
        #: Switch-allocation age rank, ``inject_time << 1``: the low
        #: bit distinguishes buffered (0) from injecting (1) requests,
        #: so (age, kind) priority compares as a single int.
        self.rank = inject_time << 1

    def next_router_on_path(self) -> int:
        """For source-routed packets: the router after ``hop`` hops + 1."""
        return self.path[self.hop + 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.src_endpoint}->{self.dst_endpoint} "
            f"hop={self.hop} t0={self.inject_time})"
        )
