"""Cycle-based flit-level network simulator (paper §V methodology).

Implements the paper's simulation setup from scratch: input-queued
routers with virtual channels and credit-based flow control,
single-flit packets injected by a Bernoulli process, warmup to steady
state before measurement, and the stated pipeline constants (2-cycle
credit processing; 1 cycle each for channel, switch allocation, VC
allocation and crossbar; internal speedup 2 over the channel rate).

Modules
-------
- :mod:`repro.sim.config` — :class:`SimConfig` with the paper defaults.
- :mod:`repro.sim.packet` — the packet/flit record.
- :mod:`repro.sim.network` — flat struct-of-arrays state for a topology.
- :mod:`repro.sim.engine` — the cycle loop and measurement logic, plus
  the closed-loop (workload) variant :class:`ClosedLoopEngine`.
- :mod:`repro.sim.stats` — results (latency, accepted throughput,
  workload completion).
- :mod:`repro.sim.sweep` — latency-vs-offered-load curve helper.
- :mod:`repro.sim.parallel` — multiprocessing orchestrators (load
  sweeps and closed-loop workload points).
- :mod:`repro.sim.backends` — the engine-backend registry (``cycle``
  and ``flow`` fidelities behind one sweep/simulate contract).
- :mod:`repro.sim.flowlevel` — the flow-level fluid solver (steady-
  state link rates; paper-scale sweeps).
- :mod:`repro.sim.telemetry` — the opt-in probe plane (latency
  histograms, channel loads, queue occupancy, routing decisions)
  shared by all backends; zero cost when off.
- :mod:`repro.sim.reference` — the frozen seed engine (differential
  oracle and benchmark baseline; not for production use).

See DESIGN.md at the repository root for the architecture and the
determinism contract between the flat engine and the reference.
"""

from repro.sim.backends import (
    BACKEND_KINDS,
    ENGINE_BACKENDS,
    CycleBackend,
    CycleVecBackend,
    EngineBackend,
    FlowBackend,
    get_backend,
)
from repro.sim.engine_vec import (
    VecClosedLoopEngine,
    VecEngine,
    vec_simulate,
    vec_simulate_workload,
)
from repro.sim.config import SimConfig
from repro.sim.flowlevel import FlowModel, flow_simulate, flow_sweep
from repro.sim.packet import Packet
from repro.sim.network import SimNetwork
from repro.sim.engine import (
    ClosedLoopEngine,
    SimEngine,
    simulate,
    simulate_workload,
)
from repro.sim.stats import SimResult, LoadPoint, WorkloadResult
from repro.sim.sweep import latency_vs_load, find_saturation_load
from repro.sim.telemetry import (
    LATENCY_BIN_EDGES,
    TelemetryResult,
    TelemetrySpec,
    latency_histogram,
    merge_telemetry,
)
from repro.sim.parallel import (
    CompletionTask,
    parallel_latency_vs_load,
    parallel_workload_completion,
    replica_seed,
    simulations_started,
)

__all__ = [
    "BACKEND_KINDS",
    "ENGINE_BACKENDS",
    "CycleBackend",
    "CycleVecBackend",
    "EngineBackend",
    "FlowBackend",
    "VecClosedLoopEngine",
    "VecEngine",
    "vec_simulate",
    "vec_simulate_workload",
    "FlowModel",
    "flow_simulate",
    "flow_sweep",
    "get_backend",
    "SimConfig",
    "Packet",
    "SimNetwork",
    "SimEngine",
    "ClosedLoopEngine",
    "simulate",
    "simulate_workload",
    "SimResult",
    "LoadPoint",
    "WorkloadResult",
    "latency_vs_load",
    "parallel_latency_vs_load",
    "parallel_workload_completion",
    "CompletionTask",
    "replica_seed",
    "simulations_started",
    "find_saturation_load",
    "LATENCY_BIN_EDGES",
    "TelemetrySpec",
    "TelemetryResult",
    "latency_histogram",
    "merge_telemetry",
]
