"""The cycle loop (paper §V methodology), flat-array edition.

Per cycle, in order:

1. **Arrivals** — flits scheduled for this cycle enter downstream
   input buffers; credits scheduled for this cycle are returned.
2. **Injection** — every active endpoint flips a Bernoulli coin at the
   offered load (one vectorised draw per cycle); destinations for the
   injecting sources are drawn in one batch via
   :meth:`repro.traffic.patterns.TrafficPattern.destinations`; new
   packets get their route planned (source-routed protocols) and join
   the endpoint's injection FIFO.  Table-driven protocols (MIN) skip
   per-packet planning entirely: the engine follows the precomputed
   next-hop matrix from :class:`repro.routing.tables.RoutingTables`.
3. **Switch allocation** — per router, head flits of occupied input
   VCs and injection FIFOs request output ports; each output grants up
   to ``speedup`` flits (oldest-first), consuming a downstream credit;
   granted flits move to the output staging queue, their freed input
   slot schedules a credit return upstream (after ``credit_delay``).
   Flits terminating here request their endpoint's ejection port
   (one flit per endpoint per cycle) instead.
4. **Transmission** — every non-empty output stage sends one flit onto
   its channel; it arrives ``hop_latency`` cycles later.

Events live in fixed-size ring-buffer wheels (modulo-horizon buckets)
instead of the seed engine's ``dict[int, list]`` maps: no event is
ever scheduled further ahead than ``hop_latency + packet_length``
cycles, so a wheel of that many buckets indexed by ``cycle % horizon``
replaces unbounded dict churn with two list operations.

The engine is bitwise identical to the frozen seed implementation in
:mod:`repro.sim.reference` for any seed and routing algorithm — the
RNG draw order, request tie-breaks and event orderings are all
preserved (see DESIGN.md, "Determinism contract") — while running
several times faster.

Warmup packets are simulated but not measured; measurement covers
packets injected during the window, and the run continues (up to
``drain_cycles``) until those packets are delivered.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimConfig
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet
from repro.sim.stats import LatencyAccumulator, SimResult
from repro.sim.telemetry import TelemetryResult, TelemetrySpec, latency_histogram
from repro.topologies.base import Topology
from repro.util.rng import make_rng


class SimEngine:
    """Drives one simulation run."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic,
        offered_load: float,
        config: SimConfig | None = None,
        trace_channels: bool = False,
        telemetry: TelemetrySpec | None = None,
    ):
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.offered_load = float(offered_load)
        self.config = config or SimConfig()
        #: Armed probe selection, or None (the zero-cost default).
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        tele = self.telemetry
        #: Optional per-channel flit counters ((u, v) -> flits sent),
        #: for hot-link analyses like the Fig 9 worst-case diagnosis.
        #: ``trace_channels`` survives as a thin alias for the
        #: ``channel_flits`` telemetry probe.
        self.trace_channels = bool(
            trace_channels or (tele is not None and tele.channel_flits)
        )
        self.channel_flits: dict[tuple[int, int], int] = {}
        self._tele_occ = tele is not None and tele.queue_occupancy
        self._tele_route = tele is not None and tele.routing_decisions
        nr = topology.num_routers
        self._occ: list[int] | None = [0] * nr if self._tele_occ else None
        self._occ_max: list[int] | None = [0] * nr if self._tele_occ else None
        self._route_total = 0
        self._route_diverted = 0
        #: Hop-distance matrix for the diversion check (probe-armed only).
        self._tele_dist: list[list[int]] | None = None
        if self._tele_route:
            tables = getattr(routing, "tables", None)
            if tables is not None:
                self._tele_dist = tables.dist.tolist()
        if self.config.num_vcs < routing.num_vcs:
            # Honour the routing algorithm's deadlock-freedom demand.
            self.config = self.config.with_vcs(routing.num_vcs)
        self.net = SimNetwork(topology, self.config)
        self.rng = make_rng(self.config.seed)

        self.now = 0
        # Ring-buffer event wheels (fixed modulo-horizon buckets).  The
        # farthest arrival is hop_latency + packet_length - 1 cycles
        # out, the farthest credit credit_delay cycles out.
        self._arr_horizon = self.config.hop_latency + self.config.packet_length
        self._arr_wheel: list[list] = [[] for _ in range(self._arr_horizon)]
        self._credit_horizon = self.config.credit_delay + 1
        self._credit_wheel: list[list] = [[] for _ in range(self._credit_horizon)]
        #: In-flight flit arrivals (the drain check needs "none pending").
        self._pending_arrivals = 0

        #: Precomputed next-hop matrix for table-driven routing (MIN):
        #: plain nested lists, the fastest container for the hot loop.
        #: ``_next_port`` resolves straight to the output port index,
        #: sparing the allocation loop a neighbour-id dict lookup.
        self._next_hop: list[list[int]] | None = None
        self._next_port: list[list[int]] | None = None
        if getattr(routing, "table_driven", False):
            self._next_hop = routing.next_hop_table().tolist()
            self._next_port = [
                [pi[v] if v != u else -1 for v in row]
                for u, (row, pi) in enumerate(zip(self._next_hop, self.net.port_index))
            ]

        self.active_endpoints = list(traffic.active_endpoints(topology))
        self._active_eps_arr = (
            np.asarray(self.active_endpoints) if self.active_endpoints else None
        )
        self._endpoint_router_arr = np.asarray(topology.endpoint_map)
        self.measured_injected = 0
        self.measured_delivered = 0
        self.window_ejections = 0
        self.latencies = LatencyAccumulator()
        self.queue_latencies = LatencyAccumulator()
        self._in_window = False
        #: Per-delivery callback (packet) -> None; stays None open-loop.
        #: The closed-loop subclass uses it to track message completion
        #: without duplicating the allocation phase.
        self._deliver_hook = None

    # -- cycle phases ------------------------------------------------------

    def _phase_arrivals(self) -> None:
        net = self.net
        active = net.active_routers
        slot = self.now % self._arr_horizon
        bucket = self._arr_wheel[slot]
        if bucket:
            self._arr_wheel[slot] = []
            self._pending_arrivals -= len(bucket)
            in_fifo = net.in_fifo
            in_order = net.in_order
            seen = net._in_seen
            for b, dst, pkt in bucket:
                fifo = in_fifo[b]
                if not seen[b]:
                    seen[b] = 1
                    order = in_order[dst]
                    order.append((len(order), b, fifo))
                fifo.append(pkt)
                active.add(dst)
            if self._tele_occ:
                # Arrivals only increment occupancy, so the running max
                # equals the post-batch value — the same quantity the
                # vectorised engine takes with one np.maximum.
                occ = self._occ
                occ_max = self._occ_max
                for _, dst, _ in bucket:
                    o = occ[dst] + 1
                    occ[dst] = o
                    if o > occ_max[dst]:
                        occ_max[dst] = o
        slot = self.now % self._credit_horizon
        bucket = self._credit_wheel[slot]
        if bucket:
            self._credit_wheel[slot] = []
            credits = net.credits_flat
            buf_src = net.buf_src_list
            for b in bucket:
                credits[b] += 1
                active.add(buf_src[b])

    def _phase_injection(self, measuring: bool) -> None:
        # Offered load is in flits/cycle/endpoint; with L-flit packets
        # the packet-generation probability scales down by L.
        load = self.offered_load / self.config.packet_length
        if load <= 0.0 or self._active_eps_arr is None:
            return
        coins = self.rng.random(len(self.active_endpoints)) < load
        if not coins.any():
            return
        srcs = self._active_eps_arr[coins]
        dsts = self.traffic.destinations(srcs, self.rng)
        routing = self.routing
        plan = (
            routing.plan
            if routing.source_routed and self._next_hop is None
            else None
        )
        counting_plans = plan is not None and self._tele_route
        if counting_plans:
            plan = self._counted_plan(plan)
        net = self.net
        inject = net.inject_queue
        active_add = net.active_routers.add
        now = self.now
        injected = 0
        if isinstance(dsts, np.ndarray):
            # Vectorised patterns return an array with no idle slots;
            # endpoint -> router lookups batch through numpy too, and
            # packets are built by direct slot stores (a Python-level
            # __init__ frame per flit is measurable at this rate).
            emap_arr = self._endpoint_router_arr
            src_routers = emap_arr[srcs].tolist()
            dst_routers = emap_arr[dsts].tolist()
            skip_self = not getattr(self.traffic, "excludes_self", False)
            new = Packet.__new__
            rank = now << 1
            for src, dst, src_router, dst_router in zip(
                srcs.tolist(), dsts.tolist(), src_routers, dst_routers
            ):
                if skip_self and dst == src:
                    continue
                pkt = new(Packet)
                pkt.src_endpoint = src
                pkt.dst_endpoint = dst
                pkt.dst_router = dst_router
                pkt.path = (
                    plan(src_router, dst_router, net) if plan is not None else None
                )
                pkt.hop = 0
                pkt.inject_time = now
                pkt.start_time = now
                pkt.measured = measuring
                pkt.rank = rank
                injected += 1
                inject[src].append(pkt)
                active_add(src_router)
            if self._tele_occ and injected:
                occ = self._occ
                occ_max = self._occ_max
                for src, dst, src_router in zip(
                    srcs.tolist(), dsts.tolist(), src_routers
                ):
                    if skip_self and dst == src:
                        continue
                    o = occ[src_router] + 1
                    occ[src_router] = o
                    if o > occ_max[src_router]:
                        occ_max[src_router] = o
        else:
            emap = self.topology.endpoint_map
            for src, dst in zip(srcs.tolist(), dsts):
                if dst is None or dst == src:
                    continue
                src_router = emap[src]
                dst_router = emap[dst]
                path = plan(src_router, dst_router, net) if plan is not None else None
                pkt = Packet(src, dst, dst_router, path, now, measuring)
                injected += 1
                inject[src].append(pkt)
                active_add(src_router)
            if self._tele_occ and injected:
                occ = self._occ
                occ_max = self._occ_max
                for src, dst in zip(srcs.tolist(), dsts):
                    if dst is None or dst == src:
                        continue
                    r = emap[src]
                    o = occ[r] + 1
                    occ[r] = o
                    if o > occ_max[r]:
                        occ_max[r] = o
        if self._tele_route and not counting_plans:
            # Table-driven protocols never call plan(); every injected
            # packet follows the minimal next-hop table.
            self._route_total += injected
        if measuring:
            self.measured_injected += injected

    def _counted_plan(self, plan):
        """Wrap ``plan()`` with the routing-decision counters.

        Installed only when the probe is armed, so the telemetry-off
        injection loop runs the bare planner.  A path is *diverted*
        when it is longer than the hop-distance between its endpoint
        routers; routings without distance tables count as minimal.
        """
        dist = self._tele_dist

        def counted(src_router, dst_router, net):
            path = plan(src_router, dst_router, net)
            self._route_total += 1
            if dist is not None and len(path) - 1 > dist[src_router][dst_router]:
                self._route_diverted += 1
            return path

        return counted

    def _phase_switch_allocation(self) -> None:
        net = self.net
        cfg = self.config
        now = self.now
        length = cfg.packet_length
        single = length == 1
        speedup = cfg.speedup
        V = net.num_vcs
        vc_cap = V - 1
        credits = net.credits_flat
        in_order = net.in_order
        inject_pairs = net.inject_pairs
        out_stage = net.out_stage
        pb = net.port_base_list
        port_index = net.port_index
        eject_busy = net.eject_busy_until
        next_port = self._next_port
        routing_next = self.routing.next_hop
        credit_push = self._credit_wheel[
            (now + cfg.credit_delay) % self._credit_horizon
        ].append
        in_window = self._in_window
        lat_push = self.latencies.values.append
        qlat_push = self.queue_latencies.values.append
        deliver_hook = self._deliver_hook
        stage_mask = net.stage_mask
        occ = self._occ  # None unless the queue-occupancy probe is armed
        delivered = 0
        ejected_flits = 0
        # Routers may become inactive; collect removals after the sweep.
        inactive: list[int] = []
        for router in list(net.active_routers):
            # Gather candidate head flits as (rank, seq, key, fifo, pkt):
            # rank packs (inject_time, kind) into one int — oldest
            # first, buffered (kind 0) before injecting (kind 1) — and
            # seq (strictly increasing in scan order, precomputed in
            # the in_order/inject_pairs triples) makes tuples compare
            # without ever reaching the packet, while preserving scan
            # order on rank ties.  The scan order itself (in_order,
            # then endpoints) replicates the seed engine's
            # dict-iteration tie-break.
            requests = [
                (h.rank, s, b, q, h)
                for s, b, q in in_order[router]
                if q and (h := q[0])
            ]
            requests += [
                (h.rank | 1, s, ep, q, h)
                for s, ep, q in inject_pairs[router]
                if q and (h := q[0])
            ]
            if not requests:
                if not stage_mask[router]:
                    inactive.append(router)
                continue
            if len(requests) > 1:
                requests.sort()  # oldest first
            base = pb[router]
            granted = [0] * (pb[router + 1] - base)
            pi = port_index[router]
            for rank, _, key, q, pkt in requests:
                if pkt.dst_router == router:
                    # Ejection: the endpoint link carries 1 flit/cycle,
                    # so an L-flit packet occupies it for L cycles.
                    ep = pkt.dst_endpoint
                    if eject_busy[ep] > now:
                        continue
                    eject_busy[ep] = now + length
                    q.popleft()
                    if occ is not None:
                        occ[router] -= 1
                    if rank & 1:  # injection FIFO: no upstream credits
                        pkt.start_time = now
                    elif single:
                        # Freed slots return upstream, all L at once
                        # (packet-granularity VCT credit return).
                        credit_push(key)
                    else:
                        for _ in range(length):
                            credit_push(key)
                    # Packet complete; tail flit leaves `length` cycles
                    # after the grant.
                    if pkt.measured:
                        delivered += 1
                        lat_push(now + length - pkt.inject_time)
                        qlat_push(pkt.start_time - pkt.inject_time)
                    if in_window:
                        ejected_flits += length
                    if deliver_hook is not None:
                        deliver_hook(pkt)
                    continue
                if next_port is not None:
                    port = next_port[router][pkt.dst_router]
                elif pkt.path is not None:
                    port = pi[pkt.path[pkt.hop + 1]]
                else:
                    port = pi[routing_next(router, pkt.dst_router, pkt, net)]
                g = granted[port]
                if g >= speedup:
                    continue
                hop = pkt.hop
                vc = hop if hop < vc_cap else vc_cap
                c_out = base + port
                b_out = c_out * V + vc
                if credits[b_out] < length:
                    continue  # VCT: the whole packet must fit downstream
                credits[b_out] -= length
                granted[port] = g + 1
                q.popleft()
                if occ is not None:
                    occ[router] -= 1
                if rank & 1:
                    pkt.start_time = now
                elif single:
                    credit_push(key)
                else:
                    for _ in range(length):
                        credit_push(key)
                # Stage the downstream flat-buffer id with the packet:
                # transmission forwards it into the arrival event as-is.
                out_stage[c_out].append((pkt, b_out))
                stage_mask[router] |= 1 << port
            # Router stays active if anything is still buffered/staged.
        self.measured_delivered += delivered
        self.window_ejections += ejected_flits
        active = net.active_routers
        for router in inactive:
            active.discard(router)

    def _phase_transmit(self) -> None:
        net = self.net
        cfg = self.config
        now = self.now
        length = cfg.packet_length
        # Tail flit arrives after serialising the remaining L−1 flits.
        latency = cfg.hop_latency + (length - 1)
        bucket = self._arr_wheel[(now + latency) % self._arr_horizon]
        push = bucket.append
        out_stage = net.out_stage
        pb = net.port_base_list
        chan_dst = net.chan_dst_list
        stage_mask = net.stage_mask
        busy = net.channel_busy_until
        single = length == 1
        trace = self.trace_channels
        sent = 0
        for router in list(net.active_routers):
            mask = stage_mask[router]
            if not mask:
                continue
            base = pb[router]
            remaining = mask
            while mask:  # staged ports only, ascending
                low = mask & -mask
                mask ^= low
                c = base + low.bit_length() - 1
                if not single:
                    if busy[c] > now:
                        continue
                    busy[c] = now + length
                stage = out_stage[c]
                pkt, b_dst = stage.popleft()
                if not stage:
                    remaining ^= low
                nxt = chan_dst[c]
                pkt.hop += 1
                if trace:
                    key = (router, nxt)
                    self.channel_flits[key] = (
                        self.channel_flits.get(key, 0) + length
                    )
                push((b_dst, nxt, pkt))
                sent += 1
            stage_mask[router] = remaining
        self._pending_arrivals += sent

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        warmup, measure = cfg.warmup_cycles, cfg.measure_cycles
        end_measure = warmup + measure
        deadline = end_measure + cfg.drain_cycles
        self._in_window = False

        while True:
            t = self.now
            measuring = warmup <= t < end_measure
            self._in_window = measuring
            self._phase_arrivals()
            if t < end_measure:
                self._phase_injection(measuring)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if self.now >= end_measure:
                drained = self.measured_delivered >= self.measured_injected
                if drained and not self._pending_arrivals and self._all_idle():
                    break
                if drained and self.now >= end_measure + 8:
                    break
                if self.now >= deadline:
                    break

        n_active = max(1, len(self.active_endpoints))
        accepted = self.window_ejections / (n_active * measure) if measure else 0.0
        drained = self.measured_delivered >= self.measured_injected
        # Saturation compares delivery against the traffic actually
        # injected, not the nominal Bernoulli rate: patterns may leave
        # sources idle (self-mapped endpoints in bit permutations), and
        # that structural shortfall is not congestion.
        injected_rate = (
            self.measured_injected
            * self.config.packet_length
            / (n_active * measure)
            if measure
            else 0.0
        )
        saturated = (not drained) or (
            injected_rate > 0 and accepted < 0.95 * injected_rate
        )
        return SimResult(
            offered_load=self.offered_load,
            accepted_load=accepted,
            avg_latency=self.latencies.mean(),
            p99_latency=self.latencies.percentile(99),
            delivered=self.measured_delivered,
            injected=self.measured_injected,
            saturated=saturated,
            cycles=self.now,
            avg_queue_latency=self.queue_latencies.mean(),
            telemetry=self._telemetry_result(),
        )

    def _telemetry_result(self) -> TelemetryResult | None:
        """Assemble armed-probe measurements (None when telemetry is off).

        Everything here is defined identically in the vectorised
        engine: same bin edges, same flat channel numbering, same
        ``flits / cycles`` division — so telemetry-on results compare
        equal across ``cycle`` and ``cycle-vec``.
        """
        tele = self.telemetry
        if tele is None:
            return None
        cycles = self.now
        hist = (
            latency_histogram(self.latencies.values) if tele.latency_hist else None
        )
        channel_flits = channel_load = None
        if tele.channel_flits:
            net = self.net
            pb = net.port_base_list
            pi = net.port_index
            flat = [0] * pb[-1]
            for (u, v), f in self.channel_flits.items():
                flat[pb[u] + pi[u][v]] = f
            channel_flits = tuple(flat)
            channel_load = tuple((f / cycles if cycles else 0.0) for f in flat)
        route_packets = route_diverted = frac = None
        if self._tele_route:
            route_packets = self._route_total
            route_diverted = self._route_diverted
            frac = route_diverted / route_packets if route_packets else 0.0
        return TelemetryResult(
            cycles=cycles,
            latency_hist=hist,
            channel_flits=channel_flits,
            channel_load=channel_load,
            max_queue=tuple(self._occ_max) if self._tele_occ else None,
            route_packets=route_packets,
            route_diverted=route_diverted,
            route_diverted_frac=frac,
        )

    def _all_idle(self) -> bool:
        net = self.net
        for router in net.active_routers:
            if net.stage_mask[router]:
                return False
            for _, _, q in net.in_order[router]:
                if q:
                    return False
        return not any(net.inject_queue)


def simulate(
    topology: Topology,
    routing: RoutingAlgorithm,
    traffic,
    offered_load: float,
    config: SimConfig | None = None,
    telemetry: TelemetrySpec | None = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`SimEngine`."""
    return SimEngine(
        topology, routing, traffic, offered_load, config, telemetry=telemetry
    ).run()


# -- closed-loop (workload) mode ---------------------------------------------


class _NullTraffic:
    """Traffic shim for closed-loop runs: injection is dependency-driven
    (the Bernoulli process never fires at offered load 0), so the
    pattern only answers ``active_endpoints``."""

    name = "closed-loop"
    excludes_self = True

    def active_endpoints(self, topology: Topology) -> list[int]:
        return list(range(topology.num_endpoints))

    def destination(self, src_endpoint: int, rng):  # pragma: no cover
        return None

    def destinations(self, src_endpoints, rng):  # pragma: no cover
        return [None] * len(src_endpoints)


#: Closed-loop cycle cap when the caller does not supply one: far above
#: any healthy completion time at the scales this repo simulates, so it
#: only fires on genuinely stuck runs (which report ``finished=False``).
DEFAULT_MAX_CYCLES = 500_000


class ClosedLoopEngine(SimEngine):
    """Dependency-driven ("closed-loop") variant of the cycle engine.

    Instead of the open-loop Bernoulli process, injection is gated on
    the workload's message DAG: a message becomes *ready* once every
    dependency has completed (tail flit ejected at its destination),
    its flits segment into ``ceil(size / packet_length)`` packets that
    join the source's injection FIFO the following injection phase,
    and per-message ready/completion timestamps are recorded.  The
    network model — switch allocation, VC/credit flow control,
    transmission — is byte-for-byte the open-loop one (the phases are
    inherited, not copied); only injection and the run loop differ,
    which is what keeps the open-loop path bitwise identical to
    :mod:`repro.sim.reference`.

    Closed-loop runs are deterministic by construction for MIN/tables
    (no RNG touched) and per-seed deterministic for stochastic
    protocols (VAL/UGAL draw from the routing RNG in injection order,
    which is fixed by message ids).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        workload,
        config: SimConfig | None = None,
        trace_channels: bool = False,
    ):
        super().__init__(
            topology, routing, _NullTraffic(), 0.0, config, trace_channels
        )
        if hasattr(workload, "messages"):
            msgs = workload.messages()
            self.workload_name = getattr(workload, "name", "workload")
        else:
            msgs = list(workload)
            self.workload_name = "workload"
        self._msgs = {}
        for m in msgs:
            if m.mid in self._msgs:
                raise ValueError(f"duplicate message id {m.mid}")
            if not (0 <= m.src < topology.num_endpoints):
                raise ValueError(f"message {m.mid}: bad source endpoint {m.src}")
            if not (0 <= m.dst < topology.num_endpoints):
                raise ValueError(f"message {m.mid}: bad destination endpoint {m.dst}")
            self._msgs[m.mid] = m
        self.total_messages = len(self._msgs)
        self.completed = 0
        #: Message id -> cycle it became ready / completed.
        self.ready_time: dict[int, int] = {}
        self.completion_time: dict[int, int] = {}
        self._delivered_flits = 0
        self._pending_deps: dict[int, int] = {}
        self._dependents: dict[int, list[int]] = {}
        self._remaining: dict[int, int] = {}
        self._ready: list[int] = []
        #: Dependents whose last dependency completes at a future cycle
        #: (multi-flit tails eject ``packet_length`` cycles after the
        #: grant): release cycle -> message ids.
        self._release: dict[int, list[int]] = {}
        for m in msgs:
            self._pending_deps[m.mid] = len(m.deps)
            for d in m.deps:
                if d not in self._msgs:
                    raise ValueError(f"message {m.mid} depends on unknown id {d}")
                self._dependents.setdefault(d, []).append(m.mid)
            if not m.deps:
                self._ready.append(m.mid)
        self._deliver_hook = self._on_delivered

    # -- dependency bookkeeping -------------------------------------------

    def _complete(self, mid: int, t: int) -> None:
        self.completion_time[mid] = t
        self.completed += 1
        self._delivered_flits += self._msgs[mid].size_flits
        for dep in self._dependents.get(mid, ()):
            left = self._pending_deps[dep] - 1
            self._pending_deps[dep] = left
            if left == 0:
                # A dependent may not inject before the completing
                # tail flit has fully ejected (cycle t).
                if t <= self.now:
                    self._ready.append(dep)
                else:
                    self._release.setdefault(t, []).append(dep)

    def _on_delivered(self, pkt) -> None:
        mid = pkt.msg
        left = self._remaining[mid] - 1
        if left:
            self._remaining[mid] = left
        else:
            del self._remaining[mid]
            # The tail flit leaves the ejection port packet_length
            # cycles after the grant, matching latency accounting.
            self._complete(mid, self.now + self.config.packet_length)

    # -- overridden phases -------------------------------------------------

    def _phase_injection(self, measuring: bool) -> None:
        # Ready messages (dependencies satisfied last cycle or earlier)
        # inject in ascending message-id order — the deterministic
        # stand-in for the open-loop source scan.  Zero-hop messages
        # (src == dst endpoint ranks on the same NIC) complete
        # immediately and may cascade within the phase.
        released = self._release.pop(self.now, None)
        if released:
            self._ready.extend(released)
        if not self._ready:
            return
        net = self.net
        inject = net.inject_queue
        active_add = net.active_routers.add
        emap = self.topology.endpoint_map
        now = self.now
        length = self.config.packet_length
        routing = self.routing
        plan = (
            routing.plan
            if routing.source_routed and self._next_hop is None
            else None
        )
        while self._ready:
            batch = sorted(self._ready)
            self._ready = []
            for mid in batch:
                m = self._msgs[mid]
                self.ready_time[mid] = now
                if m.src == m.dst:
                    self._complete(mid, now)
                    continue
                npkts = -(-m.size_flits // length)
                self._remaining[mid] = npkts
                src_router = emap[m.src]
                dst_router = emap[m.dst]
                queue = inject[m.src]
                for _ in range(npkts):
                    path = (
                        plan(src_router, dst_router, net)
                        if plan is not None
                        else None
                    )
                    pkt = Packet(m.src, m.dst, dst_router, path, now, True)
                    pkt.msg = mid
                    queue.append(pkt)
                active_add(src_router)
                self.measured_injected += npkts

    # -- main loop ---------------------------------------------------------

    def run(self, max_cycles: int | None = None):
        from repro.sim.stats import WorkloadResult

        limit = DEFAULT_MAX_CYCLES if max_cycles is None else max_cycles
        self._in_window = True
        total = self.total_messages
        while self.completed < total and self.now < limit:
            self._phase_arrivals()
            self._phase_injection(True)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if (
                not self._ready
                and not self._release
                and not self._pending_arrivals
                and self.completed < total
                and self._all_idle()
            ):
                # Unsatisfiable dependencies (e.g. a cyclic trace):
                # nothing in flight and nothing ready — report the
                # partial run instead of spinning to the cap.
                break
        lats = [
            self.completion_time[mid] - self.ready_time[mid]
            for mid in self.completion_time
        ]
        mean = float(np.mean(lats)) if lats else float("nan")
        p99 = float(np.percentile(lats, 99)) if lats else float("nan")
        makespan = max(self.completion_time.values(), default=0)
        return WorkloadResult(
            workload=self.workload_name,
            num_messages=total,
            completed_messages=self.completed,
            finished=self.completed == total,
            makespan=makespan,
            # The loop exits at the final grant; the last tail flit is
            # still serialising until `makespan` (> now for multi-flit
            # packets), and bandwidth must count those cycles.
            cycles=max(self.now, makespan),
            delivered_flits=self._delivered_flits,
            avg_message_latency=mean,
            p99_message_latency=p99,
            avg_packet_latency=self.latencies.mean(),
            message_completions=dict(self.completion_time),
            message_ready=dict(self.ready_time),
        )


def simulate_workload(
    topology: Topology,
    routing: RoutingAlgorithm,
    workload,
    config: SimConfig | None = None,
    max_cycles: int | None = None,
):
    """One-shot closed-loop run of a workload's message DAG.

    ``workload`` is a :class:`repro.workloads.base.Workload` or any
    iterable of message records; returns a
    :class:`~repro.sim.stats.WorkloadResult`.
    """
    return ClosedLoopEngine(topology, routing, workload, config).run(max_cycles)
