"""The cycle loop (paper §V methodology), flat-array edition.

Per cycle, in order:

1. **Arrivals** — flits scheduled for this cycle enter downstream
   input buffers; credits scheduled for this cycle are returned.
2. **Injection** — every active endpoint flips a Bernoulli coin at the
   offered load (one vectorised draw per cycle); destinations for the
   injecting sources are drawn in one batch via
   :meth:`repro.traffic.patterns.TrafficPattern.destinations`; new
   packets get their route planned (source-routed protocols) and join
   the endpoint's injection FIFO.  Table-driven protocols (MIN) skip
   per-packet planning entirely: the engine follows the precomputed
   next-hop matrix from :class:`repro.routing.tables.RoutingTables`.
3. **Switch allocation** — per router, head flits of occupied input
   VCs and injection FIFOs request output ports; each output grants up
   to ``speedup`` flits (oldest-first), consuming a downstream credit;
   granted flits move to the output staging queue, their freed input
   slot schedules a credit return upstream (after ``credit_delay``).
   Flits terminating here request their endpoint's ejection port
   (one flit per endpoint per cycle) instead.
4. **Transmission** — every non-empty output stage sends one flit onto
   its channel; it arrives ``hop_latency`` cycles later.

Events live in fixed-size ring-buffer wheels (modulo-horizon buckets)
instead of the seed engine's ``dict[int, list]`` maps: no event is
ever scheduled further ahead than ``hop_latency + packet_length``
cycles, so a wheel of that many buckets indexed by ``cycle % horizon``
replaces unbounded dict churn with two list operations.

The engine is bitwise identical to the frozen seed implementation in
:mod:`repro.sim.reference` for any seed and routing algorithm — the
RNG draw order, request tie-breaks and event orderings are all
preserved (see DESIGN.md, "Determinism contract") — while running
several times faster.

Warmup packets are simulated but not measured; measurement covers
packets injected during the window, and the run continues (up to
``drain_cycles``) until those packets are delivered.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimConfig
from repro.sim.network import SimNetwork
from repro.sim.packet import Packet
from repro.sim.stats import LatencyAccumulator, SimResult
from repro.topologies.base import Topology
from repro.util.rng import make_rng


class SimEngine:
    """Drives one simulation run."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic,
        offered_load: float,
        config: SimConfig | None = None,
        trace_channels: bool = False,
    ):
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.offered_load = float(offered_load)
        self.config = config or SimConfig()
        #: Optional per-channel flit counters ((u, v) -> flits sent),
        #: for hot-link analyses like the Fig 9 worst-case diagnosis.
        self.trace_channels = trace_channels
        self.channel_flits: dict[tuple[int, int], int] = {}
        if self.config.num_vcs < routing.num_vcs:
            # Honour the routing algorithm's deadlock-freedom demand.
            self.config = self.config.with_vcs(routing.num_vcs)
        self.net = SimNetwork(topology, self.config)
        self.rng = make_rng(self.config.seed)

        self.now = 0
        # Ring-buffer event wheels (fixed modulo-horizon buckets).  The
        # farthest arrival is hop_latency + packet_length - 1 cycles
        # out, the farthest credit credit_delay cycles out.
        self._arr_horizon = self.config.hop_latency + self.config.packet_length
        self._arr_wheel: list[list] = [[] for _ in range(self._arr_horizon)]
        self._credit_horizon = self.config.credit_delay + 1
        self._credit_wheel: list[list] = [[] for _ in range(self._credit_horizon)]
        #: In-flight flit arrivals (the drain check needs "none pending").
        self._pending_arrivals = 0

        #: Precomputed next-hop matrix for table-driven routing (MIN):
        #: plain nested lists, the fastest container for the hot loop.
        #: ``_next_port`` resolves straight to the output port index,
        #: sparing the allocation loop a neighbour-id dict lookup.
        self._next_hop: list[list[int]] | None = None
        self._next_port: list[list[int]] | None = None
        if getattr(routing, "table_driven", False):
            self._next_hop = routing.next_hop_table().tolist()
            self._next_port = [
                [pi[v] if v != u else -1 for v in row]
                for u, (row, pi) in enumerate(zip(self._next_hop, self.net.port_index))
            ]

        self.active_endpoints = list(traffic.active_endpoints(topology))
        self._active_eps_arr = (
            np.asarray(self.active_endpoints) if self.active_endpoints else None
        )
        self._endpoint_router_arr = np.asarray(topology.endpoint_map)
        self.measured_injected = 0
        self.measured_delivered = 0
        self.window_ejections = 0
        self.latencies = LatencyAccumulator()
        self.queue_latencies = LatencyAccumulator()
        self._in_window = False

    # -- cycle phases ------------------------------------------------------

    def _phase_arrivals(self) -> None:
        net = self.net
        active = net.active_routers
        slot = self.now % self._arr_horizon
        bucket = self._arr_wheel[slot]
        if bucket:
            self._arr_wheel[slot] = []
            self._pending_arrivals -= len(bucket)
            in_fifo = net.in_fifo
            in_order = net.in_order
            seen = net._in_seen
            for b, dst, pkt in bucket:
                fifo = in_fifo[b]
                if not seen[b]:
                    seen[b] = 1
                    order = in_order[dst]
                    order.append((len(order), b, fifo))
                fifo.append(pkt)
                active.add(dst)
        slot = self.now % self._credit_horizon
        bucket = self._credit_wheel[slot]
        if bucket:
            self._credit_wheel[slot] = []
            credits = net.credits_flat
            buf_src = net.buf_src_list
            for b in bucket:
                credits[b] += 1
                active.add(buf_src[b])

    def _phase_injection(self, measuring: bool) -> None:
        # Offered load is in flits/cycle/endpoint; with L-flit packets
        # the packet-generation probability scales down by L.
        load = self.offered_load / self.config.packet_length
        if load <= 0.0 or self._active_eps_arr is None:
            return
        coins = self.rng.random(len(self.active_endpoints)) < load
        if not coins.any():
            return
        srcs = self._active_eps_arr[coins]
        dsts = self.traffic.destinations(srcs, self.rng)
        routing = self.routing
        plan = (
            routing.plan
            if routing.source_routed and self._next_hop is None
            else None
        )
        net = self.net
        inject = net.inject_queue
        active_add = net.active_routers.add
        now = self.now
        injected = 0
        if isinstance(dsts, np.ndarray):
            # Vectorised patterns return an array with no idle slots;
            # endpoint -> router lookups batch through numpy too, and
            # packets are built by direct slot stores (a Python-level
            # __init__ frame per flit is measurable at this rate).
            emap_arr = self._endpoint_router_arr
            src_routers = emap_arr[srcs].tolist()
            dst_routers = emap_arr[dsts].tolist()
            skip_self = not getattr(self.traffic, "excludes_self", False)
            new = Packet.__new__
            rank = now << 1
            for src, dst, src_router, dst_router in zip(
                srcs.tolist(), dsts.tolist(), src_routers, dst_routers
            ):
                if skip_self and dst == src:
                    continue
                pkt = new(Packet)
                pkt.src_endpoint = src
                pkt.dst_endpoint = dst
                pkt.dst_router = dst_router
                pkt.path = (
                    plan(src_router, dst_router, net) if plan is not None else None
                )
                pkt.hop = 0
                pkt.inject_time = now
                pkt.start_time = now
                pkt.measured = measuring
                pkt.rank = rank
                injected += 1
                inject[src].append(pkt)
                active_add(src_router)
        else:
            emap = self.topology.endpoint_map
            for src, dst in zip(srcs.tolist(), dsts):
                if dst is None or dst == src:
                    continue
                src_router = emap[src]
                dst_router = emap[dst]
                path = plan(src_router, dst_router, net) if plan is not None else None
                pkt = Packet(src, dst, dst_router, path, now, measuring)
                injected += 1
                inject[src].append(pkt)
                active_add(src_router)
        if measuring:
            self.measured_injected += injected

    def _phase_switch_allocation(self) -> None:
        net = self.net
        cfg = self.config
        now = self.now
        length = cfg.packet_length
        single = length == 1
        speedup = cfg.speedup
        V = net.num_vcs
        vc_cap = V - 1
        credits = net.credits_flat
        in_order = net.in_order
        inject_pairs = net.inject_pairs
        out_stage = net.out_stage
        pb = net.port_base_list
        port_index = net.port_index
        eject_busy = net.eject_busy_until
        next_port = self._next_port
        routing_next = self.routing.next_hop
        credit_push = self._credit_wheel[
            (now + cfg.credit_delay) % self._credit_horizon
        ].append
        in_window = self._in_window
        lat_push = self.latencies.values.append
        qlat_push = self.queue_latencies.values.append
        stage_mask = net.stage_mask
        delivered = 0
        ejected_flits = 0
        # Routers may become inactive; collect removals after the sweep.
        inactive: list[int] = []
        for router in list(net.active_routers):
            # Gather candidate head flits as (rank, seq, key, fifo, pkt):
            # rank packs (inject_time, kind) into one int — oldest
            # first, buffered (kind 0) before injecting (kind 1) — and
            # seq (strictly increasing in scan order, precomputed in
            # the in_order/inject_pairs triples) makes tuples compare
            # without ever reaching the packet, while preserving scan
            # order on rank ties.  The scan order itself (in_order,
            # then endpoints) replicates the seed engine's
            # dict-iteration tie-break.
            requests = [
                (h.rank, s, b, q, h)
                for s, b, q in in_order[router]
                if q and (h := q[0])
            ]
            requests += [
                (h.rank | 1, s, ep, q, h)
                for s, ep, q in inject_pairs[router]
                if q and (h := q[0])
            ]
            if not requests:
                if not stage_mask[router]:
                    inactive.append(router)
                continue
            if len(requests) > 1:
                requests.sort()  # oldest first
            base = pb[router]
            granted = [0] * (pb[router + 1] - base)
            pi = port_index[router]
            for rank, _, key, q, pkt in requests:
                if pkt.dst_router == router:
                    # Ejection: the endpoint link carries 1 flit/cycle,
                    # so an L-flit packet occupies it for L cycles.
                    ep = pkt.dst_endpoint
                    if eject_busy[ep] > now:
                        continue
                    eject_busy[ep] = now + length
                    q.popleft()
                    if rank & 1:  # injection FIFO: no upstream credits
                        pkt.start_time = now
                    elif single:
                        # Freed slots return upstream, all L at once
                        # (packet-granularity VCT credit return).
                        credit_push(key)
                    else:
                        for _ in range(length):
                            credit_push(key)
                    # Packet complete; tail flit leaves `length` cycles
                    # after the grant.
                    if pkt.measured:
                        delivered += 1
                        lat_push(now + length - pkt.inject_time)
                        qlat_push(pkt.start_time - pkt.inject_time)
                    if in_window:
                        ejected_flits += length
                    continue
                if next_port is not None:
                    port = next_port[router][pkt.dst_router]
                elif pkt.path is not None:
                    port = pi[pkt.path[pkt.hop + 1]]
                else:
                    port = pi[routing_next(router, pkt.dst_router, pkt, net)]
                g = granted[port]
                if g >= speedup:
                    continue
                hop = pkt.hop
                vc = hop if hop < vc_cap else vc_cap
                c_out = base + port
                b_out = c_out * V + vc
                if credits[b_out] < length:
                    continue  # VCT: the whole packet must fit downstream
                credits[b_out] -= length
                granted[port] = g + 1
                q.popleft()
                if rank & 1:
                    pkt.start_time = now
                elif single:
                    credit_push(key)
                else:
                    for _ in range(length):
                        credit_push(key)
                # Stage the downstream flat-buffer id with the packet:
                # transmission forwards it into the arrival event as-is.
                out_stage[c_out].append((pkt, b_out))
                stage_mask[router] |= 1 << port
            # Router stays active if anything is still buffered/staged.
        self.measured_delivered += delivered
        self.window_ejections += ejected_flits
        active = net.active_routers
        for router in inactive:
            active.discard(router)

    def _phase_transmit(self) -> None:
        net = self.net
        cfg = self.config
        now = self.now
        length = cfg.packet_length
        # Tail flit arrives after serialising the remaining L−1 flits.
        latency = cfg.hop_latency + (length - 1)
        bucket = self._arr_wheel[(now + latency) % self._arr_horizon]
        push = bucket.append
        out_stage = net.out_stage
        pb = net.port_base_list
        chan_dst = net.chan_dst_list
        stage_mask = net.stage_mask
        busy = net.channel_busy_until
        single = length == 1
        trace = self.trace_channels
        sent = 0
        for router in list(net.active_routers):
            mask = stage_mask[router]
            if not mask:
                continue
            base = pb[router]
            remaining = mask
            while mask:  # staged ports only, ascending
                low = mask & -mask
                mask ^= low
                c = base + low.bit_length() - 1
                if not single:
                    if busy[c] > now:
                        continue
                    busy[c] = now + length
                stage = out_stage[c]
                pkt, b_dst = stage.popleft()
                if not stage:
                    remaining ^= low
                nxt = chan_dst[c]
                pkt.hop += 1
                if trace:
                    key = (router, nxt)
                    self.channel_flits[key] = self.channel_flits.get(key, 0) + 1
                push((b_dst, nxt, pkt))
                sent += 1
            stage_mask[router] = remaining
        self._pending_arrivals += sent

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        warmup, measure = cfg.warmup_cycles, cfg.measure_cycles
        end_measure = warmup + measure
        deadline = end_measure + cfg.drain_cycles
        self._in_window = False

        while True:
            t = self.now
            measuring = warmup <= t < end_measure
            self._in_window = measuring
            self._phase_arrivals()
            if t < end_measure:
                self._phase_injection(measuring)
            self._phase_switch_allocation()
            self._phase_transmit()
            self.now += 1
            if self.now >= end_measure:
                drained = self.measured_delivered >= self.measured_injected
                if drained and not self._pending_arrivals and self._all_idle():
                    break
                if drained and self.now >= end_measure + 8:
                    break
                if self.now >= deadline:
                    break

        n_active = max(1, len(self.active_endpoints))
        accepted = self.window_ejections / (n_active * measure) if measure else 0.0
        drained = self.measured_delivered >= self.measured_injected
        # Saturation compares delivery against the traffic actually
        # injected, not the nominal Bernoulli rate: patterns may leave
        # sources idle (self-mapped endpoints in bit permutations), and
        # that structural shortfall is not congestion.
        injected_rate = (
            self.measured_injected
            * self.config.packet_length
            / (n_active * measure)
            if measure
            else 0.0
        )
        saturated = (not drained) or (
            injected_rate > 0 and accepted < 0.95 * injected_rate
        )
        return SimResult(
            offered_load=self.offered_load,
            accepted_load=accepted,
            avg_latency=self.latencies.mean(),
            p99_latency=self.latencies.percentile(99),
            delivered=self.measured_delivered,
            injected=self.measured_injected,
            saturated=saturated,
            cycles=self.now,
            avg_queue_latency=self.queue_latencies.mean(),
        )

    def _all_idle(self) -> bool:
        net = self.net
        for router in net.active_routers:
            if net.stage_mask[router]:
                return False
            for _, _, q in net.in_order[router]:
                if q:
                    return False
        return not any(net.inject_queue)


def simulate(
    topology: Topology,
    routing: RoutingAlgorithm,
    traffic,
    offered_load: float,
    config: SimConfig | None = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`SimEngine`."""
    return SimEngine(topology, routing, traffic, offered_load, config).run()
