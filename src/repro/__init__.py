"""repro — a reproduction of "Slim Fly: A Cost Effective Low-Diameter
Network Topology" (Besta & Hoefler, SC 2014).

The package implements the paper's contribution (MMS-graph Slim Fly
topologies) together with every substrate its evaluation depends on:
finite fields, baseline topologies, structural/resiliency analysis,
routing algorithms with deadlock-freedom machinery, a cycle-based
flit-level simulator, physical layout, and cost/power models.

Quickstart
----------
>>> from repro import SlimFly
>>> sf = SlimFly.from_q(5)          # Hoffman-Singleton-based Slim Fly
>>> sf.num_routers, sf.network_radix, sf.concentration
(50, 7, 4)
>>> sf.diameter()
2

See ``examples/`` for end-to-end scenarios and
``python -m repro.experiments --list`` for the paper's tables/figures.
"""

from repro._version import __version__

# Public API re-exports are appended as subsystems come online; import
# lazily where possible to keep `import repro` light.
from repro.galois import GaloisField

__all__ = ["__version__", "GaloisField"]


def __getattr__(name):
    """Lazy re-exports of the heavyweight public API."""
    if name in {"SlimFly", "MMSGraph"}:
        from repro.topologies.slimfly import SlimFly
        from repro.core.mms import MMSGraph

        return {"SlimFly": SlimFly, "MMSGraph": MMSGraph}[name]
    if name == "Topology":
        from repro.topologies.base import Topology

        return Topology
    if name == "moore_bound":
        from repro.core.moore import moore_bound

        return moore_bound
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
