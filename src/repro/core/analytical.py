"""Analytical performance model: closed-form latency/throughput estimates.

The paper's simulations are backed by simple queueing-free reasoning:
zero-load latency follows hop counts; saturation throughput follows
channel load (§II-B2).  This module packages those estimates so users
can sanity-check simulator output and sweep design spaces without
simulating — the same role the paper's balanced-concentration algebra
plays.

All estimates are *idealised* (no contention below saturation, perfect
load balance at it); the test-suite cross-validates them against the
cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balance import channel_load
from repro.sim.config import SimConfig
from repro.topologies.base import Topology


@dataclass(frozen=True)
class PerformanceEstimate:
    """Closed-form predictions for one (topology, routing) pair."""

    zero_load_latency_cycles: float
    saturation_load: float
    average_hops: float


def zero_load_latency(
    average_hops: float, config: SimConfig | None = None
) -> float:
    """Injection + hops×pipeline + ejection, in cycles."""
    cfg = config or SimConfig()
    return 1.0 + average_hops * cfg.hop_latency + 1.0


def uniform_saturation_load(topology: Topology, average_hops: float | None = None) -> float:
    """Uniform-traffic saturation estimate for minimal routing.

    Channel-load argument (§II-B2): each endpoint at rate r generates
    ``r · h̄`` channel traversals spread over k'·N_r directed channels;
    saturation when the average channel hits 1 flit/cycle:

        r_sat = k' · N_r / (h̄ · p · N_r) = k' / (h̄ · p)

    capped at 1.0 (injection line rate).  For a balanced Slim Fly this
    lands at ≈0.9 — matching the measured ~87.5% (§V-E) within the
    idealisation error.
    """
    if average_hops is None:
        average_hops = topology.average_distance()
    p = topology.concentration
    k = topology.network_radix
    if p == 0:
        return 1.0
    return min(1.0, k / (average_hops * p))


def valiant_saturation_load(topology: Topology) -> float:
    """VAL doubles expected path length: ≈ half the minimal saturation."""
    avg = topology.average_distance()
    return min(1.0, uniform_saturation_load(topology, average_hops=2 * avg))


def estimate(topology: Topology, routing: str = "min", config: SimConfig | None = None) -> PerformanceEstimate:
    """Bundle the closed-form numbers for MIN or VAL routing."""
    avg = topology.average_distance()
    if routing == "min":
        sat = uniform_saturation_load(topology, avg)
        hops = avg
    elif routing == "val":
        hops = 2 * avg
        sat = uniform_saturation_load(topology, average_hops=hops)
    else:
        raise ValueError(f"routing must be 'min' or 'val', got {routing!r}")
    return PerformanceEstimate(
        zero_load_latency_cycles=zero_load_latency(hops, config),
        saturation_load=sat,
        average_hops=hops,
    )


def slimfly_channel_load_at(q: int, concentration: int) -> float:
    """The §II-B2 channel-load l for a given SF configuration."""
    from repro.core.mms import MMSParams

    params = MMSParams.from_q(q)
    return channel_load(params.num_routers, params.network_radix, concentration)
