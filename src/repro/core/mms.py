"""McKay–Miller–Širáň (MMS) graphs — the basis of Slim Fly (paper §II-B).

Construction (paper §II-B1, following Hafner's algebraic description):

1. Pick a prime power ``q = 4w + δ`` with ``δ ∈ {−1, 0, +1}``.
2. Find a primitive element ξ of GF(q).
3. Build two symmetric *generator sets* X, X' ⊂ GF(q)*:

   - δ = +1:  X = even powers of ξ (the quadratic residues),
              X' = odd powers (the non-residues);
   - δ =  0:  (characteristic 2) X = {ξ^{2i} : 0 ≤ i < q/2},
              X' = ξ·X;
   - δ = −1:  X = {±ξ^{2i} : 0 ≤ i < (q+1)/4}, X' = ξ·X.

   In every case |X| = |X'| = (q−δ)/2 and X ∪ X' ⊇ GF(q)*, which is
   what makes the diameter come out as 2 (see the verification in
   :meth:`MMSGraph.validate`).

4. Vertices are {0,1} × GF(q) × GF(q).  Edges (Eq. (1)–(3)):

   - (0, x, y) ~ (0, x, y')  iff  y − y' ∈ X;
   - (1, m, c) ~ (1, m, c')  iff  c − c' ∈ X';
   - (0, x, y) ~ (1, m, c)   iff  y = m·x + c.

The result is a k'-regular graph with k' = (3q − δ)/2, N_r = 2q²
vertices, and diameter 2 — within ~12% of the Moore bound.

Vertex labelling: vertex (s, a, b) has integer id ``s·q² + a·q + b``.
Subgraph-0 vertices are ids [0, q²); subgraph-1 vertices are
[q², 2q²).  Group (s, a) — one column of q routers — is the modular
building block used by the physical layout (§VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.galois.field import GaloisField
from repro.galois.primes import is_prime_power
from repro.galois.primitive import primitive_element


def mms_delta(q: int) -> int | None:
    """Return δ ∈ {−1, 0, +1} such that q = 4w + δ, or ``None``.

    ``q ≡ 2 (mod 4)`` admits no MMS graph (the only such prime power
    is 2, and w would be 0); all other prime powers do.
    """
    r = q % 4
    if r == 1:
        return 1
    if r == 0:
        return 0
    if r == 3:
        return -1
    return None


def valid_mms_q(q: int) -> bool:
    """True iff an MMS graph exists for ``q`` (prime power, q ≢ 2 mod 4, q ≥ 3)."""
    if q < 3:
        return False
    return is_prime_power(q) is not None and mms_delta(q) is not None


def mms_q_values(limit: int) -> list[int]:
    """All valid MMS parameters q ≤ limit, ascending."""
    return [q for q in range(3, limit + 1) if valid_mms_q(q)]


@dataclass(frozen=True)
class MMSParams:
    """Closed-form parameters of the MMS graph for a given q."""

    q: int
    delta: int
    network_radix: int  # k' = (3q - delta) / 2
    num_routers: int  # N_r = 2 q^2

    @staticmethod
    def from_q(q: int) -> "MMSParams":
        delta = mms_delta(q)
        if delta is None or not valid_mms_q(q):
            raise ValueError(
                f"q={q} is not a valid MMS parameter (need a prime power "
                f"q = 4w + delta, delta in {{-1, 0, 1}}, q >= 3)"
            )
        return MMSParams(
            q=q,
            delta=delta,
            network_radix=(3 * q - delta) // 2,
            num_routers=2 * q * q,
        )


class MMSGraph:
    """A constructed MMS graph: adjacency plus algebraic metadata.

    Attributes
    ----------
    q, delta:
        The defining prime power and its residue class.
    field:
        The :class:`~repro.galois.field.GaloisField` GF(q).
    xi:
        The primitive element used for the generator sets.
    X, Xp:
        Generator sets (frozensets of field-element labels).
    adjacency:
        ``list[list[int]]`` neighbour lists, vertex ids as described in
        the module docstring.  Neighbour lists are sorted.
    """

    def __init__(self, q: int, validate: bool = True, xi: int | None = None):
        params = MMSParams.from_q(q)
        self.q = q
        self.delta = params.delta
        self.network_radix = params.network_radix
        self.num_routers = params.num_routers
        self.field = GaloisField.get(q)
        if xi is None:
            self.xi = primitive_element(self.field)
        else:
            from repro.galois.primitive import is_primitive

            if not is_primitive(self.field, xi):
                raise ValueError(f"{xi} is not a primitive element of GF({q})")
            self.xi = xi
        self.X, self.Xp = self._generator_sets()
        if validate:
            self._validate_generator_sets()
        self.adjacency = self._build_adjacency()

    # -- algebra ---------------------------------------------------------

    def _generator_sets(self) -> tuple[frozenset[int], frozenset[int]]:
        """Build X and X' per the δ-specific formulas (Hafner / §II-B1)."""
        f, xi, q, delta = self.field, self.xi, self.q, self.delta
        if delta == 1:
            # X: even powers (quadratic residues); X': odd powers.
            count = (q - 1) // 2
            X = {f.power(xi, 2 * i) for i in range(count)}
            Xp = {f.power(xi, 2 * i + 1) for i in range(count)}
        elif delta == 0:
            # Characteristic 2; q/2 even powers (exponents mod q-1 wrap
            # an odd modulus, so these q/2 values are distinct).
            count = q // 2
            X = {f.power(xi, 2 * i) for i in range(count)}
            Xp = {f.mul(xi, x) for x in X}
        else:  # delta == -1
            w = (q + 1) // 4
            half = [f.power(xi, 2 * i) for i in range(w)]
            X = {h for h in half} | {f.neg(h) for h in half}
            Xp = {f.mul(xi, x) for x in X}
        return frozenset(X), frozenset(Xp)

    def _validate_generator_sets(self) -> None:
        """Structural invariants the construction's correctness rests on."""
        f, q, delta = self.field, self.q, self.delta
        expected = (q - delta) // 2
        if len(self.X) != expected or len(self.Xp) != expected:
            raise AssertionError(
                f"generator set size mismatch for q={q}: "
                f"|X|={len(self.X)}, |X'|={len(self.Xp)}, expected {expected}"
            )
        if 0 in self.X or 0 in self.Xp:
            raise AssertionError("generator sets must not contain 0")
        for S in (self.X, self.Xp):
            for s in S:
                if f.neg(s) not in S:
                    raise AssertionError(
                        f"generator set not symmetric for q={q}: {s} in S "
                        f"but -{s}={f.neg(s)} not"
                    )
        union = self.X | self.Xp
        if len(union) < q - 1:
            raise AssertionError(
                f"X ∪ X' must cover GF({q})*: covers only {len(union)} of {q - 1}"
            )

    # -- vertex labelling --------------------------------------------------

    def vertex_id(self, s: int, a: int, b: int) -> int:
        """(subgraph, column, row) -> integer vertex id."""
        return s * self.q * self.q + a * self.q + b

    def vertex_label(self, v: int) -> tuple[int, int, int]:
        """Integer vertex id -> (subgraph, column, row)."""
        q = self.q
        s, rest = divmod(v, q * q)
        a, b = divmod(rest, q)
        return s, a, b

    def group_of(self, v: int) -> tuple[int, int]:
        """The (subgraph, column) group a vertex belongs to (layout unit)."""
        s, a, _ = self.vertex_label(v)
        return s, a

    # -- construction --------------------------------------------------------

    def _build_adjacency(self) -> list[list[int]]:
        q, f = self.q, self.field
        n = 2 * q * q
        adj: list[list[int]] = [[] for _ in range(n)]

        # Eq. (1): (0, x, y) ~ (0, x, y') iff y - y' in X.
        # Eq. (2): (1, m, c) ~ (1, m, c') iff c - c' in X'.
        for s, gen in ((0, self.X), (1, self.Xp)):
            base = s * q * q
            for a in range(q):
                col = base + a * q
                for b in range(q):
                    vb = col + b
                    for d in gen:
                        b2 = f.add(b, d)
                        if b2 > b:  # add each undirected edge once
                            adj[vb].append(col + b2)
                            adj[col + b2].append(vb)

        # Eq. (3): (0, x, y) ~ (1, m, c) iff y = m*x + c.
        for x in range(q):
            col0 = x * q
            for m in range(q):
                col1 = q * q + m * q
                mx = f.mul(m, x)
                for c in range(q):
                    y = f.add(mx, c)
                    adj[col0 + y].append(col1 + c)
                    adj[col1 + c].append(col0 + y)

        for lst in adj:
            lst.sort()
        return adj

    # -- exports ---------------------------------------------------------

    def edges(self) -> list[tuple[int, int]]:
        """All undirected edges as (u, v) with u < v."""
        out = []
        for u, nbrs in enumerate(self.adjacency):
            for v in nbrs:
                if v > u:
                    out.append((u, v))
        return out

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with label attributes."""
        import networkx as nx

        g = nx.Graph()
        for v in range(self.num_routers):
            s, a, b = self.vertex_label(v)
            g.add_node(v, subgraph=s, column=a, row=b)
        g.add_edges_from(self.edges())
        return g

    def degree_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for nbrs in self.adjacency:
            hist[len(nbrs)] = hist.get(len(nbrs), 0) + 1
        return hist

    def validate(self) -> None:
        """Full structural validation: regularity and diameter 2.

        Cost is O(N_r * E); fine for the catalogue sizes, used by tests
        and available to cautious callers.
        """
        k = self.network_radix
        for v, nbrs in enumerate(self.adjacency):
            if len(nbrs) != k:
                raise AssertionError(
                    f"vertex {v} has degree {len(nbrs)}, expected {k}"
                )
            if len(set(nbrs)) != len(nbrs):
                raise AssertionError(f"vertex {v} has duplicate edges")
            if v in nbrs:
                raise AssertionError(f"vertex {v} has a self-loop")
        from repro.analysis.distance import diameter_and_average_distance

        diam, _ = diameter_and_average_distance(self.adjacency)
        if diam != 2:
            raise AssertionError(f"MMS graph q={self.q} has diameter {diam}, not 2")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MMSGraph(q={self.q}, delta={self.delta:+d}, "
            f"Nr={self.num_routers}, k'={self.network_radix})"
        )
