"""The library of practical Slim Fly configurations (paper §VII-A).

The paper ships "a library of practical topologies with different
degrees and network sizes that can readily be used to construct
efficient Slim Fly networks".  This module regenerates that library
from the construction itself: for every valid q it lists the balanced
configuration (q, δ, N_r, k', p, k, N), and provides search helpers
(find a Slim Fly for a desired endpoint count or router radix).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balance import balanced_concentration
from repro.core.mms import MMSParams, mms_q_values


@dataclass(frozen=True)
class SlimFlyConfig:
    """One catalogue row: the balanced Slim Fly for a given q."""

    q: int
    delta: int
    num_routers: int  # N_r = 2 q^2
    network_radix: int  # k'
    concentration: int  # p (balanced unless stated otherwise)
    router_radix: int  # k = k' + p
    num_endpoints: int  # N = p * N_r

    @staticmethod
    def from_q(q: int, concentration: int | None = None) -> "SlimFlyConfig":
        params = MMSParams.from_q(q)
        p = (
            concentration
            if concentration is not None
            else balanced_concentration(params.num_routers, params.network_radix)
        )
        return SlimFlyConfig(
            q=q,
            delta=params.delta,
            num_routers=params.num_routers,
            network_radix=params.network_radix,
            concentration=p,
            router_radix=params.network_radix + p,
            num_endpoints=p * params.num_routers,
        )


def slimfly_catalog(max_endpoints: int = 200_000) -> list[SlimFlyConfig]:
    """All balanced Slim Fly configurations with N ≤ max_endpoints."""
    out = []
    q = 3
    while True:
        if 2 * q * q > max_endpoints:  # even p=1 would overshoot soon
            break
        if q in set(mms_q_values(q)):
            cfg = SlimFlyConfig.from_q(q)
            if cfg.num_endpoints <= max_endpoints:
                out.append(cfg)
        q += 1
    return out


def find_slimfly_for_endpoints(
    target_endpoints: int, max_q: int = 200
) -> SlimFlyConfig:
    """The balanced Slim Fly whose N is closest to ``target_endpoints``."""
    best = None
    for q in mms_q_values(max_q):
        cfg = SlimFlyConfig.from_q(q)
        if best is None or abs(cfg.num_endpoints - target_endpoints) < abs(
            best.num_endpoints - target_endpoints
        ):
            best = cfg
    if best is None:
        raise ValueError("no Slim Fly configuration found (max_q too small?)")
    return best


def find_slimfly_for_radix(router_radix: int, max_q: int = 200) -> SlimFlyConfig:
    """The largest balanced Slim Fly buildable with routers of radix ≤ k."""
    best = None
    for q in mms_q_values(max_q):
        cfg = SlimFlyConfig.from_q(q)
        if cfg.router_radix <= router_radix:
            if best is None or cfg.num_endpoints > best.num_endpoints:
                best = cfg
    if best is None:
        raise ValueError(
            f"no Slim Fly fits router radix {router_radix} (need k >= 8)"
        )
    return best
