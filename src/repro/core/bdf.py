"""Bermond–Delorme–Farhi (BDF) diameter-3 constructions (paper §II-C1).

The paper uses BDF graphs as one of two diameter-3 Slim Fly families.
Three artefacts are provided:

1. **Closed forms** — ``N_r = (8/27)k'³ − (4/9)k'² + (2/3)k'`` for
   ``k' = 3(u+1)/2`` with u an odd prime power.  These regenerate the
   Fig 5b data points exactly (that figure is the only place the paper
   exercises BDF).
2. **The projective-plane polarity graph P_u** — vertices are the
   points of PG(2, u); M_i ~ M_j iff M_j lies on the line D_i that a
   polarity assigns to M_i.  Realised concretely as the Erdős–Rényi
   polarity graph: vertices are the u² + u + 1 one-dimensional
   subspaces of GF(u)³ and two are adjacent iff their representatives
   are orthogonal.  P_u has diameter 2 and degree u + 1 (u + 1
   self-orthogonal points have degree u after loop removal).
3. **The * product** (generic graph operator) and a best-effort
   ``bdf_graph`` assembly P_u * G, where G is a searched partner graph
   with the paper's "property P*".  The closed-form N_r corresponds to
   |G| = u + 1 with degree (u+1)/2.
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.galois.field import GaloisField
from repro.galois.primes import is_prime_power


# ---------------------------------------------------------------------------
# Closed forms (used by Fig 5b)
# ---------------------------------------------------------------------------

def bdf_network_radix(u: int) -> int:
    """k' = 3(u+1)/2 for odd prime power u."""
    if u % 2 == 0 or is_prime_power(u) is None:
        raise ValueError(f"u must be an odd prime power, got {u}")
    return 3 * (u + 1) // 2


def bdf_num_routers(network_radix: int) -> float:
    """N_r(k') = (8/27)k'³ − (4/9)k'² + (2/3)k' (paper §II-C).

    Returns a float because the formula is evaluated on a continuous
    k' sweep in Fig 5b; for k' = 3(u+1)/2 it equals the integer
    (u+1)(u² + u + 1).
    """
    k = network_radix
    return (8 / 27) * k**3 - (4 / 9) * k**2 + (2 / 3) * k


def bdf_params(u: int) -> tuple[int, int]:
    """(N_r, k') for odd prime power u: ((u+1)(u²+u+1), 3(u+1)/2)."""
    k = bdf_network_radix(u)
    nr = (u + 1) * (u * u + u + 1)
    return nr, k


def bdf_u_values(limit: int) -> list[int]:
    """Odd prime powers u with k' = 3(u+1)/2 <= limit."""
    out = []
    u = 3
    while 3 * (u + 1) // 2 <= limit:
        if u % 2 == 1 and is_prime_power(u) is not None:
            out.append(u)
        u += 2
    return out


# ---------------------------------------------------------------------------
# The projective-plane polarity graph P_u
# ---------------------------------------------------------------------------

def _projective_points(field: GaloisField) -> list[tuple[int, int, int]]:
    """Canonical representatives of the points of PG(2, u).

    Normal form: first nonzero coordinate equals 1, scanning (x0, x1, x2).
    There are u² + u + 1 of them.
    """
    u = field.q
    points = [(1, a, b) for a in range(u) for b in range(u)]
    points += [(0, 1, b) for b in range(u)]
    points.append((0, 0, 1))
    return points


def polarity_graph(u: int) -> list[list[int]]:
    """The Erdős–Rényi polarity graph P_u as adjacency lists.

    M_i ~ M_j iff ⟨M_i, M_j⟩ = 0 over GF(u) (the standard conic
    polarity x ↦ x^⊥).  Loops (self-orthogonal points) are dropped, so
    u + 1 vertices have degree u and the rest degree u + 1; diameter 2.
    """
    if is_prime_power(u) is None:
        raise ValueError(f"u must be a prime power, got {u}")
    f = GaloisField.get(u)
    points = _projective_points(f)
    n = len(points)
    adj: list[list[int]] = [[] for _ in range(n)]
    for i, j in combinations(range(n), 2):
        a, b = points[i], points[j]
        dot = 0
        for t in range(3):
            dot = f.add(dot, f.mul(a[t], b[t]))
        if dot == 0:
            adj[i].append(j)
            adj[j].append(i)
    for lst in adj:
        lst.sort()
    return adj


# ---------------------------------------------------------------------------
# The * product and property P*
# ---------------------------------------------------------------------------

def star_product(
    adj1: list[list[int]],
    adj2: list[list[int]],
    arc_maps=None,
) -> list[list[int]]:
    """The * product G1 * G2 of §II-C1a.

    Vertices are pairs (a1, a2) with id ``a1 * |V2| + a2``.
    (a1, a2) ~ (b1, b2) iff either

    - ``a1 == b1`` and {a2, b2} is an edge of G2, or
    - (a1, b1) is an arc of G1 (one fixed orientation per edge) and
      ``b2 == f_{(a1,b1)}(a2)`` for the arc's one-to-one map.

    ``arc_maps`` maps each arc (a1, b1) — with a1 < b1, the canonical
    orientation — to a permutation of V2 given as a list.  Defaults to
    the identity for every arc.
    """
    n1, n2 = len(adj1), len(adj2)
    if arc_maps is None:
        arc_maps = {}
    identity = list(range(n2))
    out: list[list[int]] = [[] for _ in range(n1 * n2)]

    # Intra-copy edges from G2.
    for a1 in range(n1):
        base = a1 * n2
        for a2 in range(n2):
            for b2 in adj2[a2]:
                if b2 > a2:
                    out[base + a2].append(base + b2)
                    out[base + b2].append(base + a2)

    # Cross edges along arcs of G1.
    for a1 in range(n1):
        for b1 in adj1[a1]:
            if b1 <= a1:
                continue
            fmap = arc_maps.get((a1, b1), identity)
            for a2 in range(n2):
                b2 = fmap[a2]
                out[a1 * n2 + a2].append(b1 * n2 + b2)
                out[b1 * n2 + b2].append(a1 * n2 + a2)

    for lst in out:
        lst.sort()
    return out


def has_property_pstar(adj: list[list[int]], involution: list[int]) -> bool:
    """Check BDF property P* for a candidate involution f.

    ``V = {v} ∪ {f(v)} ∪ f(Γ(v)) ∪ Γ(f(v))`` must hold for every v,
    and the graph must have diameter ≤ 2.
    """
    n = len(adj)
    for v in range(n):
        fv = involution[v]
        cover = {v, fv}
        cover.update(involution[w] for w in adj[v])
        cover.update(adj[fv])
        if len(cover) != n:
            return False
    # Diameter <= 2 check.
    for v in range(n):
        reach = {v} | set(adj[v])
        for w in adj[v]:
            reach.update(adj[w])
        if len(reach) != n:
            return False
    return True


def find_pstar_graph(n: int, degree: int, max_candidates: int = 200000):
    """Search for an n-vertex, degree-``degree`` graph with property P*.

    Searches circulant graphs (vertex i ~ i ± s for s in a connection
    set) and all involutions of the form v ↦ v + t and v ↦ t − v; these
    symmetric candidates suffice for the small partner graphs the BDF
    assembly needs.  Returns ``(adjacency, involution)`` or ``None``.
    """
    if degree >= n:
        return None
    half = [s for s in range(1, n // 2 + 1)]
    # Connection sets: choose `degree` arcs worth of generators.  A
    # generator s < n/2 contributes 2 to the degree; s == n/2 (n even)
    # contributes 1.
    def degree_of(conn: tuple[int, ...]) -> int:
        return sum(1 if 2 * s == n else 2 for s in conn)

    tried = 0
    for r in range(1, len(half) + 1):
        for conn in combinations(half, r):
            if degree_of(conn) != degree:
                continue
            tried += 1
            if tried > max_candidates:
                return None
            adj: list[list[int]] = [[] for _ in range(n)]
            for v in range(n):
                for s in conn:
                    adj[v].append((v + s) % n)
                    if 2 * s != n:
                        adj[v].append((v - s) % n)
            adj = [sorted(set(x)) for x in adj]
            for t in range(n):
                shift = [(v + t) % n for v in range(n)]
                refl = [(t - v) % n for v in range(n)]
                for cand in (shift, refl):
                    if all(cand[cand[v]] == v for v in range(n)):
                        if has_property_pstar(adj, cand):
                            return adj, cand
    return None


def bdf_graph(u: int):
    """Best-effort constructive BDF graph P_u * G for odd prime power u.

    Assembles the * product of the polarity graph P_u with a searched
    property-P* partner graph on u + 1 vertices of degree (u+1)/2.
    Returns the adjacency lists.  The measured diameter is asserted to
    be ≤ 4 (the BDF paper's arc-map choices guarantee 3; with identity
    arc maps some u give 3 and some 4 — callers that need the exact
    diameter should measure it).  The closed-form N_r/k' used by the
    experiments does not depend on this assembly.
    """
    nr_expected, k_expected = bdf_params(u)
    p_u = polarity_graph(u)
    partner = find_pstar_graph(u + 1, (u + 1) // 2)
    if partner is None:
        raise RuntimeError(
            f"no property-P* partner graph found for u={u}; "
            "use bdf_params for the closed-form sizes"
        )
    g2, _ = partner
    product = star_product(p_u, g2)
    if len(product) != nr_expected:
        raise AssertionError(
            f"BDF size mismatch for u={u}: {len(product)} != {nr_expected}"
        )
    return product
