"""Delorme (DEL) diameter-3 graph parameters (paper §II-C).

Delorme graphs achieve ≈68% of the D=3 Moore bound — the best of the
families the paper cites.  The paper uses them *only* as data points in
Fig 5b, through the closed forms

    N_r = (v + 1)² (v² + 1)²       k' = (v + 1)²

for a prime power v.  The underlying construction (compounds over
generalized quadrangles) is out of scope of the paper and of this
reproduction; see DESIGN.md §2.
"""

from __future__ import annotations

from repro.galois.primes import is_prime_power


def delorme_network_radix(v: int) -> int:
    """k' = (v + 1)² for prime power v."""
    if is_prime_power(v) is None:
        raise ValueError(f"v must be a prime power, got {v}")
    return (v + 1) ** 2


def delorme_num_routers(v: int) -> int:
    """N_r = (v + 1)²(v² + 1)² for prime power v."""
    if is_prime_power(v) is None:
        raise ValueError(f"v must be a prime power, got {v}")
    return (v + 1) ** 2 * (v * v + 1) ** 2


def delorme_configs(max_radix: int) -> list[tuple[int, int, int]]:
    """All (v, N_r, k') with k' ≤ max_radix, ascending in v."""
    out = []
    v = 2
    while (v + 1) ** 2 <= max_radix:
        if is_prime_power(v) is not None:
            out.append((v, delorme_num_routers(v), delorme_network_radix(v)))
        v += 1
    return out


def delorme_moore_fraction(v: int) -> float:
    """Fraction of MB(k', 3) achieved — ≈0.68 for the plotted range."""
    from repro.core.moore import moore_bound_diameter3

    return delorme_num_routers(v) / moore_bound_diameter3(delorme_network_radix(v))
