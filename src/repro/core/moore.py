"""Moore-bound utilities (paper §II-A).

The Moore bound is the maximum number of vertices a graph of maximum
degree k' and diameter D can have:

    MB(k', D) = 1 + k' * sum_{i=0}^{D-1} (k' - 1)**i

The paper uses it as the optimality yardstick for router counts: a
diameter-D network of radix-k' routers can contain at most MB(k', D)
routers.  Figures 5a and 5b plot constructions against MB for D = 2
and D = 3.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int


def moore_bound(network_radix: int, diameter: int) -> int:
    """MB(k', D): max vertices for degree ``network_radix``, diameter ``diameter``."""
    k = check_positive_int(network_radix, "network_radix")
    d = check_positive_int(diameter, "diameter")
    if k == 1:
        return 2  # a single edge
    total = 1
    term = k
    for _ in range(d):
        total += term
        term *= k - 1
    return total


def moore_bound_diameter2(network_radix: int) -> int:
    """MB(k', 2) = 1 + k'^2 — the diameter-2 specialisation used in Fig 5a."""
    k = check_positive_int(network_radix, "network_radix")
    return 1 + k * k


def moore_bound_diameter3(network_radix: int) -> int:
    """MB(k', 3) = 1 + k' + k'(k'−1) + k'(k'−1)^2 — used in Fig 5b."""
    return moore_bound(network_radix, 3)


def moore_fraction(num_routers: int, network_radix: int, diameter: int) -> float:
    """Fraction of the Moore bound achieved by a concrete construction.

    The percentages annotated in Figs 5a/5b (e.g. SF MMS ≈ 88% for
    D=2, Dragonfly ≈ 14% for D=3) are exactly this ratio.
    """
    return num_routers / moore_bound(network_radix, diameter)


def max_endpoints(network_radix: int, diameter: int, concentration: int) -> int:
    """Upper bound on endpoints N for a (k', D) network with p endpoints/router."""
    return moore_bound(network_radix, diameter) * check_positive_int(
        concentration, "concentration"
    )
