"""Channel load and balanced concentration (paper §II-B2, §V-E).

The paper derives the number of endpoints per router p (the
*concentration*) that gives full global bandwidth.  With minimal
routing and uniform all-to-all traffic, the average load per channel is

    l = (2·N_r − k' − 2) · p² / k'            (routes per channel)

and the network is *balanced* when every endpoint can inject at full
capacity, i.e. ``p·N_r = l``, which yields

    p = k' · N_r / (2·N_r − k' − 2)  ≈  ⌈k'/2⌉.

Networks with larger p are *oversubscribed* (§V-E): they connect more
endpoints but can only accept a fraction of uniform traffic.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def channel_load(num_routers: int, network_radix: int, concentration: int) -> float:
    """Average number of minimal routes crossing one channel (paper formula).

    ``l = (k' + 2·(N_r − k' − 1)) · p² · N_r / (k'·N_r)`` simplified to
    ``(2·N_r − k' − 2)·p²/k'``.
    """
    nr = check_positive_int(num_routers, "num_routers")
    k = check_positive_int(network_radix, "network_radix")
    p = check_positive_int(concentration, "concentration")
    return (2 * nr - k - 2) * p * p / k


def balanced_concentration(num_routers: int, network_radix: int) -> int:
    """The p that achieves full global bandwidth: ``⌈k'·N_r/(2N_r−k'−2)⌉``.

    For diameter-2 MMS graphs this evaluates to ⌈k'/2⌉ (≈ 33% of ports
    to endpoints, 67% to the network), matching §II-B2.
    """
    nr = check_positive_int(num_routers, "num_routers")
    k = check_positive_int(network_radix, "network_radix")
    exact = k * nr / (2 * nr - k - 2)
    return max(1, math.ceil(exact))


def is_balanced(num_routers: int, network_radix: int, concentration: int) -> bool:
    """True iff injection bandwidth does not exceed network capacity.

    A network is balanced when the per-endpoint injection the channels
    can sustain, ``N_r·k' / ((2N_r−k'−2)·p)``, is at least the line
    rate — equivalently p ≤ balanced p.
    """
    return concentration <= balanced_concentration(num_routers, network_radix)


def saturation_load_estimate(
    num_routers: int, network_radix: int, concentration: int
) -> float:
    """Analytic upper bound on accepted uniform load (fraction of line rate).

    The network saturates when the busiest-on-average channel is fully
    utilised; with uniform traffic that happens at offered load
    ``min(1, p_balanced_exact / p)``.  Used to sanity-check the §V-E
    oversubscription simulations (e.g. full-bandwidth SF accepts ~87%,
    p=16 ~80%, p=18 ~75% — ratios match this estimate's shape).
    """
    nr = check_positive_int(num_routers, "num_routers")
    k = check_positive_int(network_radix, "network_radix")
    p = check_positive_int(concentration, "concentration")
    exact = k * nr / (2 * nr - k - 2)
    return min(1.0, exact / p)


def oversubscription_factor(
    num_routers: int, network_radix: int, concentration: int
) -> float:
    """p divided by the balanced p (1.0 = full bandwidth, >1 oversubscribed)."""
    return concentration / balanced_concentration(num_routers, network_radix)
