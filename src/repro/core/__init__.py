"""The paper's primary contribution: Slim Fly graph constructions.

- :mod:`repro.core.moore` — Moore-bound utilities (§II-A).
- :mod:`repro.core.mms` — McKay–Miller–Širáň diameter-2 graphs (§II-B),
  the basis of SF MMS.
- :mod:`repro.core.balance` — channel load / balanced concentration
  analysis (§II-B2) and oversubscription helpers (§V-E).
- :mod:`repro.core.bdf` — Bermond–Delorme–Farhi diameter-3 graphs
  (§II-C1): projective-plane polarity graphs, the * product, and the
  closed-form size formulas.
- :mod:`repro.core.delorme` — Delorme diameter-3 graph parameter
  formulas (§II-C).
- :mod:`repro.core.catalog` — the library of practical Slim Fly
  configurations the paper ships (§VII-A).
"""

from repro.core.moore import moore_bound, moore_bound_diameter2, moore_bound_diameter3
from repro.core.mms import MMSGraph, mms_delta, valid_mms_q, mms_q_values
from repro.core.balance import (
    balanced_concentration,
    channel_load,
    is_balanced,
    oversubscription_factor,
)
from repro.core.bdf import (
    bdf_num_routers,
    bdf_network_radix,
    polarity_graph,
    star_product,
    bdf_graph,
)
from repro.core.delorme import delorme_num_routers, delorme_network_radix, delorme_configs
from repro.core.catalog import slimfly_catalog, find_slimfly_for_endpoints

__all__ = [
    "moore_bound",
    "moore_bound_diameter2",
    "moore_bound_diameter3",
    "MMSGraph",
    "mms_delta",
    "valid_mms_q",
    "mms_q_values",
    "balanced_concentration",
    "channel_load",
    "is_balanced",
    "oversubscription_factor",
    "bdf_num_routers",
    "bdf_network_radix",
    "polarity_graph",
    "star_product",
    "bdf_graph",
    "delorme_num_routers",
    "delorme_network_radix",
    "delorme_configs",
    "slimfly_catalog",
    "find_slimfly_for_endpoints",
]
