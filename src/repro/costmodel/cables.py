"""Cable cost models (paper §VI-B1, Figs 11a/12a/13a).

Cost is quoted in $ per Gb/s as a linear function of length in meters;
a cable's dollar price is ``rate_gbps × f(length)``.  The paper prints
the linear fits only for Mellanox IB FDR10 40 Gb/s QSFP:

    electric: f(x) = 0.4079·x + 0.5771   [$ / Gb/s]
    optical:  f(x) = 0.0919·x + 2.7452   [$ / Gb/s]

and states that the other products it considered (Mellanox IB QDR
56 Gb/s, Mellanox Ethernet 40/10 Gb/s, Elpeus Ethernet 10 Gb/s) change
the final relative costs by only ≈1–2%.  Those coefficient sets are
not printed, so the entries below marked ``estimated=True`` are
eyeballed from Figs 12a/13a (same crossover structure: electric
cheaper short, optical cheaper long); the FDR10 set is exact.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinearFit:
    """f(length) = slope·length + intercept, in $ per Gb/s."""

    slope: float
    intercept: float

    def __call__(self, length_m: float) -> float:
        return self.slope * length_m + self.intercept


@dataclass(frozen=True)
class CableCostModel:
    """One cable product: electric + optical fits at a data rate."""

    name: str
    rate_gbps: float
    electric: LinearFit
    optical: LinearFit
    estimated: bool = False

    def electric_cost(self, length_m: float) -> float:
        """Dollar cost of one electric cable of the given length."""
        return self.rate_gbps * self.electric(length_m)

    def optical_cost(self, length_m: float) -> float:
        """Dollar cost of one optical cable of the given length."""
        return self.rate_gbps * self.optical(length_m)

    def crossover_length(self) -> float:
        """Length at which optical becomes cheaper than electric."""
        ds = self.electric.slope - self.optical.slope
        if ds <= 0:
            return float("inf")
        return (self.optical.intercept - self.electric.intercept) / ds


#: The paper's exact FDR10 model plus estimated alternates (Figs 12/13).
CABLE_MODELS: dict[str, CableCostModel] = {
    "mellanox-fdr10": CableCostModel(
        name="Mellanox IB FDR10 40Gb/s QSFP",
        rate_gbps=40.0,
        electric=LinearFit(0.4079, 0.5771),
        optical=LinearFit(0.0919, 2.7452),
        estimated=False,
    ),
    "mellanox-qdr56": CableCostModel(
        name="Mellanox IB QDR 56Gb/s QSFP",
        rate_gbps=56.0,
        electric=LinearFit(0.36, 0.50),
        optical=LinearFit(0.085, 2.40),
        estimated=True,
    ),
    "mellanox-eth40": CableCostModel(
        name="Mellanox Ethernet 40Gb/s QSFP",
        rate_gbps=40.0,
        electric=LinearFit(0.42, 0.60),
        optical=LinearFit(0.095, 2.90),
        estimated=True,
    ),
    "mellanox-eth10": CableCostModel(
        name="Mellanox Ethernet 10Gb/s SFP+",
        rate_gbps=10.0,
        electric=LinearFit(0.85, 1.10),
        optical=LinearFit(0.22, 5.60),
        estimated=True,
    ),
    "elpeus-eth10": CableCostModel(
        name="Elpeus Ethernet 10Gb/s SFP+",
        rate_gbps=10.0,
        electric=LinearFit(0.80, 1.00),
        optical=LinearFit(0.20, 5.00),
        estimated=True,
    ),
}

DEFAULT_CABLE_MODEL = "mellanox-fdr10"


def get_cable_model(name: str = DEFAULT_CABLE_MODEL) -> CableCostModel:
    try:
        return CABLE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown cable model {name!r}; choose from {sorted(CABLE_MODELS)}"
        ) from None
