"""The Table IV case study: cost and power per node, 14 configurations.

Three comparison groups, exactly as the paper lays them out:

1. **Low-radix** topologies with N comparable to the 10,830-endpoint
   Slim Fly: T3D (22³), T5D (8·6·6·6·6 = 10,368), HC (2¹³), LH-HC (2¹³).
2. **High-radix, comparable N**: FT-3 (k=35), DLN (k=28, DF-sized),
   FBF-3 (c=10), DF (k=27 balanced).
3. **High-radix, same radix k≈43**: FT-3, DLN, FBF-3, DF (balanced,
   N=58,806), DF (the paper's exhaustive-search variant with
   a=22, h=11, p=11, g=45, N=10,890) — and the Slim Fly itself (q=19).

Counts follow the §VI-B3 closed forms (`repro.costmodel.counts`);
EXPERIMENTS.md records our numbers against the paper's column by
column.  Known deviations: the paper's FBF-3 radix bookkeeping and its
DLN concentrations don't follow its own formulas (DESIGN.md §6); where
they conflict we keep the paper's N_r/N/p and compute k from the
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.cables import DEFAULT_CABLE_MODEL
from repro.costmodel.cost import CostReport, analytic_network_cost
from repro.costmodel.counts import (
    AnalyticCounts,
    dln_counts,
    dragonfly_counts,
    fattree_counts,
    flattened_butterfly_counts,
    hypercube_counts,
    longhop_counts,
    slimfly_counts,
    torus_counts,
)
from repro.costmodel.power import power_per_endpoint


@dataclass(frozen=True)
class CaseStudyRow:
    """One Table IV column, reproduced."""

    group: str
    counts: AnalyticCounts
    cost: CostReport
    power_per_node_w: float

    @property
    def cost_per_node(self) -> float:
        return self.cost.cost_per_endpoint


def _row(group: str, counts: AnalyticCounts, cable_model: str) -> CaseStudyRow:
    cost = analytic_network_cost(counts, cable_model=cable_model)
    return CaseStudyRow(
        group=group,
        counts=counts,
        cost=cost,
        power_per_node_w=power_per_endpoint(
            counts.num_routers, counts.router_radix, counts.num_endpoints
        ),
    )


def table4_rows(cable_model: str = DEFAULT_CABLE_MODEL) -> list[CaseStudyRow]:
    """All fourteen Table IV configurations in paper order."""
    rows: list[CaseStudyRow] = []
    low = "low-radix"
    rows.append(_row(low, torus_counts((22, 22, 22)), cable_model))
    rows.append(_row(low, torus_counts((8, 6, 6, 6, 6)), cable_model))
    rows.append(_row(low, hypercube_counts(13), cable_model))
    rows.append(_row(low, longhop_counts(13, extra_ports=6), cable_model))

    same_n = "high-radix comparable-N"
    rows.append(_row(same_n, fattree_counts(35 / 2), cable_model))
    rows.append(
        _row(same_n, dln_counts(num_routers=1386, router_radix=28, p=7), cable_model)
    )
    rows.append(_row(same_n, flattened_butterfly_counts(10), cable_model))
    rows.append(_row(same_n, dragonfly_counts(h=7), cable_model))

    same_k = "high-radix same-k"
    rows.append(_row(same_k, fattree_counts(43 / 2), cable_model))
    rows.append(
        _row(same_k, dln_counts(num_routers=4020, router_radix=43, p=10), cable_model)
    )
    rows.append(_row(same_k, flattened_butterfly_counts(12), cable_model))
    rows.append(_row(same_k, dragonfly_counts(h=11), cable_model))
    rows.append(
        _row(same_k, dragonfly_counts(h=11, a=22, p=11, g=45), cable_model)
    )
    rows.append(_row(same_k, slimfly_counts(19), cable_model))
    return rows


#: Paper Table IV reference values for EXPERIMENTS.md ("$/node", "W/node").
PAPER_TABLE4 = {
    # name, group: (cost_per_node, power_per_node)
    ("T3D", "low-radix"): (1682, 19.6),
    ("T5D", "low-radix"): (3176, 30.8),
    ("HC", "low-radix"): (4631, 39.2),
    ("LH-HC", "low-radix"): (6481, 53.2),
    ("FT-3", "high-radix comparable-N"): (2315, 14.0),
    ("DLN", "high-radix comparable-N"): (1566, 11.2),
    ("FBF-3", "high-radix comparable-N"): (1535, 10.8),
    ("DF", "high-radix comparable-N"): (1342, 10.8),
    ("FT-3", "high-radix same-k"): (2346, 14.0),
    ("DLN", "high-radix same-k"): (1743, 12.04),
    ("FBF-3", "high-radix same-k"): (1570, 10.8),
    ("DF", "high-radix same-k"): (1438, 10.9),
    ("DF2", "high-radix same-k"): (1365, 10.9),
    ("SF", "high-radix same-k"): (1033, 8.02),
}
