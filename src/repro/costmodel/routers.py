"""Router cost model (paper §VI-B2, Figs 11b/12b/13b).

Router price is modelled as linear in the radix — the router chip is
development-cost dominated while SerDes scale with ports.  The paper's
fit for Mellanox IB FDR10 gear:

    f(k) = 350.4·k − 892.3   [$]

The Ethernet variant the paper also tested (≈1% relative difference)
is provided as an estimated alternative.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RouterCostModel:
    """price(k) = per_port·k + base, floored at a minimal sane price."""

    name: str
    per_port: float
    base: float
    estimated: bool = False

    def cost(self, radix: int) -> float:
        if radix < 1:
            raise ValueError(f"radix must be >= 1, got {radix}")
        return max(self.per_port * radix + self.base, self.per_port)


ROUTER_MODELS: dict[str, RouterCostModel] = {
    "mellanox-fdr10": RouterCostModel(
        name="Mellanox IB FDR10", per_port=350.4, base=-892.3, estimated=False
    ),
    "mellanox-eth": RouterCostModel(
        name="Mellanox Ethernet 10/40Gb", per_port=340.0, base=-850.0, estimated=True
    ),
}

DEFAULT_ROUTER_MODEL = "mellanox-fdr10"


def get_router_model(name: str = DEFAULT_ROUTER_MODEL) -> RouterCostModel:
    try:
        return ROUTER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown router model {name!r}; choose from {sorted(ROUTER_MODELS)}"
        ) from None


def router_cost(radix: int, model: str = DEFAULT_ROUTER_MODEL) -> float:
    """Dollar price of one radix-k router under the named model."""
    return get_router_model(model).cost(radix)
