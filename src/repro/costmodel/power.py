"""Energy model (paper §VI-C, Figs 11d/12d/13d).

"Each router port has 4 lanes and there is one SerDes per lane
consuming ≈0.7 watts" — total network power is therefore

    P = N_r · k · 4 · 0.7  [W]

and the per-node figures of Table IV divide by N.  Slim Fly's
advantage comes purely from needing fewer routers (and thus SerDes)
for the same endpoint count.
"""

from __future__ import annotations

#: SerDes lanes per router port.
LANES_PER_PORT = 4
#: Watts per SerDes lane.
WATTS_PER_SERDES = 0.7


def network_power_watts(num_routers: int, router_radix: int) -> float:
    """Total interconnect power for N_r radix-k routers."""
    if num_routers < 0 or router_radix < 0:
        raise ValueError("router count and radix must be non-negative")
    return num_routers * router_radix * LANES_PER_PORT * WATTS_PER_SERDES


def power_per_endpoint(
    num_routers: int, router_radix: int, num_endpoints: int
) -> float:
    """Watts per attached endpoint (Table IV's 'Power per node')."""
    if num_endpoints <= 0:
        raise ValueError("need at least one endpoint")
    return network_power_watts(num_routers, router_radix) / num_endpoints
