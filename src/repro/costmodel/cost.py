"""Total network cost (paper §VI-B, Figs 11c/12c/13c, Table IV).

Two evaluation paths:

- :func:`network_cost` — exact: walks the constructed topology's edges
  with a concrete rack layout, pricing every cable at its measured
  Manhattan length (this is what Table IV's reproduction uses for SF
  and DLN, the two topologies the paper itself measured rather than
  derived).
- :func:`analytic_network_cost` — from closed-form
  :class:`~repro.costmodel.counts.AnalyticCounts` (the Fig 11c sweep
  path, matching the paper's own methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.cables import DEFAULT_CABLE_MODEL, get_cable_model
from repro.costmodel.counts import AnalyticCounts
from repro.costmodel.routers import DEFAULT_ROUTER_MODEL, get_router_model
from repro.layout.racks import RackAssignment, racks_for
from repro.topologies.base import Topology


@dataclass(frozen=True)
class CostReport:
    """Itemised network cost in dollars."""

    name: str
    num_endpoints: int
    num_routers: int
    router_radix: int
    electric_cables: float
    fiber_cables: float
    router_cost: float
    electric_cost: float
    fiber_cost: float
    endpoint_cable_cost: float

    @property
    def cable_cost(self) -> float:
        return self.electric_cost + self.fiber_cost + self.endpoint_cable_cost

    @property
    def total_cost(self) -> float:
        return self.router_cost + self.cable_cost

    @property
    def cost_per_endpoint(self) -> float:
        return self.total_cost / self.num_endpoints if self.num_endpoints else 0.0


def network_cost(
    topology: Topology,
    racks: RackAssignment | None = None,
    cable_model: str = DEFAULT_CABLE_MODEL,
    router_model: str = DEFAULT_ROUTER_MODEL,
    include_endpoint_cables: bool = True,
) -> CostReport:
    """Exact cost of a constructed topology under a rack layout."""
    cables = get_cable_model(cable_model)
    routers = get_router_model(router_model)
    racks = racks if racks is not None else racks_for(topology)

    electric_count = fiber_count = 0
    electric_cost = fiber_cost = 0.0
    for u, v in topology.edges():
        length = racks.cable_length(u, v)
        if racks.is_intra_rack(u, v):
            electric_count += 1
            electric_cost += cables.electric_cost(length)
        else:
            fiber_count += 1
            fiber_cost += cables.optical_cost(length)

    endpoint_cost = 0.0
    if include_endpoint_cables:
        endpoint_cost = topology.num_endpoints * cables.electric_cost(1.0)

    return CostReport(
        name=topology.name,
        num_endpoints=topology.num_endpoints,
        num_routers=topology.num_routers,
        router_radix=topology.router_radix,
        electric_cables=electric_count,
        fiber_cables=fiber_count,
        router_cost=topology.num_routers * routers.cost(topology.router_radix),
        electric_cost=electric_cost,
        fiber_cost=fiber_cost,
        endpoint_cable_cost=endpoint_cost,
    )


def analytic_network_cost(
    counts: AnalyticCounts,
    cable_model: str = DEFAULT_CABLE_MODEL,
    router_model: str = DEFAULT_ROUTER_MODEL,
    include_endpoint_cables: bool = True,
) -> CostReport:
    """Cost from closed-form counts (the paper's sweep methodology)."""
    cables = get_cable_model(cable_model)
    routers = get_router_model(router_model)
    endpoint_cost = (
        counts.endpoint_cables * cables.electric_cost(counts.endpoint_length_m)
        if include_endpoint_cables
        else 0.0
    )
    return CostReport(
        name=counts.name,
        num_endpoints=counts.num_endpoints,
        num_routers=counts.num_routers,
        router_radix=counts.router_radix,
        electric_cables=counts.electric_cables,
        fiber_cables=counts.fiber_cables,
        router_cost=counts.num_routers * routers.cost(counts.router_radix),
        electric_cost=counts.electric_cables
        * cables.electric_cost(counts.electric_length_m),
        fiber_cost=counts.fiber_cables * cables.optical_cost(counts.fiber_length_m),
        endpoint_cable_cost=endpoint_cost,
    )
