"""Closed-form cable/router counts per topology (paper §VI-B3).

The paper's cost sweeps (Figs 11c–13c) evaluate each topology family
at its natural sizes from formulas, not constructed graphs.  This
module encodes those formulas:

- **Tori** (a): folded, electric only — n·N_r cables of ≈2 m.
- **HC / LH-HC** (b): racks of 2^g routers; the low g dimensions stay
  electric in-rack, higher dimensions (and Long-Hop extra links) run
  on fiber between racks.
- **Fat tree** (c): the classic k-ary model with p = k/2 — 5p² routers,
  2p³ fiber core↔aggregation + 2p³ fiber aggregation↔edge (≈1 m runs,
  central row), 2p³ electric endpoint links.
- **Flattened butterfly** (d): p routers per rack-group, p² groups in
  a square; intra-group electric, p fiber cables between co-row/column
  groups.
- **Dragonfly / DLN** (e): a(a−1)/2 electric per group, one fiber per
  group pair (DF); DLN keeps the rack size but places cables randomly,
  so the intra-rack (electric) share is the random expectation.
- **Slim Fly** (§VI-A): q racks of 2q routers; intra-rack cables are
  the two subgroups' Cayley edges plus the q cross links, everything
  else is fiber with 2q cables between every rack pair.

Fiber lengths use the near-square rack grid's mean Manhattan distance
plus the 2 m overhead; electric runs are the 1 m intra-rack mean
(2 m for folded tori).

Endpoint links (one electric ≈1 m cable per endpoint) are counted for
every topology uniformly; Table IV in the paper is not consistent
about them across columns (see DESIGN.md §6), so
:class:`AnalyticCounts` keeps them in a separate field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.mms import MMSParams, mms_q_values
from repro.layout.placement import (
    GLOBAL_CABLE_OVERHEAD_M,
    INTRA_RACK_LENGTH_M,
    average_manhattan,
)


@dataclass(frozen=True)
class AnalyticCounts:
    """Everything the cost/power models need about one configuration."""

    name: str
    num_endpoints: int
    num_routers: int
    router_radix: int
    electric_cables: float
    electric_length_m: float
    fiber_cables: float
    fiber_length_m: float
    endpoint_cables: float
    endpoint_length_m: float = INTRA_RACK_LENGTH_M

    @property
    def total_cables(self) -> float:
        return self.electric_cables + self.fiber_cables


def _fiber_length(num_racks: int) -> float:
    return average_manhattan(max(1, num_racks)) + GLOBAL_CABLE_OVERHEAD_M


# ---------------------------------------------------------------------------
# Per-family formulas
# ---------------------------------------------------------------------------

def torus_counts(dims: tuple[int, ...], concentration: int = 1) -> AnalyticCounts:
    nr = math.prod(dims)
    n_dims = len(dims)
    cables = sum(nr if d > 2 else nr // 2 for d in dims)  # size-2 dims: single link
    return AnalyticCounts(
        name=f"T{n_dims}D",
        num_endpoints=nr * concentration,
        num_routers=nr,
        router_radix=2 * n_dims + concentration,
        electric_cables=cables,
        electric_length_m=2.0,  # folded torus, max in-rack Manhattan run
        fiber_cables=0,
        fiber_length_m=0.0,
        endpoint_cables=nr * concentration,
    )


def hypercube_counts(
    n_dims: int, concentration: int = 1, rack_dims: int = 5
) -> AnalyticCounts:
    nr = 1 << n_dims
    g = min(n_dims, rack_dims)  # 2^g routers per rack
    racks = nr >> g
    electric = nr * g // 2
    fiber = nr * (n_dims - g) // 2
    return AnalyticCounts(
        name="HC",
        num_endpoints=nr * concentration,
        num_routers=nr,
        router_radix=n_dims + concentration,
        electric_cables=electric,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=fiber,
        fiber_length_m=_fiber_length(racks),
        endpoint_cables=nr * concentration,
    )


def longhop_counts(
    n_dims: int,
    extra_ports: int | None = None,
    concentration: int = 1,
    rack_dims: int = 5,
) -> AnalyticCounts:
    from repro.topologies.longhop import default_extra_ports

    ell = default_extra_ports(n_dims) if extra_ports is None else extra_ports
    base = hypercube_counts(n_dims, concentration, rack_dims)
    nr = base.num_routers
    racks = nr >> min(n_dims, rack_dims)
    # Long-hop matchings have weight >= 3 masks: inter-rack fiber.
    return AnalyticCounts(
        name="LH-HC",
        num_endpoints=base.num_endpoints,
        num_routers=nr,
        router_radix=base.router_radix + ell,
        electric_cables=base.electric_cables,
        electric_length_m=base.electric_length_m,
        fiber_cables=base.fiber_cables + nr * ell // 2,
        fiber_length_m=_fiber_length(racks),
        endpoint_cables=base.endpoint_cables,
    )


def fattree_counts(p: float) -> AnalyticCounts:
    """The paper's classic FT-3 model with possibly fractional p = k/2."""
    nr = 5 * p * p
    n = 2 * p**3
    return AnalyticCounts(
        name="FT-3",
        num_endpoints=round(n),
        num_routers=round(nr),
        router_radix=round(2 * p),
        electric_cables=0,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=4 * p**3,  # 2p³ core↔agg + 2p³ agg↔edge, ≈1 m runs
        fiber_length_m=INTRA_RACK_LENGTH_M + GLOBAL_CABLE_OVERHEAD_M,
        endpoint_cables=2 * p**3,  # < 20 m -> electric
    )


def flattened_butterfly_counts(c: int, levels: int = 3) -> AnalyticCounts:
    if levels != 3:
        raise ValueError("the paper's cost model covers FBF-3 only")
    nr = c**3
    groups = c * c
    electric = groups * c * (c - 1) // 2
    fiber = nr * (c - 1)  # dims 2+3: c³(c−1)/2 links each … total c³(c−1)
    return AnalyticCounts(
        name="FBF-3",
        num_endpoints=c**4,
        num_routers=nr,
        router_radix=4 * c - 3,
        electric_cables=electric,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=fiber,
        fiber_length_m=_fiber_length(groups),
        endpoint_cables=c**4,
    )


def dragonfly_counts(
    h: int, a: int | None = None, p: int | None = None, g: int | None = None
) -> AnalyticCounts:
    a = 2 * h if a is None else a
    p = h if p is None else p
    g = a * h + 1 if g is None else g
    electric = g * a * (a - 1) // 2
    fiber = g * (g - 1) // 2
    return AnalyticCounts(
        name="DF",
        num_endpoints=a * p * g,
        num_routers=a * g,
        router_radix=p + h + a - 1,
        electric_cables=electric,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=fiber,
        fiber_length_m=_fiber_length(g),
        endpoint_cables=a * p * g,
    )


def dln_counts(num_routers: int, router_radix: int, p: int | None = None) -> AnalyticCounts:
    p = max(1, math.isqrt(router_radix)) if p is None else p
    degree = router_radix - p
    total = num_routers * degree / 2
    rack = max(2, round(degree))  # DF-like group size
    racks = max(1, round(num_routers / rack))
    intra_fraction = (rack - 1) / max(1, num_routers - 1)
    electric = total * intra_fraction
    return AnalyticCounts(
        name="DLN",
        num_endpoints=num_routers * p,
        num_routers=num_routers,
        router_radix=router_radix,
        electric_cables=electric,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=total - electric,
        fiber_length_m=_fiber_length(racks),
        endpoint_cables=num_routers * p,
    )


def slimfly_counts(q: int, concentration: int | None = None) -> AnalyticCounts:
    from repro.core.balance import balanced_concentration

    params = MMSParams.from_q(q)
    k_net, nr, delta = params.network_radix, params.num_routers, params.delta
    p = (
        balanced_concentration(nr, k_net)
        if concentration is None
        else concentration
    )
    total = nr * k_net // 2
    # Intra-rack: both subgroups' Cayley edges + q cross links, per rack.
    gen_size = (q - delta) // 2
    electric = q * (q * gen_size + q)  # q racks × (q·(|X|+|X'|)/2 + q)
    return AnalyticCounts(
        name="SF",
        num_endpoints=nr * p,
        num_routers=nr,
        router_radix=k_net + p,
        electric_cables=electric,
        electric_length_m=INTRA_RACK_LENGTH_M,
        fiber_cables=total - electric,
        fiber_length_m=_fiber_length(q),
        endpoint_cables=nr * p,
    )


def analytic_counts(name: str, **params) -> AnalyticCounts:
    """Dispatch by paper symbol."""
    dispatch = {
        "T3D": torus_counts,
        "T5D": torus_counts,
        "HC": hypercube_counts,
        "LH-HC": longhop_counts,
        "FT-3": fattree_counts,
        "FBF-3": flattened_butterfly_counts,
        "DF": dragonfly_counts,
        "DLN": dln_counts,
        "SF": slimfly_counts,
    }
    try:
        fn = dispatch[name]
    except KeyError:
        raise KeyError(f"unknown topology {name!r}; choose from {sorted(dispatch)}") from None
    return fn(**params)


# ---------------------------------------------------------------------------
# Natural size sweeps for the Fig 11c/d axes
# ---------------------------------------------------------------------------

def sweep_counts(name: str, max_endpoints: int) -> list[AnalyticCounts]:
    """All natural configurations of a family with N ≤ max_endpoints."""
    out: list[AnalyticCounts] = []
    if name == "SF":
        for q in mms_q_values(200):
            c = slimfly_counts(q)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "DF":
        for h in range(2, 40):
            c = dragonfly_counts(h)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "FT-3":
        for p in range(4, 60):
            c = fattree_counts(p)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "FBF-3":
        for cdim in range(3, 24):
            c = flattened_butterfly_counts(cdim)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "HC":
        for n in range(6, 20):
            c = hypercube_counts(n)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "LH-HC":
        for n in range(6, 20):
            c = longhop_counts(n)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "T3D":
        for side in range(4, 40):
            c = torus_counts((side,) * 3)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "T5D":
        for side in range(2, 12):
            c = torus_counts((side,) * 5)
            if c.num_endpoints <= max_endpoints:
                out.append(c)
    elif name == "DLN":
        for q in mms_q_values(200):  # size-matched to the SF catalogue
            sf = slimfly_counts(q)
            if sf.num_endpoints > max_endpoints:
                continue
            out.append(
                dln_counts(
                    num_routers=sf.num_routers * 2,  # p=⌊√k⌋ < SF's p: more routers
                    router_radix=sf.router_radix,
                )
            )
    else:
        raise KeyError(f"unknown topology {name!r}")
    return out
