"""Cost and energy models (paper §VI-B, §VI-C).

- :mod:`repro.costmodel.cables` — cable pricing ($ per Gb/s as a
  linear function of length) for the cable products of Figs 11–13.
- :mod:`repro.costmodel.routers` — router pricing (linear in radix).
- :mod:`repro.costmodel.counts` — per-topology closed-form cable
  counts following §VI-B3 (used by the N-sweeps of Fig 11c/13c).
- :mod:`repro.costmodel.cost` — total network cost from a constructed
  topology + rack layout, or from closed-form counts.
- :mod:`repro.costmodel.power` — the SerDes energy model (§VI-C).
- :mod:`repro.costmodel.casestudy` — the Table IV case study.
"""

from repro.costmodel.cables import CableCostModel, CABLE_MODELS
from repro.costmodel.routers import RouterCostModel, ROUTER_MODELS
from repro.costmodel.counts import analytic_counts, AnalyticCounts
from repro.costmodel.cost import CostReport, network_cost, analytic_network_cost
from repro.costmodel.power import network_power_watts, power_per_endpoint
from repro.costmodel.casestudy import table4_rows, CaseStudyRow

__all__ = [
    "CableCostModel",
    "CABLE_MODELS",
    "RouterCostModel",
    "ROUTER_MODELS",
    "analytic_counts",
    "AnalyticCounts",
    "CostReport",
    "network_cost",
    "analytic_network_cost",
    "network_power_watts",
    "power_per_endpoint",
    "table4_rows",
    "CaseStudyRow",
]
