"""Traffic-pattern base class and uniform random traffic (§V-A).

A pattern answers two questions for the injection process: which
endpoints inject at all (``active_endpoints``), and where a given
source sends (``destination``).  Destinations may be stochastic
(uniform random draws a fresh destination per packet) or fixed
(permutations, adversarial patterns).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.topologies.base import Topology


class TrafficPattern(ABC):
    """Interface consumed by :class:`repro.sim.engine.SimEngine`."""

    name: str = "traffic"

    @abstractmethod
    def destination(self, src_endpoint: int, rng) -> int | None:
        """Destination endpoint for a packet from ``src_endpoint``.

        ``None`` means the source stays idle for this packet slot.
        """

    def destinations(self, src_endpoints, rng):
        """Batch form of :meth:`destination` for one injection cycle.

        ``src_endpoints`` is an array/sequence of sources injecting
        this cycle (ascending); returns a matching sequence of
        destinations (``None`` entries mean idle).  The default
        delegates to :meth:`destination` per source; stochastic
        patterns should override with a vectorised draw that consumes
        the RNG stream *identically* to the sequential calls, so batch
        and per-packet injection produce the same simulation.
        """
        return [self.destination(int(s), rng) for s in src_endpoints]

    def active_endpoints(self, topology: Topology) -> list[int]:
        """Endpoints that inject (defaults to all)."""
        return list(range(topology.num_endpoints))


class UniformRandom(TrafficPattern):
    """Each packet draws a uniform random destination ≠ source (§V-A).

    Represents irregular workloads: graph computations, sparse linear
    algebra, adaptive mesh refinement.
    """

    name = "uniform"
    #: Destinations never equal the source (draw over n-1 then shift),
    #: so the injector can skip its self-traffic filter.
    excludes_self = True

    def __init__(self, num_endpoints: int):
        if num_endpoints < 2:
            raise ValueError("uniform traffic needs at least 2 endpoints")
        self.num_endpoints = num_endpoints

    def destination(self, src_endpoint: int, rng) -> int:
        dst = int(rng.integers(self.num_endpoints - 1))
        return dst if dst < src_endpoint else dst + 1

    def destinations(self, src_endpoints, rng):
        """One vectorised draw for the whole cycle.

        numpy's bounded-integer generation consumes the bit stream
        element-by-element exactly as scalar calls do, so this returns
        the same values as the sequential :meth:`destination` loop.
        """
        srcs = np.asarray(src_endpoints)
        dsts = rng.integers(self.num_endpoints - 1, size=len(srcs))
        return dsts + (dsts >= srcs)


class FixedPermutation(TrafficPattern):
    """An arbitrary fixed endpoint permutation (building block)."""

    name = "permutation"
    #: Mapped sources never target themselves (validated below), so
    #: the batched injector can take the no-self-filter fast path.
    excludes_self = True

    def __init__(self, mapping: dict[int, int], name: str | None = None):
        self.mapping = dict(mapping)
        if name:
            self.name = name
        for s, d in self.mapping.items():
            if s == d:
                raise ValueError(f"self-directed traffic at endpoint {s}")
        #: Dense lookup for the vectorised batch draw.  Unmapped slots
        #: point at themselves; the engine never queries them (only
        #: ``active_endpoints`` — the mapping's keys — inject), and the
        #: scalar :meth:`destination` keeps returning ``None`` for them.
        table = np.arange(max(self.mapping) + 1 if self.mapping else 0,
                          dtype=np.int64)
        for s, d in self.mapping.items():
            table[s] = d
        self._table = table

    def destination(self, src_endpoint: int, rng) -> int | None:
        return self.mapping.get(src_endpoint)

    def destinations(self, src_endpoints, rng):
        """Vectorised fixed lookup (no RNG; trivially stream-identical).

        ``src_endpoints`` must be active (mapped) sources, as the
        engine guarantees; returning an ndarray keeps batched
        injection on the fast path for permutation patterns.
        """
        return self._table[np.asarray(src_endpoints)]

    def active_endpoints(self, topology: Topology) -> list[int]:
        return sorted(self.mapping)
