"""Traffic-pattern base class and uniform random traffic (§V-A).

A pattern answers two questions for the injection process: which
endpoints inject at all (``active_endpoints``), and where a given
source sends (``destination``).  Destinations may be stochastic
(uniform random draws a fresh destination per packet) or fixed
(permutations, adversarial patterns).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.topologies.base import Topology


class TrafficPattern(ABC):
    """Interface consumed by :class:`repro.sim.engine.SimEngine`."""

    name: str = "traffic"

    @abstractmethod
    def destination(self, src_endpoint: int, rng) -> int | None:
        """Destination endpoint for a packet from ``src_endpoint``.

        ``None`` means the source stays idle for this packet slot.
        """

    def active_endpoints(self, topology: Topology) -> list[int]:
        """Endpoints that inject (defaults to all)."""
        return list(range(topology.num_endpoints))


class UniformRandom(TrafficPattern):
    """Each packet draws a uniform random destination ≠ source (§V-A).

    Represents irregular workloads: graph computations, sparse linear
    algebra, adaptive mesh refinement.
    """

    name = "uniform"

    def __init__(self, num_endpoints: int):
        if num_endpoints < 2:
            raise ValueError("uniform traffic needs at least 2 endpoints")
        self.num_endpoints = num_endpoints

    def destination(self, src_endpoint: int, rng) -> int:
        dst = int(rng.integers(self.num_endpoints - 1))
        return dst if dst < src_endpoint else dst + 1


class FixedPermutation(TrafficPattern):
    """An arbitrary fixed endpoint permutation (building block)."""

    name = "permutation"

    def __init__(self, mapping: dict[int, int], name: str | None = None):
        self.mapping = dict(mapping)
        if name:
            self.name = name
        for s, d in self.mapping.items():
            if s == d:
                raise ValueError(f"self-directed traffic at endpoint {s}")

    def destination(self, src_endpoint: int, rng) -> int | None:
        return self.mapping.get(src_endpoint)

    def active_endpoints(self, topology: Topology) -> list[int]:
        return sorted(self.mapping)
