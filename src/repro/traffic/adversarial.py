"""Worst-case (adversarial) traffic patterns (paper §V-C, Fig 9).

**Slim Fly** (Fig 9): pick a link (R_x, R_y).  Senders are placed on
routers R_1..R_a adjacent to R_y whose *only* minimal path to R_x runs
through R_y (in a near-Moore diameter-2 graph the two-hop path between
non-adjacent routers is essentially unique, which is what makes the
pattern adversarial); they exchange traffic with the endpoints of R_x.
Symmetrically, routers adjacent to R_x whose minimal path to R_y runs
through R_x exchange traffic with R_y's endpoints.  Every flow in both
directions crosses the single (R_x, R_y) cable.  The generator repeats
this over disjoint links "until all possibilities are exhausted", and
pairs endpoints one-to-one so the pattern never overloads an endpoint
(the paper's admissibility requirement).

**Dragonfly** (Kim et al. §4.2): group g sends to group g+1 — all
minimal traffic of a group funnels through one global cable.

**Fat tree**: a cross-pod permutation, forcing every packet through
the core level.
"""

from __future__ import annotations

from repro.topologies.base import Topology
from repro.topologies.dragonfly import Dragonfly
from repro.topologies.fattree import FatTree3
from repro.traffic.patterns import FixedPermutation
from repro.util.rng import make_rng


def _pair(mapping: dict[int, int], senders: list[int], receivers: list[int]) -> None:
    """Bidirectional one-to-one pairing (a partial permutation)."""
    for s, r in zip(senders, receivers):
        mapping[s] = r
        mapping[r] = s


class SlimFlyWorstCase(FixedPermutation):
    """The Fig 9 pattern as an admissible endpoint permutation."""

    name = "sf-worstcase"

    def __init__(self, topology: Topology, tables=None, seed=None):
        if tables is None:
            from repro.routing.tables import RoutingTables

            tables = RoutingTables(topology.adjacency)
        mapping = self._build(topology, tables, make_rng(seed))
        super().__init__(mapping, name=self.name)
        self.topology = topology

    @staticmethod
    def _victims(topology: Topology, tables, rx: int, ry: int, used: set[int]):
        """Routers adjacent to ry whose minimal path to rx runs via ry."""
        out = []
        for r in topology.adjacency[ry]:
            if r in (rx, ry) or r in used:
                continue
            if tables.distance(r, rx) != 2:
                continue
            # Unique-ish 2-hop path via ry: every minimal next hop is ry.
            if tables.next_hop_candidates(r, rx) == [ry]:
                out.append(r)
        return out

    @classmethod
    def _build(cls, topology: Topology, tables, rng) -> dict[int, int]:
        mapping: dict[int, int] = {}
        used: set[int] = set()
        eps = topology.endpoints_of_router
        # Deterministic link scan; shuffled start for seed variety.
        links = [(u, v) for u, nbrs in enumerate(topology.adjacency) for v in nbrs if u < v]
        order = rng.permutation(len(links))
        for idx in order:
            rx, ry = links[idx]
            if rx in used or ry in used:
                continue
            a_side = cls._victims(topology, tables, rx, ry, used)
            b_side = cls._victims(topology, tables, ry, rx, used | set(a_side))
            if not a_side or not b_side:
                continue
            p = len(eps[rx])
            # One endpoint per A-router (spread over routers first).
            a_endpoints: list[int] = []
            for i in range(p):
                router = a_side[i % len(a_side)]
                slot = i // len(a_side)
                if slot < len(eps[router]):
                    a_endpoints.append(eps[router][slot])
            b_endpoints: list[int] = []
            for i in range(len(eps[ry])):
                router = b_side[i % len(b_side)]
                slot = i // len(b_side)
                if slot < len(eps[router]):
                    b_endpoints.append(eps[router][slot])
            if not a_endpoints or not b_endpoints:
                continue
            _pair(mapping, a_endpoints, eps[rx])
            _pair(mapping, b_endpoints, eps[ry])
            used.update([rx, ry], a_side, b_side)
        if not mapping:
            raise RuntimeError("could not build a worst-case pattern (graph too small)")
        return mapping


class DragonflyWorstCase(FixedPermutation):
    """Group g → group g+1: every flow shares one global cable."""

    name = "df-worstcase"

    def __init__(self, topology: Dragonfly):
        g, a, p = topology.g, topology.a, topology.p_conc
        per_group = a * p
        mapping: dict[int, int] = {}
        for ep in range(topology.num_endpoints):
            grp, local = divmod(ep, per_group)
            dst = ((grp + 1) % g) * per_group + local
            if dst != ep:
                mapping[ep] = dst
        super().__init__(mapping, name=self.name)
        self.topology = topology


class FatTreeWorstCase(FixedPermutation):
    """Cross-pod shift: every packet must climb to the core level."""

    name = "ft-worstcase"

    def __init__(self, topology: FatTree3):
        p = topology.p
        pod_size = p * p  # endpoints per pod
        n = topology.num_endpoints
        mapping: dict[int, int] = {}
        for ep in range(n):
            dst = (ep + pod_size) % n
            if dst != ep:
                mapping[ep] = dst
        super().__init__(mapping, name=self.name)
        self.topology = topology


def worst_case_for(topology: Topology, tables=None, seed=None) -> FixedPermutation:
    """Dispatch the matching adversarial pattern for a topology.

    ``tables`` may be a zero-argument callable; it is only invoked on
    the branch that routes over tables, so callers with an expensive
    (cached) table build never pay it for the DF/FT patterns.
    """
    if isinstance(topology, Dragonfly):
        return DragonflyWorstCase(topology)
    if isinstance(topology, FatTree3):
        return FatTreeWorstCase(topology)
    if callable(tables):
        tables = tables()
    return SlimFlyWorstCase(topology, tables=tables, seed=seed)
