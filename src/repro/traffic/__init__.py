"""Traffic patterns for the performance evaluation (paper §V).

- :mod:`repro.traffic.patterns` — uniform random plus the base class.
- :mod:`repro.traffic.permutations` — bit permutations (shuffle, bit
  reversal, bit complement) and the shift pattern (§V-B).
- :mod:`repro.traffic.adversarial` — the Slim Fly worst-case pattern
  of §V-C (Fig 9), the Dragonfly group-to-group worst case, and the
  fat-tree cross-pod (core-stressing) worst case.
"""

from repro.traffic.patterns import TrafficPattern, UniformRandom, FixedPermutation
from repro.traffic.permutations import (
    ShufflePattern,
    BitReversalPattern,
    BitComplementPattern,
    ShiftPattern,
    active_power_of_two,
)
from repro.traffic.adversarial import (
    SlimFlyWorstCase,
    DragonflyWorstCase,
    FatTreeWorstCase,
    worst_case_for,
)
from repro.traffic.registry import PATTERN_KINDS, make_pattern

__all__ = [
    "PATTERN_KINDS",
    "make_pattern",
    "TrafficPattern",
    "UniformRandom",
    "FixedPermutation",
    "ShufflePattern",
    "BitReversalPattern",
    "BitComplementPattern",
    "ShiftPattern",
    "active_power_of_two",
    "SlimFlyWorstCase",
    "DragonflyWorstCase",
    "FatTreeWorstCase",
    "worst_case_for",
]
