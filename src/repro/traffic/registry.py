"""Name -> traffic-pattern registry (scenario specs, fig6 CLI).

``make_pattern("worstcase", topology, tables=..., seed=...)`` builds
the pattern the §V experiments call by CLI name.  The worst-case kind
dispatches per topology (:func:`repro.traffic.adversarial.worst_case_for`);
``tables`` may be a zero-argument callable so callers with a cached
table builder only pay the all-pairs BFS when the Slim Fly-style
pattern actually consumes it (Dragonfly/fat-tree worst cases do not).
"""

from __future__ import annotations

from repro.traffic.adversarial import worst_case_for
from repro.traffic.patterns import TrafficPattern, UniformRandom
from repro.traffic.permutations import (
    BitComplementPattern,
    BitReversalPattern,
    ShiftPattern,
    ShufflePattern,
)

PATTERN_KINDS = ("uniform", "bitrev", "shift", "shuffle", "bitcomp", "worstcase")

#: The generator each kind resolves to (``worstcase`` dispatches per
#: topology through :func:`worst_case_for`) — the self-description the
#: auto-generated registry reference (docs/REGISTRY.md) introspects.
PATTERN_TARGETS = {
    "uniform": UniformRandom,
    "bitrev": BitReversalPattern,
    "shift": ShiftPattern,
    "shuffle": ShufflePattern,
    "bitcomp": BitComplementPattern,
    "worstcase": worst_case_for,
}


def make_pattern(
    kind: str, topology, tables=None, seed=None
) -> TrafficPattern:
    """Build a traffic pattern by registry name.

    ``seed`` only matters for the (randomised) worst-case generator;
    the permutation kinds are pure functions of the endpoint count.
    """
    n = topology.num_endpoints
    if kind == "uniform":
        return UniformRandom(n)
    if kind == "bitrev":
        return BitReversalPattern(n)
    if kind == "shift":
        return ShiftPattern(n)
    if kind == "shuffle":
        return ShufflePattern(n)
    if kind == "bitcomp":
        return BitComplementPattern(n)
    if kind == "worstcase":
        return worst_case_for(topology, tables=tables, seed=seed)
    raise ValueError(f"unknown pattern {kind!r}; choose from {PATTERN_KINDS}")
