"""Bit-permutation and shift patterns (paper §V-B).

The paper evaluates collectives via address-bit permutations.  Since
they need a power-of-two endpoint count, "we artificially prevent some
endpoints from sending and receiving packets": only the largest
2^b ≤ N endpoints are active (:func:`active_power_of_two`).

With b address bits, s_i the i-th source bit and d_i the i-th
destination bit:

- shuffle:        d_i = s_{(i−1) mod b}   (cyclic left rotate)
- bit reversal:   d_i = s_{b−i−1}
- bit complement: d_i = ¬s_i
- shift:          d = (s mod N/2) + N/2 or (s mod N/2), p = 1/2 each
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern


def active_power_of_two(num_endpoints: int) -> int:
    """Largest power of two ≤ num_endpoints (the active-endpoint count)."""
    if num_endpoints < 2:
        raise ValueError("need at least 2 endpoints")
    return 1 << (num_endpoints.bit_length() - 1)


class _BitPattern(TrafficPattern):
    """Shared machinery: fixed bit-level map on 2^b active endpoints."""

    def __init__(self, num_endpoints: int):
        self.size = active_power_of_two(num_endpoints)
        self.bits = self.size.bit_length() - 1
        self._table: np.ndarray | None = None

    def active_endpoints(self, topology: Topology) -> list[int]:
        return list(range(self.size))

    def _map(self, src: int) -> int:
        raise NotImplementedError

    def destination(self, src_endpoint: int, rng) -> int | None:
        if src_endpoint >= self.size:
            return None
        dst = self._map(src_endpoint)
        return None if dst == src_endpoint else dst

    def destinations(self, src_endpoints, rng):
        """Vectorised fixed lookup over the precomputed bit map.

        Fixed points of the map come back as ``dst == src`` (instead
        of the scalar path's ``None``); the batched injector's
        self-traffic filter drops them, so both paths inject the same
        packets.  No RNG is consumed either way.
        """
        if self._table is None:
            self._table = np.fromiter(
                (self._map(s) for s in range(self.size)),
                dtype=np.int64,
                count=self.size,
            )
        return self._table[np.asarray(src_endpoints)]


class ShufflePattern(_BitPattern):
    """d_i = s_{(i−1) mod b}: rotate address bits left by one."""

    name = "shuffle"

    def _map(self, src: int) -> int:
        b = self.bits
        return ((src << 1) | (src >> (b - 1))) & (self.size - 1)


class BitReversalPattern(_BitPattern):
    """d_i = s_{b−i−1}: reverse the address bits."""

    name = "bitrev"

    def _map(self, src: int) -> int:
        out = 0
        for i in range(self.bits):
            if src & (1 << i):
                out |= 1 << (self.bits - 1 - i)
        return out


class BitComplementPattern(_BitPattern):
    """d_i = ¬s_i: flip every address bit."""

    name = "bitcomp"

    def _map(self, src: int) -> int:
        return ~src & (self.size - 1)


class ShiftPattern(_BitPattern):
    """§V-B shift: d = (s mod N/2) + N/2 or (s mod N/2), equal odds."""

    name = "shift"

    def destination(self, src_endpoint: int, rng) -> int | None:
        if src_endpoint >= self.size:
            return None
        half = self.size // 2
        base = src_endpoint % half
        dst = base + half if rng.random() < 0.5 else base
        return None if dst == src_endpoint else dst

    def destinations(self, src_endpoints, rng):
        """One vectorised coin-flip batch for the cycle.

        ``rng.random(k)`` consumes the bit stream exactly like k
        scalar ``rng.random()`` calls, so the draw sequence — and
        therefore the simulation — is identical to the per-source
        loop; self-directed results surface as ``dst == src`` for the
        injector's filter (scalar path: ``None``).
        """
        srcs = np.asarray(src_endpoints)
        half = self.size // 2
        base = srcs % half
        up = rng.random(len(srcs)) < 0.5
        return base + np.where(up, half, 0)
