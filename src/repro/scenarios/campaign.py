"""Campaigns: ordered scenario lists with grid expansion (Layer 5).

A :class:`Campaign` is the unit the runner executes and the unit that
persists: ``save()``/``load()`` round-trip through a JSON file that can
be committed next to its results and replayed with
``python -m repro.experiments campaign <file.json>``.

:meth:`Campaign.from_grid` expands a parameter grid — a base scenario
plus per-axis override lists keyed by dotted paths into the spec
(``"routing"``, ``"sim.buffer_per_port"``, ``"topology.params.q"``,
``"traffic.seed"``, ...) — into the deduplicated cartesian product,
which is how the paper's {topology × routing × traffic × load × seed}
evaluation grids are written down.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.scenarios.spec import Scenario, scenario_hash


def _set_path(target, parts: list[str], value):
    """Set a dotted path, rebuilding frozen dataclasses copy-on-write.

    Returns the (possibly replaced) target so parents can write the
    new value back — ``SimConfig`` is frozen, so ``sim.buffer_per_port``
    axes go through :func:`dataclasses.replace`.
    """
    head = parts[0]
    if not isinstance(target, dict) and not hasattr(target, head):
        raise AttributeError(f"scenario has no field {head!r}")
    if len(parts) == 1:
        new_value = value
    else:
        child = target[head] if isinstance(target, dict) else getattr(target, head)
        new_value = _set_path(child, parts[1:], value)
        if new_value is child:
            return target
    if isinstance(target, dict):
        target[head] = new_value
        return target
    try:
        setattr(target, head, new_value)
        return target
    except dataclasses.FrozenInstanceError:
        return dataclasses.replace(target, **{head: new_value})


def _apply_override(scenario: Scenario, path: str, value) -> None:
    """Set a dotted-path field on a scenario (specs or dict params)."""
    if _set_path(scenario, path.split("."), value) is not scenario:
        raise AttributeError(f"cannot replace the scenario itself via {path!r}")


@dataclass
class Campaign:
    """A named, ordered list of scenarios (duplicates allowed until
    :meth:`dedup`; the runner always deduplicates before executing)."""

    name: str
    scenarios: list[Scenario] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def num_rows(self) -> int:
        """Total result rows a complete run of this campaign emits."""
        return sum(s.num_rows for s in self.scenarios)

    def dedup(self) -> "Campaign":
        """Order-preserving copy with duplicate scenario hashes dropped."""
        seen: set[str] = set()
        unique: list[Scenario] = []
        for s in self.scenarios:
            h = scenario_hash(s)
            if h not in seen:
                seen.add(h)
                unique.append(s)
        return Campaign(self.name, unique)

    @classmethod
    def from_grid(
        cls,
        name: str,
        base: Scenario,
        axes: Mapping[str, Sequence],
        label: Callable[[Scenario], str] | None = None,
    ) -> "Campaign":
        """Cartesian product of per-axis overrides applied to ``base``.

        Axis keys are dotted paths; values replace the field wholesale
        (spec objects included — pass ``RoutingSpec`` instances for a
        ``"routing"`` axis).  Attribute segments must name existing
        fields; a path ending in a ``params`` dict may introduce a new
        key (e.g. a constructor kwarg the base omitted) — typos in
        such keys only surface when the spec resolves.  Later axes
        vary fastest.  ``label`` recomputes each expanded scenario's
        label; the result is deduplicated by scenario hash.
        """
        keys = list(axes)
        scenarios: list[Scenario] = []
        for combo in itertools.product(*(axes[k] for k in keys)):
            scenario = copy.deepcopy(base)
            for key, value in zip(keys, combo):
                _apply_override(scenario, key, copy.deepcopy(value))
            if label is not None:
                scenario.label = label(scenario)
            # Re-run every invariant check (sub-specs included — an
            # override may have reached inside one) and seed fills.
            scenario.revalidate()
            scenarios.append(scenario)
        return cls(name, scenarios).dedup()

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        return cls(
            name=data["name"],
            scenarios=[Scenario.from_dict(d) for d in data["scenarios"]],
        )

    def save(self, path) -> Path:
        """Write the campaign as an indented JSON file (VCS-friendly)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "Campaign":
        return cls.from_dict(json.loads(Path(path).read_text()))
