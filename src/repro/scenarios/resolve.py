"""Spec -> live-object resolution for the scenario layer.

Scenarios reference everything by registry name; this module turns
those references into the objects the simulator consumes.  Topologies
and their all-pairs :class:`~repro.routing.tables.RoutingTables` are
by far the most expensive inputs and recur across a campaign (the
fig6 grid reuses three networks for six protocols × many loads), so
both are cached per canonical spec encoding.  Routing algorithms are
the opposite: adaptive schemes carry RNG state, so resolution hands
out a *factory* and a fresh instance is built inside each simulation
task — the same contract :mod:`repro.sim.parallel` already enforces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.routing.registry import make_routing, routing_needs_tables
from repro.routing.tables import RoutingTables
from repro.scenarios.spec import FaultSpec, Scenario, TopologySpec, canonical_json
from repro.sim.config import SimConfig
from repro.topologies.base import Topology
from repro.topologies.registry import balanced_instance
from repro.traffic.registry import make_pattern
from repro.workloads.registry import make_placed_workload

#: spec-key -> instance caches.  Bounded FIFO: campaigns touch a
#: handful of networks, but a long-lived process sweeping many sizes
#: should not accumulate paper-scale tables forever.
_TOPOLOGIES: dict[str, Topology] = {}
_TABLES: dict[str, RoutingTables] = {}
_CACHE_CAP = 32


def clear_caches() -> None:
    """Drop cached topologies/tables (tests, memory pressure)."""
    _TOPOLOGIES.clear()
    _TABLES.clear()


def _bounded_put(cache: dict, key: str, value) -> None:
    if len(cache) >= _CACHE_CAP:
        cache.pop(next(iter(cache)))
    cache[key] = value


def resolve_topology(
    spec: TopologySpec, fault: FaultSpec | None = None
) -> Topology:
    """Build (or fetch) the topology instance a spec describes.

    With a ``fault``, the healthy instance is built (or fetched) first
    and rewritten into a :class:`~repro.analysis.faults.DegradedTopology`
    via :func:`~repro.analysis.faults.apply_fault`; the degraded
    instance is cached under the combined (topology, fault) key, so a
    fault-fraction sweep over one network degrades it once per point.
    """
    key = canonical_json(spec.to_dict())
    if fault is not None:
        key += "|fault:" + canonical_json(fault.to_dict())
    if key not in _TOPOLOGIES:
        if fault is not None:
            from repro.analysis.faults import apply_fault

            topology = apply_fault(
                resolve_topology(spec),
                link_fraction=fault.link_fraction,
                router_fraction=fault.router_fraction,
                seed=fault.seed,
                cut_links=fault.cut_links,
                cut_routers=fault.cut_routers,
            )
        else:
            topology = balanced_instance(
                spec.name, spec.target_endpoints, seed=spec.seed, **spec.params
            )
        _bounded_put(_TOPOLOGIES, key, topology)
    return _TOPOLOGIES[key]


def tables_for(
    spec: TopologySpec, fault: FaultSpec | None = None
) -> RoutingTables:
    """All-pairs routing tables for a topology spec (cached).

    Keyed by a digest of the adjacency itself, not the spec: specs
    that differ only in concentration (oversubscription sweeps) share
    one router graph, so they share one all-pairs BFS.  A faulted
    spec's degraded adjacency digests differently by construction, so
    degraded tables can never be served for the healthy network (or
    vice versa).
    """
    adjacency = resolve_topology(spec, fault).adjacency
    key = hashlib.sha256(canonical_json(adjacency).encode()).hexdigest()
    if key not in _TABLES:
        _bounded_put(_TABLES, key, RoutingTables(adjacency))
    return _TABLES[key]


@dataclass
class ResolvedScenario:
    """A scenario's live simulator inputs, ready for dispatch.

    ``backend`` names the engine fidelity the runner dispatches to
    (validated against :mod:`repro.sim.backends` here, so an unknown
    backend fails at resolution, not mid-campaign).  It may differ
    from the spec's backend: default-``cycle`` scenarios on large
    instances execute on ``cycle-vec`` (see :func:`_execution_backend`)
    while rows and hashes keep reporting the spec's fidelity.
    """

    scenario: Scenario
    topology: Topology
    routing_factory: Callable[[], object]
    config: SimConfig
    traffic: object | None = None
    workload: object | None = None
    backend: str = "cycle"
    #: Armed probe plane (:class:`repro.sim.telemetry.TelemetrySpec`)
    #: or None — passed straight through to the engine dispatch.
    telemetry: object | None = None
    #: True when a fault axis degraded the topology past connectivity:
    #: routing tables over the fragments are undefined, so the runner
    #: emits structured ``disconnected`` rows instead of simulating.
    disconnected: bool = False


def _unroutable(scenario: Scenario):
    def factory():  # pragma: no cover - guarded by `disconnected`
        raise RuntimeError(
            f"scenario {scenario.label or scenario.hash()} is disconnected; "
            "it has no routing"
        )

    return factory


#: Router count from which cycle-fidelity scenarios execute on the
#: batched ``cycle-vec`` engine by default (Slim Fly q=7 -> 2q^2 = 98
#: routers: the scale where the batched phases clearly out-amortise
#: their per-cycle numpy dispatch overhead, per BENCH_sim.json).
_VEC_DEFAULT_ROUTERS = 98


def _vec_feasible(scenario: Scenario, topology: Topology) -> bool:
    """Conservative screen for ``cycle-vec``'s packed int64 sort keys.

    The batched engine packs (group, rank, seq) grant keys into one
    int64 and refuses instances where the product overflows 2**62;
    this mirrors that bound (over-estimating the VC count, which the
    routing algorithm may raise) so the auto-default below never
    upgrades a scenario into a constructor error.
    """
    C = sum(len(nbrs) for nbrs in topology.adjacency)
    n_ep = topology.num_endpoints
    V = max(scenario.sim.num_vcs, 8)
    max_eps = max((len(e) for e in topology.endpoints_of_router), default=1)
    seq_span = C * V + 2 + max_eps
    if scenario.workload is not None:
        from repro.sim.engine import DEFAULT_MAX_CYCLES

        limit = (
            DEFAULT_MAX_CYCLES
            if scenario.max_cycles is None
            else scenario.max_cycles
        )
    else:
        cfg = scenario.sim
        limit = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles
    rank_span = 2 * (limit + 2)
    return (C + n_ep) * rank_span * seq_span < 2**62


def _execution_backend(scenario: Scenario, topology: Topology) -> str:
    """Engine fidelity the runner should dispatch to.

    Cycle-fidelity scenarios on large instances default to the batched
    ``cycle-vec`` engine: the rows are bit-identical (the differential
    suite's contract), the scenario hash and the rows' ``fidelity``
    key both come from the *spec's* backend, so published results,
    resume identities and figure pipelines are untouched — only the
    wall-clock changes.  Explicit ``backend="cycle-vec"``/``"flow"``
    are honoured as written, and small instances stay on the flat
    engine (below ~100 routers its lower per-cycle overhead wins).
    """
    if (
        scenario.backend == "cycle"
        and topology.num_routers >= _VEC_DEFAULT_ROUTERS
        and _vec_feasible(scenario, topology)
    ):
        return "cycle-vec"
    return scenario.backend


def resolve(scenario: Scenario) -> ResolvedScenario:
    """Resolve every spec of a scenario into live objects.

    Tables are only built when the routing algorithm (or a Slim
    Fly-style worst-case pattern) actually routes over them.  A fault
    axis rewrites the topology into its degraded form first; if the
    degraded graph fell apart, resolution returns early with
    ``disconnected=True`` — a structured result, not a crash.
    """
    from repro.sim.backends import get_backend

    get_backend(scenario.backend)  # unknown backends fail loudly here
    fault = scenario.fault
    topology = resolve_topology(scenario.topology, fault)
    tspec = scenario.topology
    if fault is not None:
        from repro.analysis.connectivity import is_connected

        if not is_connected(topology.num_routers, topology.edge_array()):
            return ResolvedScenario(
                scenario=scenario,
                topology=topology,
                routing_factory=_unroutable(scenario),
                config=scenario.sim,
                backend=scenario.backend,
                telemetry=scenario.telemetry,
                disconnected=True,
            )
    if routing_needs_tables(scenario.routing.name):
        tables = tables_for(tspec, fault)
    else:
        tables = None
    rspec = scenario.routing

    def routing_factory():
        return make_routing(rspec.name, topology, tables=tables, **rspec.params)

    traffic = None
    workload = None
    if scenario.traffic is not None:
        traffic = make_pattern(
            scenario.traffic.pattern,
            topology,
            tables=lambda: tables_for(tspec, fault),
            seed=scenario.traffic.seed,
        )
    else:
        w = scenario.workload
        workload = make_placed_workload(
            w.kind,
            topology,
            w.ranks,
            size_flits=w.size_flits,
            iterations=w.iterations,
            placement=w.placement,
        )
    return ResolvedScenario(
        scenario=scenario,
        topology=topology,
        routing_factory=routing_factory,
        config=scenario.sim,
        traffic=traffic,
        workload=workload,
        backend=_execution_backend(scenario, topology),
        telemetry=scenario.telemetry,
    )
