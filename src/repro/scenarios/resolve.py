"""Spec -> live-object resolution for the scenario layer.

Scenarios reference everything by registry name; this module turns
those references into the objects the simulator consumes.  Topologies
and their all-pairs :class:`~repro.routing.tables.RoutingTables` are
by far the most expensive inputs and recur across a campaign (the
fig6 grid reuses three networks for six protocols × many loads), so
both are cached per canonical spec encoding.  Routing algorithms are
the opposite: adaptive schemes carry RNG state, so resolution hands
out a *factory* and a fresh instance is built inside each simulation
task — the same contract :mod:`repro.sim.parallel` already enforces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.routing.registry import make_routing, routing_needs_tables
from repro.routing.tables import RoutingTables
from repro.scenarios.spec import Scenario, TopologySpec, canonical_json
from repro.sim.config import SimConfig
from repro.topologies.base import Topology
from repro.topologies.registry import balanced_instance
from repro.traffic.registry import make_pattern
from repro.workloads.registry import make_placed_workload

#: spec-key -> instance caches.  Bounded FIFO: campaigns touch a
#: handful of networks, but a long-lived process sweeping many sizes
#: should not accumulate paper-scale tables forever.
_TOPOLOGIES: dict[str, Topology] = {}
_TABLES: dict[str, RoutingTables] = {}
_CACHE_CAP = 32


def clear_caches() -> None:
    """Drop cached topologies/tables (tests, memory pressure)."""
    _TOPOLOGIES.clear()
    _TABLES.clear()


def _bounded_put(cache: dict, key: str, value) -> None:
    if len(cache) >= _CACHE_CAP:
        cache.pop(next(iter(cache)))
    cache[key] = value


def resolve_topology(spec: TopologySpec) -> Topology:
    """Build (or fetch) the topology instance a spec describes."""
    key = canonical_json(spec.to_dict())
    if key not in _TOPOLOGIES:
        topology = balanced_instance(
            spec.name, spec.target_endpoints, seed=spec.seed, **spec.params
        )
        _bounded_put(_TOPOLOGIES, key, topology)
    return _TOPOLOGIES[key]


def tables_for(spec: TopologySpec) -> RoutingTables:
    """All-pairs routing tables for a topology spec (cached).

    Keyed by a digest of the adjacency itself, not the spec: specs
    that differ only in concentration (oversubscription sweeps) share
    one router graph, so they share one all-pairs BFS.
    """
    adjacency = resolve_topology(spec).adjacency
    key = hashlib.sha256(canonical_json(adjacency).encode()).hexdigest()
    if key not in _TABLES:
        _bounded_put(_TABLES, key, RoutingTables(adjacency))
    return _TABLES[key]


@dataclass
class ResolvedScenario:
    """A scenario's live simulator inputs, ready for dispatch.

    ``backend`` names the engine fidelity the runner dispatches to
    (validated against :mod:`repro.sim.backends` here, so an unknown
    backend fails at resolution, not mid-campaign).
    """

    scenario: Scenario
    topology: Topology
    routing_factory: Callable[[], object]
    config: SimConfig
    traffic: object | None = None
    workload: object | None = None
    backend: str = "cycle"
    #: Armed probe plane (:class:`repro.sim.telemetry.TelemetrySpec`)
    #: or None — passed straight through to the engine dispatch.
    telemetry: object | None = None


def resolve(scenario: Scenario) -> ResolvedScenario:
    """Resolve every spec of a scenario into live objects.

    Tables are only built when the routing algorithm (or a Slim
    Fly-style worst-case pattern) actually routes over them.
    """
    from repro.sim.backends import get_backend

    get_backend(scenario.backend)  # unknown backends fail loudly here
    topology = resolve_topology(scenario.topology)
    tspec = scenario.topology
    if routing_needs_tables(scenario.routing.name):
        tables = tables_for(tspec)
    else:
        tables = None
    rspec = scenario.routing

    def routing_factory():
        return make_routing(rspec.name, topology, tables=tables, **rspec.params)

    traffic = None
    workload = None
    if scenario.traffic is not None:
        traffic = make_pattern(
            scenario.traffic.pattern,
            topology,
            tables=lambda: tables_for(tspec),
            seed=scenario.traffic.seed,
        )
    else:
        w = scenario.workload
        workload = make_placed_workload(
            w.kind,
            topology,
            w.ranks,
            size_flits=w.size_flits,
            iterations=w.iterations,
            placement=w.placement,
        )
    return ResolvedScenario(
        scenario=scenario,
        topology=topology,
        routing_factory=routing_factory,
        config=scenario.sim,
        traffic=traffic,
        workload=workload,
        backend=scenario.backend,
        telemetry=scenario.telemetry,
    )
