"""Declarative scenario/campaign API (DESIGN.md, Layer 5).

Every simulation the repo can run is describable as data:

- :mod:`repro.scenarios.spec` — :class:`Scenario` and the
  string-keyed sub-specs (:class:`TopologySpec`, :class:`RoutingSpec`,
  :class:`TrafficSpec`, :class:`WorkloadSpec`), all JSON round-trippable
  and stably hashable.
- :mod:`repro.scenarios.campaign` — :class:`Campaign`: ordered
  scenario lists, parameter-grid expansion, JSON persistence.
- :mod:`repro.scenarios.resolve` — spec -> live simulator objects,
  with topology/table caching.
- :mod:`repro.scenarios.runner` — :func:`run_campaign`: the single
  entry point that dispatches open- and closed-loop scenarios, streams
  JSONL rows, and resumes interrupted sweeps.
"""

from repro.scenarios.campaign import Campaign
from repro.scenarios.resolve import (
    ResolvedScenario,
    clear_caches,
    resolve,
    resolve_topology,
    tables_for,
)
from repro.scenarios.runner import CampaignReport, rows_by_label, run_campaign
from repro.scenarios.spec import (
    FaultSpec,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    canonical_json,
    scenario_hash,
    sim_config_from_dict,
    sim_config_to_dict,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "FaultSpec",
    "ResolvedScenario",
    "RoutingSpec",
    "Scenario",
    "TopologySpec",
    "TrafficSpec",
    "WorkloadSpec",
    "canonical_json",
    "clear_caches",
    "resolve",
    "resolve_topology",
    "rows_by_label",
    "run_campaign",
    "scenario_hash",
    "sim_config_from_dict",
    "sim_config_to_dict",
    "tables_for",
]
