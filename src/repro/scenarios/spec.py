"""Declarative, serializable simulation specs (DESIGN.md, Layer 5).

A :class:`Scenario` describes one simulation point (or one load sweep)
entirely as data: string-keyed references into the topology, routing,
traffic and workload registries plus a :class:`~repro.sim.config.SimConfig`
and sweep axes.  Nothing here holds a live object — specs round-trip
losslessly through ``to_dict()``/``from_dict()`` (and therefore JSON),
can be committed next to their results, and hash stably
(:func:`scenario_hash`), which is what makes resumable campaigns
possible.

Resolution of a spec into live simulator inputs lives in
:mod:`repro.scenarios.resolve`; grid expansion in
:mod:`repro.scenarios.campaign`; execution in
:mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.routing.registry import FAULT_AWARE, ROUTING_BUILDERS, SEEDED
from repro.sim.backends import ENGINE_BACKENDS
from repro.sim.config import SimConfig
from repro.sim.telemetry import TelemetrySpec
from repro.topologies.registry import TOPOLOGY_BUILDERS, validate_shape_params
from repro.traffic.registry import PATTERN_KINDS
from repro.workloads.registry import PLACEMENT_KINDS, WORKLOAD_KINDS


def canonical_json(data) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class TopologySpec:
    """A topology by registry name.

    ``target_endpoints`` asks :func:`repro.topologies.registry.balanced_instance`
    for the closest balanced instance; ``params`` pin the exact shape
    instead (e.g. ``{"q": 19}`` for SF, ``{"h": 7}`` for DF,
    ``{"p": 22}`` for FT-3, plus ``{"concentration": p}`` for
    oversubscribed Slim Flies).  ``seed`` only matters for randomised
    constructions (DLN).
    """

    name: str
    target_endpoints: int | None = None
    seed: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.name not in TOPOLOGY_BUILDERS:
            raise ValueError(
                f"unknown topology {self.name!r}; "
                f"choose from {sorted(TOPOLOGY_BUILDERS)}"
            )
        self.params = dict(self.params)
        validate_shape_params(self.name, self.target_endpoints, self.params)
        # Randomised constructions must be pinned: an entropy-seeded
        # topology would void the resume/byte-identity guarantee.
        if self.name == "DLN" and self.seed is None:
            self.seed = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target_endpoints": self.target_endpoints,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        return cls(
            name=data["name"],
            target_endpoints=data.get("target_endpoints"),
            seed=data.get("seed"),
            params=dict(data.get("params") or {}),
        )


@dataclass
class RoutingSpec:
    """A routing algorithm by registry name.

    ``params`` go to the constructor through
    :func:`repro.routing.registry.make_routing` (``seed``,
    ``num_candidates``, ``max_hops``, ...).  Randomised algorithms
    (:data:`repro.routing.registry.SEEDED`) get ``seed=0`` filled in
    when omitted — a spec must pin every source of randomness, or the
    runner's resume/byte-identity guarantee would silently not hold.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.name not in ROUTING_BUILDERS:
            raise ValueError(
                f"unknown routing {self.name!r}; "
                f"choose from {sorted(ROUTING_BUILDERS)}"
            )
        # Copy before filling: never mutate a caller-supplied dict.
        self.params = dict(self.params)
        if self.name in SEEDED and self.params.get("seed") is None:
            self.params["seed"] = 0

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "RoutingSpec":
        return cls(name=data["name"], params=dict(data.get("params") or {}))


@dataclass
class TrafficSpec:
    """An open-loop traffic pattern by registry name (§V patterns).

    ``seed`` only exists for the (randomised) worst-case generator: it
    defaults to 0 there so the resolved pattern is always
    reproducible, and is normalised to ``None`` for the deterministic
    kinds — otherwise two specs describing the identical simulation
    would hash differently and defeat dedup/resume.
    """

    pattern: str
    seed: int | None = None

    def __post_init__(self):
        if self.pattern not in PATTERN_KINDS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERN_KINDS}"
            )
        self.seed = (self.seed or 0) if self.pattern == "worstcase" else None

    def to_dict(self) -> dict:
        return {"pattern": self.pattern, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        return cls(pattern=data["pattern"], seed=data.get("seed"))


@dataclass
class WorkloadSpec:
    """A closed-loop workload by registry name.

    ``ranks`` is an upper bound (shape-constrained kinds round down,
    exactly like ``make_workload``); ``placement`` names the
    rank -> endpoint strategy.
    """

    kind: str
    ranks: int
    size_flits: int = 16
    iterations: int = 2
    placement: str = "spread"

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload {self.kind!r}; choose from {WORKLOAD_KINDS}"
            )
        if self.placement not in PLACEMENT_KINDS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENT_KINDS}"
            )
        if self.ranks < 2:
            raise ValueError(f"ranks must be >= 2, got {self.ranks}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ranks": self.ranks,
            "size_flits": self.size_flits,
            "iterations": self.iterations,
            "placement": self.placement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            kind=data["kind"],
            ranks=data["ranks"],
            size_flits=data.get("size_flits", 16),
            iterations=data.get("iterations", 2),
            placement=data.get("placement", "spread"),
        )


@dataclass
class FaultSpec:
    """Failures injected into the topology at resolve time (§III-D).

    ``link_fraction``/``router_fraction`` kill a seeded-random share of
    the cables/routers (``round(fraction * count)`` of each, sampled
    without replacement); ``cut_links``/``cut_routers`` name targeted
    casualties exactly.  A dead router loses every one of its cables.
    The ``seed`` pins the random sample: it defaults to 0 whenever a
    fraction actually samples and is normalised to ``None`` when none
    does (targeted cuts are deterministic) — otherwise two specs
    describing the identical degraded network would hash differently
    and defeat campaign dedup/resume.

    A spec that injects nothing at all (fractions 0, no cuts) is the
    healthy network; :class:`Scenario` normalises it to ``None`` so
    the healthy state always serializes — and hashes — one way.
    """

    link_fraction: float = 0.0
    router_fraction: float = 0.0
    seed: int | None = None
    cut_links: list = field(default_factory=list)
    cut_routers: list = field(default_factory=list)

    def __post_init__(self):
        for name in ("link_fraction", "router_fraction"):
            value = float(getattr(self, name))
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
            setattr(self, name, value)
        # Cut lists normalise to sorted unique (min, max) pairs /
        # router ids: two specs naming the same casualties in any
        # order or orientation serialize (and hash) identically.
        links = set()
        for pair in self.cut_links:
            u, v = (int(x) for x in pair)
            if u == v:
                raise ValueError(f"cut link ({u}, {v}) is a self-loop")
            if u < 0 or v < 0:
                raise ValueError(f"cut link ({u}, {v}) has a negative router")
            links.add((min(u, v), max(u, v)))
        self.cut_links = sorted(links)
        self.cut_routers = sorted({int(r) for r in self.cut_routers})
        if self.cut_routers and self.cut_routers[0] < 0:
            raise ValueError("cut_routers must be non-negative router ids")
        if self.link_fraction > 0 or self.router_fraction > 0:
            self.seed = int(self.seed or 0)
        else:
            self.seed = None

    @property
    def is_null(self) -> bool:
        """True when the spec injects no failure at all."""
        return (
            self.link_fraction == 0.0
            and self.router_fraction == 0.0
            and not self.cut_links
            and not self.cut_routers
        )

    def to_dict(self) -> dict:
        return {
            "link_fraction": self.link_fraction,
            "router_fraction": self.router_fraction,
            "seed": self.seed,
            "cut_links": [list(pair) for pair in self.cut_links],
            "cut_routers": list(self.cut_routers),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            link_fraction=data.get("link_fraction", 0.0),
            router_fraction=data.get("router_fraction", 0.0),
            seed=data.get("seed"),
            cut_links=[tuple(p) for p in data.get("cut_links") or []],
            cut_routers=list(data.get("cut_routers") or []),
        )


def sim_config_to_dict(config: SimConfig) -> dict:
    """A SimConfig as a plain field dict (JSON-ready, lossless)."""
    return asdict(config)


def sim_config_from_dict(data: dict) -> SimConfig:
    """Rebuild a SimConfig from its ``sim_config_to_dict`` form."""
    return SimConfig(**data)


@dataclass
class Scenario:
    """One fully-described simulation: specs + sweep axes.

    Exactly one of ``traffic`` (open loop: a latency-vs-load sweep
    over ``loads``, averaged over ``replicas`` derived seeds) or
    ``workload`` (closed loop: one completion-time run bounded by
    ``max_cycles``) must be set.  ``label`` is cosmetic but part of
    the serialized form, so relabelling changes the scenario hash.

    ``backend`` is the engine-fidelity axis
    (:data:`repro.sim.backends.ENGINE_BACKENDS`): ``"cycle"`` runs the
    cycle-accurate engine, ``"flow"`` the flow-level fluid solver.
    The default is omitted from the serialized form, so pre-backend
    JSON specs load unchanged and every existing scenario hash — the
    resume/dedup identity of published result files — is preserved.

    ``telemetry`` arms the opt-in probe plane
    (:class:`repro.sim.telemetry.TelemetrySpec`): armed probes flow
    into the campaign's ``.metrics.jsonl`` sidecar.  Like ``backend``,
    the off state (``None`` *or* an all-off spec) is omitted from the
    serialized form, so telemetry-free scenarios keep their pre-
    telemetry hashes.
    """

    topology: TopologySpec
    routing: RoutingSpec
    sim: SimConfig = field(default_factory=SimConfig)
    traffic: TrafficSpec | None = None
    workload: WorkloadSpec | None = None
    loads: list[float] = field(default_factory=list)
    replicas: int = 1
    stop_after_saturation: int = 1
    max_cycles: int | None = None
    label: str = ""
    backend: str = "cycle"
    telemetry: TelemetrySpec | None = None
    fault: FaultSpec | None = None

    def __post_init__(self):
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"choose from {sorted(ENGINE_BACKENDS)}"
            )
        if (self.traffic is None) == (self.workload is None):
            raise ValueError("exactly one of traffic/workload must be set")
        if (
            self.workload is not None
            and not ENGINE_BACKENDS[self.backend].supports_closed_loop
        ):
            from repro.sim.backends import backends_supporting

            raise ValueError(
                f"backend {self.backend!r} cannot run closed-loop workload "
                f"scenarios; closed-loop capable backends: "
                f"{backends_supporting('closed')}"
            )
        if self.traffic is not None and not self.loads:
            raise ValueError("open-loop scenarios need a non-empty loads list")
        if self.workload is not None and self.loads:
            raise ValueError("closed-loop scenarios take no loads axis")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.stop_after_saturation < 1:
            raise ValueError("stop_after_saturation must be >= 1")
        # Axes the other engine would silently ignore are rejected —
        # they would still be hashed, so two specs describing the same
        # simulation would dedup/resume as different work.
        if self.workload is not None and self.replicas != 1:
            raise ValueError("replicas is an open-loop axis (closed loop runs once)")
        if self.workload is not None and self.stop_after_saturation != 1:
            raise ValueError("stop_after_saturation is an open-loop axis")
        if self.traffic is not None and self.max_cycles is not None:
            raise ValueError("max_cycles is a closed-loop axis (open loop uses sim "
                             "warmup/measure/drain cycles)")
        # An all-off spec is normalised to None so the two off states
        # serialize (and hash) identically.
        if self.telemetry is not None and not self.telemetry.enabled:
            self.telemetry = None
        if self.workload is not None and self.telemetry is not None:
            raise ValueError("telemetry is an open-loop axis (closed-loop "
                             "workload runs have no probe plane yet)")
        # Fault axis: a dict (JSON/grid-override form) is coerced, and
        # a spec that injects nothing is normalised to None — the
        # healthy network must always serialize (and hash) one way.
        if isinstance(self.fault, dict):
            self.fault = FaultSpec.from_dict(self.fault)
        if self.fault is not None and self.fault.is_null:
            self.fault = None
        if self.fault is not None:
            if self.workload is not None:
                raise ValueError(
                    "fault is an open-loop axis (closed-loop workload "
                    "scenarios have no degraded-run semantics yet)"
                )
            if self.routing.name not in FAULT_AWARE:
                raise ValueError(
                    f"routing {self.routing.name!r} plans over the healthy "
                    f"structure and cannot route around dead links; fault "
                    f"scenarios need one of {sorted(FAULT_AWARE)}"
                )
        self.loads = [float(x) for x in self.loads]

    def revalidate(self) -> None:
        """Re-run every spec's invariant checks and normalisations.

        Mutation paths that bypass construction (grid overrides
        setting e.g. ``routing.name`` directly) call this so sub-spec
        validation and seed default-filling can never be skipped.
        """
        self.topology.__post_init__()
        self.routing.__post_init__()
        if self.traffic is not None:
            self.traffic.__post_init__()
        if self.workload is not None:
            self.workload.__post_init__()
        if self.fault is not None and not isinstance(self.fault, dict):
            self.fault.__post_init__()
        self.__post_init__()

    @property
    def engine(self) -> str:
        """Dispatch target: ``"open"`` (load sweep) or ``"closed"``."""
        return "open" if self.traffic is not None else "closed"

    @property
    def num_rows(self) -> int:
        """Result rows this scenario contributes to a campaign output."""
        return len(self.loads) if self.engine == "open" else 1

    def to_dict(self) -> dict:
        data = {
            "topology": self.topology.to_dict(),
            "routing": self.routing.to_dict(),
            "sim": sim_config_to_dict(self.sim),
            "traffic": self.traffic.to_dict() if self.traffic else None,
            "workload": self.workload.to_dict() if self.workload else None,
            "loads": list(self.loads),
            "replicas": self.replicas,
            "stop_after_saturation": self.stop_after_saturation,
            "max_cycles": self.max_cycles,
            "label": self.label,
        }
        # The default backend is omitted, NOT written: a pre-backend
        # JSON spec and today's default spec describe the identical
        # simulation and must serialize (and therefore hash) equal —
        # resume identities of existing result files depend on it.
        if self.backend != "cycle":
            data["backend"] = self.backend
        # Same omit-default rule for telemetry: off (None or all-off)
        # writes nothing, so pre-telemetry scenario hashes survive.
        if self.telemetry is not None and self.telemetry.enabled:
            data["telemetry"] = self.telemetry.to_dict()
        # And for the fault axis: healthy (None, or a null spec the
        # constructor normalised away) writes nothing, so every
        # pre-fault scenario hash survives — and a faulted scenario can
        # never collide with its healthy twin in a result store.
        if self.fault is not None:
            data["fault"] = self.fault.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            routing=RoutingSpec.from_dict(data["routing"]),
            sim=sim_config_from_dict(data["sim"]),
            traffic=(
                TrafficSpec.from_dict(data["traffic"]) if data.get("traffic") else None
            ),
            workload=(
                WorkloadSpec.from_dict(data["workload"])
                if data.get("workload")
                else None
            ),
            loads=list(data.get("loads") or []),
            replicas=data.get("replicas", 1),
            stop_after_saturation=data.get("stop_after_saturation", 1),
            max_cycles=data.get("max_cycles"),
            label=data.get("label", ""),
            backend=data.get("backend", "cycle"),
            telemetry=(
                TelemetrySpec.from_dict(data["telemetry"])
                if data.get("telemetry")
                else None
            ),
            fault=(
                FaultSpec.from_dict(data["fault"]) if data.get("fault") else None
            ),
        )

    def hash(self) -> str:
        return scenario_hash(self)


def scenario_hash(scenario: Scenario) -> str:
    """Stable 16-hex-digit identity of a scenario's serialized form.

    Two scenarios hash equal iff their ``to_dict()`` forms are equal —
    the key campaign outputs are deduplicated and resumed by.
    """
    digest = hashlib.sha256(canonical_json(scenario.to_dict()).encode())
    return digest.hexdigest()[:16]
