"""One entry point for every simulation the repo can run (Layer 5).

:func:`run_campaign` walks a campaign in order, dispatches each
scenario to the right engine through the fork-pool transport of
:mod:`repro.sim.parallel` — open-loop scenarios fan their
(load × replica) grid across workers via
:func:`~repro.sim.parallel.parallel_latency_vs_load`; runs of pending
closed-loop scenarios are batched into one
:func:`~repro.sim.parallel.parallel_workload_completion` call — and
streams one JSON row per result to a JSONL file as each scenario
completes.

Every row carries its scenario hash and its ``row``/``rows`` position,
so the output is self-describing and resumable: with ``resume=True``
any scenario whose full row set already exists in the output file is
reused verbatim (zero simulations) and only the missing ones run.
Because rows are written in campaign order and cached lines are
replayed byte-for-byte, an interrupted campaign resumed to completion
produces a final file identical to an uninterrupted run.

Next to the JSONL, the runner writes a provenance sidecar
(``<out>.meta.json``): the campaign name, package version, worker
count, and the scenario index (hash, label, engine, row count).  The
analysis layer (:mod:`repro.analysis.frames`) reads it to stamp
per-figure provenance into reproduction reports.  The sidecar is
deliberately free of timestamps and run counters, so a rerun with the
same inputs rewrites it byte-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Sequence

from repro.scenarios.campaign import Campaign
from repro.scenarios.resolve import resolve
from repro.scenarios.spec import Scenario, canonical_json, scenario_hash
from repro.sim.parallel import (
    CompletionTask,
    parallel_latency_vs_load,
    parallel_workload_completion,
)
from repro.sim.stats import LoadPoint, WorkloadResult


def _clean(value):
    """NaN -> None so rows stay strict JSON (and reload unchanged)."""
    if isinstance(value, float) and value != value:
        return None
    return value


def _open_rows(
    campaign: str, scenario: Scenario, points: Sequence[LoadPoint]
) -> list[dict]:
    h = scenario_hash(scenario)
    spec = scenario.to_dict()
    rows = []
    for i, pt in enumerate(points):
        rows.append(
            {
                "campaign": campaign,
                "scenario": h,
                "label": scenario.label,
                "engine": "open",
                "fidelity": scenario.backend,
                "row": i,
                "rows": len(points),
                "load": pt.load,
                "latency": _clean(pt.latency),
                "accepted": _clean(pt.accepted),
                "saturated": bool(pt.saturated),
                "spec": spec,
            }
        )
    return rows


def _closed_rows(
    campaign: str, scenario: Scenario, result: WorkloadResult
) -> list[dict]:
    return [
        {
            "campaign": campaign,
            "scenario": scenario_hash(scenario),
            "label": scenario.label,
            "engine": "closed",
            "fidelity": scenario.backend,
            "row": 0,
            "rows": 1,
            "workload": result.workload,
            "num_messages": result.num_messages,
            "completed_messages": result.completed_messages,
            "finished": result.finished,
            "makespan": result.makespan,
            "cycles": result.cycles,
            "delivered_flits": result.delivered_flits,
            "avg_message_latency": _clean(result.avg_message_latency),
            "p99_message_latency": _clean(result.p99_message_latency),
            "avg_packet_latency": _clean(result.avg_packet_latency),
            "flits_per_cycle": _clean(result.flits_per_cycle),
            "spec": scenario.to_dict(),
        }
    ]


def _load_cache(
    path: Path, campaign_name: str, scenarios: Sequence[Scenario]
) -> dict[str, list[str]]:
    """Raw JSONL lines of *complete* scenarios, keyed by hash.

    A scenario is complete when every ``row`` index 0..rows-1 is
    present.  Lines that fail to parse (a kill mid-write leaves a
    truncated tail), belong to no campaign scenario, or carry another
    campaign's name (cached lines replay verbatim, so a stale name
    would survive into the resumed file) are ignored.
    """
    expected = {scenario_hash(s): s.num_rows for s in scenarios}
    by_hash: dict[str, dict[int, str]] = {}
    for line in path.read_text().splitlines():
        try:
            row = json.loads(line)
            h, i, n = row["scenario"], row["row"], row["rows"]
            name = row["campaign"]
        except (ValueError, KeyError, TypeError):
            continue
        if name != campaign_name:
            continue
        if expected.get(h) != n or not isinstance(i, int) or not 0 <= i < n:
            continue
        by_hash.setdefault(h, {})[i] = line
    return {
        h: [rows[i] for i in range(expected[h])]
        for h, rows in by_hash.items()
        if len(rows) == expected[h]
    }


@dataclass
class CampaignReport:
    """Outcome of :func:`run_campaign`."""

    campaign: str
    rows: list[dict] = field(default_factory=list)
    #: Scenarios actually simulated this run.
    simulated: int = 0
    #: Scenarios whose rows were reused from the resume cache.
    skipped: int = 0
    out: str | None = None

    def summary(self) -> str:
        return (
            f"campaign {self.campaign}: {self.simulated + self.skipped} scenarios "
            f"(simulated={self.simulated} skipped={self.skipped}), "
            f"{len(self.rows)} rows"
            + (f" -> {self.out}" if self.out else "")
        )


def _write_meta(
    out_path: Path, campaign: Campaign, workers: int, simulated: int
) -> None:
    """Provenance sidecar for an output file (see module docstring).

    ``workers`` records how the rows were *produced*: a resume that
    simulated nothing keeps the previous sidecar's worker count — the
    rows in the file are still the old run's — instead of stamping a
    worker count that never ran a simulation.
    """
    from repro import __version__

    meta_path = out_path.with_name(out_path.name + ".meta.json")
    if simulated == 0 and meta_path.exists():
        try:
            previous = json.loads(meta_path.read_text(encoding="utf-8"))
            # A corrupt/foreign sidecar (non-dict JSON included) is
            # simply rewritten rather than trusted.
            if isinstance(previous, dict) and \
                    previous.get("campaign") == campaign.name:
                workers = previous.get("workers", workers)
        except ValueError:
            pass
    meta = {
        "format": 1,
        "campaign": campaign.name,
        "generator": f"repro {__version__}",
        "workers": workers,
        "scenarios": [
            {
                "scenario": scenario_hash(s),
                "label": s.label,
                "engine": s.engine,
                "rows": s.num_rows,
            }
            for s in campaign.scenarios
        ],
    }
    meta_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
        newline="\n",
    )


def _emit(stream: IO[str] | None, rows: list[dict], raw: list[str] | None) -> None:
    if stream is None:
        return
    for line in raw if raw is not None else map(canonical_json, rows):
        stream.write(line + "\n")
    stream.flush()


def _run_open(resolved, workers: int) -> list[LoadPoint]:
    s = resolved.scenario
    return parallel_latency_vs_load(
        resolved.topology,
        resolved.routing_factory,
        resolved.traffic,
        loads=s.loads,
        config=resolved.config,
        workers=workers,
        replicas=s.replicas,
        stop_after_saturation=s.stop_after_saturation,
        backend=resolved.backend,
    )


def run_campaign(
    campaign: Campaign,
    workers: int = 1,
    out=None,
    resume: bool = False,
) -> CampaignReport:
    """Execute a campaign, streaming rows to ``out`` (JSONL).

    ``workers`` fans each scenario's internal grid (and batches of
    consecutive closed-loop scenarios) across processes; rows are
    identical for any value.  ``resume=True`` (requires ``out``)
    reuses the complete scenarios already present in ``out`` and
    simulates only the rest; the finished file is byte-identical to a
    clean run.  Duplicate scenarios are dropped before execution.
    """
    campaign = campaign.dedup()
    scenarios = campaign.scenarios
    if resume and out is None:
        raise ValueError("resume=True needs an output file to resume from")
    out_path = Path(out) if out is not None else None

    cache: dict[str, list[str]] = {}
    tmp_path = (
        out_path.with_name(out_path.name + ".tmp") if out_path is not None else None
    )
    if resume and out_path is not None:
        if out_path.exists():
            cache = _load_cache(out_path, campaign.name, scenarios)
        # A resumed run that was itself interrupted left its progress
        # in the temp file; harvest that too so no simulation is ever
        # repeated across any number of interruptions.
        if tmp_path.exists():
            for h, lines in _load_cache(tmp_path, campaign.name, scenarios).items():
                cache.setdefault(h, lines)

    # Resumed runs rewrite through a temp file so an interruption never
    # destroys the cache the next attempt resumes from.
    write_path = out_path
    if out_path is not None and cache:
        write_path = tmp_path

    report = CampaignReport(campaign=campaign.name, out=str(out_path) if out_path else None)
    hashes = [scenario_hash(s) for s in scenarios]
    pending = [h not in cache for h in hashes]

    stream = open(write_path, "w") if write_path is not None else None
    try:
        i = 0
        while i < len(scenarios):
            s = scenarios[i]
            if not pending[i]:
                raw = cache[hashes[i]]
                rows = [json.loads(line) for line in raw]
                report.rows.extend(rows)
                report.skipped += 1
                _emit(stream, rows, raw)
                i += 1
            elif s.engine == "open":
                rows = _open_rows(campaign.name, s, _run_open(resolve(s), workers))
                report.rows.extend(rows)
                report.simulated += 1
                _emit(stream, rows, None)
                i += 1
            else:
                # Batch the pending closed-loop scenarios of the window
                # [i, j): consecutive modulo cached/closed neighbours,
                # stopping at the next pending open-loop scenario.
                j = i
                batch: list[int] = []
                while j < len(scenarios) and not (
                    pending[j] and scenarios[j].engine == "open"
                ):
                    if pending[j]:
                        batch.append(j)
                    j += 1
                tasks = []
                for k in batch:
                    r = resolve(scenarios[k])
                    tasks.append(
                        CompletionTask(
                            topology=r.topology,
                            routing_factory=r.routing_factory,
                            workload=r.workload,
                            config=r.config,
                            max_cycles=scenarios[k].max_cycles,
                            label=scenarios[k].label,
                        )
                    )
                results = dict(
                    zip(batch, parallel_workload_completion(tasks, workers=workers))
                )
                for k in range(i, j):
                    if k in results:
                        rows = _closed_rows(campaign.name, scenarios[k], results[k])
                        report.rows.extend(rows)
                        report.simulated += 1
                        _emit(stream, rows, None)
                    else:
                        raw = cache[hashes[k]]
                        rows = [json.loads(line) for line in raw]
                        report.rows.extend(rows)
                        report.skipped += 1
                        _emit(stream, rows, raw)
                i = j
    finally:
        if stream is not None:
            stream.close()
    if write_path is not None and write_path != out_path:
        os.replace(write_path, out_path)
    if out_path is not None:
        _write_meta(out_path, campaign, workers, report.simulated)
    return report


def rows_by_label(report: CampaignReport) -> dict[str, list[dict]]:
    """Group a report's rows by scenario label, in first-seen order."""
    grouped: dict[str, list[dict]] = {}
    for row in report.rows:
        grouped.setdefault(row["label"], []).append(row)
    return grouped
