"""One entry point for every simulation the repo can run (Layer 5).

:func:`run_campaign` walks a campaign in order, dispatches each
scenario to the right engine through the fork-pool transport of
:mod:`repro.sim.parallel` — open-loop scenarios fan their
(load × replica) grid across workers via
:func:`~repro.sim.parallel.parallel_latency_vs_load`; runs of pending
closed-loop scenarios are batched into one
:func:`~repro.sim.parallel.parallel_workload_completion` call — and
streams one JSON row per result to a JSONL file as each scenario
completes.

Every row carries its scenario hash and its ``row``/``rows`` position,
so the output is self-describing and resumable: with ``resume=True``
any scenario whose full row set already exists in the output file is
reused verbatim (zero simulations) and only the missing ones run.
Because rows are written in campaign order and cached lines are
replayed byte-for-byte, an interrupted campaign resumed to completion
produces a final file identical to an uninterrupted run.

Resume generalizes beyond one file through two opt-in transports
(DESIGN.md, Layer 7):

- ``store=`` plugs in a content-addressed result store
  (:mod:`repro.service.store`): scenarios whose hash is already in the
  store replay from it without simulating, and freshly simulated
  scenarios are written back — so any scenario ever simulated against
  the store, by any process on any host, is never re-simulated.
- ``service=`` dispatches the pending work units through a
  coordinator/worker scheduler (:mod:`repro.service.coordinator`)
  instead of the local fork pools; rows stay byte-identical to an
  in-process run at any worker/host count.

Next to the JSONL, the runner writes a provenance sidecar
(``<out>.meta.json``): the campaign name, package version, worker
count, and the scenario index (hash, label, engine, row count, and the
``origin`` of each scenario's rows — ``"simulated"`` or ``"cache"``
for store hits).  The analysis layer (:mod:`repro.analysis.frames`)
reads it to stamp per-figure provenance into reproduction reports.
Apart from the heartbeat section (wall-clock/sims-per-sec of the run
that produced the rows, preserved across no-op resumes, like the
origin markers), the sidecar is free of timestamps and run counters,
so a no-op resume rewrites it byte-identically.

Scenarios that arm telemetry probes stream their measurements to a
*third* file, ``<out>.metrics.jsonl`` (one canonical-JSON row per
telemetry-carrying load point), which resumes byte-for-byte alongside
the main rows and is absent when no probe ever fired.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Sequence

from repro.scenarios.campaign import Campaign
from repro.scenarios.resolve import resolve
from repro.scenarios.spec import Scenario, canonical_json, scenario_hash
from repro.sim.parallel import (
    CompletionTask,
    parallel_latency_vs_load,
    parallel_workload_completion,
    simulations_started,
)
from repro.sim.stats import LoadPoint, WorkloadResult


def _clean(value):
    """NaN -> None so rows stay strict JSON (and reload unchanged)."""
    if isinstance(value, float) and value != value:
        return None
    return value


def _open_payload(
    scenario: Scenario,
    points: Sequence[LoadPoint],
    disconnected: bool = False,
) -> list[dict]:
    """One open-loop scenario's result rows, minus the campaign name.

    Payload rows are the campaign-independent part of a row — what the
    content-addressed store keys by ``scenario_hash`` and what service
    workers ship back over the wire.  :func:`_with_campaign` stamps the
    campaign name in; because the final line is ``canonical_json``
    either way, a row replayed from a payload is byte-identical to a
    freshly simulated one.

    Rows of a faulted scenario additionally carry ``fault_fraction``
    (the spec's link-kill fraction — the x-axis of degradation
    figures) and ``disconnected``; healthy scenarios write neither
    key, so their pre-fault row bytes are untouched.
    """
    h = scenario_hash(scenario)
    spec = scenario.to_dict()
    rows = []
    for i, pt in enumerate(points):
        row = {
            "scenario": h,
            "label": scenario.label,
            "engine": "open",
            "fidelity": scenario.backend,
            "row": i,
            "rows": len(points),
            "load": pt.load,
            "latency": _clean(pt.latency),
            "accepted": _clean(pt.accepted),
            "saturated": bool(pt.saturated),
            "spec": spec,
        }
        if scenario.fault is not None:
            row["fault_fraction"] = scenario.fault.link_fraction
            row["disconnected"] = bool(disconnected)
        rows.append(row)
    return rows


def _open_scenario_payloads(
    scenario: Scenario, workers: int
) -> tuple[list[dict], list[dict]]:
    """Resolve and run one open-loop scenario into (rows, metrics).

    The single execution path shared by the local dispatch loop and
    the service worker (:mod:`repro.service.units`), so remote and
    local rows cannot drift.  A faulted scenario whose degraded
    topology fell apart short-circuits into structured
    ``disconnected`` rows — one per load point, null latency and
    throughput — without touching the simulator (routing tables over
    a disconnected graph are undefined).
    """
    resolved = resolve(scenario)
    if resolved.disconnected:
        points = [
            LoadPoint(load=load, latency=None, accepted=None, saturated=False)
            for load in scenario.loads
        ]
        return _open_payload(scenario, points, disconnected=True), []
    points = _run_open(resolved, workers)
    return _open_payload(scenario, points), _metrics_payload(scenario, points)


def _closed_payload(scenario: Scenario, result: WorkloadResult) -> list[dict]:
    """One closed-loop scenario's result row, minus the campaign name."""
    return [
        {
            "scenario": scenario_hash(scenario),
            "label": scenario.label,
            "engine": "closed",
            "fidelity": scenario.backend,
            "row": 0,
            "rows": 1,
            "workload": result.workload,
            "num_messages": result.num_messages,
            "completed_messages": result.completed_messages,
            "finished": result.finished,
            "makespan": result.makespan,
            "cycles": result.cycles,
            "delivered_flits": result.delivered_flits,
            "avg_message_latency": _clean(result.avg_message_latency),
            "p99_message_latency": _clean(result.p99_message_latency),
            "avg_packet_latency": _clean(result.avg_packet_latency),
            "flits_per_cycle": _clean(result.flits_per_cycle),
            "spec": scenario.to_dict(),
        }
    ]


def _with_campaign(payload: Sequence[dict], campaign: str) -> list[dict]:
    """Stamp the campaign name into payload rows (the full row form)."""
    return [{"campaign": campaign, **row} for row in payload]


def metrics_path_for(out_path: Path) -> Path:
    """The telemetry sidecar path for a campaign output file."""
    return out_path.with_name(out_path.name + ".metrics.jsonl")


def _metrics_payload(
    scenario: Scenario, points: Sequence[LoadPoint]
) -> list[dict]:
    """Telemetry sidecar rows for one open-loop scenario (campaign-free).

    One row per load point that actually carries telemetry; fill
    points past the saturation short-circuit (and every point of a
    telemetry-off scenario) contribute nothing.  ``row``/``rows``
    mirror the main result rows, so a sidecar row joins its result
    row on (scenario, row).
    """
    h = scenario_hash(scenario)
    rows = []
    for i, pt in enumerate(points):
        if pt.telemetry is None:
            continue
        row = {
            "scenario": h,
            "label": scenario.label,
            "row": i,
            "rows": len(points),
            "load": pt.load,
        }
        row.update(pt.telemetry.to_dict())
        rows.append(row)
    return rows


def _load_metrics_cache(path: Path, campaign_name: str) -> dict[str, list[str]]:
    """Raw metrics-sidecar lines grouped by scenario hash, in order.

    Unlike the main cache there is no per-scenario completeness check
    (a telemetry row count is not knowable up front — short-circuited
    points write nothing), so callers must only replay hashes whose
    *main* rows were complete: main-row completeness implies the
    scenario finished, and the runner writes a scenario metrics lines
    before its result rows.
    """
    by_hash: dict[str, list[str]] = {}
    for line in path.read_text().splitlines():
        try:
            row = json.loads(line)
            h = row["scenario"]
            name = row["campaign"]
        except (ValueError, KeyError, TypeError):
            continue
        if name != campaign_name or not isinstance(h, str):
            continue
        by_hash.setdefault(h, []).append(line)
    return by_hash


class _LazyStream:
    """A text stream that creates its file on first write only.

    Campaigns without telemetry must not leave an empty sidecar
    behind (its absence is the signal that no probes were armed).
    """

    def __init__(self, path):
        self.path = path
        self._fh = None
        #: True once any line was written (survives close()).
        self.wrote = False

    def emit(self, lines) -> None:
        if self.path is None or not lines:
            return
        if self._fh is None:
            self._fh = open(self.path, "w")
            self.wrote = True
        for line in lines:
            self._fh.write(line + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _load_cache(
    path: Path, campaign_name: str, scenarios: Sequence[Scenario]
) -> dict[str, list[str]]:
    """Raw JSONL lines of *complete* scenarios, keyed by hash.

    A scenario is complete when every ``row`` index 0..rows-1 is
    present.  Lines that fail to parse (a kill mid-write leaves a
    truncated tail), belong to no campaign scenario, or carry another
    campaign's name (cached lines replay verbatim, so a stale name
    would survive into the resumed file) are ignored.
    """
    expected = {scenario_hash(s): s.num_rows for s in scenarios}
    by_hash: dict[str, dict[int, str]] = {}
    for line in path.read_text().splitlines():
        try:
            row = json.loads(line)
            h, i, n = row["scenario"], row["row"], row["rows"]
            name = row["campaign"]
        except (ValueError, KeyError, TypeError):
            continue
        if name != campaign_name:
            continue
        if expected.get(h) != n or not isinstance(i, int) or not 0 <= i < n:
            continue
        by_hash.setdefault(h, {})[i] = line
    return {
        h: [rows[i] for i in range(expected[h])]
        for h, rows in by_hash.items()
        if len(rows) == expected[h]
    }


@dataclass
class CampaignReport:
    """Outcome of :func:`run_campaign`."""

    campaign: str
    rows: list[dict] = field(default_factory=list)
    #: Scenarios actually simulated this run.
    simulated: int = 0
    #: Scenarios whose rows were reused without simulating (resume
    #: cache or store; store reuses are also counted in store_hits).
    skipped: int = 0
    #: Scenarios served from the content-addressed result store.
    store_hits: int = 0
    out: str | None = None
    #: Telemetry sidecar rows (parsed), in campaign order.
    metrics_rows: list[dict] = field(default_factory=list)
    #: Heartbeat event stream: scenario_start / scenario_finish /
    #: campaign_finish dicts with wall-clock and simulation counts.
    events: list[dict] = field(default_factory=list)

    @property
    def heartbeat(self) -> dict | None:
        """The campaign_finish event, or None for an empty run."""
        for event in reversed(self.events):
            if event.get("event") == "campaign_finish":
                return event
        return None

    def summary(self) -> str:
        text = (
            f"campaign {self.campaign}: {self.simulated + self.skipped} scenarios "
            f"(simulated={self.simulated} skipped={self.skipped}"
        )
        if self.store_hits:
            text += f" store_hits={self.store_hits}"
        text += f"), {len(self.rows)} rows"
        hb = self.heartbeat
        if hb is not None:
            text += f", {hb['wall_s']:.2f}s wall"
            # sims_per_s is null on zero-simulation and zero-duration
            # campaigns (a fully-resumed run has no meaningful rate).
            if hb.get("sims") and hb.get("sims_per_s") is not None:
                text += f" ({hb['sims_per_s']:.1f} sims/s)"
        if self.metrics_rows:
            text += f", {len(self.metrics_rows)} telemetry rows"
        return text + (f" -> {self.out}" if self.out else "")


def _sims_per_s(sims: int, wall: float) -> float | None:
    """Simulation rate for a heartbeat event; null when meaningless.

    Fully-resumed campaigns schedule zero simulations and can finish in
    ~zero wall-clock — both make a rate division-prone nonsense, so
    such events carry ``sims_per_s: null`` instead.
    """
    if not sims or wall <= 0:
        return None
    return round(sims / wall, 2)


def _write_meta(
    out_path: Path, campaign: Campaign, workers: int, simulated: int,
    heartbeat: dict | None = None, origins: dict[str, str] | None = None,
) -> None:
    """Provenance sidecar for an output file (see module docstring).

    ``workers`` and ``heartbeat`` record how the rows were *produced*:
    a resume that simulated nothing keeps the previous sidecar's
    worker count and heartbeat — the rows in the file are still the
    old run's — instead of stamping numbers from a run that never
    simulated anything (which also keeps the sidecar byte-stable
    across no-op resumes).  ``origins`` follows the same rule per
    scenario: ``"simulated"`` and ``"cache"`` (store hit) describe how
    this run obtained the rows, while file-resumed scenarios keep the
    origin recorded by the run that actually produced them.
    """
    from repro import __version__

    meta_path = out_path.with_name(out_path.name + ".meta.json")
    previous: dict | None = None
    if meta_path.exists():
        try:
            parsed = json.loads(meta_path.read_text(encoding="utf-8"))
            # A corrupt/foreign sidecar (non-dict JSON included) is
            # simply rewritten rather than trusted.
            if isinstance(parsed, dict) and parsed.get("campaign") == campaign.name:
                previous = parsed
        except ValueError:
            pass
    if simulated == 0 and previous is not None:
        workers = previous.get("workers", workers)
        heartbeat = previous.get("heartbeat", heartbeat)
    previous_origins = {
        e.get("scenario"): e.get("origin", "simulated")
        for e in (previous.get("scenarios", []) if previous else [])
        if isinstance(e, dict)
    }

    def _origin(h: str) -> str:
        o = (origins or {}).get(h, "simulated")
        if o == "resume":
            return previous_origins.get(h, "simulated")
        return o

    meta = {
        "format": 1,
        "campaign": campaign.name,
        "generator": f"repro {__version__}",
        "workers": workers,
        "scenarios": [
            {
                "scenario": scenario_hash(s),
                "label": s.label,
                "engine": s.engine,
                "rows": s.num_rows,
                "origin": _origin(scenario_hash(s)),
            }
            for s in campaign.scenarios
        ],
    }
    if heartbeat is not None:
        meta["heartbeat"] = heartbeat
    meta_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
        newline="\n",
    )


def _emit(stream: IO[str] | None, rows: list[dict], raw: list[str] | None) -> None:
    if stream is None:
        return
    for line in raw if raw is not None else map(canonical_json, rows):
        stream.write(line + "\n")
    stream.flush()


def _run_open(resolved, workers: int) -> list[LoadPoint]:
    s = resolved.scenario
    return parallel_latency_vs_load(
        resolved.topology,
        resolved.routing_factory,
        resolved.traffic,
        loads=s.loads,
        config=resolved.config,
        workers=workers,
        replicas=s.replicas,
        stop_after_saturation=s.stop_after_saturation,
        backend=resolved.backend,
        telemetry=resolved.telemetry,
    )


def _heartbeat(report: CampaignReport, progress: bool, **fields) -> None:
    """Record one heartbeat event; echo it to stderr under --progress.

    Events go to stderr (one canonical-JSON object per line) so a
    campaign's stdout/file outputs stay untouched by observability.
    """
    report.events.append(fields)
    if progress:
        print(canonical_json(fields), file=sys.stderr, flush=True)


def partition_units(
    scenarios: Sequence[Scenario], pending: Sequence[bool]
) -> list[tuple[str, list[int]]]:
    """Split the pending scenarios into schedulable work units.

    The unit boundaries replicate the local dispatch loop exactly: an
    open-loop scenario is one unit; a run of pending closed-loop
    scenarios — consecutive modulo already-cached neighbours, stopping
    at the next pending open-loop scenario — forms one batch unit (the
    grain :func:`~repro.sim.parallel.parallel_workload_completion`
    receives).  Units are in campaign order, so executing them in
    order and emitting cached scenarios between them reconstructs the
    campaign's deterministic row order.
    """
    units: list[tuple[str, list[int]]] = []
    i = 0
    while i < len(scenarios):
        if not pending[i]:
            i += 1
        elif scenarios[i].engine == "open":
            units.append(("open", [i]))
            i += 1
        else:
            j = i
            batch: list[int] = []
            while j < len(scenarios) and not (
                pending[j] and scenarios[j].engine == "open"
            ):
                if pending[j]:
                    batch.append(j)
                j += 1
            units.append(("closed", batch))
            i = j
    return units


def run_campaign(
    campaign: Campaign,
    workers: int = 1,
    out=None,
    resume: bool = False,
    progress: bool = False,
    store=None,
    service=None,
) -> CampaignReport:
    """Execute a campaign, streaming rows to ``out`` (JSONL).

    ``workers`` fans each scenario's internal grid (and batches of
    consecutive closed-loop scenarios) across processes; rows are
    identical for any value.  ``resume=True`` (requires ``out``)
    reuses the complete scenarios already present in ``out`` and
    simulates only the rest; the finished file is byte-identical to a
    clean run.  Duplicate scenarios are dropped before execution.

    ``store`` plugs in a content-addressed result store — a
    :class:`~repro.service.store.ResultStore`, a directory path, or a
    ``"file:"``/``"memory:"`` URL for :func:`~repro.service.store.open_store`.
    Scenarios found in the store replay without simulating (counted in
    ``store_hits``) and fresh results are written back, so the store
    memoizes across files, processes, and hosts while the output stays
    byte-identical to a cold run.  ``service`` (a
    :class:`~repro.service.coordinator.ServiceConfig`) dispatches the
    pending work units through the coordinator/worker scheduler
    instead of the local fork pools — same rows, any host count.

    A campaign whose every scenario is already covered by the resume
    file and/or the store is recognised *before* any spec resolution,
    service socket, or worker pool is touched: a no-op resume costs
    O(scenario hashes) plus the file replay, nothing else.

    Scenarios with an armed :class:`~repro.sim.telemetry.TelemetrySpec`
    stream their probe measurements to a second sidecar,
    ``<out>.metrics.jsonl`` — created only when at least one telemetry
    row exists, resumed/replayed byte-for-byte exactly like the main
    file.  ``progress=True`` echoes the heartbeat event stream
    (scenario start/finish, wall-clock, sims/sec) to stderr as
    canonical-JSON lines; the same events land on
    :attr:`CampaignReport.events` either way.
    """
    campaign = campaign.dedup()
    scenarios = campaign.scenarios
    if resume and out is None:
        raise ValueError("resume=True needs an output file to resume from")
    out_path = Path(out) if out is not None else None
    if store is not None:
        from repro.service.store import open_store

        store = open_store(store)

    cache: dict[str, list[str]] = {}
    metrics_cache: dict[str, list[str]] = {}
    tmp_path = (
        out_path.with_name(out_path.name + ".tmp") if out_path is not None else None
    )
    metrics_out = metrics_path_for(out_path) if out_path is not None else None
    metrics_tmp = (
        metrics_out.with_name(metrics_out.name + ".tmp")
        if metrics_out is not None
        else None
    )
    if resume and out_path is not None:
        if out_path.exists():
            cache = _load_cache(out_path, campaign.name, scenarios)
        # A resumed run that was itself interrupted left its progress
        # in the temp file; harvest that too so no simulation is ever
        # repeated across any number of interruptions.
        if tmp_path.exists():
            for h, lines in _load_cache(tmp_path, campaign.name, scenarios).items():
                cache.setdefault(h, lines)
        # Telemetry sidecar lines follow their main rows: only hashes
        # in the (complete-scenario) main cache are ever replayed.
        if metrics_out.exists():
            metrics_cache = _load_metrics_cache(metrics_out, campaign.name)
        if metrics_tmp.exists():
            for h, lines in _load_metrics_cache(
                metrics_tmp, campaign.name
            ).items():
                metrics_cache.setdefault(h, lines)

    report = CampaignReport(campaign=campaign.name, out=str(out_path) if out_path else None)
    hashes = [scenario_hash(s) for s in scenarios]
    pending = [h not in cache for h in hashes]
    #: hash -> how this run obtained the rows ("resume" defers to the
    #: previous meta sidecar; see _write_meta).
    origins: dict[str, str] = {
        h: "resume" for h, p in zip(hashes, pending) if not p
    }
    cache_source: dict[str, str] = {h: "resume" for h in origins}
    if store is not None:
        # Store probe: one get() per still-pending hash, before any
        # resolution — a warm store turns the scenario into a replay.
        for i, h in enumerate(hashes):
            if not pending[i]:
                continue
            entry = store.get(h)
            if entry is None:
                continue
            cache[h] = [
                canonical_json(r) for r in _with_campaign(entry.rows, campaign.name)
            ]
            if entry.metrics:
                metrics_cache[h] = [
                    canonical_json(r)
                    for r in _with_campaign(entry.metrics, campaign.name)
                ]
            pending[i] = False
            origins[h] = "cache"
            cache_source[h] = "store"
            report.store_hits += 1

    # Resumed runs rewrite through a temp file so an interruption never
    # destroys the cache the next attempt resumes from.
    write_path = out_path
    metrics_write_path = metrics_out
    if out_path is not None and cache:
        write_path = tmp_path
        metrics_write_path = metrics_tmp

    t_campaign = time.perf_counter()
    sims_at_start = simulations_started()

    def _metrics_emit(mrows: list[dict], raw: list[str] | None) -> None:
        metrics_stream.emit(
            raw if raw is not None else [canonical_json(r) for r in mrows]
        )
        report.metrics_rows.extend(mrows)

    stream = open(write_path, "w") if write_path is not None else None
    metrics_stream = _LazyStream(metrics_write_path)

    def _replay_cached(i: int) -> None:
        """Emit scenario ``i`` from the resume/store cache."""
        raw = cache[hashes[i]]
        rows = [json.loads(line) for line in raw]
        report.rows.extend(rows)
        report.skipped += 1
        mraw = metrics_cache.get(hashes[i], [])
        _metrics_emit([json.loads(line) for line in mraw], mraw)
        _emit(stream, rows, raw)
        _heartbeat(
            report, progress, event="scenario_cached",
            campaign=campaign.name, scenario=hashes[i],
            label=scenarios[i].label, index=i, of=len(scenarios),
            source=cache_source[hashes[i]],
        )

    def _record_simulated(
        k: int, payload: list[dict], metrics_payload: list[dict]
    ) -> None:
        """Emit scenario ``k``'s freshly produced payload rows."""
        rows = _with_campaign(payload, campaign.name)
        report.simulated += 1
        origins[hashes[k]] = "simulated"
        # Metrics lines land before the result rows so a kill between
        # the two writes leaves the scenario pending (incomplete main
        # rows), never with lost telemetry.
        _metrics_emit(_with_campaign(metrics_payload, campaign.name), None)
        report.rows.extend(rows)
        _emit(stream, rows, None)
        if store is not None:
            from repro.service.store import StoreEntry

            store.put(
                StoreEntry(
                    scenario=hashes[k], rows=payload, metrics=metrics_payload
                )
            )

    try:
        if not any(pending):
            # No-op resume short-circuit: everything is in the resume
            # file and/or the store, so replay it without resolving a
            # single topology, opening a service socket, or forking a
            # pool — O(hash count) + the byte replay.
            for i in range(len(scenarios)):
                _replay_cached(i)
        elif service is not None:
            _run_service(
                campaign, scenarios, hashes, pending, workers, service,
                report, progress, _replay_cached, _record_simulated,
            )
        else:
            _run_local(
                campaign, scenarios, hashes, pending, workers,
                report, progress, _replay_cached, _record_simulated,
            )
    finally:
        if stream is not None:
            stream.close()
        metrics_stream.close()
    wall = time.perf_counter() - t_campaign
    sims = simulations_started() - sims_at_start
    _heartbeat(
        report, progress, event="campaign_finish", campaign=campaign.name,
        workers=workers, wall_s=round(wall, 3), sims=sims,
        sims_per_s=_sims_per_s(sims, wall),
        simulated=report.simulated, skipped=report.skipped,
        rows=len(report.rows),
    )
    if write_path is not None and write_path != out_path:
        os.replace(write_path, out_path)
    if metrics_out is not None:
        if metrics_stream.wrote and metrics_write_path != metrics_out:
            os.replace(metrics_write_path, metrics_out)
        elif not metrics_stream.wrote:
            # No telemetry row this run: a sidecar from an earlier
            # (differently-configured) run would be stale — remove it.
            metrics_out.unlink(missing_ok=True)
        if metrics_tmp.exists() and metrics_write_path != metrics_tmp:
            metrics_tmp.unlink()
    if out_path is not None:
        hb = report.heartbeat
        _write_meta(
            out_path, campaign, workers, report.simulated,
            heartbeat=(
                {
                    "wall_s": hb["wall_s"],
                    "sims": hb["sims"],
                    "sims_per_s": hb["sims_per_s"],
                }
                if hb is not None and hb["sims"]
                else None
            ),
            origins=origins,
        )
    return report


def _run_local(
    campaign: Campaign,
    scenarios: Sequence[Scenario],
    hashes: Sequence[str],
    pending: Sequence[bool],
    workers: int,
    report: CampaignReport,
    progress: bool,
    replay_cached,
    record_simulated,
) -> None:
    """The in-process dispatch loop (fork-pool transports of Layer 3)."""
    i = 0
    while i < len(scenarios):
        s = scenarios[i]
        if not pending[i]:
            replay_cached(i)
            i += 1
        elif s.engine == "open":
            _heartbeat(
                report, progress, event="scenario_start",
                campaign=campaign.name, scenario=hashes[i], label=s.label,
                index=i, of=len(scenarios), workers=workers,
            )
            t0 = time.perf_counter()
            sims0 = simulations_started()
            payload, metrics = _open_scenario_payloads(s, workers)
            wall = time.perf_counter() - t0
            sims = simulations_started() - sims0
            record_simulated(i, payload, metrics)
            _heartbeat(
                report, progress, event="scenario_finish",
                campaign=campaign.name, scenario=hashes[i], label=s.label,
                index=i, of=len(scenarios), workers=workers,
                wall_s=round(wall, 3), sims=sims,
                sims_per_s=_sims_per_s(sims, wall),
            )
            i += 1
        else:
            # Batch the pending closed-loop scenarios of the window
            # [i, j): consecutive modulo cached/closed neighbours,
            # stopping at the next pending open-loop scenario.
            j = i
            batch: list[int] = []
            while j < len(scenarios) and not (
                pending[j] and scenarios[j].engine == "open"
            ):
                if pending[j]:
                    batch.append(j)
                j += 1
            tasks = []
            for k in batch:
                r = resolve(scenarios[k])
                tasks.append(
                    CompletionTask(
                        topology=r.topology,
                        routing_factory=r.routing_factory,
                        workload=r.workload,
                        config=r.config,
                        max_cycles=scenarios[k].max_cycles,
                        label=scenarios[k].label,
                        backend=r.backend,
                    )
                )
            if batch:
                _heartbeat(
                    report, progress, event="batch_start",
                    campaign=campaign.name, engine="closed",
                    scenarios=len(batch), index=i, of=len(scenarios),
                    workers=workers,
                )
            t0 = time.perf_counter()
            sims0 = simulations_started()
            results = dict(
                zip(batch, parallel_workload_completion(tasks, workers=workers))
            )
            wall = time.perf_counter() - t0
            sims = simulations_started() - sims0
            if batch:
                _heartbeat(
                    report, progress, event="batch_finish",
                    campaign=campaign.name, engine="closed",
                    scenarios=len(batch), index=i, of=len(scenarios),
                    workers=workers, wall_s=round(wall, 3), sims=sims,
                    sims_per_s=_sims_per_s(sims, wall),
                )
            for k in range(i, j):
                if k in results:
                    record_simulated(
                        k, _closed_payload(scenarios[k], results[k]), []
                    )
                else:
                    replay_cached(k)
            i = j


def _run_service(
    campaign: Campaign,
    scenarios: Sequence[Scenario],
    hashes: Sequence[str],
    pending: Sequence[bool],
    workers: int,
    service,
    report: CampaignReport,
    progress: bool,
    replay_cached,
    record_simulated,
) -> None:
    """Dispatch the pending units through the coordinator scheduler.

    The coordinator completes units in whatever order workers finish
    them but hands them back here in campaign order, so rows stream to
    the output file deterministically: cached scenarios interleave at
    their campaign positions, exactly like the local loop.
    """
    from repro.service.coordinator import Coordinator

    units = partition_units(scenarios, pending)
    next_idx = 0

    def emit_cached_until(limit: int) -> None:
        nonlocal next_idx
        while next_idx < limit:
            if pending[next_idx]:
                raise RuntimeError(
                    f"scenario {next_idx} emitted out of order"
                )  # pragma: no cover - coordinator ordering bug
            replay_cached(next_idx)
            next_idx += 1

    def on_scenario(k: int, payload: dict) -> None:
        nonlocal next_idx
        emit_cached_until(k)
        record_simulated(k, payload["rows"], payload.get("metrics", []))
        next_idx = k + 1

    coordinator = Coordinator(
        campaign.name, scenarios, service, local_workers=workers,
        heartbeat=lambda **fields: _heartbeat(report, progress, **fields),
    )
    coordinator.execute(units, on_scenario)
    emit_cached_until(len(scenarios))


def rows_by_label(report: CampaignReport) -> dict[str, list[dict]]:
    """Group a report's rows by scenario label, in first-seen order."""
    grouped: dict[str, list[dict]] = {}
    for row in report.rows:
        grouped.setdefault(row["label"], []).append(row)
    return grouped
