"""Name -> workload factory registry (experiment CLI / benchmarks).

``make_workload("alltoall", num_ranks=32, size_flits=16)`` builds a
generator by its CLI name; kinds that constrain the rank count
(recursive doubling, process grids) round the requested count down to
the nearest feasible shape so any ``--ranks`` value works.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.base import Workload, spread_placement
from repro.workloads.collectives import (
    AllToAll,
    BroadcastTree,
    GatherTree,
    RecursiveDoublingAllReduce,
    RingAllReduce,
)
from repro.workloads.stencil import HaloExchange2D, HaloExchange3D


def _pow2_floor(n: int) -> int:
    return 1 << (n.bit_length() - 1)


def _grid2(n: int) -> tuple[int, int]:
    """Largest near-square 2D grid with at most n ranks."""
    best = (1, 2)
    for px in range(1, int(n**0.5) + 1):
        py = n // px
        if px * py > best[0] * best[1] or (
            px * py == best[0] * best[1] and abs(px - py) < abs(best[0] - best[1])
        ):
            best = (px, py)
    return best


def _grid3(n: int) -> tuple[int, int, int]:
    """Largest near-cubic 3D grid with at most n ranks.

    Ties on rank count break toward the most balanced shape, so the
    degenerate (1, 1, n) ring never wins when a genuine 3D
    factorisation of the same size exists.
    """
    best = (1, 1, 2)
    best_score = (2, -1)
    for px in range(1, int(round(n ** (1 / 3))) + 2):
        for py in range(px, int((n // max(1, px)) ** 0.5) + 2):
            pz = n // (px * py)
            if pz < py:
                continue
            score = (px * py * pz, px - pz)  # size first, then balance
            if score > best_score:
                best, best_score = (px, py, pz), score
    return best


WORKLOAD_KINDS = (
    "alltoall",
    "ring-allreduce",
    "rd-allreduce",
    "broadcast",
    "gather",
    "halo2d",
    "halo3d",
)

#: The generator class each kind constructs — the self-description the
#: auto-generated registry reference (docs/REGISTRY.md) introspects.
WORKLOAD_CLASSES: dict[str, type] = {
    "alltoall": AllToAll,
    "ring-allreduce": RingAllReduce,
    "rd-allreduce": RecursiveDoublingAllReduce,
    "broadcast": BroadcastTree,
    "gather": GatherTree,
    "halo2d": HaloExchange2D,
    "halo3d": HaloExchange3D,
}


def make_workload(
    kind: str,
    num_ranks: int,
    size_flits: int = 16,
    endpoints: Sequence[int] | None = None,
    iterations: int = 2,
) -> Workload:
    """Build a workload generator by CLI name.

    ``num_ranks`` is an upper bound: kinds with shape constraints use
    the largest feasible rank count not exceeding it (and placements
    are truncated to match).
    """
    if kind == "alltoall":
        return AllToAll(num_ranks, size_flits, endpoints=endpoints)
    if kind == "ring-allreduce":
        return RingAllReduce(num_ranks, size_flits, endpoints=endpoints)
    if kind == "rd-allreduce":
        return RecursiveDoublingAllReduce(
            _pow2_floor(num_ranks), size_flits, endpoints=endpoints
        )
    if kind == "broadcast":
        return BroadcastTree(num_ranks, size_flits, endpoints=endpoints)
    if kind == "gather":
        return GatherTree(num_ranks, size_flits, endpoints=endpoints)
    if kind == "halo2d":
        return HaloExchange2D(
            _grid2(num_ranks), halo_flits=size_flits, iterations=iterations,
            endpoints=endpoints,
        )
    if kind == "halo3d":
        return HaloExchange3D(
            _grid3(num_ranks), halo_flits=size_flits, iterations=iterations,
            endpoints=endpoints,
        )
    raise ValueError(f"unknown workload {kind!r}; choose from {WORKLOAD_KINDS}")


#: Rank -> endpoint placement strategies by name (scenario specs).
PLACEMENT_KINDS = ("spread", "linear")


def make_placement(name: str, topology, num_ranks: int) -> list[int]:
    """Endpoint list for ``num_ranks`` ranks on ``topology`` by name.

    ``spread`` round-robins ranks over routers (the experiment
    default); ``linear`` packs them onto the lowest endpoint ids.
    """
    if name == "spread":
        return spread_placement(topology, num_ranks)
    if name == "linear":
        return list(range(min(num_ranks, topology.num_endpoints)))
    raise ValueError(f"unknown placement {name!r}; choose from {PLACEMENT_KINDS}")


def make_placed_workload(
    kind: str,
    topology,
    num_ranks: int,
    size_flits: int = 16,
    iterations: int = 2,
    placement: str = "spread",
) -> Workload:
    """Workload with its ranks placed on ``topology`` by strategy name.

    The one-stop resolution the scenario layer uses for
    :class:`repro.scenarios.WorkloadSpec`: equivalent to
    ``make_workload(kind, ..., endpoints=make_placement(placement, ...))``.
    """
    return make_workload(
        kind,
        num_ranks,
        size_flits,
        endpoints=make_placement(placement, topology, num_ranks),
        iterations=iterations,
    )
