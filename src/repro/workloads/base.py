"""The workload abstraction: dependency-ordered application messages.

The paper evaluates Slim Fly open-loop (§V: Bernoulli injection at a
fixed offered load).  Real applications are *closed-loop*: a rank
sends a message only after the messages it depends on have arrived
(collective steps, halo exchanges after a compute phase, trace
replay).  A :class:`Workload` captures exactly that structure — a DAG
of :class:`Message` records — and nothing else; the closed-loop
engine (:class:`repro.sim.engine.ClosedLoopEngine`) consumes the DAG
directly and reports per-message completion times.

Ranks vs endpoints
------------------
Generators reason in *ranks* ``0..num_ranks-1`` (the application's
process ids) and map them onto simulator endpoints through an
explicit placement (``endpoints``), defaulting to the linear map
``rank r -> endpoint r``.  Placement is part of the workload: the
same collective on the same topology behaves differently under a
different mapping, which is precisely the kind of scenario this
subsystem exists to express.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Message:
    """One application-level message (may span many packets).

    ``deps`` are message ids that must *complete* (tail flit ejected
    at the destination) before this message may be injected.
    """

    mid: int
    src: int  #: source endpoint
    dst: int  #: destination endpoint
    size_flits: int
    deps: tuple[int, ...] = ()
    tag: str = ""  #: free-form label (collective step, trace annotation)

    def __post_init__(self):
        if self.size_flits < 1:
            raise ValueError(f"message {self.mid}: size_flits must be >= 1")
        if self.mid in self.deps:
            raise ValueError(f"message {self.mid} depends on itself")


def validate_messages(messages: Sequence[Message]) -> None:
    """Check a message list is a well-formed dependency DAG.

    Raises ``ValueError`` on duplicate ids, unknown dependency ids, or
    dependency cycles (Kahn's algorithm).  Every generator's output
    passes this; traces are validated on load.
    """
    by_id: dict[int, Message] = {}
    for m in messages:
        if m.mid in by_id:
            raise ValueError(f"duplicate message id {m.mid}")
        by_id[m.mid] = m
    indegree = {m.mid: 0 for m in messages}
    dependents: dict[int, list[int]] = {m.mid: [] for m in messages}
    for m in messages:
        for d in m.deps:
            if d not in by_id:
                raise ValueError(f"message {m.mid} depends on unknown id {d}")
            indegree[m.mid] += 1
            dependents[d].append(m.mid)
    frontier = [mid for mid, deg in indegree.items() if deg == 0]
    seen = 0
    while frontier:
        mid = frontier.pop()
        seen += 1
        for nxt in dependents[mid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                frontier.append(nxt)
    if seen != len(messages):
        raise ValueError("dependency cycle in workload messages")


class Workload(ABC):
    """A named generator of dependency-ordered messages.

    Parameters
    ----------
    num_ranks:
        Application process count.
    endpoints:
        Placement: ``endpoints[r]`` is the simulator endpoint hosting
        rank ``r``.  Defaults to the identity map.  Must have at least
        ``num_ranks`` entries, all distinct.
    """

    name: str = "workload"

    def __init__(self, num_ranks: int, endpoints: Sequence[int] | None = None):
        if num_ranks < 2:
            raise ValueError("workloads need at least 2 ranks")
        if endpoints is None:
            endpoints = range(num_ranks)
        endpoints = list(endpoints)[:num_ranks]
        if len(endpoints) < num_ranks:
            raise ValueError(
                f"placement has {len(endpoints)} endpoints for {num_ranks} ranks"
            )
        if len(set(endpoints)) != len(endpoints):
            raise ValueError("placement maps two ranks to the same endpoint")
        self.num_ranks = num_ranks
        self.endpoints = endpoints

    def ep(self, rank: int) -> int:
        """Endpoint hosting ``rank`` under the placement."""
        return self.endpoints[rank]

    @abstractmethod
    def messages(self) -> list[Message]:
        """The full message DAG (endpoint ids, validated)."""

    # -- derived quantities ------------------------------------------------

    def total_flits(self) -> int:
        return sum(m.size_flits for m in self.messages())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, ranks={self.num_ranks})"


class _Builder:
    """Incremental message-list builder shared by the generators."""

    def __init__(self):
        self.messages: list[Message] = []

    def add(
        self,
        src: int,
        dst: int,
        size_flits: int,
        deps: Iterable[int] = (),
        tag: str = "",
    ) -> int:
        mid = len(self.messages)
        self.messages.append(
            Message(mid, src, dst, size_flits, tuple(deps), tag)
        )
        return mid

    def build(self) -> list[Message]:
        validate_messages(self.messages)
        return self.messages


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def spread_placement(topology, num_ranks: int) -> list[int]:
    """Round-robin ranks over routers (one endpoint per router first).

    The identity default placement parks consecutive ranks on the same
    switch and measures concentration; spreading makes the
    inter-router fabric carry the workload — the placement the
    completion-time experiments, benchmarks and examples share.
    ``topology`` is anything exposing ``endpoints_of_router``.
    """
    out: list[int] = []
    slot = 0
    while len(out) < num_ranks:
        progressed = False
        for eps in topology.endpoints_of_router:
            if slot < len(eps):
                out.append(eps[slot])
                progressed = True
                if len(out) == num_ranks:
                    return out
        if not progressed:
            raise ValueError(
                f"topology has only {len(out)} endpoints for {num_ranks} ranks"
            )
        slot += 1
    return out
