"""Closed-loop application workloads (DESIGN.md, "Workload layer").

The open-loop evaluation of the paper (§V, Bernoulli injection)
answers "what load can the fabric sustain"; this package answers the
question applications ask — "how long does my communication take" —
by expressing workloads as dependency-ordered message DAGs that the
closed-loop engine (:class:`repro.sim.engine.ClosedLoopEngine`)
replays with injection gated on dependency completion.

Modules
-------
- :mod:`repro.workloads.base` — :class:`Message`, :class:`Workload`,
  DAG validation.
- :mod:`repro.workloads.collectives` — ring/recursive-doubling
  all-reduce, all-to-all, broadcast/gather trees.
- :mod:`repro.workloads.stencil` — 2D/3D halo exchange on process
  grids.
- :mod:`repro.workloads.trace` — JSONL record/replay
  (:func:`write_trace` / :func:`read_trace`).
- :mod:`repro.workloads.registry` — CLI name -> generator factory.
"""

from repro.workloads.base import (
    Message,
    Workload,
    spread_placement,
    validate_messages,
)
from repro.workloads.collectives import (
    AllToAll,
    BroadcastTree,
    GatherTree,
    RecursiveDoublingAllReduce,
    RingAllReduce,
)
from repro.workloads.stencil import HaloExchange, HaloExchange2D, HaloExchange3D
from repro.workloads.trace import TraceWorkload, read_trace, write_trace
from repro.workloads.registry import (
    PLACEMENT_KINDS,
    WORKLOAD_KINDS,
    make_placed_workload,
    make_placement,
    make_workload,
)

__all__ = [
    "Message",
    "Workload",
    "spread_placement",
    "validate_messages",
    "AllToAll",
    "BroadcastTree",
    "GatherTree",
    "RecursiveDoublingAllReduce",
    "RingAllReduce",
    "HaloExchange",
    "HaloExchange2D",
    "HaloExchange3D",
    "TraceWorkload",
    "read_trace",
    "write_trace",
    "PLACEMENT_KINDS",
    "WORKLOAD_KINDS",
    "make_placed_workload",
    "make_placement",
    "make_workload",
]
