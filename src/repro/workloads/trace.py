"""JSONL trace record/replay.

One JSON object per line.  The first line is a header::

    {"format": "repro-trace/1", "workload": "alltoall", "num_ranks": 32}

followed by one record per message::

    {"id": 7, "src": 3, "dst": 11, "size": 16, "deps": [2, 5], "tag": "rot1"}

``src``/``dst`` are *endpoint* ids (placement already applied), so a
trace captured on one topology replays on any other with at least as
many endpoints — the comparison the completion-time experiments run.
Optional per-record fields are preserved on a round trip only insofar
as they map onto :class:`~repro.workloads.base.Message`; simulated
runs re-export with a ``t_complete`` field (cycle the tail flit
ejected) so external tools can consume measured schedules, and replay
ignores it (a closed-loop replay re-derives timing from the
dependency structure on the network under test).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.workloads.base import Message, Workload, validate_messages

FORMAT = "repro-trace/1"


class TraceWorkload(Workload):
    """A workload backed by an explicit message list (e.g. a trace)."""

    def __init__(self, messages: Sequence[Message], name: str = "trace",
                 num_ranks: int | None = None):
        validate_messages(messages)
        eps = sorted({m.src for m in messages} | {m.dst for m in messages})
        # Placement is identity: the trace already speaks endpoint ids,
        # so rank space must span every endpoint the trace touches.
        n = max(2, num_ranks or 0, (eps[-1] + 1) if eps else 0)
        super().__init__(n, endpoints=range(n))
        self.name = name
        self._messages = list(messages)
        self.used_endpoints = eps

    def messages(self) -> list[Message]:
        return list(self._messages)


def _record(m: Message, completions: dict[int, int] | None) -> dict:
    rec: dict = {"id": m.mid, "src": m.src, "dst": m.dst, "size": m.size_flits}
    if m.deps:
        rec["deps"] = list(m.deps)
    if m.tag:
        rec["tag"] = m.tag
    if completions is not None and m.mid in completions:
        rec["t_complete"] = completions[m.mid]
    return rec


def write_trace(
    workload: Workload | Iterable[Message],
    path_or_file,
    completions: dict[int, int] | None = None,
) -> None:
    """Serialise a workload (or plain message list) to JSONL.

    ``completions`` (message id -> completion cycle, e.g.
    ``WorkloadResult.message_completions``) re-exports a simulated run
    with measured timestamps.
    """
    if isinstance(workload, Workload):
        messages = workload.messages()
        name = workload.name
        num_ranks = workload.num_ranks
    else:
        messages = list(workload)
        name = "trace"
        num_ranks = len({m.src for m in messages} | {m.dst for m in messages})
    header = {"format": FORMAT, "workload": name, "num_ranks": num_ranks,
              "num_messages": len(messages)}
    if hasattr(path_or_file, "write"):
        _write(path_or_file, header, messages, completions)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            _write(fh, header, messages, completions)


def _write(fh: IO[str], header, messages, completions) -> None:
    fh.write(json.dumps(header) + "\n")
    for m in messages:
        fh.write(json.dumps(_record(m, completions)) + "\n")


def read_trace(path_or_file) -> TraceWorkload:
    """Parse a JSONL trace back into a replayable workload."""
    if hasattr(path_or_file, "read"):
        lines = list(path_or_file)
    else:
        with open(path_or_file, encoding="utf-8") as fh:
            lines = list(fh)
    lines = [ln for ln in (ln.strip() for ln in lines) if ln]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    records = lines[1:]
    name = "trace"
    num_ranks = None
    if isinstance(header, dict) and header.get("format", "").startswith("repro-trace"):
        name = header.get("workload", "trace")
        num_ranks = header.get("num_ranks")
    else:  # headerless: the first line is already a message
        records = lines
    messages = []
    for ln in records:
        rec = json.loads(ln)
        messages.append(
            Message(
                mid=int(rec["id"]),
                src=int(rec["src"]),
                dst=int(rec["dst"]),
                size_flits=int(rec["size"]),
                deps=tuple(int(d) for d in rec.get("deps", ())),
                tag=str(rec.get("tag", "")),
            )
        )
    return TraceWorkload(messages, name=name, num_ranks=num_ranks)
