"""Nearest-neighbour stencil halo exchange on process grids.

The classic HPC communication pattern (structured-grid PDE solvers,
regular domain decompositions): ranks form a Cartesian process grid;
each iteration every rank exchanges a halo with its face neighbours
along every dimension, then "computes" — modelled as a dependency:
iteration t's sends depend on every halo the rank *received* in
iteration t-1.  Completion time of k iterations therefore measures
the network's ability to pipeline neighbour exchanges, where a
low-diameter topology's advantage is smallest — the stress test dual
to the all-to-all.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from repro.workloads.base import Message, Workload, _Builder


class HaloExchange(Workload):
    """Halo exchange on an arbitrary-dimensional process grid.

    Parameters
    ----------
    grid:
        Process-grid shape, e.g. ``(4, 4)`` or ``(4, 4, 2)``; the rank
        count is the product.  Ranks are laid out row-major.
    halo_flits:
        Message size of one face halo.
    iterations:
        Exchange phases; phase t depends on phase t-1 (compute gate).
    periodic:
        Torus-style wraparound neighbours; without it, boundary ranks
        simply have fewer neighbours.
    """

    name = "halo"

    def __init__(
        self,
        grid: Sequence[int],
        halo_flits: int = 16,
        iterations: int = 1,
        periodic: bool = True,
        endpoints: Sequence[int] | None = None,
    ):
        grid = tuple(int(g) for g in grid)
        if any(g < 1 for g in grid):
            raise ValueError(f"bad process grid {grid}")
        num_ranks = 1
        for g in grid:
            num_ranks *= g
        super().__init__(num_ranks, endpoints)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.grid = grid
        self.halo_flits = halo_flits
        self.iterations = iterations
        self.periodic = periodic
        self.name = f"halo{len(grid)}d"

    # -- grid helpers ------------------------------------------------------

    def rank_of(self, coord: Sequence[int]) -> int:
        r = 0
        for c, g in zip(coord, self.grid):
            r = r * g + c
        return r

    def neighbors(self, coord: tuple[int, ...]) -> list[int]:
        """Face-neighbour ranks of a grid coordinate (no self entries)."""
        out = []
        for dim, g in enumerate(self.grid):
            if g == 1:
                continue
            for step in (-1, 1):
                c = coord[dim] + step
                if self.periodic:
                    c %= g
                elif not (0 <= c < g):
                    continue
                nb = self.rank_of(coord[:dim] + (c,) + coord[dim + 1 :])
                if nb != self.rank_of(coord):  # g == 2 wraps onto itself
                    out.append(nb)
        return out

    def messages(self) -> list[Message]:
        b = _Builder()
        coords = list(product(*(range(g) for g in self.grid)))
        nbrs = {self.rank_of(c): self.neighbors(c) for c in coords}
        prev_recv: dict[int, list[int]] = {r: [] for r in nbrs}
        for it in range(self.iterations):
            recv: dict[int, list[int]] = {r: [] for r in nbrs}
            for r in sorted(nbrs):
                deps = tuple(prev_recv[r])
                for nb in nbrs[r]:
                    mid = b.add(
                        self.ep(r), self.ep(nb), self.halo_flits,
                        deps=deps, tag=f"iter{it}",
                    )
                    recv[nb].append(mid)
            prev_recv = recv
        return b.build()


class HaloExchange2D(HaloExchange):
    """2D process-grid halo exchange (4 face neighbours per rank)."""

    def __init__(self, grid: tuple[int, int], **kw):
        if len(grid) != 2:
            raise ValueError("HaloExchange2D takes a 2-element grid")
        super().__init__(grid, **kw)


class HaloExchange3D(HaloExchange):
    """3D process-grid halo exchange (6 face neighbours per rank)."""

    def __init__(self, grid: tuple[int, int, int], **kw):
        if len(grid) != 3:
            raise ValueError("HaloExchange3D takes a 3-element grid")
        super().__init__(grid, **kw)
