"""Collective-communication workload generators.

Dependency structures follow the standard MPI algorithm shapes (see
e.g. Thakur et al., "Optimization of Collective Communication
Operations in MPICH"): ring and recursive-doubling all-reduce,
personalised all-to-all, and binomial broadcast/gather trees.  Each
generator emits the *communication* DAG only — compute phases between
steps are modelled as pure dependencies (a send becomes ready the
cycle its inputs complete), which makes the resulting completion time
a network-limited lower bound, the quantity the topology comparison
cares about.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.base import Message, Workload, _Builder, ceil_div


class RingAllReduce(Workload):
    """Ring all-reduce: reduce-scatter then all-gather, 2(n-1) steps.

    The vector of ``size_flits`` splits into n chunks; in every step
    rank i sends one chunk to rank i+1 and its send depends on the
    chunk it received from rank i-1 in the previous step.  Bandwidth
    optimal, latency ~ 2(n-1) network traversals.
    """

    name = "ring-allreduce"

    def __init__(
        self,
        num_ranks: int,
        size_flits: int = 64,
        endpoints: Sequence[int] | None = None,
    ):
        super().__init__(num_ranks, endpoints)
        self.size_flits = size_flits
        self.chunk_flits = max(1, ceil_div(size_flits, num_ranks))

    def messages(self) -> list[Message]:
        n = self.num_ranks
        b = _Builder()
        prev_recv: list[int | None] = [None] * n  # mid received by rank in step-1
        for step in range(2 * (n - 1)):
            phase = "rs" if step < n - 1 else "ag"
            sent = []
            for i in range(n):
                dep_mid = prev_recv[i]
                mid = b.add(
                    self.ep(i),
                    self.ep((i + 1) % n),
                    self.chunk_flits,
                    deps=() if dep_mid is None else (dep_mid,),
                    tag=f"{phase}{step}",
                )
                sent.append(mid)
            for i in range(n):  # rank i receives from i-1
                prev_recv[i] = sent[(i - 1) % n]
        return b.build()


class RecursiveDoublingAllReduce(Workload):
    """Recursive doubling: log2(n) rounds of pairwise full exchanges.

    Requires a power-of-two rank count.  In round r, rank i exchanges
    the full vector with partner ``i XOR 2^r``; its send depends on the
    message it received from its round r-1 partner.  Latency optimal
    (log rounds), bandwidth ~ size per round.
    """

    name = "rd-allreduce"

    def __init__(
        self,
        num_ranks: int,
        size_flits: int = 64,
        endpoints: Sequence[int] | None = None,
    ):
        super().__init__(num_ranks, endpoints)
        if num_ranks & (num_ranks - 1):
            raise ValueError(
                f"recursive doubling needs a power-of-two rank count, got {num_ranks}"
            )
        self.size_flits = size_flits

    def messages(self) -> list[Message]:
        n = self.num_ranks
        b = _Builder()
        prev_recv: list[int | None] = [None] * n
        span = 1
        rnd = 0
        while span < n:
            sent = [0] * n
            for i in range(n):
                dep_mid = prev_recv[i]
                sent[i] = b.add(
                    self.ep(i),
                    self.ep(i ^ span),
                    self.size_flits,
                    deps=() if dep_mid is None else (dep_mid,),
                    tag=f"round{rnd}",
                )
            for i in range(n):
                prev_recv[i] = sent[i ^ span]
            span <<= 1
            rnd += 1
        return b.build()


class AllToAll(Workload):
    """Personalised all-to-all (shuffle): every rank sends a distinct
    chunk to every other rank, all sends posted up front (no deps) —
    completion time is the network's ability to drain the full
    exchange.  Sends are rotation-ordered (rank i's k-th send goes to
    i+k) so the instantaneous pattern is a shifting permutation, the
    classic implementation that avoids endpoint hot-spotting.
    """

    name = "alltoall"

    def __init__(
        self,
        num_ranks: int,
        size_flits: int = 16,
        endpoints: Sequence[int] | None = None,
    ):
        super().__init__(num_ranks, endpoints)
        self.size_flits = size_flits

    def messages(self) -> list[Message]:
        n = self.num_ranks
        b = _Builder()
        for k in range(1, n):
            for i in range(n):
                b.add(self.ep(i), self.ep((i + k) % n), self.size_flits,
                      tag=f"rot{k}")
        return b.build()


class BroadcastTree(Workload):
    """Binomial-tree broadcast from ``root``: in round t the first 2^t
    ranks (relative to the root) forward the payload to the next 2^t;
    each forward depends on the sender's own receive.  Works for any
    rank count, ceil(log2 n) rounds deep.
    """

    name = "broadcast"

    def __init__(
        self,
        num_ranks: int,
        size_flits: int = 64,
        root: int = 0,
        endpoints: Sequence[int] | None = None,
    ):
        super().__init__(num_ranks, endpoints)
        if not (0 <= root < num_ranks):
            raise ValueError(f"root {root} out of range")
        self.size_flits = size_flits
        self.root = root

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.num_ranks

    def messages(self) -> list[Message]:
        n = self.num_ranks
        b = _Builder()
        recv_mid: dict[int, int] = {}  # relative rank -> mid it received
        span = 1
        while span < n:
            for v in range(span):
                u = v + span
                if u >= n:
                    break
                deps = (recv_mid[v],) if v in recv_mid else ()
                recv_mid[u] = b.add(
                    self.ep(self._abs(v)),
                    self.ep(self._abs(u)),
                    self.size_flits,
                    deps=deps,
                    tag=f"span{span}",
                )
            span <<= 1
        return b.build()


class GatherTree(Workload):
    """Binomial-tree gather to ``root`` (the broadcast tree reversed):
    leaves send first; an inner node's upward send carries its whole
    subtree's data and depends on every message received from its
    children.
    """

    name = "gather"

    def __init__(
        self,
        num_ranks: int,
        size_flits: int = 16,
        root: int = 0,
        endpoints: Sequence[int] | None = None,
    ):
        super().__init__(num_ranks, endpoints)
        if not (0 <= root < num_ranks):
            raise ValueError(f"root {root} out of range")
        self.size_flits = size_flits  #: per-rank contribution
        self.root = root

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.num_ranks

    def messages(self) -> list[Message]:
        n = self.num_ranks
        b = _Builder()
        # Tree edges (span, child u = v + span, parent v), exactly the
        # broadcast construction; gather emits them deepest-first
        # (descending span) so children's sends exist before parents'.
        spans = []
        span = 1
        while span < n:
            spans.append(span)
            span <<= 1
        child_mids: dict[int, list[int]] = {}  # relative rank -> recvs so far
        agg = [1] * n  # subtree rank counts, grown as children report in
        for span in reversed(spans):
            for v in range(span):
                u = v + span
                if u >= n:
                    break
                mid = b.add(
                    self.ep(self._abs(u)),
                    self.ep(self._abs(v)),
                    self.size_flits * agg[u],
                    deps=tuple(child_mids.get(u, ())),
                    tag=f"span{span}",
                )
                child_mids.setdefault(v, []).append(mid)
                agg[v] += agg[u]
        return b.build()
