"""E5 / Table II: network diameters of the compared topologies.

Measured on constructed instances and checked against the paper's
closed forms (⌈(3/2)·∛N_r⌉ for T3D, ⌈(5/2)·N_r^{1/5}⌉ for T5D,
⌈log₂N_r⌉ for HC, 4 for FT-3, 3 for FBF-3 and DF, 3–10 for DLN,
4–6 for LH-HC, 2 for SF).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.registry import TOPOLOGY_ORDER, balanced_instance


def _expected(topo) -> str:
    import math

    from repro.topologies import (
        Dragonfly,
        FatTree3,
        FlattenedButterfly,
        Hypercube,
        LongHopHypercube,
        RandomDLN,
        SlimFly,
        Torus,
    )

    nr = topo.num_routers
    if isinstance(topo, SlimFly):
        return "2"
    if isinstance(topo, Torus):
        return str(topo.analytic_diameter())
    if isinstance(topo, Hypercube):
        return str(int(math.log2(nr)))
    if isinstance(topo, FatTree3):
        return "4"
    if isinstance(topo, FlattenedButterfly):
        return str(topo.levels)
    if isinstance(topo, Dragonfly):
        return "3"
    if isinstance(topo, RandomDLN):
        return "3-10"
    if isinstance(topo, LongHopHypercube):
        return "4-7"
    return "?"


def run(scale=Scale.DEFAULT, seed=0, target: int | None = None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    if target is None:
        target = {Scale.QUICK: 256, Scale.DEFAULT: 1024, Scale.PAPER: 8192}[scale]
    result = ExperimentResult("table2", f"Network diameters (N ≈ {target})")
    rows = []
    violations = []
    for name in TOPOLOGY_ORDER:
        topo = balanced_instance(name, target, seed=seed)
        measured = topo.diameter()
        expected = _expected(topo)
        rows.append([name, topo.num_endpoints, topo.num_routers, measured, expected])
        if "-" in expected:
            lo, hi = expected.split("-")
            if not (int(lo) <= measured <= int(hi)):
                violations.append(name)
        elif measured != int(expected):
            violations.append(name)
    result.add_table(
        ["topology", "N", "Nr", "measured diameter", "expected"], rows
    )
    if violations:  # pragma: no cover
        result.note(f"SHAPE VIOLATION: diameter mismatch for {violations}")
    else:
        result.note("shape holds: every measured diameter matches Table II "
                    "(SF lowest at 2)")
    return result
