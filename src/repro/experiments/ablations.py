"""Ablation studies for the paper's design choices (DESIGN.md §5).

Three knobs the paper fixes empirically get swept here:

- **UGAL candidate count** (§IV-C): "we compared implementations using
  between 2 and 10 random selections and found 4 results in lower
  overall latency."
- **Valiant path-length cap** (§IV-B): "one may impose a constraint …
  at most 3 hops.  However, our simulations indicate that this results
  in higher average packet latency."
- **Generator-set primitive element**: the MMS construction is defined
  up to the choice of ξ; different primitive elements must yield
  isomorphic-grade graphs (same degree/diameter/average distance) —
  the structural invariance behind "no universal scheme for finding ξ
  is needed".
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale, sim_config_for
from repro.routing import RoutingTables, UGALRouting, ValiantRouting
from repro.sim.engine import simulate
from repro.topologies import SlimFly
from repro.traffic import UniformRandom


def _network(scale: Scale) -> SlimFly:
    return SlimFly.from_q({Scale.QUICK: 5, Scale.DEFAULT: 7, Scale.PAPER: 19}[scale])


def run_ugal_candidates(scale=Scale.DEFAULT, seed=0, counts=(1, 2, 4, 8)) -> ExperimentResult:
    scale = Scale.coerce(scale)
    sf = _network(scale)
    tables = RoutingTables(sf.adjacency)
    cfg = sim_config_for(scale)
    traffic = UniformRandom(sf.num_endpoints)
    load = 0.5
    result = ExperimentResult(
        "ablate-ugal", "Ablation: UGAL random-candidate count (§IV-C)"
    )
    rows = []
    latencies = {}
    for c in counts:
        res = simulate(
            sf, UGALRouting(tables, "local", num_candidates=c, seed=seed),
            traffic, load, cfg,
        )
        latencies[c] = res.avg_latency
        rows.append([c, round(res.avg_latency, 2), round(res.accepted_load, 3),
                     res.saturated])
    result.add_table(["candidates", "latency @ 0.5 load", "accepted", "saturated"], rows)
    best = min(latencies, key=latencies.get)
    result.note(f"lowest latency at {best} candidates (paper found 4 best; "
                "2–8 are typically within noise of each other)")
    return result


def run_val_maxhops(scale=Scale.DEFAULT, seed=0) -> ExperimentResult:
    scale = Scale.coerce(scale)
    sf = _network(scale)
    tables = RoutingTables(sf.adjacency)
    cfg = sim_config_for(scale)
    traffic = UniformRandom(sf.num_endpoints)
    result = ExperimentResult(
        "ablate-val", "Ablation: Valiant path-length cap (§IV-B)"
    )
    rows = []
    lat = {}
    for cap, label in ((None, "unconstrained (2-4 hops)"), (3, "capped at 3 hops")):
        res = simulate(
            sf, ValiantRouting(tables, seed=seed, max_hops=cap), traffic, 0.35, cfg
        )
        lat[label] = res.avg_latency
        rows.append([label, round(res.avg_latency, 2), round(res.accepted_load, 3)])
    result.add_table(["variant", "latency @ 0.35 load", "accepted"], rows)
    if lat["capped at 3 hops"] >= lat["unconstrained (2-4 hops)"] * 0.98:
        result.note("shape holds: capping VAL paths does not reduce latency "
                    "(paper: the cap *increases* it by limiting path choice)")
    return result


def run_primitive_element_invariance(scale=Scale.DEFAULT, seed=0) -> ExperimentResult:
    from repro.analysis.distance import diameter_and_average_distance
    from repro.core.mms import MMSGraph
    from repro.galois.field import GaloisField
    from repro.galois.primitive import primitive_elements

    scale = Scale.coerce(scale)
    q = 5 if scale == Scale.QUICK else 13
    field = GaloisField.get(q)
    result = ExperimentResult(
        "ablate-xi", f"Ablation: primitive-element choice for q={q} (§II-B1)"
    )
    rows = []
    stats = set()
    for xi in primitive_elements(field)[:4]:
        graph = MMSGraph(q, xi=xi)
        d, avg = diameter_and_average_distance(graph.adjacency)
        degrees = {len(n) for n in graph.adjacency}
        rows.append([xi, d, round(avg, 4), sorted(degrees)])
        stats.add((d, round(avg, 6), tuple(sorted(degrees))))
    result.add_table(["xi", "diameter", "avg distance", "degrees"], rows)
    if len(stats) == 1:
        result.note("shape holds: every primitive element yields the same "
                    "degree/diameter/average-distance signature")
    else:  # pragma: no cover
        result.note("SHAPE VIOLATION: structure depends on the primitive element")
    return result
