"""Fig 9: per-channel load distribution under adversarial traffic.

The paper's Fig 9 plots how offered traffic spreads over the network's
channels when the pattern is worst-case for minimal routing: SF-MIN
funnels everything through a handful of hot cables while adaptive
UGAL flattens the distribution across many lightly-loaded channels.

This experiment is the telemetry plane's showcase: the campaign arms
the ``channel_flits`` and ``routing_decisions`` probes
(:class:`repro.sim.telemetry.TelemetrySpec`), the runner streams the
per-channel counters into the ``.metrics.jsonl`` sidecar, and the
report layer renders the channel-load CDF and heatmap from those rows
(see :mod:`repro.analysis.report`).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    performance_trio_specs,
    sim_config_for,
)
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TrafficSpec,
    run_campaign,
)
from repro.sim.telemetry import TelemetrySpec
from repro.util.series import SeriesBundle

#: Offered load at which the channel distribution is sampled — past
#: SF-MIN's worst-case collapse (~1/(p+1)) so its hot channels are
#: saturated, below UGAL's sustainable ~40-45% so adaptive routing
#: still spreads cleanly.
SAMPLE_LOAD = 0.3


def protocol_specs(scale: Scale, seed: int):
    """(label, TopologySpec, RoutingSpec) rows for the Fig 9 panel."""
    sf, df, _ = performance_trio_specs(scale)
    return [
        ("SF-MIN", sf, RoutingSpec("min")),
        ("SF-UGAL-L", sf, RoutingSpec("ugal-l", {"seed": seed})),
        ("DF-UGAL-L", df, RoutingSpec("df-ugal-l", {"seed": seed})),
    ]


def campaign(scale=Scale.DEFAULT, seed: int = 0,
             backend: str = "cycle") -> Campaign:
    """The Fig 9 panel as a telemetry-armed declarative campaign.

    One load point per protocol (:data:`SAMPLE_LOAD`): Fig 9 is a
    distribution snapshot, not a sweep.  Every scenario carries the
    same :class:`TelemetrySpec`, so each row lands a companion metrics
    row holding the full per-channel load vector.
    """
    scale = Scale.coerce(scale)
    telemetry = TelemetrySpec(channel_flits=True, routing_decisions=True)
    scenarios = [
        Scenario(
            topology=tspec,
            routing=rspec,
            sim=sim_config_for(scale),
            traffic=TrafficSpec("worstcase", seed=seed),
            loads=[SAMPLE_LOAD],
            label=name,
            backend=backend,
            telemetry=telemetry,
        )
        for name, tspec, rspec in protocol_specs(scale, seed)
    ]
    name = f"fig9-{scale.value}"
    if backend != "cycle":
        name += f"-{backend}"
    return Campaign(name, scenarios)


def run(scale=Scale.DEFAULT, seed=0, workers: int = 1) -> ExperimentResult:
    """Render the Fig 9 panel: hottest channels + distribution stats."""
    scale = Scale.coerce(scale)
    report = run_campaign(campaign(scale, seed=seed), workers=workers)

    result = ExperimentResult(
        "fig9",
        "Per-channel load distribution — worst-case traffic "
        f"(offered load {SAMPLE_LOAD})",
    )
    bundle = SeriesBundle(
        title="Fig 9: channel-load CDF (worst-case traffic)",
        xlabel="channel load [flits/cycle]",
        ylabel="fraction of channels",
    )
    table_rows = []
    by_label: dict[str, dict] = {}
    for row in report.metrics_rows:
        if "channel_load" in row:
            by_label[row["label"]] = row
    for label, row in by_label.items():
        loads = sorted(float(v) for v in row["channel_load"])
        n = len(loads)
        series = bundle.new(label)
        for i, v in enumerate(loads):
            series.append(round(v, 4), round((i + 1) / n, 4))
        hot = loads[-1] if loads else 0.0
        mean = sum(loads) / n if n else 0.0
        result.note(
            f"{label}: {n} channels, hottest {hot:.3f} flits/cycle, "
            f"mean {mean:.3f}, diverted non-minimally "
            f"{row.get('route_diverted_frac', 0.0):.1%}"
        )
        for rank, v in enumerate(loads[::-1][:10], start=1):
            table_rows.append([label, rank, round(v, 4)])
    result.add_bundle(bundle)
    result.add_table(["protocol", "rank (hottest first)", "channel load"],
                     table_rows)

    sf_min = by_label.get("SF-MIN")
    sf_ugal = by_label.get("SF-UGAL-L")
    if sf_min and sf_ugal:
        hot_min = max(map(float, sf_min["channel_load"]), default=0.0)
        hot_ugal = max(map(float, sf_ugal["channel_load"]), default=0.0)
        if hot_min > hot_ugal:
            result.note(
                "shape holds: adaptive UGAL-L flattens the distribution - "
                f"its hottest channel carries {hot_ugal:.3f} vs MIN's "
                f"{hot_min:.3f} flits/cycle"
            )
    return result
