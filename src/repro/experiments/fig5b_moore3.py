"""E3 / Fig 5b: router counts vs the diameter-3 Moore bound.

Curves: MB(k', 3), Delorme graphs (≈ 68% of the bound), BDF graphs
(≈ 30%), Dragonfly (≈ 14%), three-level flattened butterfly (≈ 4.9%).
"""

from __future__ import annotations

from repro.core.bdf import bdf_params, bdf_u_values
from repro.core.delorme import delorme_configs
from repro.core.moore import moore_bound_diameter3, moore_fraction
from repro.experiments.common import ExperimentResult, Scale
from repro.util.series import SeriesBundle


def run(scale=Scale.DEFAULT, seed=0, max_radix: int | None = None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    if max_radix is None:
        max_radix = 40 if scale == Scale.QUICK else 90
    result = ExperimentResult("fig5b", "Moore bound comparison, diameter 3")
    bundle = SeriesBundle(
        title="Fig 5b: N_r vs k' (D=3)",
        xlabel="network radix k'",
        ylabel="number of routers N_r",
    )
    rows = []

    mb = bundle.new("Moore Bound 3")
    for k in range(4, max_radix + 1, 4):
        mb.append(k, moore_bound_diameter3(k))

    delorme = bundle.new("Slim Fly DEL")
    for v, n_r, k in delorme_configs(max_radix):
        delorme.append(k, n_r)
        rows.append(["DEL", k, n_r, round(100 * moore_fraction(n_r, k, 3), 1)])

    bdf = bundle.new("Slim Fly BDF")
    for u in bdf_u_values(max_radix):
        n_r, k = bdf_params(u)
        bdf.append(k, n_r)
        rows.append(["BDF", k, n_r, round(100 * moore_fraction(n_r, k, 3), 1)])

    df = bundle.new("Dragonfly")
    for h in range(2, max_radix // 3 + 2):
        k = 3 * h - 1  # balanced: k' = a−1+h = 3h−1
        n_r = 2 * h * (2 * h * h + 1)
        if k <= max_radix:
            df.append(k, n_r)
            rows.append(["DF", k, n_r, round(100 * moore_fraction(n_r, k, 3), 1)])

    fbf = bundle.new("Flat. Butterfly")
    for c in range(3, max_radix // 3 + 2):
        k = 3 * (c - 1)
        if k <= max_radix:
            fbf.append(k, c**3)
            rows.append(["FBF-3", k, c**3, round(100 * moore_fraction(c**3, k, 3), 1)])

    result.add_bundle(bundle)
    result.add_table(["construction", "k'", "Nr", "% of Moore bound"], rows)

    # Shape: DEL > BDF > DF > FBF-3 in Moore fraction at each family's
    # largest plotted radix (small-radix points are noisy: a tiny DF is
    # legitimately close to the bound).
    def top_fraction(label: str) -> float:
        pts = [(r[1], r[3]) for r in rows if r[0] == label]
        return max(pts)[1] if pts else 0.0

    order = [top_fraction(x) for x in ("DEL", "BDF", "DF", "FBF-3")]
    if order == sorted(order, reverse=True):
        result.note(
            "shape holds: DEL > BDF > DF > FBF-3 "
            f"({', '.join(f'{v:.0f}%' for v in order)}; paper: 68/30/14/4.9%)"
        )
    else:  # pragma: no cover
        result.note("SHAPE VIOLATION: Moore-fraction ordering broken")
    return result
