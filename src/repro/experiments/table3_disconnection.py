"""E6 / Table III: disconnection resiliency under random link failures.

For each topology and size: the largest fraction of randomly removed
cables at which the network (majority of samples) stays connected,
swept in the paper's 5% increments.  Reproduction target: SF, DLN and
FBF-3 most resilient (≥ 60–75% at the larger sizes), DF below them,
tori weakest and degrading with N.
"""

from __future__ import annotations

from repro.analysis.resiliency import disconnection_resiliency
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.registry import TOPOLOGY_ORDER, balanced_instance


def _plan(scale: Scale) -> tuple[list[int], int]:
    """(network sizes, Monte-Carlo samples per fraction)."""
    if scale == Scale.QUICK:
        return [256], 8
    if scale == Scale.DEFAULT:
        return [256, 1024], 20
    return [256, 512, 1024, 2048, 4096, 8192], 100


def run(scale=Scale.DEFAULT, seed=0, topologies=None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    sizes, samples = _plan(scale)
    names = topologies if topologies is not None else TOPOLOGY_ORDER
    result = ExperimentResult(
        "table3", "Disconnection resiliency: removable cable fraction"
    )
    rows = []
    summary: dict[str, float] = {}
    for name in names:
        for target in sizes:
            topo = balanced_instance(name, target, seed=seed)
            res = disconnection_resiliency(
                topo.adjacency, samples=samples, seed=seed
            )
            pct = round(100 * res.max_survivable_fraction)
            rows.append([name, topo.num_endpoints, f"{pct}%"])
            summary[name] = max(summary.get(name, 0.0), res.max_survivable_fraction)
    result.add_table(["topology", "N", "max removable links"], rows)

    strong = {n: summary.get(n, 0) for n in ("SF", "DLN", "FBF-3") if n in summary}
    weak_t3d = summary.get("T3D")
    if strong and weak_t3d is not None:
        if min(strong.values()) >= weak_t3d:
            result.note(
                "shape holds: SF/DLN/FBF-3 are the most resilient group; "
                "T3D the weakest (paper Table III)"
            )
        else:  # pragma: no cover
            result.note("SHAPE VIOLATION: resiliency ordering broken")
    result.note(f"Monte-Carlo samples per fraction: {samples} "
                "(paper: 95% CI of width 2; use --scale paper)")
    return result
