"""E16–E18 / Figs 11–13: cable/router cost models and total cost/power
vs network size, for each cable product.

- ``what="models"`` — the pricing fits themselves (Figs 11a/b, 12a/b,
  13a/b): $/Gb/s vs length for electric and optical cables, and router
  price vs radix, including the electric→optical crossover length.
- ``what="cost"`` — total network cost vs N (Figs 11c/12c/13c).
- ``what="power"`` — total power vs N (Figs 11d/12d/13d).

Reproduction targets: SF the cheapest and most power-efficient curve
beyond ~5K endpoints; LH-HC/HC/T5D the most expensive; the relative
ordering insensitive to the cable product (paper: ≈1–2%).
"""

from __future__ import annotations

from repro.costmodel.cables import CABLE_MODELS, get_cable_model
from repro.costmodel.cost import analytic_network_cost
from repro.costmodel.counts import sweep_counts
from repro.costmodel.power import network_power_watts
from repro.costmodel.routers import get_router_model
from repro.experiments.common import ExperimentResult, Scale
from repro.util.series import SeriesBundle

SWEEP_TOPOLOGIES = ["LH-HC", "HC", "T5D", "FT-3", "T3D", "DLN", "FBF-3", "DF", "SF"]


def run(
    scale=Scale.DEFAULT,
    seed=0,
    what: str = "cost",
    cable_model: str = "mellanox-fdr10",
    max_endpoints: int | None = None,
) -> ExperimentResult:
    scale = Scale.coerce(scale)
    if what == "models":
        return _run_models(cable_model)
    if max_endpoints is None:
        max_endpoints = {Scale.QUICK: 5000, Scale.DEFAULT: 40000, Scale.PAPER: 50000}[
            scale
        ]
    if what == "cost":
        return _run_cost(cable_model, max_endpoints)
    if what == "power":
        return _run_power(max_endpoints)
    raise ValueError(f"what must be 'models', 'cost' or 'power', got {what!r}")


def _run_models(cable_name: str) -> ExperimentResult:
    result = ExperimentResult("costmodel", "Cable and router cost models")
    rows = []
    for key, model in CABLE_MODELS.items():
        rows.append(
            [
                key,
                model.rate_gbps,
                f"{model.electric.slope:.4f}x+{model.electric.intercept:.4f}",
                f"{model.optical.slope:.4f}x+{model.optical.intercept:.4f}",
                round(model.crossover_length(), 2),
                "estimated" if model.estimated else "paper fit",
            ]
        )
    result.add_table(
        ["cable model", "Gb/s", "electric $/Gb/s", "optical $/Gb/s",
         "crossover [m]", "source"],
        rows,
    )
    router = get_router_model()
    result.add_table(
        ["router radix k", "price [$]"],
        [[k, round(router.cost(k))] for k in (12, 24, 36, 48, 64, 96, 108)],
    )
    result.note("router fit: 350.4k − 892.3 $ (paper §VI-B2, Mellanox IB FDR10)")
    return result


def _run_cost(cable_name: str, max_endpoints: int) -> ExperimentResult:
    get_cable_model(cable_name)  # validate early
    result = ExperimentResult(
        "fig11-cost", f"Total network cost vs size ({cable_name})"
    )
    bundle = SeriesBundle(
        title="Fig 11c/12c/13c", xlabel="network size [endpoints]",
        ylabel="total cost [$]",
    )
    final_cost: dict[str, float] = {}
    for name in SWEEP_TOPOLOGIES:
        series = bundle.new(name)
        for counts in sweep_counts(name, max_endpoints):
            if counts.num_endpoints < 64:
                continue
            report = analytic_network_cost(counts, cable_model=cable_name)
            series.append(counts.num_endpoints, round(report.total_cost))
        if series.y:
            final_cost[name] = series.y[-1] / series.x[-1]
    result.add_bundle(bundle)
    result.add_table(
        ["topology", "largest N", "$ / endpoint at largest N"],
        [
            [name, bundle.get(name).x[-1], round(v)]
            for name, v in final_cost.items()
        ],
    )
    if "SF" in final_cost and "DF" in final_cost:
        if final_cost["SF"] < final_cost["DF"]:
            result.note(
                "shape holds: SF is the cheapest per endpoint at scale "
                f"(SF {final_cost['SF']:.0f} $ vs DF {final_cost['DF']:.0f} $)"
            )
        else:  # pragma: no cover
            result.note("SHAPE VIOLATION: SF not cheapest")
    return result


def _run_power(max_endpoints: int) -> ExperimentResult:
    result = ExperimentResult("fig11-power", "Total network power vs size")
    bundle = SeriesBundle(
        title="Fig 11d/12d/13d", xlabel="network size [endpoints]",
        ylabel="power [W]",
    )
    per_node: dict[str, float] = {}
    for name in SWEEP_TOPOLOGIES:
        series = bundle.new(name)
        for counts in sweep_counts(name, max_endpoints):
            if counts.num_endpoints < 64:
                continue
            watts = network_power_watts(counts.num_routers, counts.router_radix)
            series.append(counts.num_endpoints, round(watts))
        if series.y:
            per_node[name] = series.y[-1] / series.x[-1]
    result.add_bundle(bundle)
    result.add_table(
        ["topology", "largest N", "W / endpoint at largest N"],
        [[name, bundle.get(name).x[-1], round(v, 2)] for name, v in per_node.items()],
    )
    if "SF" in per_node and all(
        per_node["SF"] <= v for k, v in per_node.items() if k != "SF"
    ):
        result.note("shape holds: SF draws the least power per endpoint (>25% "
                    "below DF/FBF-3/DLN in the paper)")
    return result
