"""E13 / Fig 8a (buffer sizes) and E14 / Fig 8b–e (oversubscription).

Both studies are defined as campaigns (:func:`campaign_buffers`,
:func:`campaign_oversub`) — the buffer study is literally a
:meth:`~repro.scenarios.Campaign.from_grid` over
``sim.buffer_per_port``, the oversubscription study a grid over the
Slim Fly concentration — with :func:`run_buffers`/:func:`run_oversub`
as thin wrappers rendering the legacy rows.

- **Fig 8a**: worst-case traffic under UGAL-L with input buffers of
  8..256 flits/port.  Target shape: smaller buffers give lower latency
  near saturation (stiffer backpressure), larger buffers higher
  bandwidth.
- **Fig 8b–e**: oversubscribed Slim Flies (p above the balanced
  concentration) under uniform and worst-case traffic.  Target shape:
  graceful degradation — the paper's q=19 network accepts ~87.5%
  (balanced p=15), ~80% (p=16), ~75% (p=18) of uniform traffic.
"""

from __future__ import annotations

from repro.core.balance import balanced_concentration, saturation_load_estimate
from repro.experiments.common import (
    TRIO_SHAPES,
    ExperimentResult,
    Scale,
    sim_config_for,
)
from repro.scenarios import (
    Campaign,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    resolve_topology,
    rows_by_label,
    run_campaign,
)
from repro.sim.stats import LoadPoint
from repro.sim.sweep import max_accepted
from repro.topologies import SlimFly
from repro.util.series import SeriesBundle

BUFFER_SIZES = (8, 16, 32, 64, 128, 256)


def _sf_q(scale: Scale) -> int:
    # The §V comparison Slim Fly — same instance fig6 sweeps.
    return TRIO_SHAPES[scale][0]


def _points(rows: list[dict]) -> list[LoadPoint]:
    """Campaign rows back into LoadPoint tuples for rendering."""
    return [
        LoadPoint(
            load=r["load"], latency=r["latency"], accepted=r["accepted"],
            saturated=r["saturated"],
        )
        for r in rows
    ]


def campaign_buffers(scale=Scale.DEFAULT, seed: int = 0, buffers=None) -> Campaign:
    """Fig 8a as a grid campaign over ``sim.buffer_per_port``."""
    scale = Scale.coerce(scale)
    buffers = list(buffers) if buffers is not None else (
        [16, 64, 256] if scale != Scale.PAPER else list(BUFFER_SIZES)
    )
    n_loads = {Scale.QUICK: 4, Scale.DEFAULT: 6, Scale.PAPER: 8}[scale]
    loads = [round(0.1 + 0.4 * i / (n_loads - 1), 3) for i in range(n_loads)]
    base = Scenario(
        topology=TopologySpec("SF", params={"q": _sf_q(scale)}),
        routing=RoutingSpec("ugal-l", {"seed": seed}),
        sim=sim_config_for(scale),
        traffic=TrafficSpec("worstcase", seed=seed),
        loads=loads,
    )
    return Campaign.from_grid(
        f"fig8a-{scale.value}",
        base,
        {"sim.buffer_per_port": buffers},
        label=lambda s: f"{s.sim.buffer_per_port} flits",
    )


def run_buffers(
    scale=Scale.DEFAULT, seed=0, buffers=None, workers: int = 1
) -> ExperimentResult:
    scale = Scale.coerce(scale)
    report = run_campaign(
        campaign_buffers(scale, seed=seed, buffers=buffers), workers=workers
    )

    result = ExperimentResult("fig8a", "Buffer-size study, worst-case traffic")
    bundle = SeriesBundle(
        title="Fig 8a", xlabel="offered load", ylabel="latency [cycles]"
    )
    rows = []
    near_sat: dict[int, float] = {}
    for srows in rows_by_label(report).values():
        buf = srows[0]["spec"]["sim"]["buffer_per_port"]
        series = bundle.new(f"{buf} flits")
        for pt in _points(srows):
            if pt.latency is not None:
                series.append(pt.load, round(pt.latency, 2))
                near_sat[buf] = pt.latency
            rows.append([buf, pt.load,
                         round(pt.latency, 1) if pt.latency is not None else None,
                         pt.saturated])
    result.add_bundle(bundle)
    result.add_table(["buffer [flits]", "offered load", "latency", "saturated"], rows)

    if len(near_sat) >= 2:
        small, large = min(near_sat), max(near_sat)
        if near_sat[small] <= near_sat[large]:
            result.note(
                "shape holds: smaller buffers yield lower latency at the "
                "highest sustained load (stiffer backpressure, §V-D)"
            )
    return result


def campaign_oversub(scale=Scale.DEFAULT, seed: int = 0, extra_ps=None) -> Campaign:
    """Fig 8b–e as a grid campaign over the SF concentration."""
    scale = Scale.coerce(scale)
    q = _sf_q(scale)
    base_topo = resolve_topology(TopologySpec("SF", params={"q": q}))
    p_bal = balanced_concentration(base_topo.num_routers, base_topo.network_radix)
    if extra_ps is None:
        extra_ps = [p_bal + 1, p_bal + 3] if scale == Scale.PAPER else [p_bal + 1, p_bal + 2]
    n_loads = {Scale.QUICK: 5, Scale.DEFAULT: 7, Scale.PAPER: 10}[scale]
    loads = [round((i + 1) / n_loads, 3) for i in range(n_loads)]
    base = Scenario(
        topology=TopologySpec("SF", params={"q": q, "concentration": p_bal}),
        routing=RoutingSpec("min"),
        sim=sim_config_for(scale),
        traffic=TrafficSpec("uniform"),
        loads=loads,
    )
    return Campaign.from_grid(
        f"fig8-oversub-{scale.value}",
        base,
        {"topology.params.concentration": [p_bal] + list(extra_ps)},
        label=lambda s: f"p={s.topology.params['concentration']}",
    )


def run_oversub(
    scale=Scale.DEFAULT, seed=0, extra_ps=None, workers: int = 1
) -> ExperimentResult:
    scale = Scale.coerce(scale)
    camp = campaign_oversub(scale, seed=seed, extra_ps=extra_ps)
    report = run_campaign(camp, workers=workers)
    q = _sf_q(scale)
    base_topo = resolve_topology(TopologySpec("SF", params={"q": q}))
    p_bal = balanced_concentration(base_topo.num_routers, base_topo.network_radix)

    result = ExperimentResult(
        "fig8-oversub", f"Oversubscribed Slim Fly (q={q}, balanced p={p_bal})"
    )
    rows = []
    accepted_by_p: dict[int, float] = {}
    for srows in rows_by_label(report).values():
        p = srows[0]["spec"]["topology"]["params"]["concentration"]
        sf: SlimFly = resolve_topology(
            TopologySpec.from_dict(srows[0]["spec"]["topology"])
        )
        acc = max_accepted(_points(srows))
        accepted_by_p[p] = acc
        est = saturation_load_estimate(sf.num_routers, sf.network_radix, p)
        rows.append([p, sf.num_endpoints, round(acc, 3), round(est, 3)])
    result.add_table(
        ["p", "N", "max accepted (uniform, MIN)", "analytic estimate"], rows
    )

    vals = [accepted_by_p[p] for p in sorted(accepted_by_p)]
    if all(vals[i] + 1e-9 >= vals[i + 1] - 0.05 for i in range(len(vals) - 1)):
        result.note(
            "shape holds: accepted bandwidth degrades gracefully with "
            "oversubscription (paper: 87.5% -> 80% -> 75%)"
        )
    return result
