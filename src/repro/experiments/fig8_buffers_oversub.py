"""E13 / Fig 8a (buffer sizes) and E14 / Fig 8b–e (oversubscription).

- **Fig 8a**: worst-case traffic under UGAL-L with input buffers of
  8..256 flits/port.  Target shape: smaller buffers give lower latency
  near saturation (stiffer backpressure), larger buffers higher
  bandwidth.
- **Fig 8b–e**: oversubscribed Slim Flies (p above the balanced
  concentration) under uniform and worst-case traffic.  Target shape:
  graceful degradation — the paper's q=19 network accepts ~87.5%
  (balanced p=15), ~80% (p=16), ~75% (p=18) of uniform traffic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.balance import balanced_concentration, saturation_load_estimate
from repro.experiments.common import ExperimentResult, Scale, sim_config_for
from repro.routing import MinimalRouting, RoutingTables, UGALRouting, ValiantRouting
from repro.sim.parallel import parallel_latency_vs_load
from repro.sim.sweep import max_accepted
from repro.topologies import SlimFly
from repro.traffic import SlimFlyWorstCase, UniformRandom
from repro.util.series import SeriesBundle

BUFFER_SIZES = (8, 16, 32, 64, 128, 256)


def _sf_q(scale: Scale) -> int:
    return {Scale.QUICK: 5, Scale.DEFAULT: 7, Scale.PAPER: 19}[scale]


def run_buffers(
    scale=Scale.DEFAULT, seed=0, buffers=None, workers: int = 1
) -> ExperimentResult:
    scale = Scale.coerce(scale)
    buffers = list(buffers) if buffers is not None else (
        [16, 64, 256] if scale != Scale.PAPER else list(BUFFER_SIZES)
    )
    sf = SlimFly.from_q(_sf_q(scale))
    tables = RoutingTables(sf.adjacency)
    traffic = SlimFlyWorstCase(sf, tables, seed=seed)
    base_cfg = sim_config_for(scale)
    n_loads = {Scale.QUICK: 4, Scale.DEFAULT: 6, Scale.PAPER: 8}[scale]
    loads = [round(0.1 + 0.4 * i / (n_loads - 1), 3) for i in range(n_loads)]

    result = ExperimentResult("fig8a", "Buffer-size study, worst-case traffic")
    bundle = SeriesBundle(
        title="Fig 8a", xlabel="offered load", ylabel="latency [cycles]"
    )
    rows = []
    near_sat: dict[int, float] = {}
    for buf in buffers:
        cfg = replace(base_cfg, buffer_per_port=buf)
        points = parallel_latency_vs_load(
            sf, lambda: UGALRouting(tables, "local", seed=seed), traffic,
            loads=loads, config=cfg, workers=workers,
        )
        series = bundle.new(f"{buf} flits")
        for pt in points:
            if pt.latency is not None:
                series.append(pt.load, round(pt.latency, 2))
                near_sat[buf] = pt.latency
            rows.append([buf, pt.load,
                         round(pt.latency, 1) if pt.latency is not None else None,
                         pt.saturated])
    result.add_bundle(bundle)
    result.add_table(["buffer [flits]", "offered load", "latency", "saturated"], rows)

    if len(near_sat) >= 2:
        small, large = min(near_sat), max(near_sat)
        if near_sat[small] <= near_sat[large]:
            result.note(
                "shape holds: smaller buffers yield lower latency at the "
                "highest sustained load (stiffer backpressure, §V-D)"
            )
    return result


def run_oversub(
    scale=Scale.DEFAULT, seed=0, extra_ps=None, workers: int = 1
) -> ExperimentResult:
    scale = Scale.coerce(scale)
    q = _sf_q(scale)
    base = SlimFly.from_q(q)
    p_bal = balanced_concentration(base.num_routers, base.network_radix)
    if extra_ps is None:
        extra_ps = [p_bal + 1, p_bal + 3] if scale == Scale.PAPER else [p_bal + 1, p_bal + 2]
    cfg = sim_config_for(scale)
    tables = RoutingTables(base.adjacency)

    result = ExperimentResult(
        "fig8-oversub", f"Oversubscribed Slim Fly (q={q}, balanced p={p_bal})"
    )
    rows = []
    accepted_by_p: dict[int, float] = {}
    n_loads = {Scale.QUICK: 5, Scale.DEFAULT: 7, Scale.PAPER: 10}[scale]
    loads = [round((i + 1) / n_loads, 3) for i in range(n_loads)]
    for p in [p_bal] + list(extra_ps):
        sf = SlimFly.from_q(q, concentration=p)
        traffic = UniformRandom(sf.num_endpoints)
        points = parallel_latency_vs_load(
            sf, lambda: MinimalRouting(tables), traffic, loads=loads, config=cfg,
            workers=workers,
        )
        acc = max_accepted(points)
        accepted_by_p[p] = acc
        est = saturation_load_estimate(sf.num_routers, sf.network_radix, p)
        rows.append([p, sf.num_endpoints, round(acc, 3), round(est, 3)])
    result.add_table(
        ["p", "N", "max accepted (uniform, MIN)", "analytic estimate"], rows
    )

    vals = [accepted_by_p[p] for p in sorted(accepted_by_p)]
    if all(vals[i] + 1e-9 >= vals[i + 1] - 0.05 for i in range(len(vals) - 1)):
        result.note(
            "shape holds: accepted bandwidth degrades gracefully with "
            "oversubscription (paper: 87.5% -> 80% -> 75%)"
        )
    return result
