"""Performance under failure: latency/throughput vs dead-link fraction.

The paper's §III-D resiliency argument (Table 3) shows Slim Fly's
router graph stays connected and low-diameter under heavy link loss;
the deployment follow-up (Blach et al., 2023) measures what that means
for *performance* on real degraded hardware.  This family reproduces
that methodology in silico: one Slim Fly, a grid of seeded random
link-kill fractions, and the fault-aware protocols (MIN/VAL/UGAL-L
re-routed over the degraded tables), swept to saturation at every
fault point.

Defined declaratively — :func:`campaign` returns the
{routing × fault-fraction} grid as serializable scenarios whose
``fault`` axis the resolver rewrites into a
:class:`~repro.analysis.faults.DegradedTopology` — so the sweep runs
through any backend, worker count, store, or service transport with
byte-identical rows.

Labels follow ``PROTOCOL/f=FRACTION``; the report layer's ``fault``
figure family groups on that convention to render the degradation
overlays (latency and throughput vs fault fraction, one series per
routing).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    TRIO_SHAPES,
    sim_config_for,
)
from repro.scenarios import (
    Campaign,
    FaultSpec,
    RoutingSpec,
    Scenario,
    TopologySpec,
    TrafficSpec,
    run_campaign,
)
from repro.util.series import SeriesBundle

#: Dead-link fractions per scale preset.  0.0 is the healthy baseline
#: (it normalises to a fault-free spec, so its rows are shared with —
#: and resumable from — any healthy campaign of the same scenario).
FRACTIONS = {
    Scale.QUICK: [0.0, 0.05, 0.1],
    Scale.DEFAULT: [0.0, 0.02, 0.05, 0.1, 0.15],
    Scale.PAPER: [0.0, 0.02, 0.05, 0.08, 0.1, 0.15, 0.2],
}

#: The fault-aware protocol set (label, routing-spec factory).
PROTOCOLS = [
    ("SF-MIN", lambda seed: RoutingSpec("min")),
    ("SF-VAL", lambda seed: RoutingSpec("val", {"seed": seed})),
    ("SF-UGAL-L", lambda seed: RoutingSpec("ugal-l", {"seed": seed})),
]


def _loads(scale: Scale) -> list[float]:
    n = {Scale.QUICK: 4, Scale.DEFAULT: 7, Scale.PAPER: 12}[scale]
    step = 0.9 / n
    return [round(step * (i + 1), 4) for i in range(n)]


def campaign(
    scale=Scale.DEFAULT,
    seed: int = 0,
    fractions=None,
    backend: str = "cycle",
    q: int | None = None,
) -> Campaign:
    """The fault-degradation grid as a declarative campaign.

    ``fractions`` overrides the per-scale dead-link grid; ``q`` pins
    the Slim Fly size (default: the scale's §V trio shape).  ``seed``
    seeds both the adaptive/oblivious routings and the fault sample —
    every fraction kills a fresh sample from the same generator seed,
    so the sweep is one deterministic family of degraded networks.
    """
    scale = Scale.coerce(scale)
    cfg = sim_config_for(scale)
    loads = _loads(scale)
    if fractions is None:
        fractions = FRACTIONS[scale]
    tspec = TopologySpec("SF", params={"q": q if q is not None else TRIO_SHAPES[scale][0]})
    scenarios = []
    for name, rspec in PROTOCOLS:
        for frac in fractions:
            fault = FaultSpec(link_fraction=frac, seed=seed) if frac else None
            scenarios.append(
                Scenario(
                    topology=tspec,
                    routing=rspec(seed),
                    sim=cfg,
                    traffic=TrafficSpec("uniform"),
                    loads=loads,
                    label=f"{name}/f={frac:g}",
                    backend=backend,
                    fault=fault,
                )
            )
    name = f"fault-degradation-{scale.value}"
    if backend != "cycle":
        name += f"-{backend}"
    return Campaign(name, scenarios)


def _fraction_of(scenario: Scenario) -> float:
    return scenario.fault.link_fraction if scenario.fault is not None else 0.0


def run(
    scale=Scale.DEFAULT,
    seed=0,
    workers: int = 1,
    backend: str = "cycle",
) -> ExperimentResult:
    """Run the fault sweep and render the degradation curves.

    One bundle series per protocol in each of two bundles: low-load
    latency vs fault fraction, and peak accepted throughput vs fault
    fraction.  Disconnected points (a sample that fragmented the
    network) render as gaps and are called out in the notes — never a
    crash.
    """
    scale = Scale.coerce(scale)
    camp = campaign(scale, seed=seed, backend=backend)
    report = run_campaign(camp, workers=workers)

    by_label: dict[str, list[dict]] = {}
    for row in report.rows:
        by_label.setdefault(row["label"], []).append(row)

    result = ExperimentResult(
        "fault-degradation",
        "Latency/throughput degradation vs dead-link fraction (uniform "
        "traffic, fault-aware SF protocols)",
    )
    latency_bundle = SeriesBundle(
        title="Low-load latency vs fault fraction",
        xlabel="dead-link fraction",
        ylabel="latency [cycles]",
    )
    throughput_bundle = SeriesBundle(
        title="Peak accepted throughput vs fault fraction",
        xlabel="dead-link fraction",
        ylabel="max accepted load",
    )
    table_rows = []
    for name, _ in PROTOCOLS:
        lat_series = latency_bundle.new(name)
        acc_series = throughput_bundle.new(name)
        points = [
            (label, rows)
            for label, rows in by_label.items()
            if label.split("/f=", 1)[0] == name
        ]
        for label, rows in points:
            frac = float(label.split("/f=", 1)[1])
            disconnected = any(r.get("disconnected") for r in rows)
            latencies = [r["latency"] for r in rows if r["latency"] is not None]
            accepted = [r["accepted"] for r in rows if r["accepted"] is not None]
            low_lat = latencies[0] if latencies else None
            peak = max(accepted) if accepted else None
            if low_lat is not None:
                lat_series.append(frac, round(low_lat, 2))
            if peak is not None:
                acc_series.append(frac, round(peak, 3))
            table_rows.append(
                [
                    name,
                    frac,
                    round(low_lat, 1) if low_lat is not None else None,
                    round(peak, 3) if peak is not None else None,
                    disconnected,
                ]
            )
            if disconnected:
                result.note(
                    f"{label}: fault sample disconnected the network "
                    f"(structured rows, no simulation)"
                )
    result.add_bundle(latency_bundle)
    result.add_bundle(throughput_bundle)
    result.add_table(
        ["protocol", "fault fraction", "low-load latency [cyc]",
         "peak accepted", "disconnected"],
        table_rows,
    )
    result.note(
        "methodology: seeded random link kills, rerouted over degraded "
        "all-pairs tables (§III-D resiliency argument, measured as in "
        "the 2023 deployment paper)"
    )
    return result
