"""E7/E8 — §III-D2 and §III-D3: resiliency of diameter and path length.

- *Diameter increase* (§III-D2): max link-failure fraction tolerated
  before the diameter grows by more than 2.  Paper: SF withstands up
  to 40% at N = 2¹³; DLN ≈ 60%; DF ≈ 25%; tori comparable to SF.
- *Average path length increase* (§III-D3): max failure fraction
  before the average distance grows by more than one hop.  Paper:
  DLN ≈ 60%, SF ≈ 55%, DF ≈ 45%, tori ≈ 55%.
"""

from __future__ import annotations

from repro.analysis.resiliency import diameter_resiliency, pathlength_resiliency
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.registry import balanced_instance

#: Paper headline numbers for the notes (N = 2^13).
PAPER_DIAMETER = {"SF": 0.40, "DLN": 0.60, "DF": 0.25}
PAPER_PATHLEN = {"SF": 0.55, "DLN": 0.60, "DF": 0.45, "T3D": 0.55}


def _plan(scale: Scale) -> tuple[int, int, list[str]]:
    if scale == Scale.QUICK:
        return 256, 5, ["SF", "DF", "DLN"]
    if scale == Scale.DEFAULT:
        return 512, 8, ["SF", "DF", "DLN", "T3D", "FBF-3"]
    return 8192, 30, ["SF", "DF", "DLN", "T3D", "T5D", "HC", "LH-HC", "FT-3", "FBF-3"]


def run_diameter(scale=Scale.DEFAULT, seed=0) -> ExperimentResult:
    scale = Scale.coerce(scale)
    target, samples, names = _plan(scale)
    result = ExperimentResult(
        "res-diameter", "Resiliency: tolerated failures before diameter +2"
    )
    rows = []
    outcome = {}
    for name in names:
        topo = balanced_instance(name, target, seed=seed)
        res = diameter_resiliency(topo.adjacency, samples=samples, seed=seed)
        outcome[name] = res.max_survivable_fraction
        rows.append(
            [name, topo.num_endpoints, f"{round(100 * res.max_survivable_fraction)}%",
             f"{round(100 * PAPER_DIAMETER.get(name, float('nan')))}%"
             if name in PAPER_DIAMETER else "-"]
        )
    result.add_table(["topology", "N", "tolerated failures", "paper (N=2^13)"], rows)
    if {"DLN", "DF"} <= outcome.keys() and outcome["DLN"] >= outcome["DF"]:
        result.note("shape holds: DLN most resilient, DF weakest of the trio (§III-D2)")
    return result


def run_pathlen(scale=Scale.DEFAULT, seed=0) -> ExperimentResult:
    scale = Scale.coerce(scale)
    target, samples, names = _plan(scale)
    result = ExperimentResult(
        "res-pathlen", "Resiliency: tolerated failures before avg path +1 hop"
    )
    rows = []
    outcome = {}
    for name in names:
        topo = balanced_instance(name, target, seed=seed)
        res = pathlength_resiliency(topo.adjacency, samples=samples, seed=seed)
        outcome[name] = res.max_survivable_fraction
        rows.append(
            [name, topo.num_endpoints, f"{round(100 * res.max_survivable_fraction)}%",
             f"{round(100 * PAPER_PATHLEN.get(name, float('nan')))}%"
             if name in PAPER_PATHLEN else "-"]
        )
    result.add_table(["topology", "N", "tolerated failures", "paper (N=2^13)"], rows)
    if {"SF", "DF"} <= outcome.keys() and outcome["SF"] >= outcome["DF"]:
        result.note("shape holds: SF tolerates more failures than DF (§III-D3)")
    return result
