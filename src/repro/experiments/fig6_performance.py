"""E9–E12 / Fig 6: latency vs offered load — SF vs DF vs FT-3.

Protocols exactly as the paper: SF-MIN, SF-VAL, SF-UGAL-L, SF-UGAL-G,
DF-UGAL-L, FT-ANCA.  Patterns: uniform random (6a), bit reversal (6b),
shift (6c), worst-case adversarial (6d; per-topology patterns — Fig 9
for SF, group+1 for DF, cross-pod for FT).

The experiment is *defined* as a campaign — :func:`campaign` returns
the declarative {protocol × load × replica} grid as serializable
:class:`~repro.scenarios.Scenario` objects — and :func:`run` is a thin
wrapper that executes it through
:func:`~repro.scenarios.run_campaign` and renders the same rows the
pre-campaign implementation produced.

Reproduction targets: SF lowest latency at low load (diameter 2);
SF-MIN near-full uniform throughput; VAL saturating below 50%;
UGAL-L ≈ 80% of injection on uniform with a latency penalty over
UGAL-G; worst-case MIN collapsing to ≈1/(2p) while VAL/UGAL sustain
≈ 40–45%; FT-3 keeping the highest worst-case bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    performance_protocol_specs,
    performance_trio_specs,
    sim_config_for,
)
from repro.scenarios import (
    Campaign,
    Scenario,
    TrafficSpec,
    resolve_topology,
    rows_by_label,
    run_campaign,
)
# Re-exported under its historical name: this module owned the pattern
# list before the traffic registry existed, and callers still reach it
# as fig6_performance.PATTERNS.
from repro.traffic.registry import PATTERN_KINDS as PATTERNS  # noqa: F401
from repro.util.series import SeriesBundle


def _loads(scale: Scale, pattern: str) -> list[float]:
    hi = 0.5 if pattern == "worstcase" else 0.95
    n = {Scale.QUICK: 5, Scale.DEFAULT: 8, Scale.PAPER: 14}[scale]
    step = hi / n
    return [round(step * (i + 1), 4) for i in range(n)]


def campaign(
    scale=Scale.DEFAULT, seed: int = 0, pattern: str = "uniform", replicas: int = 1
) -> Campaign:
    """One Fig 6 panel as a declarative campaign (six load sweeps)."""
    scale = Scale.coerce(scale)
    cfg = sim_config_for(scale)
    loads = _loads(scale, pattern)
    scenarios = [
        Scenario(
            topology=tspec,
            routing=rspec,
            sim=cfg,
            traffic=TrafficSpec(pattern, seed=seed),
            loads=loads,
            replicas=replicas,
            label=name,
        )
        for name, tspec, rspec in performance_protocol_specs(scale, seed)
    ]
    return Campaign(f"fig6-{pattern}-{scale.value}", scenarios)


def run(
    scale=Scale.DEFAULT,
    seed=0,
    pattern: str = "uniform",
    workers: int = 1,
    replicas: int = 1,
) -> ExperimentResult:
    """Regenerate one Fig 6 panel (identical rows to the legacy path).

    ``workers`` fans each scenario's load sweep across processes (0 =
    one per core, 1 = in-process); rows are identical for any value.
    ``replicas`` averages each point over derived seeds.
    """
    scale = Scale.coerce(scale)
    camp = campaign(scale, seed=seed, pattern=pattern, replicas=replicas)
    report = run_campaign(camp, workers=workers)

    sf, df, ft = (resolve_topology(t) for t in performance_trio_specs(scale))
    result = ExperimentResult(
        f"fig6-{pattern}", f"Latency vs offered load — {pattern} traffic"
    )
    result.note(
        f"networks: SF N={sf.num_endpoints}, DF N={df.num_endpoints}, "
        f"FT-3 N={ft.num_endpoints} (balanced variants, §V)"
    )
    bundle = SeriesBundle(
        title=f"Fig 6 ({pattern})",
        xlabel="offered load",
        ylabel="latency [cycles]",
    )

    rows = []
    saturation: dict[str, float] = {}
    for name, points in rows_by_label(report).items():
        series = bundle.new(name)
        sat_load = None
        for pt in points:
            if pt["latency"] is not None:
                series.append(pt["load"], round(pt["latency"], 2))
            rows.append(
                [
                    name,
                    pt["load"],
                    round(pt["latency"], 1) if pt["latency"] is not None else None,
                    round(pt["accepted"], 3) if pt["accepted"] is not None else None,
                    pt["saturated"],
                ]
            )
            if pt["saturated"] and sat_load is None:
                sat_load = pt["load"]
        saturation[name] = sat_load if sat_load is not None else 1.0

    result.add_bundle(bundle)
    result.add_table(
        ["protocol", "offered load", "latency [cyc]", "accepted", "saturated"], rows
    )

    _shape_notes(result, bundle, saturation, pattern)
    return result


def _shape_notes(result, bundle, saturation, pattern) -> None:
    """Check the headline claims for the pattern at hand."""
    def zero_load(name: str) -> float:
        try:
            s = bundle.get(name)
            return s.y[0] if s.y else float("inf")
        except KeyError:
            return float("inf")

    if pattern == "uniform":
        if zero_load("SF-MIN") <= min(zero_load("DF-UGAL-L"), zero_load("FT-ANCA")):
            result.note("shape holds: SF has the lowest low-load latency (D=2)")
        if saturation.get("SF-VAL", 1.0) <= 0.55:
            result.note(
                f"shape holds: VAL saturates at {saturation['SF-VAL']:.2f} (< 50-55%)"
            )
        if saturation.get("SF-MIN", 0) >= saturation.get("SF-VAL", 1):
            result.note("shape holds: MIN outlives VAL on uniform traffic")
    if pattern == "worstcase":
        sf_min = saturation.get("SF-MIN", 1.0)
        sf_ugal = saturation.get("SF-UGAL-L", 1.0)
        if sf_min < sf_ugal:
            result.note(
                f"shape holds: worst-case MIN collapses at {sf_min:.2f} while "
                f"UGAL-L sustains {sf_ugal:.2f} (paper: ~1/(p+1) vs ~45%)"
            )
        ft = saturation.get("FT-ANCA", 1.0)
        if ft >= sf_ugal:
            result.note("shape holds: full-bandwidth FT-3 sustains the highest "
                        "worst-case load")
