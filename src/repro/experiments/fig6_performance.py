"""E9–E12 / Fig 6: latency vs offered load — SF vs DF vs FT-3.

Protocols exactly as the paper: SF-MIN, SF-VAL, SF-UGAL-L, SF-UGAL-G,
DF-UGAL-L, FT-ANCA.  Patterns: uniform random (6a), bit reversal (6b),
shift (6c), worst-case adversarial (6d; per-topology patterns — Fig 9
for SF, group+1 for DF, cross-pod for FT).

The experiment is *defined* as a campaign — :func:`campaign` returns
the declarative {protocol × load × replica} grid as serializable
:class:`~repro.scenarios.Scenario` objects — and :func:`run` is a thin
wrapper that executes it through
:func:`~repro.scenarios.run_campaign` and renders the same rows the
pre-campaign implementation produced.

Reproduction targets: SF lowest latency at low load (diameter 2);
SF-MIN near-full uniform throughput; VAL saturating below 50%;
UGAL-L ≈ 80% of injection on uniform with a latency penalty over
UGAL-G; worst-case MIN collapsing to ≈1/(2p) while VAL/UGAL sustain
≈ 40–45%; FT-3 keeping the highest worst-case bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    performance_protocol_specs,
    performance_trio_specs,
    sim_config_for,
)
from repro.scenarios import (
    Campaign,
    Scenario,
    TrafficSpec,
    resolve_topology,
    rows_by_label,
    run_campaign,
)
# Re-exported under its historical name: this module owned the pattern
# list before the traffic registry existed, and callers still reach it
# as fig6_performance.PATTERNS.
from repro.traffic.registry import PATTERN_KINDS as PATTERNS  # noqa: F401
from repro.util.series import SeriesBundle


def _collect_panel(report, bundle: SeriesBundle):
    """Campaign rows -> (table rows, first saturated load per label).

    The shared aggregation of every Fig 6 panel renderer: one bundle
    series per protocol (finite-latency points only), the full result
    table, and the saturation map ``_shape_notes`` checks (labels that
    never saturate map to 1.0).
    """
    rows = []
    saturation: dict[str, float] = {}
    for name, points in rows_by_label(report).items():
        series = bundle.new(name)
        sat_load = None
        for pt in points:
            if pt["latency"] is not None:
                series.append(pt["load"], round(pt["latency"], 2))
            rows.append(
                [
                    name,
                    pt["load"],
                    round(pt["latency"], 1) if pt["latency"] is not None else None,
                    round(pt["accepted"], 3) if pt["accepted"] is not None else None,
                    pt["saturated"],
                ]
            )
            if pt["saturated"] and sat_load is None:
                sat_load = pt["load"]
        saturation[name] = sat_load if sat_load is not None else 1.0
    return rows, saturation


def _loads(scale: Scale, pattern: str) -> list[float]:
    hi = 0.5 if pattern == "worstcase" else 0.95
    n = {Scale.QUICK: 5, Scale.DEFAULT: 8, Scale.PAPER: 14}[scale]
    step = hi / n
    return [round(step * (i + 1), 4) for i in range(n)]


def campaign(
    scale=Scale.DEFAULT,
    seed: int = 0,
    pattern: str = "uniform",
    replicas: int = 1,
    backend: str = "cycle",
) -> Campaign:
    """One Fig 6 panel as a declarative campaign (six load sweeps).

    ``backend`` selects the engine fidelity; the default keeps the
    historical campaign name (and every scenario hash) unchanged,
    while e.g. ``backend="flow"`` yields a ``fig6-<pattern>-<scale>-
    flow`` campaign whose rows solve through the flow-level model.
    """
    scale = Scale.coerce(scale)
    cfg = sim_config_for(scale)
    loads = _loads(scale, pattern)
    scenarios = [
        Scenario(
            topology=tspec,
            routing=rspec,
            sim=cfg,
            traffic=TrafficSpec(pattern, seed=seed),
            loads=loads,
            replicas=replicas,
            label=name,
            backend=backend,
        )
        for name, tspec, rspec in performance_protocol_specs(scale, seed)
    ]
    name = f"fig6-{pattern}-{scale.value}"
    if backend != "cycle":
        name += f"-{backend}"
    return Campaign(name, scenarios)


#: The paper-scale §V trio: SF q=25 (N=23,750) vs the closest balanced
#: Dragonfly (h=9, N=26,406) and three-level fat tree (p=29, N=24,389).
#: Only the flow-level backend sweeps these sizes in reasonable time —
#: the reason the paper-scale variant exists.
PAPER_SCALE_SHAPES = {"q": 25, "h": 9, "p": 29}


def paper_campaign(
    scale=Scale.DEFAULT,
    seed: int = 0,
    pattern: str = "uniform",
    sf_only: bool = False,
) -> Campaign:
    """Fig 6 at full paper scale (q=25 MMS), flow-level backend only.

    Protocols: SF MIN/VAL/UGAL-L against DF-UGAL-L and FT-ANCA on the
    :data:`PAPER_SCALE_SHAPES` trio.  ``sf_only`` keeps just the three
    Slim Fly sweeps (the CI wall-clock gate); the full campaign run
    with ``resume=True`` over the same output file then adds only the
    comparison networks.  ``scale`` picks the load-point count — the
    shapes stay paper-size at every scale.
    """
    from repro.scenarios import RoutingSpec, TopologySpec

    scale = Scale.coerce(scale)
    loads = _loads(scale, pattern)
    sf = TopologySpec("SF", params={"q": PAPER_SCALE_SHAPES["q"]})
    df = TopologySpec("DF", params={"h": PAPER_SCALE_SHAPES["h"]})
    ft = TopologySpec("FT-3", params={"p": PAPER_SCALE_SHAPES["p"]})
    rows = [
        ("SF-MIN", sf, RoutingSpec("min")),
        ("SF-VAL", sf, RoutingSpec("val", {"seed": seed})),
        ("SF-UGAL-L", sf, RoutingSpec("ugal-l", {"seed": seed})),
        ("DF-UGAL-L", df, RoutingSpec("df-ugal-l", {"seed": seed})),
        ("FT-ANCA", ft, RoutingSpec("ft-anca", {"seed": seed})),
    ]
    if sf_only:
        rows = [r for r in rows if r[1] is sf]
    scenarios = [
        Scenario(
            topology=tspec,
            routing=rspec,
            sim=sim_config_for(scale),
            traffic=TrafficSpec(pattern, seed=seed),
            loads=loads,
            label=name,
            backend="flow",
        )
        for name, tspec, rspec in rows
    ]
    return Campaign(f"fig6-paper-{pattern}", scenarios)


def run_paper(
    scale=Scale.DEFAULT,
    seed=0,
    pattern: str = "uniform",
    workers: int = 1,
) -> ExperimentResult:
    """Render the paper-scale Fig 6 panel through the flow backend.

    ``workers`` is accepted for CLI parity; the flow backend solves
    in-process and its rows are byte-identical at any worker count.
    """
    scale = Scale.coerce(scale)
    camp = paper_campaign(scale, seed=seed, pattern=pattern)
    report = run_campaign(camp, workers=workers)

    q, h, p = (PAPER_SCALE_SHAPES[k] for k in ("q", "h", "p"))
    result = ExperimentResult(
        f"fig6-paper-{pattern}",
        f"Latency vs offered load at paper scale — {pattern} traffic "
        f"(flow-level backend)",
    )
    result.note(
        f"networks: SF q={q} (N=23750), DF h={h} (N=26406), "
        f"FT-3 p={p} (N=24389) — full §V sizes, flow-level fidelity"
    )
    bundle = SeriesBundle(
        title=f"Fig 6 paper scale ({pattern})",
        xlabel="offered load",
        ylabel="latency [cycles]",
    )
    rows, saturation = _collect_panel(report, bundle)
    result.add_bundle(bundle)
    result.add_table(
        ["protocol", "offered load", "latency [cyc]", "accepted", "saturated"], rows
    )
    _shape_notes(result, bundle, saturation, pattern)
    return result


def run(
    scale=Scale.DEFAULT,
    seed=0,
    pattern: str = "uniform",
    workers: int = 1,
    replicas: int = 1,
) -> ExperimentResult:
    """Regenerate one Fig 6 panel (identical rows to the legacy path).

    ``workers`` fans each scenario's load sweep across processes (0 =
    one per core, 1 = in-process); rows are identical for any value.
    ``replicas`` averages each point over derived seeds.
    """
    scale = Scale.coerce(scale)
    camp = campaign(scale, seed=seed, pattern=pattern, replicas=replicas)
    report = run_campaign(camp, workers=workers)

    sf, df, ft = (resolve_topology(t) for t in performance_trio_specs(scale))
    result = ExperimentResult(
        f"fig6-{pattern}", f"Latency vs offered load — {pattern} traffic"
    )
    result.note(
        f"networks: SF N={sf.num_endpoints}, DF N={df.num_endpoints}, "
        f"FT-3 N={ft.num_endpoints} (balanced variants, §V)"
    )
    bundle = SeriesBundle(
        title=f"Fig 6 ({pattern})",
        xlabel="offered load",
        ylabel="latency [cycles]",
    )
    rows, saturation = _collect_panel(report, bundle)
    result.add_bundle(bundle)
    result.add_table(
        ["protocol", "offered load", "latency [cyc]", "accepted", "saturated"], rows
    )

    _shape_notes(result, bundle, saturation, pattern)
    return result


def _shape_notes(result, bundle, saturation, pattern) -> None:
    """Check the headline claims for the pattern at hand."""
    def zero_load(name: str) -> float:
        try:
            s = bundle.get(name)
            return s.y[0] if s.y else float("inf")
        except KeyError:
            return float("inf")

    if pattern == "uniform":
        if zero_load("SF-MIN") <= min(zero_load("DF-UGAL-L"), zero_load("FT-ANCA")):
            result.note("shape holds: SF has the lowest low-load latency (D=2)")
        if saturation.get("SF-VAL", 1.0) <= 0.55:
            result.note(
                f"shape holds: VAL saturates at {saturation['SF-VAL']:.2f} (< 50-55%)"
            )
        if saturation.get("SF-MIN", 0) >= saturation.get("SF-VAL", 1):
            result.note("shape holds: MIN outlives VAL on uniform traffic")
    if pattern == "worstcase":
        sf_min = saturation.get("SF-MIN", 1.0)
        sf_ugal = saturation.get("SF-UGAL-L", 1.0)
        if sf_min < sf_ugal:
            result.note(
                f"shape holds: worst-case MIN collapses at {sf_min:.2f} while "
                f"UGAL-L sustains {sf_ugal:.2f} (paper: ~1/(p+1) vs ~45%)"
            )
        ft = saturation.get("FT-ANCA", 1.0)
        if ft >= sf_ugal:
            result.note("shape holds: full-bandwidth FT-3 sustains the highest "
                        "worst-case load")
