"""E9–E12 / Fig 6: latency vs offered load — SF vs DF vs FT-3.

Protocols exactly as the paper: SF-MIN, SF-VAL, SF-UGAL-L, SF-UGAL-G,
DF-UGAL-L, FT-ANCA.  Patterns: uniform random (6a), bit reversal (6b),
shift (6c), worst-case adversarial (6d; per-topology patterns — Fig 9
for SF, group+1 for DF, cross-pod for FT).

Reproduction targets: SF lowest latency at low load (diameter 2);
SF-MIN near-full uniform throughput; VAL saturating below 50%;
UGAL-L ≈ 80% of injection on uniform with a latency penalty over
UGAL-G; worst-case MIN collapsing to ≈1/(2p) while VAL/UGAL sustain
≈ 40–45%; FT-3 keeping the highest worst-case bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale, performance_trio, sim_config_for
from repro.routing import (
    ANCARouting,
    DragonflyUGAL,
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
)
from repro.sim.parallel import parallel_latency_vs_load
from repro.traffic import (
    BitComplementPattern,
    BitReversalPattern,
    ShiftPattern,
    ShufflePattern,
    UniformRandom,
    worst_case_for,
)
from repro.util.series import SeriesBundle

PATTERNS = ("uniform", "bitrev", "shift", "shuffle", "bitcomp", "worstcase")


def _pattern_for(kind: str, topo, tables=None, seed=0):
    n = topo.num_endpoints
    if kind == "uniform":
        return UniformRandom(n)
    if kind == "bitrev":
        return BitReversalPattern(n)
    if kind == "shift":
        return ShiftPattern(n)
    if kind == "shuffle":
        return ShufflePattern(n)
    if kind == "bitcomp":
        return BitComplementPattern(n)
    if kind == "worstcase":
        return worst_case_for(topo, tables=tables, seed=seed)
    raise ValueError(f"unknown pattern {kind!r}; choose from {PATTERNS}")


def _loads(scale: Scale, pattern: str) -> list[float]:
    hi = 0.5 if pattern == "worstcase" else 0.95
    n = {Scale.QUICK: 5, Scale.DEFAULT: 8, Scale.PAPER: 14}[scale]
    step = hi / n
    return [round(step * (i + 1), 4) for i in range(n)]


def run(
    scale=Scale.DEFAULT,
    seed=0,
    pattern: str = "uniform",
    workers: int = 1,
    replicas: int = 1,
) -> ExperimentResult:
    """Regenerate one Fig 6 panel.

    ``workers`` fans the load sweep across processes via
    :func:`repro.sim.parallel.parallel_latency_vs_load` (0 = one per
    core, 1 = in-process); rows are identical for any value.
    ``replicas`` averages each point over derived seeds.
    """
    scale = Scale.coerce(scale)
    cfg = sim_config_for(scale)
    sf, df, ft = performance_trio(scale)
    sf_tables = RoutingTables(sf.adjacency)
    df_tables = RoutingTables(df.adjacency)

    result = ExperimentResult(
        f"fig6-{pattern}", f"Latency vs offered load — {pattern} traffic"
    )
    result.note(
        f"networks: SF N={sf.num_endpoints}, DF N={df.num_endpoints}, "
        f"FT-3 N={ft.num_endpoints} (balanced variants, §V)"
    )
    bundle = SeriesBundle(
        title=f"Fig 6 ({pattern})",
        xlabel="offered load",
        ylabel="latency [cycles]",
    )

    protocols = [
        ("SF-MIN", sf, lambda: MinimalRouting(sf_tables)),
        ("SF-VAL", sf, lambda: ValiantRouting(sf_tables, seed=seed)),
        ("SF-UGAL-L", sf, lambda: UGALRouting(sf_tables, "local", seed=seed)),
        ("SF-UGAL-G", sf, lambda: UGALRouting(sf_tables, "global", seed=seed)),
        ("DF-UGAL-L", df, lambda: DragonflyUGAL(df, df_tables, seed=seed)),
        ("FT-ANCA", ft, lambda: ANCARouting(ft, seed=seed)),
    ]

    rows = []
    saturation: dict[str, float] = {}
    for name, topo, factory in protocols:
        traffic = _pattern_for(pattern, topo,
                               tables=sf_tables if topo is sf else None, seed=seed)
        points = parallel_latency_vs_load(
            topo, factory, traffic, loads=_loads(scale, pattern), config=cfg,
            workers=workers, replicas=replicas,
        )
        series = bundle.new(name)
        sat_load = None
        for pt in points:
            if pt.latency is not None:
                series.append(pt.load, round(pt.latency, 2))
            rows.append(
                [
                    name,
                    pt.load,
                    round(pt.latency, 1) if pt.latency is not None else None,
                    round(pt.accepted, 3) if pt.accepted is not None else None,
                    pt.saturated,
                ]
            )
            if pt.saturated and sat_load is None:
                sat_load = pt.load
        saturation[name] = sat_load if sat_load is not None else 1.0

    result.add_bundle(bundle)
    result.add_table(
        ["protocol", "offered load", "latency [cyc]", "accepted", "saturated"], rows
    )

    _shape_notes(result, bundle, saturation, pattern)
    return result


def _shape_notes(result, bundle, saturation, pattern) -> None:
    """Check the headline claims for the pattern at hand."""
    def zero_load(name: str) -> float:
        try:
            s = bundle.get(name)
            return s.y[0] if s.y else float("inf")
        except KeyError:
            return float("inf")

    if pattern == "uniform":
        if zero_load("SF-MIN") <= min(zero_load("DF-UGAL-L"), zero_load("FT-ANCA")):
            result.note("shape holds: SF has the lowest low-load latency (D=2)")
        if saturation.get("SF-VAL", 1.0) <= 0.55:
            result.note(
                f"shape holds: VAL saturates at {saturation['SF-VAL']:.2f} (< 50-55%)"
            )
        if saturation.get("SF-MIN", 0) >= saturation.get("SF-VAL", 1):
            result.note("shape holds: MIN outlives VAL on uniform traffic")
    if pattern == "worstcase":
        sf_min = saturation.get("SF-MIN", 1.0)
        sf_ugal = saturation.get("SF-UGAL-L", 1.0)
        if sf_min < sf_ugal:
            result.note(
                f"shape holds: worst-case MIN collapses at {sf_min:.2f} while "
                f"UGAL-L sustains {sf_ugal:.2f} (paper: ~1/(p+1) vs ~45%)"
            )
        ft = saturation.get("FT-ANCA", 1.0)
        if ft >= sf_ugal:
            result.note("shape holds: full-bandwidth FT-3 sustains the highest "
                        "worst-case load")
