"""E19 / §IV-D: virtual channels needed for deadlock freedom.

Two results reproduced:

1. **Gopal hop-indexed VCs**: minimal SF routing is deadlock-free with
   2 VCs (max 2 hops), adaptive routing with 4 (max 4 hops) — verified
   by building the extended channel dependency graph of an actual path
   population and checking acyclicity.
2. **DFSSSP-style layering**: deterministic min-path routes packed
   into acyclic VC layers first-fit.  Paper: OFED DFSSSP needs 3 VCs
   on every SF, versus 8–15 on DLN random topologies of 338–1682
   endpoints.  Shape target: SF ≪ DLN.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale
from repro.routing import (
    MinimalRouting,
    RoutingTables,
    ValiantRouting,
    dfsssp_vc_count,
    gopal_vc_assignment_is_deadlock_free,
)
from repro.topologies import RandomDLN, SlimFly


def _plan(scale: Scale) -> tuple[list[int], int]:
    """(SF q values, DLN router count)."""
    if scale == Scale.QUICK:
        return [5], 60
    if scale == Scale.DEFAULT:
        return [5, 7], 128
    return [5, 7, 11, 13], 338


def run(scale=Scale.DEFAULT, seed=0) -> ExperimentResult:
    scale = Scale.coerce(scale)
    qs, dln_routers = _plan(scale)
    result = ExperimentResult("vc-counts", "Deadlock-freedom VC requirements (§IV-D)")

    rows = []
    sf_layer_counts = []
    for q in qs:
        sf = SlimFly.from_q(q)
        tables = RoutingTables(sf.adjacency)
        # Gopal: verify on all-pairs minimal paths and sampled VAL paths.
        min_paths = [
            tables.min_path(s, d)
            for s in range(sf.num_routers)
            for d in range(sf.num_routers)
            if s != d
        ]
        gopal_min_ok = gopal_vc_assignment_is_deadlock_free(min_paths, num_vcs=2)
        val = ValiantRouting(tables, seed=seed)
        val_paths = [
            val.plan(s, (s + 7) % sf.num_routers)
            for s in range(0, sf.num_routers, max(1, sf.num_routers // 64))
        ]
        gopal_val_ok = gopal_vc_assignment_is_deadlock_free(val_paths, num_vcs=4)
        layers = dfsssp_vc_count(tables)
        sf_layer_counts.append(layers)
        rows.append(
            [f"SF q={q}", sf.num_endpoints, gopal_min_ok, gopal_val_ok, layers]
        )

    sf_for_radix = SlimFly.from_q(qs[-1])
    dln = RandomDLN.balanced(sf_for_radix.router_radix, dln_routers, seed=seed)
    dln_tables = RoutingTables(dln.adjacency)
    dln_min_paths = [
        dln_tables.min_path(s, d)
        for s in range(dln.num_routers)
        for d in range(dln.num_routers)
        if s != d
    ]
    dln_gopal = gopal_vc_assignment_is_deadlock_free(
        dln_min_paths, num_vcs=dln_tables.diameter()
    )
    dln_layers = dfsssp_vc_count(dln_tables)
    rows.append([f"DLN Nr={dln.num_routers}", dln.num_endpoints, dln_gopal, "-", dln_layers])

    result.add_table(
        ["network", "N", "Gopal 2-VC MIN acyclic", "Gopal 4-VC adaptive acyclic",
         "DFSSSP-style VC layers"],
        rows,
    )
    if max(sf_layer_counts) < dln_layers:
        result.note(
            f"shape holds: SF needs {max(sf_layer_counts)} VC layer(s) vs "
            f"{dln_layers} for DLN (paper: 3 vs 8–15)"
        )
    else:  # pragma: no cover
        result.note("SHAPE VIOLATION: SF VC demand not below DLN")
    result.note("SF minimal routing verified deadlock-free with 2 hop-indexed VCs; "
                "adaptive with 4 (paper §IV-D, Fig 7)")
    return result
