"""Experiment harness: regenerate every table and figure (paper §III–§VI).

Each experiment module exposes ``run(scale=..., seed=...) ->
ExperimentResult`` and registers itself in
:data:`repro.experiments.runner.EXPERIMENTS`.  The CLI front-end:

    python -m repro.experiments --list
    python -m repro.experiments fig1
    python -m repro.experiments fig6 --pattern worstcase --scale quick

Scales: ``quick`` (CI-sized), ``default`` (minutes), ``paper``
(the paper's full N — hours in pure Python; see DESIGN.md §6).
"""

from repro.experiments.common import ExperimentResult, Scale

__all__ = ["ExperimentResult", "Scale"]
