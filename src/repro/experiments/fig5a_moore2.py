"""E2 / Fig 5a: router counts vs the diameter-2 Moore bound.

Curves: MB(k', 2) = 1 + k'², Slim Fly MMS (≈ 88% of the bound),
two-level flattened butterfly (≈ 21–25%), two-stage fat tree (linear
in k' — ≈ 1.6%), and diameter-2 Long Hop constructions (≈ 1%).
"""

from __future__ import annotations

from repro.core.mms import MMSParams, mms_q_values
from repro.core.moore import moore_bound_diameter2, moore_fraction
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.longhop import long_hop_d2_configs
from repro.util.series import SeriesBundle


def fat_tree_2_routers(network_radix: int) -> int:
    """Two-stage folded Clos from radix-k' routers: k' edge + k'/2 core."""
    return network_radix + network_radix // 2


def run(scale=Scale.DEFAULT, seed=0, max_radix: int | None = None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    if max_radix is None:
        max_radix = 40 if scale == Scale.QUICK else 100
    result = ExperimentResult("fig5a", "Moore bound comparison, diameter 2")
    bundle = SeriesBundle(
        title="Fig 5a: N_r vs k' (D=2)",
        xlabel="network radix k'",
        ylabel="number of routers N_r",
    )

    mb = bundle.new("Moore Bound 2")
    for k in range(4, max_radix + 1, 4):
        mb.append(k, moore_bound_diameter2(k))

    sf = bundle.new("Slim Fly MMS")
    rows = []
    for q in mms_q_values(int(max_radix * 2 / 3) + 2):
        p = MMSParams.from_q(q)
        if p.network_radix <= max_radix:
            sf.append(p.network_radix, p.num_routers)
            rows.append(
                [
                    "SF MMS",
                    p.network_radix,
                    p.num_routers,
                    round(100 * moore_fraction(p.num_routers, p.network_radix, 2), 1),
                ]
            )

    fbf = bundle.new("Flat. Butterfly")
    for c in range(3, max_radix // 2 + 2):
        k = 2 * (c - 1)
        if k <= max_radix:
            fbf.append(k, c * c)

    ft = bundle.new("Fat tree")
    for k in range(4, max_radix + 1, 4):
        ft.append(k, fat_tree_2_routers(k))

    lh = bundle.new("Long Hop")
    max_dims = 8 if scale == Scale.QUICK else 11
    for _, n_r, k in long_hop_d2_configs(max_dims):
        if k <= max_radix:
            lh.append(k, n_r)

    result.add_bundle(bundle)
    result.add_table(["construction", "k'", "Nr", "% of Moore bound"], rows)

    # Shape check: SF within ~12% of the bound at the top of the range.
    if rows:
        top = max(rows, key=lambda r: r[1])
        if top[3] >= 80.0:
            result.note(
                f"shape holds: SF MMS reaches {top[3]}% of the Moore bound at k'={top[1]} "
                "(paper: 88%)"
            )
        else:  # pragma: no cover
            result.note("SHAPE VIOLATION: SF MMS below 80% of the Moore bound")
    return result
