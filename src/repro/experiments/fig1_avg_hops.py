"""E1 / Fig 1: average hop count vs network size, all nine topologies.

Uniform traffic with minimal routing: the average number of hops is
the mean shortest-path distance of the router graph.  The reproduction
target: Slim Fly lowest everywhere (→ 2), Dragonfly/FBF next (→ 3),
fat tree ≈ 4 (paper counts router hops incl. nearest-common-ancestor
climbs), tori/hypercube growing with N.
"""

from __future__ import annotations

from repro.analysis.distance import diameter_and_average_distance
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.registry import TOPOLOGY_ORDER, balanced_instance
from repro.util.series import SeriesBundle


def _sizes(scale: Scale) -> list[int]:
    if scale == Scale.QUICK:
        return [128, 512]
    if scale == Scale.DEFAULT:
        return [256, 512, 1024, 2048]
    return [256, 512, 1024, 2048, 4096, 5000]


def run(scale=Scale.DEFAULT, seed=0, topologies=None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    sizes = _sizes(scale)
    names = topologies if topologies is not None else TOPOLOGY_ORDER
    result = ExperimentResult(
        "fig1", "Average number of hops vs network size (uniform traffic, minimal routing)"
    )
    bundle = SeriesBundle(
        title="Fig 1: average hops",
        xlabel="network size [endpoints]",
        ylabel="average number of hops",
    )
    rows = []
    for name in names:
        series = bundle.new(name)
        for target in sizes:
            topo = balanced_instance(name, target, seed=seed)
            # Exact sweep up to ~2500 routers, sampled beyond.
            sample = None if topo.num_routers <= 2500 else 256
            _, avg = diameter_and_average_distance(
                topo.adjacency, sources=sample, seed=seed
            )
            series.append(topo.num_endpoints, round(avg, 4))
            rows.append([name, topo.num_endpoints, topo.num_routers, round(avg, 3)])
    result.add_bundle(bundle)
    result.add_table(["topology", "N", "Nr", "avg hops"], rows)

    sf = bundle.get("SF")
    others = [s for s in bundle.series if s.name != "SF"]
    if sf.y and all(min(sf.y) <= min(o.y) + 1e-9 for o in others if o.y):
        result.note("shape holds: SF has the lowest average hop count at every size")
    else:  # pragma: no cover - signals a regression
        result.note("SHAPE VIOLATION: SF is not lowest — investigate")
    return result
