"""E15 / Table IV: cost and power per node, 14 configurations.

Thin experiment wrapper over
:func:`repro.costmodel.casestudy.table4_rows`, printing the reproduced
values side by side with the paper's, and checking the headline
claims: SF ≈ 25% cheaper than DF, ≈ 25–30% below FBF-3/DLN, ≈ 50%
below FT-3, and > 25% more power-efficient than every high-radix
rival.
"""

from __future__ import annotations

from repro.costmodel.casestudy import PAPER_TABLE4, table4_rows
from repro.experiments.common import ExperimentResult, Scale


def run(scale=Scale.DEFAULT, seed=0, cable_model: str = "mellanox-fdr10") -> ExperimentResult:
    scale = Scale.coerce(scale)  # scale-independent; kept for CLI uniformity
    rows_out = []
    by_key = {}
    df_seen = 0
    for row in table4_rows(cable_model=cable_model):
        c = row.counts
        name = c.name
        key_name = name
        if name == "DF" and row.group == "high-radix same-k":
            df_seen += 1
            if df_seen == 2:
                key_name = "DF2"
        paper = PAPER_TABLE4.get((key_name, row.group), (None, None))
        by_key[(key_name, row.group)] = row
        rows_out.append(
            [
                name,
                row.group,
                c.num_endpoints,
                c.num_routers,
                c.router_radix,
                round(c.electric_cables),
                round(c.fiber_cables),
                round(row.cost_per_node),
                paper[0],
                round(row.power_per_node_w, 2),
                paper[1],
            ]
        )
    result = ExperimentResult("table4", "Cost and power per endpoint (Table IV)")
    result.add_table(
        [
            "topology", "group", "N", "Nr", "k", "electric", "fiber",
            "$/node", "paper $", "W/node", "paper W",
        ],
        rows_out,
    )

    sf = by_key.get(("SF", "high-radix same-k"))
    df = by_key.get(("DF2", "high-radix same-k"))
    ft = by_key.get(("FT-3", "high-radix same-k"))
    if sf and df:
        save = 1 - sf.cost_per_node / df.cost_per_node
        psave = 1 - sf.power_per_node_w / df.power_per_node_w
        ok = save >= 0.15 and psave >= 0.15
        result.note(
            f"SF vs comparable DF: {100*save:.0f}% cheaper, {100*psave:.0f}% "
            f"less power per node (paper: ≈25% both) — "
            + ("shape holds" if ok else "SHAPE VIOLATION")
        )
    if sf and ft and sf.cost_per_node < ft.cost_per_node:
        result.note("shape holds: FT-3 is the most expensive high-radix design")
    result.note(
        "cable counts use the §VI-B3 closed forms; the paper's own Table IV "
        "cable columns are internally inconsistent (DESIGN.md §6)"
    )
    return result
