"""Workload completion time — SF vs DF vs FT-3, closed loop.

The paper's §V evaluation is open-loop (latency vs offered load); the
deployment follow-up (Blach et al., "A High-Performance Design,
Implementation, Deployment, and Evaluation of The Slim Fly Network")
judges the topology the way applications do: by *completion time* of
collectives and stencil exchanges.  The experiment is defined as a
campaign of closed-loop scenarios (:func:`campaign`) over the §V
comparison networks and protocols:

- SF-MIN, SF-VAL, SF-UGAL-L on Slim Fly,
- DF-UGAL-L on the balanced Dragonfly,
- FT-ANCA on the three-level fat tree,

reporting per-protocol completion cycles, message latency and
delivered bandwidth.  ``--workload`` picks the communication pattern
(``all`` sweeps every kind); :func:`~repro.scenarios.run_campaign`
batches the scenarios across ``--workers`` through
:func:`repro.sim.parallel.parallel_workload_completion` with
bit-identical results for any worker count.

Reproduction-adjacent expectations (noted when they hold): Slim Fly's
diameter 2 gives MIN the lowest completion on latency-bound trees
(broadcast/gather); the full-bisection fat tree is hardest to beat on
the bandwidth-bound all-to-all; adaptive routing should not lose to
VAL anywhere.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    performance_protocol_specs,
    performance_trio_specs,
)
from repro.scenarios import (
    Campaign,
    Scenario,
    WorkloadSpec,
    resolve_topology,
    run_campaign,
)
from repro.sim import SimConfig
from repro.workloads import WORKLOAD_KINDS

#: Rank counts / halo-style message sizes per scale preset.  Ranks are
#: capped by the smallest comparison network so every topology hosts
#: the identical workload.
RANKS = {Scale.QUICK: 24, Scale.DEFAULT: 48, Scale.PAPER: 256}
FLITS = {Scale.QUICK: 8, Scale.DEFAULT: 16, Scale.PAPER: 64}
MAX_CYCLES = 300_000


def campaign(
    scale=Scale.DEFAULT,
    seed: int = 0,
    workload: str = "alltoall",
    ranks: int | None = None,
    message_flits: int | None = None,
) -> Campaign:
    """The completion-time grid as {workload × protocol} scenarios."""
    scale = Scale.coerce(scale)
    kinds = list(WORKLOAD_KINDS) if workload == "all" else [workload]
    for kind in kinds:
        if kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload {kind!r}; choose from {WORKLOAD_KINDS} or 'all'"
            )
    protocols = performance_protocol_specs(scale, seed, include_ugal_g=False)
    sizes = [resolve_topology(t).num_endpoints for _, t, _ in protocols]
    n_ranks = ranks if ranks is not None else RANKS[scale]
    n_ranks = min(n_ranks, *sizes)
    flits = message_flits if message_flits is not None else FLITS[scale]
    scenarios = [
        Scenario(
            topology=tspec,
            routing=rspec,
            sim=SimConfig(seed=seed),
            workload=WorkloadSpec(kind, ranks=n_ranks, size_flits=flits),
            max_cycles=MAX_CYCLES,
            label=f"{name}/{kind}",
        )
        for kind in kinds
        for name, tspec, rspec in protocols
    ]
    return Campaign(f"workload-completion-{workload}-{scale.value}", scenarios)


def run(
    scale=Scale.DEFAULT,
    seed=0,
    workload: str = "alltoall",
    workers: int = 1,
    ranks: int | None = None,
    message_flits: int | None = None,
) -> ExperimentResult:
    """Compare collective/stencil completion time across topologies.

    ``workload`` is one of :data:`repro.workloads.WORKLOAD_KINDS` or
    ``"all"``; ``ranks``/``message_flits`` override the scale presets
    (tests use tiny values).
    """
    scale = Scale.coerce(scale)
    kinds = list(WORKLOAD_KINDS) if workload == "all" else [workload]
    camp = campaign(
        scale, seed=seed, workload=workload, ranks=ranks, message_flits=message_flits
    )
    report = run_campaign(camp, workers=workers)

    sf, df, ft = (resolve_topology(t) for t in performance_trio_specs(scale))
    n_ranks = camp.scenarios[0].workload.ranks
    flits = camp.scenarios[0].workload.size_flits
    out = ExperimentResult(
        "workload-completion",
        f"Closed-loop completion time — {', '.join(kinds)}",
    )
    out.note(
        f"networks: SF N={sf.num_endpoints}, DF N={df.num_endpoints}, "
        f"FT-3 N={ft.num_endpoints}; {n_ranks} ranks, {flits}-flit units, "
        "round-robin router placement"
    )
    def _round(value, digits):
        # Stalled runs carry None (serialized NaN) latency fields.
        return round(value, digits) if value is not None else None

    rows = []
    completion: dict[tuple[str, str], float] = {}
    for row in report.rows:
        name, kind = row["label"].split("/")
        rows.append(
            [
                kind,
                name,
                row["num_messages"],
                row["delivered_flits"],
                row["makespan"],
                _round(row["avg_message_latency"], 1),
                _round(row["p99_message_latency"], 1),
                _round(row["flits_per_cycle"], 3),
                row["finished"],
            ]
        )
        completion[(kind, name)] = row["makespan"] if row["finished"] else float("inf")
    out.add_table(
        [
            "workload", "protocol", "messages", "flits",
            "completion [cyc]", "avg msg lat", "p99 msg lat",
            "flits/cyc", "finished",
        ],
        rows,
    )
    _shape_notes(out, kinds, completion)
    return out


def _shape_notes(out: ExperimentResult, kinds, completion) -> None:
    for kind in kinds:
        c = {name: completion.get((kind, name), float("inf"))
             for name in ("SF-MIN", "SF-VAL", "SF-UGAL-L", "DF-UGAL-L", "FT-ANCA")}
        if any(v == float("inf") for v in c.values()):
            unfinished = [k for k, v in c.items() if v == float("inf")]
            out.note(f"{kind}: {', '.join(unfinished)} hit the cycle cap")
            continue
        best = min(c, key=c.get)
        out.note(f"{kind}: fastest completion {best} at {c[best]} cycles")
        if kind in ("broadcast", "gather") and c["SF-MIN"] <= min(
            c["DF-UGAL-L"], c["FT-ANCA"]
        ):
            out.note(
                f"shape holds: diameter-2 SF-MIN wins the latency-bound {kind} tree"
            )
        if c["SF-UGAL-L"] <= c["SF-VAL"]:
            out.note(
                f"shape holds: adaptive UGAL-L never loses to oblivious VAL ({kind})"
            )
