"""E4 / Fig 5c: bisection bandwidth vs network size (10 Gb/s links).

The paper derives closed forms for the regular topologies (⌊N/2⌋ for
HC and FT-3, ⌊2N/k⌋ for tori with ary k, ≈⌊N/4⌋ for DF and FBF-3,
3N/2 for LH-HC) and *measures* SF and DLN with METIS; we measure them
with the spectral+KL substitute.  Reproduction target: SF above DF,
FBF-3 and the tori; FT-3/HC at full bisection.
"""

from __future__ import annotations

from repro.analysis.bisection import bisection_bandwidth
from repro.experiments.common import ExperimentResult, Scale
from repro.topologies.registry import balanced_instance
from repro.util.series import SeriesBundle

LINK_GBPS = 10.0


def _sizes(scale: Scale) -> list[int]:
    if scale == Scale.QUICK:
        return [128, 512]
    if scale == Scale.DEFAULT:
        return [256, 1024, 4096]
    return [512, 1024, 2048, 4096, 8192, 16384, 20000]


def analytic_bisection_gbps(topo) -> float | None:
    """The paper's closed forms; None for measured topologies (SF, DLN)."""
    from repro.topologies import (
        Dragonfly,
        FatTree3,
        FlattenedButterfly,
        Hypercube,
        LongHopHypercube,
        Torus,
    )

    n = topo.num_endpoints
    if isinstance(topo, (Hypercube,)):
        return (n // 2) * LINK_GBPS
    if isinstance(topo, FatTree3):
        return (n // 2) * LINK_GBPS
    if isinstance(topo, LongHopHypercube):
        return (3 * n // 2) * LINK_GBPS
    if isinstance(topo, Torus):
        return (2 * n / max(topo.dims)) * LINK_GBPS
    if isinstance(topo, (Dragonfly, FlattenedButterfly)):
        p = topo.concentration
        return ((n + 2 * p * p - 1) // 4) * LINK_GBPS
    return None


def run(scale=Scale.DEFAULT, seed=0, topologies=None) -> ExperimentResult:
    scale = Scale.coerce(scale)
    names = topologies if topologies is not None else [
        "LH-HC", "FT-3", "HC", "DLN", "SF", "T5D", "DF", "FBF-3", "T3D",
    ]
    result = ExperimentResult("fig5c", "Bisection bandwidth vs network size")
    bundle = SeriesBundle(
        title="Fig 5c: bisection bandwidth",
        xlabel="network size [endpoints]",
        ylabel="bisection bandwidth [Gb/s]",
    )
    rows = []
    for name in names:
        series = bundle.new(name)
        for target in _sizes(scale):
            topo = balanced_instance(name, target, seed=seed)
            analytic = analytic_bisection_gbps(topo)
            if analytic is not None:
                bb = analytic
                method = "analytic"
            else:
                bb = bisection_bandwidth(topo.adjacency, LINK_GBPS, seed=seed)
                method = "spectral+KL"
            series.append(topo.num_endpoints, bb)
            rows.append([name, topo.num_endpoints, round(bb, 1), method])
    result.add_bundle(bundle)
    result.add_table(["topology", "N", "BB [Gb/s]", "method"], rows)

    # Shape: per size class, SF >= DF's closed form.
    try:
        sf, df = bundle.get("SF"), bundle.get("DF")
        ok = all(
            ysf >= 0.8 * ydf
            for (xsf, ysf), (xdf, ydf) in zip(sf.as_pairs(), df.as_pairs())
        )
        result.note(
            "shape holds: SF bisection at or above DF's"
            if ok
            else "SHAPE VIOLATION: SF bisection below DF"
        )
    except KeyError:
        pass
    return result
