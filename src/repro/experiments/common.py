"""Shared experiment plumbing: scales, results, rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.util.series import SeriesBundle
from repro.util.tables import ascii_table


class Scale(str, Enum):
    """Experiment size presets.

    - ``QUICK``: seconds; used by the test suite and benchmarks.
    - ``DEFAULT``: minutes; the CLI default, qualitative agreement.
    - ``PAPER``: the paper's sizes (N ≈ 10K simulations, full CI
      sampling) — hours in pure Python.
    """

    QUICK = "quick"
    DEFAULT = "default"
    PAPER = "paper"

    @staticmethod
    def coerce(value) -> "Scale":
        if isinstance(value, Scale):
            return value
        return Scale(str(value).lower())


@dataclass
class ExperimentResult:
    """Uniform output: tables and/or series bundles plus prose notes."""

    experiment: str
    title: str
    tables: list[tuple[list[str], list[list]]] = field(default_factory=list)
    bundles: list[SeriesBundle] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(self, headers: list[str], rows: list[list]) -> None:
        self.tables.append((headers, rows))

    def add_bundle(self, bundle: SeriesBundle) -> None:
        self.bundles.append(bundle)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"### {self.experiment}: {self.title}"]
        for headers, rows in self.tables:
            parts.append(ascii_table(headers, rows))
        for bundle in self.bundles:
            parts.append(bundle.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready form (the runner's ``--json`` output)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "tables": [
                {"headers": list(headers), "rows": [list(r) for r in rows]}
                for headers, rows in self.tables
            ],
            "bundles": [
                {
                    "title": b.title,
                    "xlabel": b.xlabel,
                    "ylabel": b.ylabel,
                    "series": [
                        {"name": s.name, "x": list(s.x), "y": list(s.y)}
                        for s in b.series
                    ],
                }
                for b in self.bundles
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from its ``to_dict`` form.

        Lossless round-trip (modulo JSON's tuple->list coercion inside
        table rows), so saved ``--json`` outputs can be re-rendered or
        fed to the analysis layer without rerunning the experiment.
        """
        from repro.util.series import Series

        result = cls(experiment=data["experiment"], title=data["title"])
        for table in data.get("tables", []):
            result.add_table(list(table["headers"]),
                             [list(r) for r in table["rows"]])
        for b in data.get("bundles", []):
            bundle = SeriesBundle(
                title=b["title"], xlabel=b["xlabel"], ylabel=b["ylabel"]
            )
            for s in b.get("series", []):
                bundle.add(Series(name=s["name"], x=list(s["x"]), y=list(s["y"])))
            result.add_bundle(bundle)
        result.notes = list(data.get("notes", []))
        return result


def sim_config_for(scale: Scale):
    """Simulator run lengths per scale preset."""
    from repro.sim.config import SimConfig

    if scale == Scale.QUICK:
        return SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200)
    if scale == Scale.DEFAULT:
        return SimConfig(warmup_cycles=400, measure_cycles=900, drain_cycles=2500)
    return SimConfig(warmup_cycles=2000, measure_cycles=5000, drain_cycles=20000)


def performance_trio(scale: Scale):
    """The §V comparison networks (SF, DF, FT-3) at the preset scale.

    Paper scale: SF q=19 (N=10,830), DF h=7 (N=9,702), FT p=22
    (N=10,648).  Reduced scales keep the same balanced shapes at sizes
    a pure-Python cycle simulator sweeps in seconds/minutes; the paper
    itself reports ≤10% latency variation between N ≈ 1K and 10K.
    """
    from repro.topologies import Dragonfly, FatTree3, SlimFly

    q, h, p = TRIO_SHAPES[scale]
    return SlimFly.from_q(q), Dragonfly.balanced(h), FatTree3(p)


#: Exact §V comparison shapes per scale: (SF q, DF h, FT-3 p).
TRIO_SHAPES = {
    Scale.QUICK: (5, 3, 6),
    Scale.DEFAULT: (7, 4, 8),
    Scale.PAPER: (19, 7, 22),
}


def performance_trio_specs(scale: Scale):
    """The §V trio as serializable TopologySpecs (scenario campaigns).

    Shape params pin the exact instances :func:`performance_trio`
    builds, so a campaign resolved through the topology registry runs
    the very networks the legacy experiment paths did.
    """
    from repro.scenarios import TopologySpec

    q, h, p = TRIO_SHAPES[Scale.coerce(scale)]
    return (
        TopologySpec("SF", params={"q": q}),
        TopologySpec("DF", params={"h": h}),
        TopologySpec("FT-3", params={"p": p}),
    )


def performance_protocol_specs(scale: Scale, seed: int, include_ugal_g: bool = True):
    """The §V protocol grid as (label, TopologySpec, RoutingSpec) rows.

    Shared by the fig6 and workload-completion campaign definitions
    (the latter drops SF-UGAL-G, matching the deployment follow-up's
    protocol set), in paper legend order.
    """
    from repro.scenarios import RoutingSpec

    sf, df, ft = performance_trio_specs(scale)
    rows = [
        ("SF-MIN", sf, RoutingSpec("min")),
        ("SF-VAL", sf, RoutingSpec("val", {"seed": seed})),
        ("SF-UGAL-L", sf, RoutingSpec("ugal-l", {"seed": seed})),
        ("SF-UGAL-G", sf, RoutingSpec("ugal-g", {"seed": seed})),
        ("DF-UGAL-L", df, RoutingSpec("df-ugal-l", {"seed": seed})),
        ("FT-ANCA", ft, RoutingSpec("ft-anca", {"seed": seed})),
    ]
    if not include_ugal_g:
        rows = [r for r in rows if r[0] != "SF-UGAL-G"]
    return rows
