"""Shared experiment plumbing: scales, results, rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.util.series import SeriesBundle
from repro.util.tables import ascii_table


class Scale(str, Enum):
    """Experiment size presets.

    - ``QUICK``: seconds; used by the test suite and benchmarks.
    - ``DEFAULT``: minutes; the CLI default, qualitative agreement.
    - ``PAPER``: the paper's sizes (N ≈ 10K simulations, full CI
      sampling) — hours in pure Python.
    """

    QUICK = "quick"
    DEFAULT = "default"
    PAPER = "paper"

    @staticmethod
    def coerce(value) -> "Scale":
        if isinstance(value, Scale):
            return value
        return Scale(str(value).lower())


@dataclass
class ExperimentResult:
    """Uniform output: tables and/or series bundles plus prose notes."""

    experiment: str
    title: str
    tables: list[tuple[list[str], list[list]]] = field(default_factory=list)
    bundles: list[SeriesBundle] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(self, headers: list[str], rows: list[list]) -> None:
        self.tables.append((headers, rows))

    def add_bundle(self, bundle: SeriesBundle) -> None:
        self.bundles.append(bundle)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"### {self.experiment}: {self.title}"]
        for headers, rows in self.tables:
            parts.append(ascii_table(headers, rows))
        for bundle in self.bundles:
            parts.append(bundle.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def sim_config_for(scale: Scale):
    """Simulator run lengths per scale preset."""
    from repro.sim.config import SimConfig

    if scale == Scale.QUICK:
        return SimConfig(warmup_cycles=150, measure_cycles=350, drain_cycles=1200)
    if scale == Scale.DEFAULT:
        return SimConfig(warmup_cycles=400, measure_cycles=900, drain_cycles=2500)
    return SimConfig(warmup_cycles=2000, measure_cycles=5000, drain_cycles=20000)


def performance_trio(scale: Scale):
    """The §V comparison networks (SF, DF, FT-3) at the preset scale.

    Paper scale: SF q=19 (N=10,830), DF h=7 (N=9,702), FT p=22
    (N=10,648).  Reduced scales keep the same balanced shapes at sizes
    a pure-Python cycle simulator sweeps in seconds/minutes; the paper
    itself reports ≤10% latency variation between N ≈ 1K and 10K.
    """
    from repro.topologies import Dragonfly, FatTree3, SlimFly

    if scale == Scale.PAPER:
        return SlimFly.from_q(19), Dragonfly.balanced(7), FatTree3(22)
    if scale == Scale.DEFAULT:
        return SlimFly.from_q(7), Dragonfly.balanced(4), FatTree3(8)
    return SlimFly.from_q(5), Dragonfly.balanced(3), FatTree3(6)
