"""CLI front-end: regenerate any table or figure from the paper.

    python -m repro.experiments --list
    python -m repro.experiments fig1 --scale quick
    python -m repro.experiments fig6 --pattern worstcase
    python -m repro.experiments all --scale quick --json results.json
    python -m repro.experiments campaign grid.json --workers 4 --resume
    python -m repro.experiments campaign grid.json --store ~/.cache/repro-store
    python -m repro.experiments campaign grid.json --service 127.0.0.1:7077
    python -m repro.experiments serve-worker 127.0.0.1:7077 --workers 4
    python -m repro.experiments report --out report/ --workers 4
    python -m repro.experiments report rows.jsonl --out report/

The ``report`` subcommand is the last mile: it consumes campaign JSONL
files (or, with none given, runs the standard figure-set campaigns
into ``<out>/data/`` with resume semantics) plus the analytic
cost/power experiments, and emits ``<out>/REPORT.md`` with
byte-deterministic SVG figures and per-figure provenance.

``campaign --service`` runs the scenario grid through the Layer-7
coordinator/worker scheduler (DESIGN.md): the coordinator listens on
the given address, ``serve-worker`` processes (any host) lease work
units from it, and the output stays byte-identical to a local run.
``--store`` plugs in the content-addressed result store so nothing is
ever simulated twice, on any machine that shares the store.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.common import Scale


def _lazy(modname: str, attr: str = "run", **fixed):
    """Deferred-import experiment entry with pre-bound keyword args.

    ``fixed`` is how figure variants are registered as plain campaign
    parameters (``pattern="uniform"``, ``what="cost"``) instead of
    bespoke wrapper closures; caller kwargs win on conflict.
    """

    def run(**kw):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{modname}")
        return getattr(mod, attr)(**{**fixed, **kw})

    return run


#: experiment name -> (callable(scale, seed, **kw), description)
EXPERIMENTS = {
    "fig1": (_lazy("fig1_avg_hops"), "Fig 1: average hops vs network size"),
    "fig5a": (_lazy("fig5a_moore2"), "Fig 5a: Moore bound, diameter 2"),
    "fig5b": (_lazy("fig5b_moore3"), "Fig 5b: Moore bound, diameter 3"),
    "fig5c": (_lazy("fig5c_bisection"), "Fig 5c: bisection bandwidth"),
    "table2": (_lazy("table2_diameter"), "Table II: network diameters"),
    "table3": (_lazy("table3_disconnection"), "Table III: disconnection resiliency"),
    "res-diameter": (
        _lazy("resiliency_extra", "run_diameter"),
        "§III-D2: diameter-increase resiliency",
    ),
    "res-pathlen": (
        _lazy("resiliency_extra", "run_pathlen"),
        "§III-D3: path-length-increase resiliency",
    ),
    "fig6": (_lazy("fig6_performance"), "Fig 6: latency vs load (use --pattern)"),
    "fig6a": (_lazy("fig6_performance", pattern="uniform"),
              "Fig 6a: uniform random traffic"),
    "fig6b": (_lazy("fig6_performance", pattern="bitrev"),
              "Fig 6b: bit-reversal traffic"),
    "fig6c": (_lazy("fig6_performance", pattern="shift"), "Fig 6c: shift traffic"),
    "fig6d": (_lazy("fig6_performance", pattern="worstcase"),
              "Fig 6d: worst-case traffic"),
    "fig6-paper": (
        _lazy("fig6_performance", "run_paper"),
        "Fig 6 at paper scale (q=25 MMS, flow-level backend; use --pattern)",
    ),
    "fig8a": (
        _lazy("fig8_buffers_oversub", "run_buffers"),
        "Fig 8a: buffer-size study",
    ),
    "fig9": (
        _lazy("fig9_channel_load"),
        "Fig 9: channel-load distribution (telemetry probes)",
    ),
    "fig8-oversub": (
        _lazy("fig8_buffers_oversub", "run_oversub"),
        "Fig 8b-e: oversubscribed Slim Fly",
    ),
    "table4": (_lazy("table4_cost_power"), "Table IV: cost & power per node"),
    "costmodel": (
        _lazy("fig11_cost_power", what="models"),
        "Figs 11a/b-13a/b: cable & router cost models",
    ),
    "fig11-cost": (
        _lazy("fig11_cost_power", what="cost"),
        "Figs 11c/12c/13c: total network cost",
    ),
    "fig11-power": (
        _lazy("fig11_cost_power", what="power"),
        "Figs 11d/12d/13d: total network power",
    ),
    "workload_completion": (
        _lazy("workload_completion"),
        "Closed-loop collective/stencil completion time (use --workload)",
    ),
    "fault-degradation": (
        _lazy("fault_degradation"),
        "Performance under failure: latency/throughput vs dead-link fraction",
    ),
    "vc-counts": (_lazy("vc_counts"), "§IV-D: deadlock-freedom VC counts"),
    "ablate-ugal": (
        _lazy("ablations", "run_ugal_candidates"),
        "Ablation: UGAL candidate count (§IV-C)",
    ),
    "ablate-val": (
        _lazy("ablations", "run_val_maxhops"),
        "Ablation: Valiant path-length cap (§IV-B)",
    ),
    "ablate-xi": (
        _lazy("ablations", "run_primitive_element_invariance"),
        "Ablation: primitive-element invariance (§II-B1)",
    ),
}

#: Experiments whose simulation sweeps fan out over --workers.
#: fig6-paper accepts the flag for parity (the flow backend solves
#: in-process; rows are identical at any worker count).
PARALLEL_SWEEPS = {
    "fig6", "fig6a", "fig6b", "fig6c", "fig6d", "fig6-paper", "fig8a",
    "fig9", "fig8-oversub", "workload_completion", "fault-degradation",
}
#: Of those, the ones that also accept --replicas (per-point seed averaging).
REPLICATED_SWEEPS = {"fig6", "fig6a", "fig6b", "fig6c", "fig6d"}

#: Experiments included in `all` (fig6 via its four variants).
ALL_ORDER = [
    "fig1", "fig5a", "fig5b", "fig5c", "table2", "table3",
    "res-diameter", "res-pathlen", "fig6a", "fig6b", "fig6c", "fig6d",
    "fig8a", "fig9", "fig8-oversub", "workload_completion", "table4", "costmodel",
    "fig11-cost", "fig11-power", "vc-counts", "ablate-ugal", "ablate-val",
    "ablate-xi",
]


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _nonnegative_int(value: str) -> int:
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Slim Fly paper's tables and figures, "
        "or run a declarative scenario campaign.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id, 'all', 'campaign', 'serve-worker', or 'report'",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="campaign JSON file (with 'campaign'), coordinator HOST:PORT "
        "(with 'serve-worker'), or input data files (with 'report': "
        "campaign .jsonl rows and/or --json .json results)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        default="default",
        choices=[s.value for s in Scale],
        help="size preset (quick | default | paper)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pattern", default="uniform", help="fig6 traffic pattern")
    parser.add_argument(
        "--workload",
        default="alltoall",
        help="workload_completion kind (alltoall | ring-allreduce | "
        "rd-allreduce | broadcast | gather | halo2d | halo3d | all)",
    )
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="simulation sweep processes for fig6/fig8/campaigns (0 = one per "
        "core, 1 = in-process; results are identical either way)",
    )
    parser.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="seed replicas averaged per fig6 load point",
    )
    parser.add_argument(
        "--cable-model", default="mellanox-fdr10", help="cost-model cable product"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the experiment results as a JSON list to PATH",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="campaign row output (JSONL; default: <campaign>.results.jsonl) "
        "or the report output directory (required for 'report')",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed scenarios already present in the campaign output",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="campaign: stream heartbeat events (scenario start/finish, "
        "wall-clock, sims/sec) to stderr as JSON lines",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="campaign: content-addressed result store (directory path, or a "
        "file:/memory: URL) — cache hits replay without simulating, fresh "
        "results are written back",
    )
    parser.add_argument(
        "--service",
        metavar="ADDR",
        default=None,
        help="campaign: dispatch through the coordinator/worker scheduler, "
        "listening on ADDR ([HOST:]PORT; port 0 picks an ephemeral port, "
        "printed to stderr); point serve-worker processes at it",
    )
    parser.add_argument(
        "--retry-for",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="serve-worker: keep retrying the initial connect this long "
        "(workers may start before their coordinator)",
    )
    parser.add_argument(
        "--fail-after",
        type=_positive_int,
        default=None,
        metavar="N",
        help="serve-worker: SIGKILL this worker on its N-th lease "
        "(deterministic fault injection for tests/CI)",
    )
    parser.add_argument(
        "--no-analytics",
        action="store_true",
        help="report: skip the analytic cost/power figures",
    )
    parser.add_argument(
        "--png",
        action="store_true",
        help="report: additionally render PNG figures (requires matplotlib)",
    )
    return parser


def run_experiment(name: str, scale, seed: int, **kw):
    fn, _ = EXPERIMENTS[name]
    return fn(scale=scale, seed=seed, **kw)


def _run_campaign_cli(args) -> int:
    from repro.scenarios import Campaign, run_campaign

    if not args.files:
        print("campaign needs a JSON file argument", file=sys.stderr)
        return 2
    if len(args.files) > 1:
        print(
            f"campaign takes exactly one JSON file, got {len(args.files)} "
            f"(run several campaigns as separate invocations)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        # Campaigns stream JSONL rows via --out; silently dropping the
        # flag would look like the results were written.
        print(
            "--json applies to experiments; campaigns write rows to --out",
            file=sys.stderr,
        )
        return 2
    if args.no_analytics or args.png:
        print("--no-analytics/--png apply to the 'report' subcommand only",
              file=sys.stderr)
        return 2
    # Everything but --workers/--out/--resume/--store/--service is
    # baked into the spec file; silently dropping a flag would
    # misrepresent the rows.
    ignored = [
        flag
        for flag, value, default in (
            ("--scale", args.scale, "default"),
            ("--seed", args.seed, 0),
            ("--pattern", args.pattern, "uniform"),
            ("--workload", args.workload, "alltoall"),
            ("--replicas", args.replicas, 1),
            ("--cable-model", args.cable_model, "mellanox-fdr10"),
            ("--retry-for", args.retry_for, 10.0),
            ("--fail-after", args.fail_after, None),
        )
        if value != default
    ]
    if ignored:
        print(
            f"{', '.join(ignored)} cannot apply to a campaign — those axes "
            "live in the campaign JSON; edit the spec instead",
            file=sys.stderr,
        )
        return 2
    path = Path(args.files[0])
    if not path.exists():
        print(f"no such campaign file: {path}", file=sys.stderr)
        return 2
    campaign = Campaign.load(path)
    out = args.out or str(path.with_suffix("")) + ".results.jsonl"
    service = None
    if args.service is not None:
        from repro.service.coordinator import ServiceConfig

        try:
            host, port = _parse_bind(args.service)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        service = ServiceConfig(
            host=host,
            port=port,
            on_bound=lambda h, p: print(
                f"[service] coordinator listening on {h}:{p}",
                file=sys.stderr,
                flush=True,
            ),
        )
    start = time.time()
    report = run_campaign(
        campaign, workers=args.workers, out=out, resume=args.resume,
        progress=args.progress, store=args.store, service=service,
    )
    print(report.summary())
    print(f"[campaign finished in {time.time() - start:.1f}s]")
    return 0


def _parse_bind(value: str) -> tuple[str, int]:
    """A coordinator bind address: HOST:PORT or a bare PORT."""
    from repro.service.worker import parse_address

    if ":" in value:
        return parse_address(value)
    if value.isdigit():
        return "127.0.0.1", int(value)
    raise ValueError(f"--service takes [HOST:]PORT, got {value!r}")


def _serve_worker_cli(args) -> int:
    from repro.scenarios.spec import canonical_json
    from repro.service.worker import serve_worker

    if len(args.files) != 1:
        print("serve-worker needs exactly one HOST:PORT argument", file=sys.stderr)
        return 2
    # serve-worker executes leases as-shipped; every flag that shapes
    # *what* runs belongs to the coordinator side and is rejected
    # loudly, mirroring the campaign subcommand's strictness.
    ignored = [
        flag
        for flag, value, default in (
            ("--scale", args.scale, "default"),
            ("--seed", args.seed, 0),
            ("--pattern", args.pattern, "uniform"),
            ("--workload", args.workload, "alltoall"),
            ("--replicas", args.replicas, 1),
            ("--cable-model", args.cable_model, "mellanox-fdr10"),
            ("--json", args.json, None),
            ("--out", args.out, None),
            ("--resume", args.resume, False),
            ("--store", args.store, None),
            ("--service", args.service, None),
            ("--no-analytics", args.no_analytics, False),
            ("--png", args.png, False),
        )
        if value != default
    ]
    if ignored:
        print(
            f"{', '.join(ignored)} cannot apply to serve-worker — a worker "
            "only executes the leases its coordinator ships",
            file=sys.stderr,
        )
        return 2
    progress = None
    if args.progress:
        progress = lambda event: print(  # noqa: E731
            canonical_json(event), file=sys.stderr, flush=True
        )
    try:
        served = serve_worker(
            args.files[0],
            workers=args.workers,
            retry_for=args.retry_for,
            fail_after=args.fail_after,
            progress=progress,
        )
    except ValueError as exc:  # bad address
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"serve-worker: {exc}", file=sys.stderr)
        return 1
    print(f"[serve-worker done: {served} lease(s) completed]")
    return 0


def _run_report_cli(args) -> int:
    from repro.analysis.figures import HAVE_MATPLOTLIB
    from repro.analysis.report import build_report

    if not args.out:
        print("report needs --out <directory>", file=sys.stderr)
        return 2
    if Path(args.out).exists() and not Path(args.out).is_dir():
        print(f"--out must be a directory, and {args.out} is a file",
              file=sys.stderr)
        return 2
    if args.png and not HAVE_MATPLOTLIB:
        # Fail before the (potentially long) simulations, not after.
        print(
            "--png needs matplotlib, which is not installed; the SVG "
            "backend needs no extra dependencies",
            file=sys.stderr,
        )
        return 2
    # Axes that cannot apply to report rendering are rejected loudly,
    # mirroring the campaign subcommand's strictness.
    ignored = [
        flag
        for flag, value, default in (
            ("--json", args.json, None),
            ("--resume", args.resume, False),
            ("--progress", args.progress, False),
            ("--pattern", args.pattern, "uniform"),
            ("--workload", args.workload, "alltoall"),
            ("--replicas", args.replicas, 1),
            ("--store", args.store, None),
            ("--service", args.service, None),
            ("--retry-for", args.retry_for, 10.0),
            ("--fail-after", args.fail_after, None),
        )
        if value != default
    ]
    if ignored:
        print(
            f"{', '.join(ignored)} cannot apply to 'report' (campaigns "
            "resume automatically; other axes live in the input files)",
            file=sys.stderr,
        )
        return 2
    if args.no_analytics and args.cable_model != "mellanox-fdr10":
        print(
            "--cable-model applies to the analytic cost figure, which "
            "--no-analytics skips",
            file=sys.stderr,
        )
        return 2
    if args.files and args.no_analytics and (
        args.scale != "default" or args.seed != 0
    ):
        # With input files and no analytics nothing consumes these
        # axes — same loud-rejection rule as the flags above.
        print(
            "--scale/--seed only apply to simulations and analytic "
            "figures; with input files and --no-analytics neither runs",
            file=sys.stderr,
        )
        return 2
    missing = [f for f in args.files if not Path(f).exists()]
    if missing:
        print(f"no such input file(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.files and args.workers != 1:
        # With input files nothing simulates, so the flag would be
        # silently dropped — same loud-rejection rule as above.
        print(
            "--workers only applies when report runs the default campaigns "
            "(no input files); the given files already hold the rows",
            file=sys.stderr,
        )
        return 2
    # Unknown suffixes are rejected inside build_report (before any
    # simulation); its ValueError becomes the exit-2 diagnostic below.
    formats = ("svg", "png") if args.png else ("svg",)
    start = time.time()
    try:
        result = build_report(
            args.files,
            args.out,
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            analytics=not args.no_analytics,
            cable_model=args.cable_model,
            formats=formats,
        )
    except ValueError as exc:
        # Malformed inputs (e.g. a campaign spec passed as a results
        # file) get the same clean exit-2 diagnostic as flag misuse.
        print(str(exc), file=sys.stderr)
        return 2
    print(result.summary())
    print(f"[report finished in {time.time() - start:.1f}s]")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_, desc) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {desc}")
        print(
            "\nsubcommands: campaign <grid.json> [--workers N] [--resume] "
            "[--store PATH] [--service ADDR]  |  "
            "serve-worker <host:port> [--workers N]  |  "
            "report [data.jsonl ...] --out <dir>"
        )
        return 0

    if args.experiment == "campaign":
        return _run_campaign_cli(args)
    if args.experiment == "serve-worker":
        return _serve_worker_cli(args)
    if args.experiment == "report":
        return _run_report_cli(args)
    if args.out or args.resume:
        print(
            "--out/--resume apply to the 'campaign' and 'report' subcommands only",
            file=sys.stderr,
        )
        return 2
    if args.store or args.service:
        print("--store/--service apply to the 'campaign' subcommand only",
              file=sys.stderr)
        return 2
    if args.retry_for != 10.0 or args.fail_after is not None:
        print("--retry-for/--fail-after apply to the 'serve-worker' "
              "subcommand only", file=sys.stderr)
        return 2
    if args.progress:
        print("--progress applies to the 'campaign' and 'serve-worker' "
              "subcommands only", file=sys.stderr)
        return 2
    if args.no_analytics or args.png:
        print("--no-analytics/--png apply to the 'report' subcommand only",
              file=sys.stderr)
        return 2
    if args.files:
        # Only 'campaign'/'report' take extra positionals; catching it
        # here keeps e.g. `fig6 worstcase` (forgotten --pattern) loud.
        print(
            f"unexpected argument {args.files[0]!r} "
            f"(only 'campaign' and 'report' take file arguments)",
            file=sys.stderr,
        )
        return 2

    targets = ALL_ORDER if args.experiment == "all" else [args.experiment]
    results = []
    for name in targets:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; --list shows options", file=sys.stderr)
            return 2
        kw = {}
        if name in ("fig6", "fig6-paper"):
            kw["pattern"] = args.pattern
        if name == "workload_completion":
            kw["workload"] = args.workload
        if name in ("table4", "fig11-cost"):
            kw["cable_model"] = args.cable_model
        if name in PARALLEL_SWEEPS:
            kw["workers"] = args.workers
        if name in REPLICATED_SWEEPS and args.replicas != 1:
            kw["replicas"] = args.replicas
        start = time.time()
        result = run_experiment(name, args.scale, args.seed, **kw)
        results.append(result)
        print(result.render())
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    if args.json:
        Path(args.json).write_text(
            json.dumps([r.to_dict() for r in results], indent=2) + "\n"
        )
        print(f"[wrote {len(results)} result(s) to {args.json}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
