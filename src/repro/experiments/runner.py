"""CLI front-end: regenerate any table or figure from the paper.

    python -m repro.experiments --list
    python -m repro.experiments fig1 --scale quick
    python -m repro.experiments fig6 --pattern worstcase
    python -m repro.experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import Scale


def _fig6_variant(pattern):
    def run(scale=Scale.DEFAULT, seed=0, pattern=pattern, **kw):
        from repro.experiments import fig6_performance

        return fig6_performance.run(scale=scale, seed=seed, pattern=pattern, **kw)

    return run


def _lazy(modname: str, attr: str = "run"):
    def run(**kw):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{modname}")
        return getattr(mod, attr)(**kw)

    return run


#: experiment name -> (callable(scale, seed, **kw), description)
EXPERIMENTS = {
    "fig1": (_lazy("fig1_avg_hops"), "Fig 1: average hops vs network size"),
    "fig5a": (_lazy("fig5a_moore2"), "Fig 5a: Moore bound, diameter 2"),
    "fig5b": (_lazy("fig5b_moore3"), "Fig 5b: Moore bound, diameter 3"),
    "fig5c": (_lazy("fig5c_bisection"), "Fig 5c: bisection bandwidth"),
    "table2": (_lazy("table2_diameter"), "Table II: network diameters"),
    "table3": (_lazy("table3_disconnection"), "Table III: disconnection resiliency"),
    "res-diameter": (
        _lazy("resiliency_extra", "run_diameter"),
        "§III-D2: diameter-increase resiliency",
    ),
    "res-pathlen": (
        _lazy("resiliency_extra", "run_pathlen"),
        "§III-D3: path-length-increase resiliency",
    ),
    "fig6": (_lazy("fig6_performance"), "Fig 6: latency vs load (use --pattern)"),
    "fig6a": (_fig6_variant("uniform"), "Fig 6a: uniform random traffic"),
    "fig6b": (_fig6_variant("bitrev"), "Fig 6b: bit-reversal traffic"),
    "fig6c": (_fig6_variant("shift"), "Fig 6c: shift traffic"),
    "fig6d": (_fig6_variant("worstcase"), "Fig 6d: worst-case traffic"),
    "fig8a": (
        _lazy("fig8_buffers_oversub", "run_buffers"),
        "Fig 8a: buffer-size study",
    ),
    "fig8-oversub": (
        _lazy("fig8_buffers_oversub", "run_oversub"),
        "Fig 8b-e: oversubscribed Slim Fly",
    ),
    "table4": (_lazy("table4_cost_power"), "Table IV: cost & power per node"),
    "costmodel": (
        lambda **kw: _lazy("fig11_cost_power")(what="models", **kw),
        "Figs 11a/b-13a/b: cable & router cost models",
    ),
    "fig11-cost": (
        lambda **kw: _lazy("fig11_cost_power")(what="cost", **kw),
        "Figs 11c/12c/13c: total network cost",
    ),
    "fig11-power": (
        lambda **kw: _lazy("fig11_cost_power")(what="power", **kw),
        "Figs 11d/12d/13d: total network power",
    ),
    "workload_completion": (
        _lazy("workload_completion"),
        "Closed-loop collective/stencil completion time (use --workload)",
    ),
    "vc-counts": (_lazy("vc_counts"), "§IV-D: deadlock-freedom VC counts"),
    "ablate-ugal": (
        _lazy("ablations", "run_ugal_candidates"),
        "Ablation: UGAL candidate count (§IV-C)",
    ),
    "ablate-val": (
        _lazy("ablations", "run_val_maxhops"),
        "Ablation: Valiant path-length cap (§IV-B)",
    ),
    "ablate-xi": (
        _lazy("ablations", "run_primitive_element_invariance"),
        "Ablation: primitive-element invariance (§II-B1)",
    ),
}

#: Experiments whose simulation sweeps fan out over --workers.
PARALLEL_SWEEPS = {
    "fig6", "fig6a", "fig6b", "fig6c", "fig6d", "fig8a", "fig8-oversub",
    "workload_completion",
}
#: Of those, the ones that also accept --replicas (per-point seed averaging).
REPLICATED_SWEEPS = {"fig6", "fig6a", "fig6b", "fig6c", "fig6d"}

#: Experiments included in `all` (fig6 via its four variants).
ALL_ORDER = [
    "fig1", "fig5a", "fig5b", "fig5c", "table2", "table3",
    "res-diameter", "res-pathlen", "fig6a", "fig6b", "fig6c", "fig6d",
    "fig8a", "fig8-oversub", "workload_completion", "table4", "costmodel",
    "fig11-cost", "fig11-power", "vc-counts", "ablate-ugal", "ablate-val",
    "ablate-xi",
]


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _nonnegative_int(value: str) -> int:
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Slim Fly paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        default="default",
        choices=[s.value for s in Scale],
        help="size preset (quick | default | paper)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pattern", default="uniform", help="fig6 traffic pattern")
    parser.add_argument(
        "--workload",
        default="alltoall",
        help="workload_completion kind (alltoall | ring-allreduce | "
        "rd-allreduce | broadcast | gather | halo2d | halo3d | all)",
    )
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="simulation sweep processes for fig6/fig8 (0 = one per core, "
        "1 = in-process; results are identical either way)",
    )
    parser.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="seed replicas averaged per fig6 load point",
    )
    parser.add_argument(
        "--cable-model", default="mellanox-fdr10", help="cost-model cable product"
    )
    return parser


def run_experiment(name: str, scale, seed: int, **kw):
    fn, _ = EXPERIMENTS[name]
    return fn(scale=scale, seed=seed, **kw)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_, desc) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {desc}")
        return 0

    targets = ALL_ORDER if args.experiment == "all" else [args.experiment]
    for name in targets:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; --list shows options", file=sys.stderr)
            return 2
        kw = {}
        if name == "fig6":
            kw["pattern"] = args.pattern
        if name == "workload_completion":
            kw["workload"] = args.workload
        if name in ("table4", "fig11-cost"):
            kw["cable_model"] = args.cable_model
        if name in PARALLEL_SWEEPS:
            kw["workers"] = args.workers
        if name in REPLICATED_SWEEPS and args.replicas != 1:
            kw["replicas"] = args.replicas
        start = time.time()
        result = run_experiment(name, args.scale, args.seed, **kw)
        print(result.render())
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
