"""Deterministic random-number-generator helpers.

Every stochastic component in the library (random topologies, Valiant
path selection, Bernoulli injection, failure sampling) accepts either a
seed or a ready-made :class:`numpy.random.Generator`.  Centralising the
coercion here keeps experiments reproducible: the same seed always
yields the same topology, traffic, and simulation outcome.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by experiments when the caller does not provide one.
DEFAULT_SEED = 0x51F


def make_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can thread one
        generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    statistically independent streams — important when e.g. every
    endpoint of the simulator owns its own injection process.
    """
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
