"""Shared utilities: seeded RNG helpers, ASCII tables, data series, validation.

These are small, dependency-light helpers used across the library; they
carry no domain logic of their own.
"""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import ascii_table, format_row
from repro.util.series import Series, SeriesBundle
from repro.util.validation import (
    check_positive_int,
    check_in_range,
    check_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "ascii_table",
    "format_row",
    "Series",
    "SeriesBundle",
    "check_positive_int",
    "check_in_range",
    "check_probability",
]
