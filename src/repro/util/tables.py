"""Plain-text table rendering for experiment output.

The experiment harness prints the same rows the paper's tables report;
this module renders them as aligned ASCII so the output is directly
comparable (and diffable) run-to-run.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    """Render one table cell: floats get compact fixed precision."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_row(cells: Iterable, widths: Sequence[int] | None = None) -> str:
    """Format a single row, optionally padded to the given widths."""
    rendered = [format_cell(c) for c in cells]
    if widths is None:
        return "  ".join(rendered)
    return "  ".join(c.rjust(w) for c, w in zip(rendered, widths))


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
