"""Argument validation helpers with consistent error messages."""

from __future__ import annotations


def check_positive_int(value, name: str) -> int:
    """Require ``value`` to be a positive integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an int, got {type(value).__name__}")
        if as_int != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = as_int
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_range(value, name: str, lo, hi) -> None:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")


def check_probability(value, name: str) -> float:
    """Require a probability in [0, 1]; return it as ``float``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return value
