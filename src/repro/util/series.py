"""Data-series containers for figure reproduction.

A paper figure is a set of named (x, y) series.  :class:`Series` holds
one curve; :class:`SeriesBundle` holds a figure's worth of curves plus
axis labels, and renders them as aligned text for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Series:
    """One named curve: parallel ``x`` and ``y`` sequences."""

    name: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def append(self, x, y) -> None:
        self.x.append(x)
        self.y.append(y)

    def __len__(self) -> int:
        return len(self.x)

    def as_pairs(self) -> list[tuple]:
        return list(zip(self.x, self.y))


@dataclass
class SeriesBundle:
    """A figure: several curves sharing axis semantics."""

    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def add(self, series: Series) -> Series:
        self.series.append(series)
        return series

    def new(self, name: str) -> Series:
        return self.add(Series(name))

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.title!r}")

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.series]

    def render(self, max_points: int | None = None) -> str:
        """Render every curve as ``name: (x, y) ...`` text lines."""
        lines = [f"== {self.title} ==", f"x: {self.xlabel}   y: {self.ylabel}"]
        for s in self.series:
            pairs = s.as_pairs()
            if max_points is not None and len(pairs) > max_points:
                pairs = pairs[:: max(1, len(pairs) // max_points)]
            body = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in pairs)
            lines.append(f"{s.name}: {body}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def crossover(a: Series, b: Series) -> float | None:
    """Return the first x at which curve ``a`` overtakes curve ``b``.

    Used to check "where crossovers fall" claims; returns ``None`` when
    the curves never cross over the shared x range.
    """
    shared = sorted(set(a.x) & set(b.x))
    prev_sign = None
    for x in shared:
        ya = a.y[a.x.index(x)]
        yb = b.y[b.x.index(x)]
        sign = (ya > yb) - (ya < yb)
        if prev_sign is not None and sign != 0 and sign != prev_sign:
            return x
        if sign != 0:
            prev_sign = sign
    return None
