"""Campaign service worker: lease, simulate, report, repeat.

:func:`serve_worker` connects to a coordinator, introduces itself with
a ``hello``, then serves leases until the coordinator says
``shutdown`` (or the connection drops).  While a lease runs, a
background thread sends ``heartbeat`` messages every
``heartbeat_interval`` seconds so the coordinator can tell "busy
simulating" from "dead" — the execution itself happens on this thread
through the exact unit executor the in-process runner uses, so rows
produced here are byte-identical to local ones.

``fail_after=N`` is deterministic fault injection for tests and CI:
the worker SIGKILLs itself upon receiving its N-th lease, exercising
the coordinator's dead-worker detection and retry path without any
timing games.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

from repro.service.protocol import ProtocolError, recv_message, send_message
from repro.service.units import execute_unit, from_wire

__all__ = ["parse_address", "serve_worker"]


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (port required) into its parts."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"service address must be HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


def _connect(host: str, port: int, retry_for: float) -> socket.socket:
    """Dial the coordinator, retrying refusals until the deadline.

    Workers routinely start before (or between) coordinators, so a
    refused/unreachable connection is retried for ``retry_for``
    seconds before giving up.
    """
    deadline = time.monotonic() + retry_for
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


class _HeartbeatThread:
    """Background liveness beacon for the duration of one lease."""

    def __init__(self, sock, lock, lease: int, interval: float):
        self._sock = sock
        self._lock = lock
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                send_message(
                    self._sock,
                    {"type": "heartbeat", "lease": self._lease},
                    lock=self._lock,
                )
            except OSError:
                return  # connection is gone; the main loop will notice

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join()


def serve_worker(
    address: str,
    workers: int = 1,
    retry_for: float = 10.0,
    name: str | None = None,
    heartbeat_interval: float = 1.0,
    fail_after: int | None = None,
    progress=None,
) -> int:
    """Serve one coordinator until shutdown; return leases completed.

    ``address`` is ``HOST:PORT``; ``workers`` is this worker's local
    fork-pool fan-out per unit.  ``retry_for`` bounds the initial
    connect retries (workers may start first).  ``progress`` (if set)
    receives each locally produced heartbeat event dict — the same
    shapes the in-process runner emits — after it is forwarded to the
    coordinator.  ``fail_after=N`` SIGKILLs the process on the N-th
    lease (fault-injection hook; see module docstring).
    """
    host, port = parse_address(address)
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    sock = _connect(host, port, retry_for)
    lock = threading.Lock()
    completed = 0
    try:
        send_message(
            sock,
            {"type": "hello", "worker": worker_name, "pid": os.getpid(), "workers": workers},
            lock=lock,
        )
        while True:
            try:
                message = recv_message(sock)
            except ProtocolError:
                break
            if message is None or message["type"] == "shutdown":
                break
            if message["type"] != "lease":
                continue
            lease = message["lease"]
            if fail_after is not None and completed + 1 >= fail_after:
                # Deterministic crash: die holding the lease, without
                # a FIN, exactly like a powered-off host.
                os.kill(os.getpid(), signal.SIGKILL)

            def _forward(**event) -> None:
                try:
                    send_message(
                        sock, {"type": "heartbeat", "lease": lease, "event": event},
                        lock=lock,
                    )
                except OSError:
                    pass
                if progress is not None:
                    progress(event)

            entries = [from_wire(e) for e in message["scenarios"]]
            try:
                with _HeartbeatThread(sock, lock, lease, heartbeat_interval):
                    payloads, sims = execute_unit(
                        message["campaign"], message["kind"], entries,
                        workers=workers, heartbeat=_forward,
                    )
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                send_message(
                    sock,
                    {"type": "error", "lease": lease, "error": f"{type(exc).__name__}: {exc}"},
                    lock=lock,
                )
                continue
            send_message(
                sock,
                {"type": "result", "lease": lease, "results": payloads, "sims": sims},
                lock=lock,
            )
            completed += 1
    finally:
        sock.close()
    return completed
