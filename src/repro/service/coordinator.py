"""Campaign coordinator: leases work units to workers, keeps order.

The coordinator is a single-threaded ``selectors`` loop owned by the
calling :func:`~repro.scenarios.runner.run_campaign` process.  It
listens on a TCP socket, hands each work unit (see
:func:`~repro.scenarios.runner.partition_units`) to a connected worker
as a *lease*, and buffers completed units so scenarios are handed back
strictly in campaign order — workers may finish in any order without
perturbing a byte of the output.

Robustness contract:

- liveness is heartbeat-based: a worker silent longer than
  ``heartbeat_timeout`` is declared dead and its lease re-queued (an
  EOF/SIGKILL is just the fast path of the same detection);
- an optional ``lease_timeout`` bounds any single unit's wall-clock on
  one worker;
- a failed unit is retried on a *different* worker when one exists,
  at most ``max_retries`` times, then executed in-process;
- if no worker connects within ``wait_for_workers`` seconds the whole
  campaign degrades to in-process execution, one unit at a time, while
  the socket stays open for late joiners.

Results from a superseded lease (a worker declared dead that answers
anyway) are discarded by lease id, so a unit's rows are committed
exactly once.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.scenarios.spec import Scenario
from repro.service.protocol import FrameDecoder, ProtocolError, send_message
from repro.service.units import UnitEntry, execute_unit, to_wire
from repro.sim.parallel import credit_simulations

__all__ = ["Coordinator", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Tunables for one coordinator run.

    ``port=0`` binds an ephemeral port; ``on_bound`` (if set) receives
    ``(host, port)`` once the listener is up — tests and examples use
    it to learn where to point their workers.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Seconds to wait for a first worker before units start running
    #: in-process (late workers still join and take later units).
    wait_for_workers: float = 10.0
    #: Seconds of worker silence before it is declared dead.
    heartbeat_timeout: float = 15.0
    #: Wall-clock bound for one lease on one worker (None = unbounded).
    lease_timeout: float | None = None
    #: Times a unit is re-leased after a failure before the
    #: coordinator runs it in-process itself.
    max_retries: int = 2
    on_bound: Callable[[str, int], None] | None = field(
        default=None, repr=False, compare=False
    )


class _Unit:
    __slots__ = ("uid", "kind", "indices", "retries", "tried")

    def __init__(self, uid: int, kind: str, indices: list[int]):
        self.uid = uid
        self.kind = kind
        self.indices = indices
        self.retries = 0
        #: Worker names that already failed this unit.
        self.tried: set[str] = set()


class _WorkerConn:
    __slots__ = (
        "conn", "addr", "name", "decoder", "lease", "unit_uid",
        "assigned_at", "last_seen",
    )

    def __init__(self, conn, addr, now: float):
        self.conn = conn
        self.addr = addr
        self.name: str | None = None  # set by hello
        self.decoder = FrameDecoder()
        self.lease: int | None = None  # active lease id
        self.unit_uid: int | None = None  # unit the active lease covers
        self.assigned_at = 0.0
        self.last_seen = now


class Coordinator:
    """Schedules one campaign's work units over the service socket.

    Construct with the campaign name, its (deduplicated) scenario
    list, a :class:`ServiceConfig`, the in-process worker count used
    for local-fallback units, and the runner's heartbeat callback;
    then call :meth:`execute` once.
    """

    def __init__(
        self,
        campaign: str,
        scenarios: Sequence[Scenario],
        config: ServiceConfig,
        local_workers: int = 1,
        heartbeat=None,
    ):
        self.campaign = campaign
        self.scenarios = list(scenarios)
        self.config = config
        self.local_workers = local_workers
        self._heartbeat = heartbeat or (lambda **fields: None)
        self._lease_seq = 0

    def execute(self, units, on_scenario) -> None:
        """Run the units; invoke ``on_scenario(index, payload)`` in order.

        ``units`` is :func:`~repro.scenarios.runner.partition_units`
        output.  ``on_scenario`` fires exactly once per pending
        scenario, in strictly increasing campaign-index order, with the
        ``{"scenario", "rows", "metrics"}`` payload dict — regardless
        of which worker (or this process) produced it, and regardless
        of completion order.
        """
        if not units:
            return
        cfg = self.config
        self._units = [_Unit(u, kind, idx) for u, (kind, idx) in enumerate(units)]
        self._queue: deque[_Unit] = deque(self._units)
        self._results: dict[int, list] = {}
        self._workers: dict = {}  # conn -> _WorkerConn
        next_uid = 0

        listener = socket.create_server((cfg.host, cfg.port), backlog=16)
        listener.setblocking(False)
        host, port = listener.getsockname()[:2]
        self._sel = selectors.DefaultSelector()
        self._sel.register(listener, selectors.EVENT_READ)
        self._heartbeat(
            event="service_listening", campaign=self.campaign,
            host=host, port=port, units=len(self._units),
        )
        if cfg.on_bound is not None:
            cfg.on_bound(host, port)
        self._last_worker_seen = time.monotonic()
        try:
            while next_uid < len(self._units):
                self._assign_leases()
                for key, _ in self._sel.select(timeout=0.1):
                    if key.fileobj is listener:
                        self._accept(listener)
                    else:
                        self._read(self._workers[key.fileobj])
                self._check_timeouts()
                if (
                    self._queue
                    and not self._workers
                    and time.monotonic() - self._last_worker_seen
                    > cfg.wait_for_workers
                ):
                    # Degradation: nobody to lease to — run the next
                    # unit here while the socket stays open for late
                    # joiners.
                    self._run_unit_locally(self._queue.popleft(), "no_workers")
                while next_uid < len(self._units) and next_uid in self._results:
                    for k, payload in self._results.pop(next_uid):
                        on_scenario(k, payload)
                    next_uid += 1
        finally:
            for worker in list(self._workers.values()):
                try:
                    self._send(worker, {"type": "shutdown"})
                except OSError:
                    pass
                self._drop(worker)
            self._sel.unregister(listener)
            listener.close()
            self._sel.close()

    # -- connection handling -------------------------------------------

    def _send(self, worker, message: dict) -> None:
        # Sockets live non-blocking for the selector loop; sends flip
        # to a bounded blocking mode so a large lease never trips
        # BlockingIOError on a full buffer (and a worker that stopped
        # reading surfaces as a timeout, i.e. an OSError, not a hang).
        worker.conn.settimeout(30.0)
        try:
            send_message(worker.conn, message)
        finally:
            worker.conn.setblocking(False)

    def _accept(self, listener) -> None:
        try:
            conn, addr = listener.accept()
        except OSError:  # pragma: no cover - raced connection reset
            return
        conn.setblocking(False)
        now = time.monotonic()
        self._last_worker_seen = now
        worker = _WorkerConn(conn, addr, now)
        self._workers[conn] = worker
        self._sel.register(conn, selectors.EVENT_READ)

    def _drop(self, worker) -> None:
        self._workers.pop(worker.conn, None)
        try:
            self._sel.unregister(worker.conn)
        except (KeyError, ValueError):
            pass
        worker.conn.close()
        # Keep degradation patient while other workers remain; the
        # wait_for_workers clock restarts when the last one leaves.
        self._last_worker_seen = time.monotonic()

    def _fail_worker(self, worker, reason: str) -> None:
        if worker.name is not None:
            self._heartbeat(
                event="worker_dead", campaign=self.campaign,
                worker=worker.name, reason=reason,
            )
        unit_uid = worker.unit_uid if worker.lease is not None else None
        name = worker.name or f"{worker.addr[0]}:{worker.addr[1]}"
        self._drop(worker)
        if unit_uid is not None and unit_uid not in self._results:
            self._retry_unit(self._units[unit_uid], name, reason)

    def _retry_unit(self, unit, worker_name: str, reason: str) -> None:
        unit.retries += 1
        unit.tried.add(worker_name)
        if unit.retries > self.config.max_retries:
            self._heartbeat(
                event="unit_local_fallback", campaign=self.campaign,
                unit=unit.uid, reason=reason, retries=unit.retries,
            )
            self._run_unit_locally(unit, reason)
        else:
            self._heartbeat(
                event="lease_retry", campaign=self.campaign,
                unit=unit.uid, retries=unit.retries, reason=reason,
            )
            self._queue.appendleft(unit)

    # -- lease lifecycle -----------------------------------------------

    def _assign_leases(self) -> None:
        idle = [
            w
            for w in self._workers.values()
            if w.name is not None and w.lease is None
        ]
        for worker in idle:
            if not self._queue:
                return
            # Prefer a unit this worker has not already failed.
            unit = None
            for candidate in self._queue:
                if worker.name not in candidate.tried:
                    unit = candidate
                    break
            if unit is None:
                unit = self._queue[0]
            self._queue.remove(unit)
            self._lease_seq += 1
            lease = self._lease_seq
            message = {
                "type": "lease",
                "lease": lease,
                "unit": unit.uid,
                "kind": unit.kind,
                "campaign": self.campaign,
                "scenarios": [
                    to_wire(UnitEntry(k, len(self.scenarios), self.scenarios[k]))
                    for k in unit.indices
                ],
            }
            try:
                self._send(worker, message)
            except OSError:
                self._queue.appendleft(unit)
                self._fail_worker(worker, "send_failed")
                continue
            worker.lease = lease
            worker.unit_uid = unit.uid
            worker.assigned_at = time.monotonic()

    def _check_timeouts(self) -> None:
        now = time.monotonic()
        cfg = self.config
        for worker in list(self._workers.values()):
            if now - worker.last_seen > cfg.heartbeat_timeout:
                self._fail_worker(worker, "heartbeat_timeout")
            elif (
                worker.lease is not None
                and cfg.lease_timeout is not None
                and now - worker.assigned_at > cfg.lease_timeout
            ):
                self._fail_worker(worker, "lease_timeout")

    # -- message handling ----------------------------------------------

    def _read(self, worker) -> None:
        try:
            data = worker.conn.recv(1 << 20)
        except (BlockingIOError, InterruptedError):  # pragma: no cover
            return
        except OSError:
            self._fail_worker(worker, "recv_failed")
            return
        if not data:
            self._fail_worker(worker, "disconnected")
            return
        worker.last_seen = time.monotonic()
        self._last_worker_seen = worker.last_seen
        try:
            messages = worker.decoder.feed(data)
        except ProtocolError:
            self._fail_worker(worker, "protocol_error")
            return
        for message in messages:
            self._handle(worker, message)

    def _handle(self, worker, message: dict) -> None:
        kind = message["type"]
        if kind == "hello":
            worker.name = str(message.get("worker") or f"worker@{worker.addr[1]}")
            self._heartbeat(
                event="worker_joined", campaign=self.campaign,
                worker=worker.name, pid=message.get("pid"),
                workers=message.get("workers"),
            )
        elif kind == "heartbeat":
            event = message.get("event")
            if isinstance(event, dict) and event.get("event"):
                self._heartbeat(**{**event, "worker": worker.name})
        elif kind == "result":
            if message.get("lease") != worker.lease or worker.lease is None:
                return  # stale: this lease was re-queued already
            unit = self._units[worker.unit_uid]
            worker.lease = None
            payloads = message.get("results")
            if (
                not isinstance(payloads, list)
                or len(payloads) != len(unit.indices)
            ):
                self._retry_unit(unit, worker.name, "bad_result")
                return
            credit_simulations(int(message.get("sims", 0) or 0))
            self._results[unit.uid] = list(zip(unit.indices, payloads))
        elif kind == "error":
            if message.get("lease") != worker.lease or worker.lease is None:
                return
            unit = self._units[worker.unit_uid]
            worker.lease = None
            self._retry_unit(
                unit, worker.name, f"worker_error: {message.get('error')}"
            )
        # Unknown types are ignored (forward compatibility).

    # -- local fallback ------------------------------------------------

    def _run_unit_locally(self, unit, reason: str) -> None:
        entries = [
            UnitEntry(k, len(self.scenarios), self.scenarios[k])
            for k in unit.indices
        ]
        payloads, _sims = execute_unit(
            self.campaign, unit.kind, entries,
            workers=self.local_workers, heartbeat=self._heartbeat,
        )
        self._results[unit.uid] = list(zip(unit.indices, payloads))
